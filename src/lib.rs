//! # smrseek
//!
//! A trace-driven simulator of log-structured translation layers for
//! Shingled Magnetic Recording (SMR) disks, reproducing
//! *"Minimizing Read Seeks for SMR Disk"* (Hajkazemi, Abdi, Desnoyers —
//! IISWC 2018).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`trace`] — block-trace model, parsers, writers, characterization.
//! * [`extent`] — the LBA→PBA interval map substrate.
//! * [`disk`] — seek detection, classification, distances, cost model, and
//!   a zoned-device model.
//! * [`cache`] — LRU, fragment cache and prefetch buffer substrates.
//! * [`stl`] — the translation layers (identity and log-structured) and the
//!   paper's three seek-reduction mechanisms.
//! * [`workloads`] — deterministic synthetic workload generators with named
//!   profiles for every Table-I trace.
//! * [`sim`] — the simulation engine, seek-amplification metrics, reporting
//!   and per-figure experiment harnesses.
//!
//! # Quickstart
//!
//! ```
//! use smrseek::sim::{SimConfig, Simulation};
//! use smrseek::workloads::profiles;
//!
//! let trace = profiles::by_name("w91").expect("known profile").generate(42);
//! let report = Simulation::new(&SimConfig::log_structured()).run_trace(&trace);
//! let baseline = Simulation::new(&SimConfig::no_ls()).run_trace(&trace);
//! let saf = report.seeks.total() as f64 / baseline.seeks.total().max(1) as f64;
//! assert!(saf > 1.0, "w91 is the paper's most log-sensitive workload");
//! ```

#![warn(missing_docs)]
pub use smrseek_cache as cache;
pub use smrseek_disk as disk;
pub use smrseek_extent as extent;
pub use smrseek_sim as sim;
pub use smrseek_stl as stl;
pub use smrseek_trace as trace;
pub use smrseek_workloads as workloads;
