//! Property tests for `ExtentMap`: the map must agree with a trivially
//! correct sector-by-sector model under arbitrary insert/remove sequences.

use proptest::prelude::*;
use smrseek_extent::{ExtentMap, Segment};
use smrseek_trace::{Lba, Pba};
use std::collections::HashMap;

const SPACE: u64 = 512; // small logical space so overlaps are common

#[derive(Debug, Clone)]
enum Op {
    Insert { lba: u64, len: u64, pba: u64 },
    Remove { lba: u64, len: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..SPACE, 1..64u64, 0..1_000_000u64)
            .prop_map(|(lba, len, pba)| Op::Insert { lba, len, pba }),
        1 => (0..SPACE, 1..64u64).prop_map(|(lba, len)| Op::Remove { lba, len }),
    ]
}

/// Reference model: one entry per sector.
#[derive(Default)]
struct Model {
    sectors: HashMap<u64, u64>, // lba sector -> pba sector
}

impl Model {
    fn apply(&mut self, op: &Op) {
        match *op {
            Op::Insert { lba, len, pba } => {
                for i in 0..len {
                    self.sectors.insert(lba + i, pba + i);
                }
            }
            Op::Remove { lba, len } => {
                for i in 0..len {
                    self.sectors.remove(&(lba + i));
                }
            }
        }
    }
}

fn apply(map: &mut ExtentMap, op: &Op) {
    match *op {
        Op::Insert { lba, len, pba } => map.insert(Lba::new(lba), len, Pba::new(pba)),
        Op::Remove { lba, len } => map.remove(Lba::new(lba), len),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every sector translates exactly as the reference model says.
    #[test]
    fn translation_matches_reference(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let mut map = ExtentMap::new();
        let mut model = Model::default();
        for op in &ops {
            apply(&mut map, op);
            model.apply(op);
        }
        for sector in 0..SPACE + 64 {
            let got = map.translate(Lba::new(sector)).map(|p| p.sector());
            let want = model.sectors.get(&sector).copied();
            prop_assert_eq!(got, want, "sector {}", sector);
        }
    }

    /// Mapped-sector accounting equals the reference model's count.
    #[test]
    fn mapped_sectors_accounting(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let mut map = ExtentMap::new();
        let mut model = Model::default();
        for op in &ops {
            apply(&mut map, op);
            model.apply(op);
        }
        prop_assert_eq!(map.mapped_sectors(), model.sectors.len() as u64);
    }

    /// Stored extents are disjoint, sorted, and maximal (no coalescible
    /// neighbours survive).
    #[test]
    fn extents_are_disjoint_and_maximal(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let mut map = ExtentMap::new();
        for op in &ops {
            apply(&mut map, op);
        }
        let extents: Vec<_> = map.iter().collect();
        for pair in extents.windows(2) {
            prop_assert!(pair[0].lba_end() <= pair[1].lba, "overlap: {} vs {}", pair[0], pair[1]);
            prop_assert!(!pair[0].abuts(&pair[1]), "uncoalesced neighbours: {} {}", pair[0], pair[1]);
        }
        let total: u64 = extents.iter().map(|e| e.sectors).sum();
        prop_assert_eq!(total, map.mapped_sectors());
    }

    /// Lookups tile the queried range exactly: in order, gap-free,
    /// overlap-free, and consistent with `translate`.
    #[test]
    fn lookup_tiles_exactly(
        ops in prop::collection::vec(op_strategy(), 1..40),
        qlba in 0..SPACE,
        qlen in 1..128u64,
    ) {
        let mut map = ExtentMap::new();
        for op in &ops {
            apply(&mut map, op);
        }
        let segs = map.lookup(Lba::new(qlba), qlen);
        let mut cursor = qlba;
        for seg in &segs {
            prop_assert_eq!(seg.lba().sector(), cursor);
            prop_assert!(seg.sectors() > 0);
            match seg {
                Segment::Mapped(e) => {
                    for i in 0..e.sectors {
                        prop_assert_eq!(
                            map.translate(Lba::new(e.lba.sector() + i)),
                            Some(Pba::new(e.pba.sector() + i))
                        );
                    }
                }
                Segment::Hole { lba, sectors } => {
                    for i in 0..*sectors {
                        prop_assert_eq!(map.translate(Lba::new(lba.sector() + i)), None);
                    }
                }
            }
            cursor += seg.sectors();
        }
        prop_assert_eq!(cursor, qlba + qlen);
    }

    /// Dynamic fragmentation is between 1 and the number of lookup pieces,
    /// and exactly 1 when the whole range is one physically-contiguous run.
    #[test]
    fn fragments_bounded_by_segments(
        ops in prop::collection::vec(op_strategy(), 1..40),
        qlba in 0..SPACE,
        qlen in 1..128u64,
    ) {
        let mut map = ExtentMap::new();
        for op in &ops {
            apply(&mut map, op);
        }
        let frags = map.fragments_in(Lba::new(qlba), qlen);
        let segs = map.lookup(Lba::new(qlba), qlen).len();
        prop_assert!(frags >= 1);
        prop_assert!(frags <= segs);
    }

    /// Re-inserting data at its identity location makes any range read as a
    /// single fragment.
    #[test]
    fn identity_mapping_defragments(qlba in 0..SPACE, qlen in 1..128u64) {
        let mut map = ExtentMap::new();
        map.insert(Lba::new(qlba), qlen, Pba::new(qlba));
        prop_assert_eq!(map.fragments_in(Lba::new(qlba), qlen), 1);
        prop_assert_eq!(map.fragments_in(Lba::new(0), SPACE + 128), 1);
    }
}
