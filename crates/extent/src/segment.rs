//! Mapping records returned by extent-map lookups.

use serde::{Deserialize, Serialize};
use smrseek_trace::{Lba, Pba};
use std::fmt;

/// One mapped extent: `sectors` logical sectors starting at `lba` stored
/// contiguously at `pba`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Extent {
    /// First logical sector.
    pub lba: Lba,
    /// Length in sectors (always > 0 for extents stored in a map).
    pub sectors: u64,
    /// First physical sector.
    pub pba: Pba,
}

impl Extent {
    /// Creates an extent.
    pub const fn new(lba: Lba, sectors: u64, pba: Pba) -> Self {
        Extent { lba, sectors, pba }
    }

    /// One past the last logical sector.
    pub fn lba_end(&self) -> Lba {
        self.lba + self.sectors
    }

    /// One past the last physical sector.
    pub fn pba_end(&self) -> Pba {
        self.pba + self.sectors
    }

    /// Translates a logical sector inside this extent to its physical
    /// sector.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `lba` is outside the extent.
    pub fn translate(&self, lba: Lba) -> Pba {
        debug_assert!(lba >= self.lba && lba < self.lba_end());
        self.pba + (lba - self.lba)
    }

    /// Returns `true` if `other` continues this extent both logically and
    /// physically, i.e. the two can be coalesced into one extent.
    pub fn abuts(&self, other: &Extent) -> bool {
        other.lba == self.lba_end() && other.pba == self.pba_end()
    }
}

impl fmt::Display for Extent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lba {}..{} -> pba {}..{}",
            self.lba,
            self.lba_end(),
            self.pba,
            self.pba_end()
        )
    }
}

/// One piece of a range lookup: either a mapped extent or an unmapped hole.
///
/// Holes matter to the simulator: the paper's disk model stores never-written
/// data "at a physical location corresponding to its LBA" (§III), so holes
/// translate to the identity location at a higher layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Segment {
    /// A contiguous mapped piece.
    Mapped(Extent),
    /// An unmapped logical range `[lba, lba + sectors)`.
    Hole {
        /// First unmapped logical sector.
        lba: Lba,
        /// Length of the hole in sectors.
        sectors: u64,
    },
}

impl Segment {
    /// First logical sector of the piece.
    pub fn lba(&self) -> Lba {
        match self {
            Segment::Mapped(e) => e.lba,
            Segment::Hole { lba, .. } => *lba,
        }
    }

    /// Length of the piece in sectors.
    pub fn sectors(&self) -> u64 {
        match self {
            Segment::Mapped(e) => e.sectors,
            Segment::Hole { sectors, .. } => *sectors,
        }
    }

    /// One past the last logical sector of the piece.
    pub fn lba_end(&self) -> Lba {
        self.lba() + self.sectors()
    }

    /// Returns the mapped extent, or `None` for a hole.
    pub fn as_mapped(&self) -> Option<&Extent> {
        match self {
            Segment::Mapped(e) => Some(e),
            Segment::Hole { .. } => None,
        }
    }

    /// Returns `true` for [`Segment::Hole`].
    pub fn is_hole(&self) -> bool {
        matches!(self, Segment::Hole { .. })
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Segment::Mapped(e) => write!(f, "{e}"),
            Segment::Hole { lba, sectors } => {
                write!(f, "hole lba {}..{}", lba, *lba + *sectors)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extent_geometry() {
        let e = Extent::new(Lba::new(10), 5, Pba::new(100));
        assert_eq!(e.lba_end(), Lba::new(15));
        assert_eq!(e.pba_end(), Pba::new(105));
        assert_eq!(e.translate(Lba::new(12)), Pba::new(102));
    }

    #[test]
    fn abutment_requires_both_spaces() {
        let a = Extent::new(Lba::new(0), 4, Pba::new(100));
        let log_and_phys = Extent::new(Lba::new(4), 4, Pba::new(104));
        let log_only = Extent::new(Lba::new(4), 4, Pba::new(200));
        let phys_only = Extent::new(Lba::new(9), 4, Pba::new(104));
        assert!(a.abuts(&log_and_phys));
        assert!(!a.abuts(&log_only));
        assert!(!a.abuts(&phys_only));
    }

    #[test]
    fn segment_accessors() {
        let m = Segment::Mapped(Extent::new(Lba::new(2), 3, Pba::new(9)));
        let h = Segment::Hole {
            lba: Lba::new(5),
            sectors: 2,
        };
        assert_eq!(m.lba(), Lba::new(2));
        assert_eq!(m.sectors(), 3);
        assert_eq!(m.lba_end(), Lba::new(5));
        assert!(!m.is_hole());
        assert!(m.as_mapped().is_some());
        assert_eq!(h.lba_end(), Lba::new(7));
        assert!(h.is_hole());
        assert!(h.as_mapped().is_none());
    }

    #[test]
    fn display_forms() {
        let e = Extent::new(Lba::new(1), 2, Pba::new(3));
        assert_eq!(e.to_string(), "lba 1..3 -> pba 3..5");
        let h = Segment::Hole {
            lba: Lba::new(9),
            sectors: 1,
        };
        assert_eq!(h.to_string(), "hole lba 9..10");
        assert_eq!(Segment::Mapped(e).to_string(), e.to_string());
    }
}
