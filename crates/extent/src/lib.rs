//! The LBA→PBA **extent map**: the interval-map substrate beneath a
//! log-structured translation layer.
//!
//! A log-structured system writes arbitrary LBAs to an advancing physical
//! write frontier, so the logical address space ends up represented by many
//! non-contiguous physical extents (§IV-A of *Minimizing Read Seeks for SMR
//! Disk*). This crate provides:
//!
//! * [`ExtentMap`] — a coalescing interval map from logical sector ranges
//!   to physical sector ranges, with split-on-overwrite semantics,
//! * [`Extent`] and [`Segment`] — the mapping records returned by lookups,
//! * fragmentation measurement: [`ExtentMap::static_fragmentation`] (the
//!   paper's *static fragmentation*: seeks needed to sequentially read the
//!   entire LBA space) and [`ExtentMap::fragments_in`] (*dynamic
//!   fragmentation*: non-contiguous physical pieces of one read).
//!
//! # Example
//!
//! ```
//! use smrseek_extent::ExtentMap;
//! use smrseek_trace::{Lba, Pba};
//!
//! let mut map = ExtentMap::new();
//! map.insert(Lba::new(0), 6, Pba::new(1000));   // LBA 0..6 -> PBA 1000..1006
//! map.insert(Lba::new(2), 1, Pba::new(2000));   // overwrite LBA 2
//! // The range is now three physical pieces: [1000..1002), [2000..2001), [1003..1006)
//! assert_eq!(map.fragments_in(Lba::new(0), 6), 3);
//! ```

#![warn(missing_docs)]
pub mod map;
pub mod segment;

pub use map::{ExtentMap, ExtentMapCheckpoint};
pub use segment::{Extent, Segment};
