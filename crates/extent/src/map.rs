//! The coalescing LBA→PBA interval map.

use crate::segment::{Extent, Segment};
use serde::{Deserialize, Serialize};
use smrseek_trace::{Lba, Pba};
use std::collections::BTreeMap;
use std::fmt;

/// A map from logical sector ranges to physical sector ranges with
/// split-on-overwrite and coalesce-on-insert semantics.
///
/// Invariants (checked by the property tests in `tests/`):
///
/// 1. stored extents never overlap logically,
/// 2. adjacent stored extents are never coalescible (maximal extents),
/// 3. a lookup over any range tiles the range exactly, in order, with no
///    gaps or overlaps between returned segments.
///
/// # Example
///
/// ```
/// use smrseek_extent::{ExtentMap, Segment};
/// use smrseek_trace::{Lba, Pba};
///
/// let mut map = ExtentMap::new();
/// map.insert(Lba::new(10), 10, Pba::new(500));
/// map.insert(Lba::new(15), 2, Pba::new(900)); // split the middle
/// let segs = map.lookup(Lba::new(10), 10);
/// assert_eq!(segs.len(), 3);
/// assert_eq!(segs[1].as_mapped().unwrap().pba, Pba::new(900));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExtentMap {
    /// start LBA sector -> (length in sectors, start PBA sector)
    extents: BTreeMap<u64, (u64, u64)>,
    mapped_sectors: u64,
}

impl ExtentMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        ExtentMap::default()
    }

    /// Number of stored extents.
    pub fn len(&self) -> usize {
        self.extents.len()
    }

    /// Returns `true` if nothing is mapped.
    pub fn is_empty(&self) -> bool {
        self.extents.is_empty()
    }

    /// Total mapped sectors.
    pub fn mapped_sectors(&self) -> u64 {
        self.mapped_sectors
    }

    /// Maps the logical range `[lba, lba + sectors)` to the physical range
    /// `[pba, pba + sectors)`, overwriting any previous mappings of those
    /// logical sectors (splitting partially-covered extents), then
    /// coalescing with neighbours that abut both logically and physically.
    ///
    /// Inserting zero sectors is a no-op.
    pub fn insert(&mut self, lba: Lba, sectors: u64, pba: Pba) {
        if sectors == 0 {
            return;
        }
        let start = lba.sector();
        let end = start + sectors;
        self.unmap_range(start, end);
        self.extents.insert(start, (sectors, pba.sector()));
        self.mapped_sectors += sectors;
        self.coalesce_around(start);
    }

    /// Removes any mapping of the logical range `[lba, lba + sectors)`.
    pub fn remove(&mut self, lba: Lba, sectors: u64) {
        if sectors == 0 {
            return;
        }
        let start = lba.sector();
        self.unmap_range(start, start + sectors);
    }

    /// Translates one logical sector, or `None` if unmapped.
    ///
    /// # Example
    ///
    /// ```
    /// use smrseek_extent::ExtentMap;
    /// use smrseek_trace::{Lba, Pba};
    ///
    /// let mut map = ExtentMap::new();
    /// map.insert(Lba::new(4), 4, Pba::new(100));
    /// assert_eq!(map.translate(Lba::new(5)), Some(Pba::new(101)));
    /// assert_eq!(map.translate(Lba::new(3)), None);
    /// ```
    pub fn translate(&self, lba: Lba) -> Option<Pba> {
        let sector = lba.sector();
        let (&start, &(len, pba)) = self.extents.range(..=sector).next_back()?;
        if sector < start + len {
            Some(Pba::new(pba + (sector - start)))
        } else {
            None
        }
    }

    /// Tiles the logical range `[lba, lba + sectors)` with mapped and hole
    /// segments, in logical order.
    pub fn lookup(&self, lba: Lba, sectors: u64) -> Vec<Segment> {
        let mut out = Vec::new();
        self.lookup_each(lba, sectors, |seg| out.push(seg));
        out
    }

    /// Non-allocating form of [`lookup`](Self::lookup): visits the same
    /// segments in the same order, calling `f` for each instead of
    /// collecting a `Vec`. This is the hot read path — every translated
    /// read walks the map — so callers that only fold over the tiles
    /// (fragment counting, run merging) should use this.
    pub fn lookup_each(&self, lba: Lba, sectors: u64, mut f: impl FnMut(Segment)) {
        if sectors == 0 {
            return;
        }
        let start = lba.sector();
        let end = start + sectors;
        let mut cursor = start;

        // An extent beginning before `start` may cover the front.
        if let Some((&es, &(elen, epba))) = self.extents.range(..start).next_back() {
            if es + elen > start {
                let avail = es + elen - start;
                let take = avail.min(sectors);
                f(Segment::Mapped(Extent::new(
                    Lba::new(start),
                    take,
                    Pba::new(epba + (start - es)),
                )));
                cursor = start + take;
            }
        }
        for (&es, &(elen, epba)) in self.extents.range(start..end) {
            if es > cursor {
                f(Segment::Hole {
                    lba: Lba::new(cursor),
                    sectors: es - cursor,
                });
                cursor = es;
            }
            let take = (es + elen).min(end) - cursor;
            debug_assert_eq!(cursor, es);
            f(Segment::Mapped(Extent::new(
                Lba::new(cursor),
                take,
                Pba::new(epba),
            )));
            cursor += take;
        }
        if cursor < end {
            f(Segment::Hole {
                lba: Lba::new(cursor),
                sectors: end - cursor,
            });
        }
    }

    /// **Dynamic fragmentation** of one read (§IV-A): the number of
    /// physically non-contiguous pieces required to fetch the logical range.
    ///
    /// Holes count using identity placement (PBA = LBA sector), matching the
    /// disk model's treatment of never-written data; two consecutive pieces
    /// merge when the second starts at the physical sector immediately
    /// following the first.
    pub fn fragments_in(&self, lba: Lba, sectors: u64) -> usize {
        let mut count = 0usize;
        let mut prev_phys_end: Option<u64> = None;
        self.lookup_each(lba, sectors, |seg| {
            let (phys_start, len) = match seg {
                Segment::Mapped(e) => (e.pba.sector(), e.sectors),
                Segment::Hole { lba, sectors } => (lba.sector(), sectors),
            };
            if prev_phys_end != Some(phys_start) {
                count += 1;
            }
            prev_phys_end = Some(phys_start + len);
        });
        count
    }

    /// **Static fragmentation** (§IV-A): the number of physically
    /// discontiguous runs across the entire mapped LBA space — equivalently,
    /// the seeks incurred by one sequential read of the whole LBA space
    /// (holes again reading from their identity location).
    pub fn static_fragmentation(&self) -> usize {
        let Some((&first, _)) = self.extents.iter().next() else {
            return 0;
        };
        let (&last_start, &(last_len, _)) =
            self.extents.iter().next_back().expect("map is non-empty");
        self.fragments_in(Lba::new(first), last_start + last_len - first)
    }

    /// Iterates the stored extents in logical order.
    pub fn iter(&self) -> impl Iterator<Item = Extent> + '_ {
        self.extents
            .iter()
            .map(|(&s, &(len, pba))| Extent::new(Lba::new(s), len, Pba::new(pba)))
    }

    /// Removes mappings in `[start, end)` (raw sector numbers), splitting
    /// boundary extents.
    fn unmap_range(&mut self, start: u64, end: u64) {
        // Predecessor overlapping the front?
        if let Some((&es, &(elen, epba))) = self.extents.range(..start).next_back() {
            let ee = es + elen;
            if ee > start {
                // Trim to [es, start).
                self.extents.insert(es, (start - es, epba));
                self.mapped_sectors -= elen - (start - es);
                if ee > end {
                    // The old extent also extends past `end`: keep the tail.
                    let tail_len = ee - end;
                    self.extents.insert(end, (tail_len, epba + (end - es)));
                    self.mapped_sectors += tail_len;
                }
            }
        }
        // Extents starting inside [start, end).
        let starts: Vec<u64> = self.extents.range(start..end).map(|(&s, _)| s).collect();
        for es in starts {
            let (elen, epba) = self.extents.remove(&es).expect("key just observed");
            self.mapped_sectors -= elen;
            let ee = es + elen;
            if ee > end {
                let tail_len = ee - end;
                self.extents.insert(end, (tail_len, epba + (end - es)));
                self.mapped_sectors += tail_len;
            }
        }
    }

    /// Coalesces the extent starting at `start` with its logical
    /// predecessor and successor when they abut physically too.
    fn coalesce_around(&mut self, start: u64) {
        let (mut s, (mut len, mut pba)) = {
            let &(len, pba) = self.extents.get(&start).expect("just inserted");
            (start, (len, pba))
        };
        if let Some((&ps, &(plen, ppba))) = self.extents.range(..s).next_back() {
            if ps + plen == s && ppba + plen == pba {
                self.extents.remove(&s);
                s = ps;
                pba = ppba;
                len += plen;
                self.extents.insert(s, (len, pba));
            }
        }
        let next = self.extents.range(s + 1..).next().map(|(&ns, &v)| (ns, v));
        if let Some((ns, (nlen, npba))) = next {
            if s + len == ns && pba + len == npba {
                self.extents.remove(&ns);
                len += nlen;
                self.extents.insert(s, (len, pba));
            }
        }
    }
}

// FNV-1a 128-bit, the same hash `smrseek_trace::digest` uses for trace
// identity (constants duplicated so this crate stays dependency-free).
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

impl ExtentMap {
    /// FNV-1a 128-bit digest over the stored `(start, len, pba)` triples in
    /// logical order. Two maps digest equal iff they hold the same extents
    /// (the map's invariants make the maximal-extent representation
    /// canonical), so a digest comparison stands in for full map equality
    /// without cloning either map.
    pub fn digest(&self) -> u128 {
        let mut state = FNV_OFFSET;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                state ^= u128::from(b);
                state = state.wrapping_mul(FNV_PRIME);
            }
        };
        for (&start, &(len, pba)) in &self.extents {
            mix(start);
            mix(len);
            mix(pba);
        }
        state
    }
}

/// A compact fingerprint of an [`ExtentMap`]'s state at one replay
/// boundary: the content digest plus the cheap structural counters.
///
/// Sharded replay captures one of these per shard boundary during its
/// map-state prepass and compares it against the map each shard actually
/// reaches, detecting any divergence between the prepass and the full
/// replay without storing (or diffing) whole map clones.
///
/// # Example
///
/// ```
/// use smrseek_extent::{ExtentMap, ExtentMapCheckpoint};
/// use smrseek_trace::{Lba, Pba};
///
/// let mut map = ExtentMap::new();
/// map.insert(Lba::new(0), 4, Pba::new(1000));
/// let ck = ExtentMapCheckpoint::capture(&map);
/// assert!(ck.matches(&map));
/// map.insert(Lba::new(2), 1, Pba::new(2000));
/// assert!(!ck.matches(&map));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtentMapCheckpoint {
    /// Content digest ([`ExtentMap::digest`]).
    pub digest: u128,
    /// Stored extent count at capture time.
    pub segments: usize,
    /// Total mapped sectors at capture time.
    pub mapped_sectors: u64,
}

impl ExtentMapCheckpoint {
    /// Fingerprints `map` as it stands.
    pub fn capture(map: &ExtentMap) -> Self {
        ExtentMapCheckpoint {
            digest: map.digest(),
            segments: map.len(),
            mapped_sectors: map.mapped_sectors(),
        }
    }

    /// Returns `true` when `map`'s current state matches the captured
    /// fingerprint.
    pub fn matches(&self, map: &ExtentMap) -> bool {
        self.segments == map.len()
            && self.mapped_sectors == map.mapped_sectors()
            && self.digest == map.digest()
    }
}

impl fmt::Display for ExtentMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ExtentMap({} extents, {} sectors)",
            self.len(),
            self.mapped_sectors
        )
    }
}

impl FromIterator<Extent> for ExtentMap {
    fn from_iter<I: IntoIterator<Item = Extent>>(iter: I) -> Self {
        let mut map = ExtentMap::new();
        for e in iter {
            map.insert(e.lba, e.sectors, e.pba);
        }
        map
    }
}

impl Extend<Extent> for ExtentMap {
    fn extend<I: IntoIterator<Item = Extent>>(&mut self, iter: I) {
        for e in iter {
            self.insert(e.lba, e.sectors, e.pba);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lba(s: u64) -> Lba {
        Lba::new(s)
    }
    fn pba(s: u64) -> Pba {
        Pba::new(s)
    }

    #[test]
    fn empty_map() {
        let map = ExtentMap::new();
        assert!(map.is_empty());
        assert_eq!(map.translate(lba(0)), None);
        assert_eq!(map.static_fragmentation(), 0);
        assert!(map.lookup(lba(0), 0).is_empty());
        let segs = map.lookup(lba(5), 3);
        assert_eq!(segs.len(), 1);
        assert!(segs[0].is_hole());
    }

    #[test]
    fn insert_and_translate() {
        let mut map = ExtentMap::new();
        map.insert(lba(10), 5, pba(100));
        assert_eq!(map.translate(lba(10)), Some(pba(100)));
        assert_eq!(map.translate(lba(14)), Some(pba(104)));
        assert_eq!(map.translate(lba(15)), None);
        assert_eq!(map.translate(lba(9)), None);
        assert_eq!(map.mapped_sectors(), 5);
    }

    #[test]
    fn overwrite_middle_splits() {
        let mut map = ExtentMap::new();
        map.insert(lba(0), 10, pba(100));
        map.insert(lba(4), 2, pba(500));
        assert_eq!(map.len(), 3);
        assert_eq!(map.translate(lba(3)), Some(pba(103)));
        assert_eq!(map.translate(lba(4)), Some(pba(500)));
        assert_eq!(map.translate(lba(5)), Some(pba(501)));
        assert_eq!(map.translate(lba(6)), Some(pba(106)));
        assert_eq!(map.mapped_sectors(), 10);
    }

    #[test]
    fn overwrite_head_and_tail() {
        let mut map = ExtentMap::new();
        map.insert(lba(10), 10, pba(100));
        map.insert(lba(5), 8, pba(300)); // covers head 10..13
        assert_eq!(map.translate(lba(12)), Some(pba(307)));
        assert_eq!(map.translate(lba(13)), Some(pba(103)));
        map.insert(lba(18), 5, pba(400)); // covers tail 18..20
        assert_eq!(map.translate(lba(17)), Some(pba(107)));
        assert_eq!(map.translate(lba(19)), Some(pba(401)));
        assert_eq!(map.mapped_sectors(), 10 + 8 + 5 - 3 - 2); // = 18
    }

    #[test]
    fn overwrite_exact_and_superset() {
        let mut map = ExtentMap::new();
        map.insert(lba(10), 4, pba(100));
        map.insert(lba(10), 4, pba(200)); // exact replacement
        assert_eq!(map.len(), 1);
        assert_eq!(map.translate(lba(11)), Some(pba(201)));
        map.insert(lba(8), 8, pba(300)); // superset swallows it
        assert_eq!(map.len(), 1);
        assert_eq!(map.translate(lba(11)), Some(pba(303)));
        assert_eq!(map.mapped_sectors(), 8);
    }

    #[test]
    fn overwrite_spanning_multiple_extents() {
        let mut map = ExtentMap::new();
        map.insert(lba(0), 4, pba(100));
        map.insert(lba(8), 4, pba(200));
        map.insert(lba(16), 4, pba(300));
        map.insert(lba(2), 16, pba(1000)); // spans all three
        assert_eq!(map.translate(lba(1)), Some(pba(101)));
        assert_eq!(map.translate(lba(2)), Some(pba(1000)));
        assert_eq!(map.translate(lba(17)), Some(pba(1015)));
        assert_eq!(map.translate(lba(18)), Some(pba(302)));
        assert_eq!(map.mapped_sectors(), 2 + 16 + 2);
    }

    #[test]
    fn coalesce_log_append() {
        let mut map = ExtentMap::new();
        // Sequential log writes of logically-consecutive data coalesce.
        map.insert(lba(0), 4, pba(1000));
        map.insert(lba(4), 4, pba(1004));
        map.insert(lba(8), 4, pba(1008));
        assert_eq!(map.len(), 1);
        assert_eq!(map.translate(lba(11)), Some(pba(1011)));
    }

    #[test]
    fn no_coalesce_when_physically_apart() {
        let mut map = ExtentMap::new();
        map.insert(lba(0), 4, pba(1000));
        map.insert(lba(4), 4, pba(2000));
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn coalesce_bridges_predecessor_and_successor() {
        let mut map = ExtentMap::new();
        map.insert(lba(0), 4, pba(1000));
        map.insert(lba(8), 4, pba(1008));
        map.insert(lba(4), 4, pba(1004)); // bridges both sides
        assert_eq!(map.len(), 1);
        assert_eq!(map.translate(lba(9)), Some(pba(1009)));
    }

    #[test]
    fn lookup_tiles_range() {
        let mut map = ExtentMap::new();
        map.insert(lba(2), 3, pba(100));
        map.insert(lba(8), 2, pba(200));
        let segs = map.lookup(lba(0), 12);
        // hole [0,2), mapped [2,5), hole [5,8), mapped [8,10), hole [10,12)
        assert_eq!(segs.len(), 5);
        let mut cursor = lba(0);
        for seg in &segs {
            assert_eq!(seg.lba(), cursor);
            cursor = seg.lba_end();
        }
        assert_eq!(cursor, lba(12));
        assert!(segs[0].is_hole());
        assert_eq!(segs[1].as_mapped().unwrap().pba, pba(100));
        assert_eq!(segs[3].as_mapped().unwrap().sectors, 2);
    }

    #[test]
    fn lookup_each_matches_lookup() {
        let mut map = ExtentMap::new();
        map.insert(lba(2), 3, pba(100));
        map.insert(lba(8), 2, pba(200));
        map.insert(lba(20), 10, pba(500));
        for (start, len) in [(0, 12), (0, 0), (5, 1), (2, 3), (19, 12), (30, 4)] {
            let mut visited = Vec::new();
            map.lookup_each(lba(start), len, |seg| visited.push(seg));
            assert_eq!(visited, map.lookup(lba(start), len), "range {start}+{len}");
        }
    }

    #[test]
    fn lookup_partial_front_extent() {
        let mut map = ExtentMap::new();
        map.insert(lba(0), 10, pba(100));
        let segs = map.lookup(lba(5), 3);
        assert_eq!(segs.len(), 1);
        let e = segs[0].as_mapped().unwrap();
        assert_eq!(e.lba, lba(5));
        assert_eq!(e.sectors, 3);
        assert_eq!(e.pba, pba(105));
    }

    #[test]
    fn dynamic_fragmentation_counts_identity_holes() {
        let mut map = ExtentMap::new();
        // Hole-only range: one identity fragment.
        assert_eq!(map.fragments_in(lba(0), 10), 1);
        map.insert(lba(4), 2, pba(1000));
        // [0,4) identity @0, [4,6) @1000, [6,10) identity @6 -> 3 pieces
        assert_eq!(map.fragments_in(lba(0), 10), 3);
        // Mapped piece physically continuous with identity hole merges.
        let mut map2 = ExtentMap::new();
        map2.insert(lba(4), 2, pba(4)); // identity-placed mapping
        assert_eq!(map2.fragments_in(lba(0), 10), 1);
    }

    #[test]
    fn fragmentation_of_fragmented_log() {
        let mut map = ExtentMap::new();
        map.insert(lba(0), 6, pba(1000)); // contiguous original
        map.insert(lba(2), 1, pba(2000)); // update
        map.insert(lba(4), 1, pba(2001)); // update
                                          // pieces: [0,2)@1000, [2,3)@2000, [3,4)@1003, [4,5)@2001, [5,6)@1005
        assert_eq!(map.fragments_in(lba(0), 6), 5);
        assert_eq!(map.fragments_in(lba(0), 2), 1);
        assert_eq!(map.fragments_in(lba(2), 1), 1);
    }

    #[test]
    fn adjacent_updates_merge_physically() {
        let mut map = ExtentMap::new();
        map.insert(lba(0), 6, pba(1000));
        map.insert(lba(2), 1, pba(2000));
        map.insert(lba(3), 1, pba(2001)); // physically continues previous update
                                          // pieces: [0,2)@1000, [2,4)@2000, [4,6)@1004
        assert_eq!(map.fragments_in(lba(0), 6), 3);
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn static_fragmentation_spans_whole_map() {
        let mut map = ExtentMap::new();
        map.insert(lba(0), 4, pba(1000));
        map.insert(lba(100), 4, pba(1004));
        // [0,4)@1000, [4,100) identity hole @4, [100,104)@1004 -> 3 runs
        assert_eq!(map.static_fragmentation(), 3);
    }

    #[test]
    fn remove_unmaps() {
        let mut map = ExtentMap::new();
        map.insert(lba(0), 10, pba(100));
        map.remove(lba(3), 4);
        assert_eq!(map.translate(lba(2)), Some(pba(102)));
        assert_eq!(map.translate(lba(3)), None);
        assert_eq!(map.translate(lba(6)), None);
        assert_eq!(map.translate(lba(7)), Some(pba(107)));
        assert_eq!(map.mapped_sectors(), 6);
        map.remove(lba(0), 100);
        assert!(map.is_empty());
        assert_eq!(map.mapped_sectors(), 0);
    }

    #[test]
    fn zero_length_ops_are_noops() {
        let mut map = ExtentMap::new();
        map.insert(lba(5), 0, pba(0));
        map.remove(lba(5), 0);
        assert!(map.is_empty());
        assert_eq!(map.fragments_in(lba(0), 0), 0);
    }

    #[test]
    fn from_iterator_and_extend() {
        let map: ExtentMap = vec![
            Extent::new(lba(0), 4, pba(100)),
            Extent::new(lba(4), 4, pba(104)),
        ]
        .into_iter()
        .collect();
        assert_eq!(map.len(), 1); // coalesced
        let mut map2 = ExtentMap::new();
        map2.extend(map.iter());
        assert_eq!(map2, map);
    }

    #[test]
    fn digest_tracks_content_not_history() {
        let mut a = ExtentMap::new();
        a.insert(lba(0), 4, pba(1000));
        a.insert(lba(4), 4, pba(1004)); // coalesces with the first
        let mut b = ExtentMap::new();
        b.insert(lba(0), 8, pba(1000)); // same content, one insert
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        b.insert(lba(2), 1, pba(9000));
        assert_ne!(a.digest(), b.digest());
        assert_ne!(ExtentMap::new().digest(), a.digest());
    }

    #[test]
    fn checkpoint_matches_only_the_captured_state() {
        let mut map = ExtentMap::new();
        map.insert(lba(0), 6, pba(1000));
        let ck = ExtentMapCheckpoint::capture(&map);
        assert!(ck.matches(&map));
        assert!(!ck.matches(&ExtentMap::new()));
        map.insert(lba(2), 1, pba(2000));
        assert!(!ck.matches(&map));
        // Same segment count and sector total, different placement.
        let mut other = ExtentMap::new();
        other.insert(lba(0), 6, pba(5000));
        assert_eq!(other.len(), 1);
        assert_eq!(other.mapped_sectors(), 6);
        assert!(!ck.matches(&other));
    }

    #[test]
    fn display_mentions_size() {
        let mut map = ExtentMap::new();
        map.insert(lba(0), 4, pba(9));
        assert_eq!(map.to_string(), "ExtentMap(1 extents, 4 sectors)");
    }
}
