//! Leveled, structured logging to stderr.
//!
//! The process-wide logger replaces the scattered `eprintln!` diagnostics
//! of earlier revisions. It is quiet by default (threshold
//! [`Level::Warn`]); `SMRSEEK_LOG=debug` (or the CLI's `-v`) restores the
//! historical chatter. Output is either plain text (the message exactly as
//! formatted, matching the old `eprintln!` style) or JSON lines
//! (`--log-json`): one `{"ts_us":…,"level":…,"target":…,"msg":…}` object
//! per line, machine-parseable for log shipping.
//!
//! The level check is a single relaxed atomic load, so disabled log sites
//! cost nothing measurable; formatting only happens for enabled levels.

use std::fmt;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed.
    Error = 0,
    /// Degraded but proceeding (e.g. a cache falling back to a re-parse).
    Warn = 1,
    /// Routine progress: timing summaries, cache population, access logs.
    Info = 2,
    /// Everything, for diagnosing the tool itself.
    Debug = 3,
}

impl Level {
    /// The lower-case label used in JSON output and `SMRSEEK_LOG` values.
    pub fn label(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses a `SMRSEEK_LOG` value (case-insensitive). `"trace"` is
    /// accepted as an alias for [`Level::Debug`].
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// Current threshold as a `u8` (a [`Level`] discriminant). Warn by
/// default: errors and degradations always show, chatter is opt-in.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);
/// Whether output is JSON lines instead of plain text.
static JSON: AtomicBool = AtomicBool::new(false);

/// Sets the logging threshold: messages at `level` or more severe are
/// emitted.
pub fn set_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current logging threshold.
pub fn level() -> Level {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Switches between plain-text (false, default) and JSON-lines output.
pub fn set_json(json: bool) {
    JSON.store(json, Ordering::Relaxed);
}

/// Whether JSON-lines output is active.
pub fn json() -> bool {
    JSON.load(Ordering::Relaxed)
}

/// Applies the `SMRSEEK_LOG` environment variable (a [`Level`] name) to
/// the threshold. Unset or unparseable values leave the default.
pub fn init_from_env() {
    if let Some(level) = std::env::var("SMRSEEK_LOG")
        .ok()
        .as_deref()
        .and_then(Level::parse)
    {
        set_level(level);
    }
}

/// Whether a message at `level` would currently be emitted.
#[inline]
pub fn enabled(level: Level) -> bool {
    (level as u8) <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Emits one log record to stderr (the macros call this; prefer them).
/// In text mode the formatted message is printed verbatim — exactly the
/// historical `eprintln!` presentation. In JSON mode the record is one
/// object per line with the message as a string field.
pub fn log(level: Level, target: &str, args: fmt::Arguments<'_>) {
    if !enabled(level) {
        return;
    }
    let mut line = String::with_capacity(96);
    if json() {
        let ts_us = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_micros() as u64);
        line.push_str(&format!(
            "{{\"ts_us\":{ts_us},\"level\":\"{}\",\"target\":\"",
            level.label()
        ));
        json_escape_into(&mut line, target);
        line.push_str("\",\"msg\":\"");
        json_escape_into(&mut line, &args.to_string());
        line.push_str("\"}\n");
    } else {
        line.push_str(&args.to_string());
        line.push('\n');
    }
    // One write_all per record keeps concurrent lines whole.
    let _ = std::io::stderr().write_all(line.as_bytes());
}

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// control characters).
pub(crate) fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Logs at [`Level::Error`] with `format!` syntax.
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::log::log($crate::Level::Error, module_path!(), format_args!($($arg)*))
    };
}

/// Logs at [`Level::Warn`] with `format!` syntax.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::log::log($crate::Level::Warn, module_path!(), format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`] with `format!` syntax.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log::log($crate::Level::Info, module_path!(), format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`] with `format!` syntax.
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::log::log($crate::Level::Debug, module_path!(), format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("trace"), Some(Level::Debug));
        assert_eq!(Level::parse("nope"), None);
        assert!(Level::Error < Level::Debug);
    }

    #[test]
    fn threshold_gates_levels() {
        // Tests share the process-global logger; restore when done.
        let before = level();
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level(Level::Debug);
        assert!(enabled(Level::Info));
        assert!(enabled(Level::Debug));
        set_level(before);
    }

    #[test]
    fn json_escaping_is_lossless_for_specials() {
        let mut out = String::new();
        json_escape_into(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001");
        let wrapped = format!("\"{out}\"");
        let parsed: serde_json::Value =
            serde_json::from_str(&wrapped).expect("escaped string parses");
        assert_eq!(parsed.as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }
}
