//! RAII spans with thread-local buffering and a global ring collector.
//!
//! A [`Span`] measures one named interval. When recording is off (the
//! default) opening a span is a single relaxed atomic load — no clock
//! read, no allocation — so call sites stay compiled in everywhere,
//! including release binaries. When [`start_recording`] is active, each
//! closed span becomes a [`SpanEvent`] buffered in a thread-local vector
//! and flushed in batches into a global bounded ring; the ring overwrites
//! its oldest entries under pressure and counts what it dropped, so a
//! runaway producer degrades the profile instead of memory.
//!
//! Nesting is tracked per thread with a depth counter; exporters infer
//! parent/child from `(tid, depth)` plus time containment.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One completed span, as stored by the collector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (e.g. `cell:LS+defrag`, `engine:step`).
    pub name: String,
    /// Start time in nanoseconds since the process-wide recording epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Small dense per-thread id assigned on each thread's first span.
    pub tid: u64,
    /// Nesting depth on that thread when the span opened (0 = top level).
    pub depth: u32,
}

/// Global on/off switch; checked first so disabled spans cost one load.
static RECORDING: AtomicBool = AtomicBool::new(false);
/// Dense thread-id allocator for recorded events.
static NEXT_TID: AtomicU64 = AtomicU64::new(0);
/// Bumped by every [`start_recording`]; thread-local batches stamped with
/// an older generation are discarded instead of flushed, so events from a
/// previous recording session never leak into the current ring.
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// The instant all `start_ns` values are measured from. Set once, on the
/// first call that needs it, and never reset: restarting recording keeps
/// one monotonic timeline for the process.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Bounded collector: oldest events are overwritten under pressure.
struct Ring {
    buf: Vec<SpanEvent>,
    cap: usize,
    /// Index of the logical start when the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl Ring {
    fn new(cap: usize) -> Self {
        Ring {
            buf: Vec::with_capacity(cap.min(4096)),
            cap: cap.max(1),
            head: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, ev: SpanEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    fn drain_ordered(&mut self) -> Vec<SpanEvent> {
        let head = self.head;
        let mut out = self.buf.split_off(0);
        out.rotate_left(head);
        self.head = 0;
        out
    }
}

fn ring() -> &'static Mutex<Ring> {
    static RING: OnceLock<Mutex<Ring>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(Ring::new(1 << 16)))
}

/// Per-thread state: assigned tid, current nesting depth, and a batch
/// buffer flushed into the global ring every `FLUSH_AT` events (and on
/// thread exit, via `Drop` — scoped runner threads exit per matrix).
struct ThreadBuf {
    tid: u64,
    depth: u32,
    generation: u64,
    pending: Vec<SpanEvent>,
}

const FLUSH_AT: usize = 128;

impl ThreadBuf {
    /// Clears the batch if it predates the current recording session.
    fn sync_generation(&mut self) {
        let current = GENERATION.load(Ordering::Relaxed);
        if self.generation != current {
            self.pending.clear();
            self.generation = current;
        }
    }

    fn flush(&mut self) {
        self.sync_generation();
        if self.pending.is_empty() {
            return;
        }
        if let Ok(mut ring) = ring().lock() {
            for ev in self.pending.drain(..) {
                ring.push(ev);
            }
        } else {
            self.pending.clear();
        }
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static THREAD_BUF: RefCell<ThreadBuf> = RefCell::new(ThreadBuf {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        depth: 0,
        generation: 0,
        pending: Vec::new(),
    });
}

/// Starts collecting span events into a fresh ring holding at most `cap`
/// events (oldest overwritten beyond that). Discards anything previously
/// collected.
pub fn start_recording(cap: usize) {
    if let Ok(mut r) = ring().lock() {
        *r = Ring::new(cap);
    }
    GENERATION.fetch_add(1, Ordering::Relaxed);
    RECORDING.store(true, Ordering::Relaxed);
}

/// Stops collecting. Spans already open finish without being recorded.
pub fn stop_recording() {
    RECORDING.store(false, Ordering::Relaxed);
}

/// Whether span recording is active.
pub fn recording() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Takes every event collected so far (oldest first), plus the count of
/// events the ring overwrote under pressure. Flushes the calling thread's
/// batch buffer first; other live threads may still hold up to
/// `FLUSH_AT - 1` unflushed events each, so stop producers before taking.
pub fn take_events() -> (Vec<SpanEvent>, u64) {
    THREAD_BUF.with(|b| b.borrow_mut().flush());
    match ring().lock() {
        Ok(mut r) => {
            let events = r.drain_ordered();
            let dropped = r.dropped;
            r.dropped = 0;
            (events, dropped)
        }
        Err(_) => (Vec::new(), 0),
    }
}

/// Live half of a recorded span; absent when recording was off at open.
struct Active {
    name: String,
    start: Instant,
    start_ns: u64,
}

/// RAII guard measuring one named interval; the event is emitted when the
/// guard drops. Create with [`span`] or [`span_with`].
pub struct Span(Option<Active>);

impl Span {
    fn open(name: String) -> Span {
        let start = Instant::now();
        let start_ns = start.duration_since(epoch()).as_nanos() as u64;
        THREAD_BUF.with(|b| b.borrow_mut().depth += 1);
        Span(Some(Active {
            name,
            start,
            start_ns,
        }))
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else { return };
        let dur_ns = active.start.elapsed().as_nanos() as u64;
        THREAD_BUF.with(|b| {
            let mut b = b.borrow_mut();
            b.depth = b.depth.saturating_sub(1);
            b.sync_generation();
            let ev = SpanEvent {
                name: active.name,
                start_ns: active.start_ns,
                dur_ns,
                tid: b.tid,
                depth: b.depth,
            };
            b.pending.push(ev);
            // Flushing whenever the thread's outermost span closes makes
            // the batch visible before a scoped thread signals completion
            // (TLS destructors run after `thread::scope` observes the
            // closure's return, so the `Drop` flush alone can race a
            // subsequent `take_events`).
            if b.depth == 0 || b.pending.len() >= FLUSH_AT || !recording() {
                b.flush();
            }
        });
    }
}

/// Opens a span named by a static string. One relaxed load when recording
/// is off.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !recording() {
        return Span(None);
    }
    Span::open(name.to_owned())
}

/// Opens a span whose name is built lazily — the closure only runs (and
/// allocates) when recording is on.
#[inline]
pub fn span_with(name: impl FnOnce() -> String) -> Span {
    if !recording() {
        return Span(None);
    }
    Span::open(name())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global, so every test that records runs
    // under this lock to avoid interleaving with its neighbours.
    fn collector_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = collector_lock();
        stop_recording();
        {
            let _s = span("ignored");
        }
        start_recording(16);
        stop_recording();
        let (events, dropped) = take_events();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn nested_spans_carry_depth_and_containment() {
        let _guard = collector_lock();
        start_recording(64);
        {
            let _outer = span_with(|| "outer".to_string());
            {
                let _inner = span("inner");
                std::hint::black_box(0u64);
            }
        }
        stop_recording();
        let (events, dropped) = take_events();
        assert_eq!(dropped, 0);
        let inner = events
            .iter()
            .find(|e| e.name == "inner")
            .expect("inner recorded");
        let outer = events
            .iter()
            .find(|e| e.name == "outer")
            .expect("outer recorded");
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.tid, outer.tid);
        // Inner closes first, so it precedes outer in the buffer.
        assert!(inner.start_ns >= outer.start_ns);
        assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let _guard = collector_lock();
        start_recording(4);
        for i in 0..10 {
            let _s = span_with(|| format!("s{i}"));
        }
        stop_recording();
        let (events, dropped) = take_events();
        assert_eq!(events.len(), 4);
        assert_eq!(dropped, 6);
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["s6", "s7", "s8", "s9"]);
    }

    #[test]
    fn worker_threads_flush_on_exit() {
        let _guard = collector_lock();
        start_recording(64);
        std::thread::scope(|scope| {
            for t in 0..2 {
                scope.spawn(move || {
                    let _s = span_with(|| format!("worker{t}"));
                });
            }
        });
        stop_recording();
        let (events, _) = take_events();
        let mut names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        assert_eq!(names, ["worker0", "worker1"]);
        assert_ne!(events[0].tid, events[1].tid);
    }

    #[test]
    fn restart_discards_previous_events() {
        let _guard = collector_lock();
        start_recording(16);
        {
            let _s = span("old");
        }
        start_recording(16);
        {
            let _s = span("new");
        }
        stop_recording();
        let (events, _) = take_events();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["new"]);
    }
}
