//! A unified metrics registry with a Prometheus text renderer.
//!
//! The daemon's `/metrics` endpoint grew an ad-hoc exposition: every
//! counter hand-rendered its own `# HELP`/`# TYPE` block. This module
//! centralizes the machinery — a [`Registry`] of metric *families*
//! (name + help + type + optional label key), each holding zero or more
//! *series* (label value + storage) — so call sites keep only the two
//! things that are theirs: the family metadata and the handle bumps.
//!
//! Hot-path cost matches the rest of the crate: a [`Counter`] or
//! [`Gauge`] update is one relaxed atomic RMW on an `Arc`'d cell, a
//! [`Histogram`] observation three (bin, count, sum) — no locks, no
//! allocation. The registry's mutex is touched only at registration and
//! render time.
//!
//! Three storage shapes cover the daemon:
//!
//! * plain atomic series behind [`Counter`]/[`Gauge`] handles, including
//!   gauges recomputed at scrape time (`set` then render);
//! * **callback** series ([`Registry::callback_counter`]) reading a
//!   value owned elsewhere — e.g. the net reactor's event-loop atomics —
//!   so families render zero before the source is wired in and live
//!   afterwards, without copying counters around;
//! * log₂ **histograms** ([`Histogram`]): bin *i* counts values in
//!   `[2^i, 2^(i+1))`, rendered as cumulative Prometheus buckets closing
//!   at `le = 2^(i+1)`, with zeros folded into every bucket and series
//!   that never observed anything omitted entirely.
//!
//! Values are `u64` throughout; families that are semantically seconds
//! store nanoseconds and pick a [`ValueFormat`] so the renderer divides
//! at the last moment (no float drift accumulates in the counters).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How a series' `u64` value renders in the exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueFormat {
    /// Plain integer (the default for counts).
    Int,
    /// Nanoseconds rendered as fractional seconds with 3 decimals
    /// (uptime-style gauges).
    NanosSeconds3,
    /// Nanoseconds rendered as fractional seconds with 9 decimals
    /// (accumulated engine time; full nanosecond precision survives).
    NanosSeconds9,
}

impl ValueFormat {
    fn render_into(self, out: &mut String, value: u64) {
        let _ = match self {
            ValueFormat::Int => write!(out, "{value}"),
            ValueFormat::NanosSeconds3 => write!(out, "{:.3}", value as f64 / 1e9),
            ValueFormat::NanosSeconds9 => write!(out, "{:.9}", value as f64 / 1e9),
        };
    }
}

/// A monotonically increasing counter handle. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: set to the current value (typically at scrape time).
/// Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the current value.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared state of one histogram series.
#[derive(Debug)]
struct HistogramState {
    /// Observations of exactly zero (below every power-of-two bin).
    zeros: AtomicU64,
    /// `bins[i]` counts observations in `[2^i, 2^(i+1))`.
    bins: [AtomicU64; 64],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramState {
    fn new() -> HistogramState {
        HistogramState {
            zeros: AtomicU64::new(0),
            bins: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A log₂ histogram handle. Cloning shares the series.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramState>);

impl Histogram {
    /// Records one observation: three relaxed atomic adds.
    pub fn observe(&self, value: u64) {
        match value {
            0 => self.0.zeros.fetch_add(1, Ordering::Relaxed),
            v => self.0.bins[63 - v.leading_zeros() as usize].fetch_add(1, Ordering::Relaxed),
        };
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

enum SeriesValue {
    Atomic(Arc<AtomicU64>),
    Callback(Box<dyn Fn() -> u64 + Send + Sync>),
    Histogram(Arc<HistogramState>),
}

struct Series {
    /// The label value, rendered with the family's label key; `None` for
    /// the single unlabeled series of a scalar family.
    label_value: Option<String>,
    value: SeriesValue,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FamilyKind {
    Counter,
    Gauge,
    Histogram,
}

impl FamilyKind {
    fn type_name(self) -> &'static str {
        match self {
            FamilyKind::Counter => "counter",
            FamilyKind::Gauge => "gauge",
            FamilyKind::Histogram => "histogram",
        }
    }
}

struct Family {
    name: &'static str,
    help: &'static str,
    kind: FamilyKind,
    format: ValueFormat,
    label: Option<&'static str>,
    series: Vec<Series>,
}

/// An ordered collection of metric families with a Prometheus text
/// renderer. Families render in registration order; declaring a family
/// twice (same name) appends series to the first declaration instead of
/// duplicating `# HELP`/`# TYPE` blocks.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn with_family<R>(
        &self,
        name: &'static str,
        help: &'static str,
        kind: FamilyKind,
        format: ValueFormat,
        label: Option<&'static str>,
        f: impl FnOnce(&mut Family) -> R,
    ) -> R {
        let mut families = self.families.lock().expect("registry lock poisoned");
        if let Some(family) = families.iter_mut().find(|fam| fam.name == name) {
            assert_eq!(
                family.kind, kind,
                "{name}: family re-declared with a different type"
            );
            return f(family);
        }
        families.push(Family {
            name,
            help,
            kind,
            format,
            label,
            series: Vec::new(),
        });
        f(families.last_mut().expect("family just pushed"))
    }

    /// Declares a labeled family without adding any series: `# HELP` and
    /// `# TYPE` render, samples do not (the "configured but unused"
    /// shape, e.g. per-peer counters on a standalone daemon).
    pub fn declare_counter(&self, name: &'static str, help: &'static str, label: &'static str) {
        self.with_family(
            name,
            help,
            FamilyKind::Counter,
            ValueFormat::Int,
            Some(label),
            |_| {},
        );
    }

    /// An unlabeled counter (one series).
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        self.counter_fmt(name, help, ValueFormat::Int)
    }

    /// An unlabeled counter with an explicit value format.
    pub fn counter_fmt(
        &self,
        name: &'static str,
        help: &'static str,
        format: ValueFormat,
    ) -> Counter {
        self.with_family(name, help, FamilyKind::Counter, format, None, |family| {
            let cell = Arc::new(AtomicU64::new(0));
            family.series.push(Series {
                label_value: None,
                value: SeriesValue::Atomic(Arc::clone(&cell)),
            });
            Counter(cell)
        })
    }

    /// One series of a labeled counter family; the family is declared on
    /// first use and later calls append series in call order.
    pub fn labeled_counter(
        &self,
        name: &'static str,
        help: &'static str,
        label: &'static str,
        value: &str,
    ) -> Counter {
        self.labeled_counter_fmt(name, help, label, value, ValueFormat::Int)
    }

    /// One series of a labeled counter family with an explicit format.
    pub fn labeled_counter_fmt(
        &self,
        name: &'static str,
        help: &'static str,
        label: &'static str,
        value: &str,
        format: ValueFormat,
    ) -> Counter {
        self.with_family(
            name,
            help,
            FamilyKind::Counter,
            format,
            Some(label),
            |family| {
                let cell = Arc::new(AtomicU64::new(0));
                family.series.push(Series {
                    label_value: Some(value.to_owned()),
                    value: SeriesValue::Atomic(Arc::clone(&cell)),
                });
                Counter(cell)
            },
        )
    }

    /// An unlabeled gauge (one series).
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        self.gauge_fmt(name, help, ValueFormat::Int)
    }

    /// An unlabeled gauge with an explicit value format.
    pub fn gauge_fmt(&self, name: &'static str, help: &'static str, format: ValueFormat) -> Gauge {
        self.with_family(name, help, FamilyKind::Gauge, format, None, |family| {
            let cell = Arc::new(AtomicU64::new(0));
            family.series.push(Series {
                label_value: None,
                value: SeriesValue::Atomic(Arc::clone(&cell)),
            });
            Gauge(cell)
        })
    }

    /// One series of a labeled gauge family.
    pub fn labeled_gauge(
        &self,
        name: &'static str,
        help: &'static str,
        label: &'static str,
        value: &str,
    ) -> Gauge {
        self.with_family(
            name,
            help,
            FamilyKind::Gauge,
            ValueFormat::Int,
            Some(label),
            |family| {
                let cell = Arc::new(AtomicU64::new(0));
                family.series.push(Series {
                    label_value: Some(value.to_owned()),
                    value: SeriesValue::Atomic(Arc::clone(&cell)),
                });
                Gauge(cell)
            },
        )
    }

    /// An unlabeled counter whose value is read from `read` at render
    /// time — for counters owned by another subsystem.
    pub fn callback_counter(
        &self,
        name: &'static str,
        help: &'static str,
        read: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.with_family(
            name,
            help,
            FamilyKind::Counter,
            ValueFormat::Int,
            None,
            |family| {
                family.series.push(Series {
                    label_value: None,
                    value: SeriesValue::Callback(Box::new(read)),
                });
            },
        );
    }

    /// An unlabeled gauge whose value is read from `read` at render time.
    pub fn callback_gauge(
        &self,
        name: &'static str,
        help: &'static str,
        read: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.with_family(
            name,
            help,
            FamilyKind::Gauge,
            ValueFormat::Int,
            None,
            |family| {
                family.series.push(Series {
                    label_value: None,
                    value: SeriesValue::Callback(Box::new(read)),
                });
            },
        );
    }

    /// One series of a labeled log₂-histogram family. Series that never
    /// observe a value render no samples (the family's `# HELP`/`# TYPE`
    /// still do).
    pub fn labeled_histogram(
        &self,
        name: &'static str,
        help: &'static str,
        label: &'static str,
        value: &str,
    ) -> Histogram {
        self.with_family(
            name,
            help,
            FamilyKind::Histogram,
            ValueFormat::Int,
            Some(label),
            |family| {
                let state = Arc::new(HistogramState::new());
                family.series.push(Series {
                    label_value: Some(value.to_owned()),
                    value: SeriesValue::Histogram(Arc::clone(&state)),
                });
                Histogram(state)
            },
        )
    }

    /// Renders the full Prometheus text exposition, families in
    /// registration order.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);
        self.render_into(&mut out);
        out
    }

    /// Renders into an existing buffer (the daemon prepends nothing, but
    /// a caller embedding the registry in a larger exposition can).
    pub fn render_into(&self, out: &mut String) {
        let families = self.families.lock().expect("registry lock poisoned");
        for family in families.iter() {
            let _ = writeln!(out, "# HELP {} {}", family.name, family.help);
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.type_name());
            for series in &family.series {
                match &series.value {
                    SeriesValue::Atomic(cell) => {
                        let value = cell.load(Ordering::Relaxed);
                        Self::scalar_line(out, family, series, value);
                    }
                    SeriesValue::Callback(read) => {
                        Self::scalar_line(out, family, series, read());
                    }
                    SeriesValue::Histogram(state) => {
                        Self::histogram_lines(out, family, series, state);
                    }
                }
            }
        }
    }

    fn label_suffix(family: &Family, series: &Series) -> String {
        match (&family.label, &series.label_value) {
            (Some(key), Some(value)) => {
                let mut escaped = String::with_capacity(value.len());
                for c in value.chars() {
                    match c {
                        '\\' => escaped.push_str("\\\\"),
                        '"' => escaped.push_str("\\\""),
                        '\n' => escaped.push_str("\\n"),
                        c => escaped.push(c),
                    }
                }
                format!("{{{key}=\"{escaped}\"}}")
            }
            _ => String::new(),
        }
    }

    fn scalar_line(out: &mut String, family: &Family, series: &Series, value: u64) {
        out.push_str(family.name);
        out.push_str(&Self::label_suffix(family, series));
        out.push(' ');
        family.format.render_into(out, value);
        out.push('\n');
    }

    fn histogram_lines(out: &mut String, family: &Family, series: &Series, state: &HistogramState) {
        let count = state.count.load(Ordering::Relaxed);
        if count == 0 {
            return;
        }
        // `{label="v"}` → `{label="v",le="..."}`; unlabeled → `{le="..."}`.
        let labels = Self::label_suffix(family, series);
        let inner = labels.strip_prefix('{').and_then(|s| s.strip_suffix('}'));
        let with_le = |le: &str| match inner {
            Some(inner) => format!("{{{inner},le=\"{le}\"}}"),
            None => format!("{{le=\"{le}\"}}"),
        };
        // Bin i covers [2^i, 2^(i+1)), closing at le = 2^(i+1); zeros
        // fall below every bin so they seed the cumulative count.
        let mut cumulative = state.zeros.load(Ordering::Relaxed);
        for (i, bin) in state.bins.iter().enumerate() {
            let bin = bin.load(Ordering::Relaxed);
            if bin == 0 {
                continue;
            }
            cumulative += bin;
            let le = (1u64 << i).saturating_mul(2);
            let _ = writeln!(
                out,
                "{}_bucket{} {cumulative}",
                family.name,
                with_le(&le.to_string())
            );
        }
        let _ = writeln!(out, "{}_bucket{} {count}", family.name, with_le("+Inf"));
        let _ = writeln!(
            out,
            "{}_sum{labels} {}",
            family.name,
            state.sum.load(Ordering::Relaxed)
        );
        let _ = writeln!(out, "{}_count{labels} {count}", family.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_render_in_registration_order_with_one_header() {
        let registry = Registry::new();
        let hits = registry.counter("test_hits_total", "Hits.");
        let depth = registry.gauge("test_depth", "Depth.");
        let a = registry.labeled_counter("test_by_kind_total", "By kind.", "kind", "a");
        let b = registry.labeled_counter("test_by_kind_total", "By kind.", "kind", "b");
        hits.add(3);
        depth.set(7);
        a.inc();
        b.add(2);
        let text = registry.render();
        let expected = "# HELP test_hits_total Hits.\n\
                        # TYPE test_hits_total counter\n\
                        test_hits_total 3\n\
                        # HELP test_depth Depth.\n\
                        # TYPE test_depth gauge\n\
                        test_depth 7\n\
                        # HELP test_by_kind_total By kind.\n\
                        # TYPE test_by_kind_total counter\n\
                        test_by_kind_total{kind=\"a\"} 1\n\
                        test_by_kind_total{kind=\"b\"} 2\n";
        assert_eq!(text, expected);
        assert_eq!(hits.get(), 3);
        assert_eq!(depth.get(), 7);
    }

    #[test]
    fn every_series_renders_zero_valued_before_first_touch() {
        let registry = Registry::new();
        registry.counter("test_a_total", "A.");
        registry.labeled_counter("test_b_total", "B.", "k", "x");
        registry.gauge("test_c", "C.");
        registry.declare_counter("test_d_total", "D.", "peer");
        registry.labeled_histogram("test_e_us", "E.", "endpoint", "x");
        let text = registry.render();
        assert!(text.contains("test_a_total 0\n"));
        assert!(text.contains("test_b_total{k=\"x\"} 0\n"));
        assert!(text.contains("test_c 0\n"));
        // Declared-empty family: header only, no samples.
        assert!(text.contains("# TYPE test_d_total counter\n"));
        assert!(
            !text
                .lines()
                .any(|l| !l.starts_with('#') && l.starts_with("test_d_total")),
            "{text}"
        );
        // Histograms with no observations render no series at all.
        assert!(text.contains("# TYPE test_e_us histogram\n"));
        assert!(!text.contains("test_e_us_bucket"), "{text}");
    }

    #[test]
    fn seconds_formats_render_from_nanoseconds() {
        let registry = Registry::new();
        let uptime = registry.gauge_fmt("test_uptime_seconds", "Up.", ValueFormat::NanosSeconds3);
        let phase = registry.labeled_counter_fmt(
            "test_phase_seconds_total",
            "Phase.",
            "phase",
            "lookup",
            ValueFormat::NanosSeconds9,
        );
        uptime.set(1_234_567_890);
        phase.add(2_000_000_005);
        let text = registry.render();
        assert!(text.contains("test_uptime_seconds 1.235\n"), "{text}");
        assert!(
            text.contains("test_phase_seconds_total{phase=\"lookup\"} 2.000000005\n"),
            "{text}"
        );
    }

    #[test]
    fn callback_series_read_live_values() {
        let registry = Registry::new();
        let source = Arc::new(AtomicU64::new(0));
        let reader = Arc::clone(&source);
        registry.callback_counter("test_cb_total", "CB.", move || {
            reader.load(Ordering::Relaxed)
        });
        registry.callback_gauge("test_cb_active", "Active.", || 5);
        assert!(registry.render().contains("test_cb_total 0\n"));
        source.store(42, Ordering::Relaxed);
        let text = registry.render();
        assert!(text.contains("test_cb_total 42\n"), "{text}");
        assert!(text.contains("test_cb_active 5\n"), "{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_inf_terminated() {
        let registry = Registry::new();
        let h = registry.labeled_histogram("test_lat_us", "Latency.", "endpoint", "healthz");
        registry.labeled_histogram("test_lat_us", "Latency.", "endpoint", "other");
        h.observe(0);
        h.observe(3);
        h.observe(3);
        h.observe(900);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 906);
        let text = registry.render();
        // 0 seeds the cumulative count; 3 lands in [2,4) → le="4";
        // 900 in [512,1024) → le="1024".
        assert!(
            text.contains("test_lat_us_bucket{endpoint=\"healthz\",le=\"4\"} 3\n"),
            "{text}"
        );
        assert!(
            text.contains("test_lat_us_bucket{endpoint=\"healthz\",le=\"1024\"} 4\n"),
            "{text}"
        );
        assert!(
            text.contains("test_lat_us_bucket{endpoint=\"healthz\",le=\"+Inf\"} 4\n"),
            "{text}"
        );
        assert!(text.contains("test_lat_us_sum{endpoint=\"healthz\"} 906\n"));
        assert!(text.contains("test_lat_us_count{endpoint=\"healthz\"} 4\n"));
        // The untouched series is omitted.
        assert!(!text.contains("endpoint=\"other\""), "{text}");
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = Registry::new();
        registry.labeled_counter("test_esc_total", "Esc.", "k", "a\"b\\c\nd");
        let text = registry.render();
        assert!(
            text.contains("test_esc_total{k=\"a\\\"b\\\\c\\nd\"} 0\n"),
            "{text}"
        );
    }

    #[test]
    fn handles_are_shared_clones() {
        let registry = Registry::new();
        let c = registry.counter("test_shared_total", "Shared.");
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5);
        let h = registry.labeled_histogram("test_shared_us", "Shared.", "k", "v");
        let h2 = h.clone();
        h.observe(1);
        h2.observe(2);
        assert_eq!(h.count(), 2);
    }

    #[test]
    #[should_panic(expected = "re-declared with a different type")]
    fn kind_conflicts_are_programming_errors() {
        let registry = Registry::new();
        registry.counter("test_conflict", "A.");
        registry.gauge("test_conflict", "A.");
    }
}
