//! Distributed trace context and the cross-process span store.
//!
//! The [`span`](crate::span) module's ring collector is built for
//! profiling one process: timestamps are relative to a process-local
//! epoch and spans carry no identity beyond a name. Stitching a fleet
//! hop — request arrives at daemon A, is forwarded to daemon B, queues,
//! replays — needs three things that module cannot provide:
//!
//! 1. a **trace context** ([`TraceContext`]: 128-bit trace id + 64-bit
//!    span id, W3C-traceparent-style) minted per inbound request and
//!    propagated across processes in the [`TRACE_HEADER`] header,
//! 2. **wall-clock timestamps** ([`unix_nanos`]) so spans recorded by
//!    different processes land on one timeline, and
//! 3. explicit **parent/child links** ([`DistSpan::parent_span_id`])
//!    instead of same-thread time containment.
//!
//! Each process keeps its own bounded [`SpanStore`] keyed by trace id;
//! a collector (the CLI, or curl against `/v1/trace/<id>`) fetches the
//! per-process fragments and merges them by shared trace id. The store
//! evicts whole traces FIFO once `max_traces` distinct ids are held, so
//! a long-lived daemon's memory stays bounded no matter the request
//! rate.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Header carrying a [`TraceContext`] across fleet hops, formatted by
/// [`TraceContext::header_value`] — `<32 hex trace id>-<16 hex span id>`.
pub const TRACE_HEADER: &str = "x-smrseek-trace";

/// Spans retained per trace before further records are dropped. A fleet
/// job produces a handful of spans per hop; the cap only matters if a
/// trace id is reused pathologically.
const MAX_SPANS_PER_TRACE: usize = 1024;

/// Nanoseconds since the Unix epoch — the shared clock distributed spans
/// are stamped with. Saturates at `u64::MAX` (year 2554).
pub fn unix_nanos() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
}

/// A small process-local numeric id for the current thread, stable for
/// the thread's lifetime. `std::thread::ThreadId` is deliberately opaque;
/// Chrome trace tracks and [`DistSpan::tid`] need a plain number.
pub fn current_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|tid| *tid)
}

/// SplitMix64: a full-avalanche mixer, the same dependency-free shape the
/// fleet ring uses for hashing.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A fresh non-zero 64-bit id from time, pid, and a process-local
/// counter. Not cryptographic — collision resistance across a small
/// fleet is all tracing needs.
fn fresh_id() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let seed =
        unix_nanos() ^ (u64::from(std::process::id()) << 32) ^ seq.wrapping_mul(0x1000_0000_01b3);
    splitmix64(seed).max(1)
}

/// A W3C-traceparent-style trace context: which trace a request belongs
/// to and which span is the current parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace id shared by every span of one end-to-end request.
    pub trace_id: u128,
    /// The current span id — the parent of any child context minted from
    /// this one.
    pub span_id: u64,
}

impl TraceContext {
    /// Mints a fresh root context (new trace id, new span id).
    pub fn mint() -> TraceContext {
        TraceContext {
            trace_id: (u128::from(fresh_id()) << 64) | u128::from(fresh_id()),
            span_id: fresh_id(),
        }
    }

    /// A child context: same trace, fresh span id.
    pub fn child(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: fresh_id(),
        }
    }

    /// Parses a [`TRACE_HEADER`] value: exactly 32 lowercase-hex trace
    /// digits, a dash, 16 lowercase-hex span digits, both non-zero.
    /// Anything else — wrong length, uppercase, zero ids — is `None`, and
    /// the receiver mints a fresh root instead.
    pub fn parse(header: &str) -> Option<TraceContext> {
        let (trace, span) = header.split_once('-')?;
        if trace.len() != 32 || span.len() != 16 {
            return None;
        }
        let lower_hex = |s: &str| {
            s.bytes()
                .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
        };
        if !lower_hex(trace) || !lower_hex(span) {
            return None;
        }
        let trace_id = u128::from_str_radix(trace, 16).ok()?;
        let span_id = u64::from_str_radix(span, 16).ok()?;
        (trace_id != 0 && span_id != 0).then_some(TraceContext { trace_id, span_id })
    }

    /// The [`TRACE_HEADER`] wire form: `<trace_id:032x>-<span_id:016x>`.
    pub fn header_value(&self) -> String {
        format!("{:032x}-{:016x}", self.trace_id, self.span_id)
    }

    /// The trace id alone as 32 hex digits — the `/v1/trace/<id>` path
    /// segment.
    pub fn trace_hex(&self) -> String {
        format!("{:032x}", self.trace_id)
    }
}

/// Parses a bare 32-hex-digit trace id (the `/v1/trace/<id>` path
/// segment). Zero and malformed ids are `None`.
pub fn parse_trace_id(s: &str) -> Option<u128> {
    if s.len() != 32
        || !s
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    u128::from_str_radix(s, 16).ok().filter(|&id| id != 0)
}

/// One completed distributed span: a named interval on the shared
/// wall-clock timeline, linked to its parent by span id rather than by
/// time containment (the parent may live in another process).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistSpan {
    /// The trace this span belongs to.
    pub trace_id: u128,
    /// This span's id, unique within the trace.
    pub span_id: u64,
    /// The parent span's id; `None` marks the trace root.
    pub parent_span_id: Option<u64>,
    /// Span name (`dispatch`, `forward`, `queue`, `replay`, ...).
    pub name: String,
    /// Request id of the hop that recorded the span, for log correlation.
    pub request_id: String,
    /// Start time, nanoseconds since the Unix epoch.
    pub start_unix_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Recording process id.
    pub pid: u32,
    /// Recording thread, as rendered on the Chrome trace track.
    pub tid: u64,
}

struct StoreInner {
    /// Trace ids in insertion order, for FIFO eviction.
    order: VecDeque<u128>,
    traces: HashMap<u128, Vec<DistSpan>>,
}

/// A bounded, process-local store of distributed spans, keyed by trace
/// id. Whole traces are evicted FIFO once `max_traces` distinct ids are
/// held.
pub struct SpanStore {
    inner: Mutex<StoreInner>,
    max_traces: usize,
}

impl SpanStore {
    /// A store retaining at most `max_traces` distinct traces (minimum 1).
    pub fn new(max_traces: usize) -> SpanStore {
        SpanStore {
            inner: Mutex::new(StoreInner {
                order: VecDeque::new(),
                traces: HashMap::new(),
            }),
            max_traces: max_traces.max(1),
        }
    }

    /// Records one finished span under its trace id, evicting the oldest
    /// trace if this is a new id at capacity.
    pub fn record(&self, span: DistSpan) {
        let mut inner = self.inner.lock().expect("span store lock poisoned");
        if !inner.traces.contains_key(&span.trace_id) {
            if inner.order.len() >= self.max_traces {
                if let Some(evicted) = inner.order.pop_front() {
                    inner.traces.remove(&evicted);
                }
            }
            inner.order.push_back(span.trace_id);
            inner.traces.insert(span.trace_id, Vec::new());
        }
        let spans = inner
            .traces
            .get_mut(&span.trace_id)
            .expect("trace slot exists");
        if spans.len() < MAX_SPANS_PER_TRACE {
            spans.push(span);
        }
    }

    /// Every span recorded for `trace_id`, in record order, or `None` for
    /// an unknown (or evicted) trace.
    pub fn get(&self, trace_id: u128) -> Option<Vec<DistSpan>> {
        self.inner
            .lock()
            .expect("span store lock poisoned")
            .traces
            .get(&trace_id)
            .cloned()
    }

    /// Number of distinct traces currently held.
    pub fn traces(&self) -> usize {
        self.inner
            .lock()
            .expect("span store lock poisoned")
            .order
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace_id: u128, span_id: u64, name: &str) -> DistSpan {
        DistSpan {
            trace_id,
            span_id,
            parent_span_id: None,
            name: name.to_owned(),
            request_id: "rq-test".to_owned(),
            start_unix_ns: 1,
            dur_ns: 2,
            pid: 42,
            tid: 7,
        }
    }

    #[test]
    fn contexts_round_trip_through_the_header() {
        let ctx = TraceContext::mint();
        assert_ne!(ctx.trace_id, 0);
        assert_ne!(ctx.span_id, 0);
        let parsed = TraceContext::parse(&ctx.header_value()).expect("round trips");
        assert_eq!(parsed, ctx);
        let child = ctx.child();
        assert_eq!(child.trace_id, ctx.trace_id);
        assert_ne!(child.span_id, ctx.span_id);
        assert_eq!(ctx.header_value().len(), 32 + 1 + 16);
        assert_eq!(parse_trace_id(&ctx.trace_hex()), Some(ctx.trace_id));
    }

    #[test]
    fn malformed_headers_are_rejected() {
        for bad in [
            "",
            "nope",
            "0123",
            // zero ids
            &format!("{:032x}-{:016x}", 0u128, 5u64),
            &format!("{:032x}-{:016x}", 5u128, 0u64),
            // uppercase hex
            &format!("{:032X}-{:016x}", 0xabcdu128 << 64, 5u64),
            // wrong field widths
            "abc-def",
            &format!("{:031x}0-{:016x}", 5u128, 5u64)[1..],
        ] {
            assert_eq!(TraceContext::parse(bad), None, "{bad:?}");
        }
        // A valid value parses.
        let good = format!("{:032x}-{:016x}", 7u128, 9u64);
        assert!(TraceContext::parse(&good).is_some());
        assert_eq!(parse_trace_id("zz"), None);
        assert_eq!(parse_trace_id(&format!("{:032x}", 0u128)), None);
    }

    #[test]
    fn minted_ids_are_distinct() {
        let a = TraceContext::mint();
        let b = TraceContext::mint();
        assert_ne!(a.trace_id, b.trace_id);
        assert_ne!(a.span_id, b.span_id);
    }

    #[test]
    fn store_groups_by_trace_and_evicts_fifo() {
        let store = SpanStore::new(2);
        store.record(span(1, 10, "dispatch"));
        store.record(span(1, 11, "forward"));
        store.record(span(2, 20, "dispatch"));
        assert_eq!(store.traces(), 2);
        let first = store.get(1).expect("trace 1 held");
        assert_eq!(first.len(), 2);
        assert_eq!(first[0].name, "dispatch");
        assert_eq!(first[1].name, "forward");
        // A third distinct trace evicts the oldest (trace 1).
        store.record(span(3, 30, "dispatch"));
        assert_eq!(store.traces(), 2);
        assert!(store.get(1).is_none());
        assert!(store.get(2).is_some());
        assert!(store.get(3).is_some());
        assert!(store.get(99).is_none());
    }

    #[test]
    fn per_trace_span_cap_bounds_memory() {
        let store = SpanStore::new(1);
        for i in 0..(MAX_SPANS_PER_TRACE as u64 + 10) {
            store.record(span(1, i + 1, "s"));
        }
        assert_eq!(store.get(1).expect("held").len(), MAX_SPANS_PER_TRACE);
    }
}
