//! Observability for the smrseek stack: spans, phase accounting,
//! structured logging, and Chrome trace-event export.
//!
//! Everything here is `std`-only (the build environment is offline; see
//! `vendor/README.md`) and cheap enough to stay compiled into release
//! binaries:
//!
//! * [`log`] — a leveled logger (`SMRSEEK_LOG` env, text or JSON-lines
//!   output) behind the [`error!`]/[`warn!`]/[`info!`]/[`debug!`] macros.
//!   Off-level messages cost one relaxed atomic load.
//! * [`span`] — RAII [`span::Span`] guards with thread-local span stacks,
//!   flushed in batches into a global ring-buffer collector. When
//!   recording is off (the default) a span is one relaxed atomic load;
//!   there is no allocation and nothing is stored.
//! * [`phase`] — the engine's per-record phase accounting
//!   ([`phase::Phase`]: ingest, extent lookup, seek accounting, host
//!   cache, checkpoint I/O) accumulated into mergeable
//!   [`phase::PhaseTotals`]. Gated by a process-wide flag so the hot loop
//!   pays a single branch when profiling is off.
//! * [`chrome`] — serializes collected span events as Chrome trace-event
//!   JSON, loadable in `chrome://tracing` or Perfetto; multi-process
//!   traces get `process_name` metadata and cross-process flow arrows.
//! * [`dtrace`] — distributed tracing for the fleet: a W3C-style
//!   [`dtrace::TraceContext`] propagated across daemon hops, wall-clock
//!   [`dtrace::DistSpan`]s with explicit parent links, and a bounded
//!   per-process [`dtrace::SpanStore`] served by `GET /v1/trace/<id>`.
//! * [`metrics`] — a [`metrics::Registry`] of labeled counters, gauges,
//!   and log₂ histograms with a Prometheus text renderer; handle updates
//!   are single relaxed atomic RMWs.

#![warn(missing_docs)]

pub mod chrome;
pub mod dtrace;
pub mod log;
pub mod metrics;
pub mod phase;
pub mod span;

pub use dtrace::{current_tid, unix_nanos, DistSpan, SpanStore, TraceContext};
pub use log::Level;
pub use metrics::{Counter, Gauge, Histogram, Registry, ValueFormat};
pub use phase::{phase_accounting, set_phase_accounting, Phase, PhaseTotals};
pub use span::{span, span_with, Span, SpanEvent};
