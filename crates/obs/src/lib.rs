//! Observability for the smrseek stack: spans, phase accounting,
//! structured logging, and Chrome trace-event export.
//!
//! Everything here is `std`-only (the build environment is offline; see
//! `vendor/README.md`) and cheap enough to stay compiled into release
//! binaries:
//!
//! * [`log`] — a leveled logger (`SMRSEEK_LOG` env, text or JSON-lines
//!   output) behind the [`error!`]/[`warn!`]/[`info!`]/[`debug!`] macros.
//!   Off-level messages cost one relaxed atomic load.
//! * [`span`] — RAII [`span::Span`] guards with thread-local span stacks,
//!   flushed in batches into a global ring-buffer collector. When
//!   recording is off (the default) a span is one relaxed atomic load;
//!   there is no allocation and nothing is stored.
//! * [`phase`] — the engine's per-record phase accounting
//!   ([`phase::Phase`]: ingest, extent lookup, seek accounting, host
//!   cache, checkpoint I/O) accumulated into mergeable
//!   [`phase::PhaseTotals`]. Gated by a process-wide flag so the hot loop
//!   pays a single branch when profiling is off.
//! * [`chrome`] — serializes collected span events as Chrome trace-event
//!   JSON, loadable in `chrome://tracing` or Perfetto.

#![warn(missing_docs)]

pub mod chrome;
pub mod log;
pub mod phase;
pub mod span;

pub use log::Level;
pub use phase::{phase_accounting, set_phase_accounting, Phase, PhaseTotals};
pub use span::{span, span_with, Span, SpanEvent};
