//! Chrome trace-event JSON export for collected spans.
//!
//! Serializes [`SpanEvent`]s as complete events (`"ph":"X"`) in the
//! Trace Event Format understood by `chrome://tracing` and Perfetto.
//! Timestamps and durations are microseconds with three decimals, so
//! nanosecond precision survives the conversion. Nesting needs no
//! explicit parent links: the viewers infer it from time containment on
//! the same `(pid, tid)` track, which [`SpanEvent`] guarantees for spans
//! that were nested at record time.

use std::io::{self, Write};

use crate::phase::{Phase, PhaseTotals};
use crate::span::SpanEvent;

fn write_event(out: &mut impl Write, ev: &SpanEvent, pid: u32) -> io::Result<()> {
    let mut name = String::with_capacity(ev.name.len());
    crate::log::json_escape_into(&mut name, &ev.name);
    // ns → µs with 3 decimals keeps full precision in a decimal field.
    write!(
        out,
        "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":{pid},\"tid\":{}}}",
        ev.start_ns / 1_000,
        ev.start_ns % 1_000,
        ev.dur_ns / 1_000,
        ev.dur_ns % 1_000,
        ev.tid,
    )
}

/// Writes `events` as a complete Chrome trace (`{"traceEvents":[...]}`).
pub fn write_trace(out: &mut impl Write, events: &[SpanEvent]) -> io::Result<()> {
    let pid = std::process::id();
    out.write_all(b"{\"traceEvents\":[")?;
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.write_all(b",")?;
        }
        write_event(out, ev, pid)?;
    }
    out.write_all(b"]}")?;
    Ok(())
}

/// Expands a cell span into child spans, one per non-empty engine phase,
/// named `phase:<label>`.
///
/// Phase totals are accumulated sums, not intervals, so the children are
/// laid out sequentially from the parent's start — a within-cell time
/// breakdown rather than a literal timeline. Children are clamped to the
/// parent's extent so viewers always render them nested under it.
pub fn phase_children(parent: &SpanEvent, phases: &PhaseTotals) -> Vec<SpanEvent> {
    let parent_end = parent.start_ns.saturating_add(parent.dur_ns);
    let mut cursor = parent.start_ns;
    let mut out = Vec::new();
    for phase in Phase::ALL {
        let nanos = phases.nanos(phase);
        if nanos == 0 {
            continue;
        }
        let start_ns = cursor.min(parent_end);
        let dur_ns = nanos.min(parent_end.saturating_sub(start_ns));
        out.push(SpanEvent {
            name: format!("phase:{}", phase.label()),
            start_ns,
            dur_ns,
            tid: parent.tid,
            depth: parent.depth + 1,
        });
        cursor = start_ns.saturating_add(dur_ns);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn ev(name: &str, start_ns: u64, dur_ns: u64, tid: u64, depth: u32) -> SpanEvent {
        SpanEvent {
            name: name.to_string(),
            start_ns,
            dur_ns,
            tid,
            depth,
        }
    }

    #[test]
    fn trace_json_parses_and_preserves_precision() {
        let events = vec![
            ev("cell:LS", 1_234_567, 9_876_543, 0, 0),
            ev("phase:\"odd\"", 2_000_000, 1_000, 0, 1),
        ];
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("write");
        let text = String::from_utf8(buf).expect("utf-8");
        let doc: serde_json::Value =
            serde_json::from_str(&text).expect("chrome trace output is valid JSON");
        let list = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        assert_eq!(list.len(), 2);
        assert_eq!(
            list[0].get("name").and_then(|v| v.as_str()),
            Some("cell:LS")
        );
        assert_eq!(list[0].get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(list[0].get("ts").and_then(|v| v.as_f64()), Some(1234.567));
        assert_eq!(list[0].get("dur").and_then(|v| v.as_f64()), Some(9876.543));
        assert_eq!(
            list[1].get("name").and_then(|v| v.as_str()),
            Some("phase:\"odd\"")
        );
    }

    #[test]
    fn empty_trace_is_valid() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).expect("write");
        assert_eq!(buf, b"{\"traceEvents\":[]}");
    }

    #[test]
    fn phase_children_nest_inside_parent() {
        let parent = ev("cell:LS", 1_000, 10_000, 3, 0);
        let mut totals = PhaseTotals::default();
        totals.record(Phase::Lookup, Duration::from_nanos(4_000));
        totals.record(Phase::Seek, Duration::from_nanos(2_000));
        let children = phase_children(&parent, &totals);
        assert_eq!(children.len(), 2);
        assert_eq!(children[0].name, "phase:lookup");
        assert_eq!(children[1].name, "phase:seek");
        let parent_end = parent.start_ns + parent.dur_ns;
        let mut prev_end = parent.start_ns;
        for child in &children {
            assert_eq!(child.tid, parent.tid);
            assert_eq!(child.depth, parent.depth + 1);
            assert!(child.start_ns >= prev_end);
            assert!(child.start_ns + child.dur_ns <= parent_end);
            prev_end = child.start_ns + child.dur_ns;
        }
    }

    #[test]
    fn phase_children_clamp_to_parent_extent() {
        // Totals longer than the parent (accumulated across many records)
        // must still render inside it.
        let parent = ev("cell:NoLS", 0, 1_000, 0, 0);
        let mut totals = PhaseTotals::default();
        totals.record(Phase::Ingest, Duration::from_nanos(900));
        totals.record(Phase::Lookup, Duration::from_nanos(5_000));
        totals.record(Phase::Seek, Duration::from_nanos(5_000));
        let children = phase_children(&parent, &totals);
        assert_eq!(children.len(), 3);
        for child in &children {
            assert!(child.start_ns + child.dur_ns <= 1_000);
        }
        assert_eq!(children[0].dur_ns, 900);
        assert_eq!(children[1].dur_ns, 100);
        assert_eq!(children[2].dur_ns, 0);
    }
}
