//! Chrome trace-event JSON export for collected spans.
//!
//! Serializes [`SpanEvent`]s as complete events (`"ph":"X"`) in the
//! Trace Event Format understood by `chrome://tracing` and Perfetto.
//! Timestamps and durations are microseconds with three decimals, so
//! nanosecond precision survives the conversion. Nesting needs no
//! explicit parent links: the viewers infer it from time containment on
//! the same `(pid, tid)` track, which [`SpanEvent`] guarantees for spans
//! that were nested at record time.

use std::io::{self, Write};

use crate::dtrace::DistSpan;
use crate::phase::{Phase, PhaseTotals};
use crate::span::SpanEvent;

fn write_event(out: &mut impl Write, ev: &SpanEvent, pid: u32) -> io::Result<()> {
    let mut name = String::with_capacity(ev.name.len());
    crate::log::json_escape_into(&mut name, &ev.name);
    // ns → µs with 3 decimals keeps full precision in a decimal field.
    write!(
        out,
        "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":{pid},\"tid\":{}}}",
        ev.start_ns / 1_000,
        ev.start_ns % 1_000,
        ev.dur_ns / 1_000,
        ev.dur_ns % 1_000,
        ev.tid,
    )
}

/// Writes `events` as a complete Chrome trace (`{"traceEvents":[...]}`).
pub fn write_trace(out: &mut impl Write, events: &[SpanEvent]) -> io::Result<()> {
    let pid = std::process::id();
    out.write_all(b"{\"traceEvents\":[")?;
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.write_all(b",")?;
        }
        write_event(out, ev, pid)?;
    }
    out.write_all(b"]}")?;
    Ok(())
}

fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    crate::log::json_escape_into(&mut out, s);
    out
}

/// `"key":<µs with 3 decimals>` from nanoseconds (full precision in a
/// decimal field).
fn us_field(key: &str, ns: u64) -> String {
    format!("\"{key}\":{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Writes distributed spans — typically the merged fragments of one
/// fleet trace — as a complete Chrome trace.
///
/// Unlike [`write_trace`], the events span multiple processes: each
/// distinct pid gets a `process_name` metadata event (the label from
/// `processes`, or `pid <n>` when unlisted) and each `(pid, tid)` pair a
/// `thread_name` event, so Perfetto titles the per-daemon tracks.
/// Parent/child links that cross a track boundary additionally emit a
/// flow arrow (`"ph":"s"` on the parent, `"ph":"f"` on the child) — the
/// cross-daemon hop renders as one connected timeline. Timestamps are
/// wall-clock, normalized to the earliest span so the trace starts at 0.
pub fn write_dist_trace(
    out: &mut impl Write,
    spans: &[DistSpan],
    processes: &[(u32, String)],
) -> io::Result<()> {
    let t0 = spans.iter().map(|s| s.start_unix_ns).min().unwrap_or(0);
    let mut events: Vec<String> = Vec::with_capacity(spans.len() * 2);
    // Track-naming metadata: one process_name per pid, one thread_name
    // per (pid, tid), in order of first appearance.
    let mut named_pids: Vec<u32> = Vec::new();
    let mut named_tids: Vec<(u32, u64)> = Vec::new();
    for span in spans {
        if !named_pids.contains(&span.pid) {
            named_pids.push(span.pid);
            let label = processes
                .iter()
                .find(|(pid, _)| *pid == span.pid)
                .map_or_else(|| format!("pid {}", span.pid), |(_, name)| name.clone());
            events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
                span.pid,
                escaped(&label)
            ));
        }
        if !named_tids.contains(&(span.pid, span.tid)) {
            named_tids.push((span.pid, span.tid));
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"tid {}\"}}}}",
                span.pid, span.tid, span.tid
            ));
        }
    }
    for span in spans {
        let parent = span.parent_span_id.map_or(String::new(), |p| {
            format!("\"parent_span_id\":\"{p:016x}\",")
        });
        events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",{},{},\"pid\":{},\"tid\":{},\"args\":{{\"span_id\":\"{:016x}\",{parent}\"request_id\":\"{}\"}}}}",
            escaped(&span.name),
            us_field("ts", span.start_unix_ns.saturating_sub(t0)),
            us_field("dur", span.dur_ns),
            span.pid,
            span.tid,
            span.span_id,
            escaped(&span.request_id)
        ));
    }
    // Flow arrows for links that cross a (pid, tid) track: time
    // containment cannot express those, so Perfetto needs explicit
    // start/finish events sharing the child's span id.
    for span in spans {
        let Some(parent_id) = span.parent_span_id else {
            continue;
        };
        let Some(parent) = spans.iter().find(|p| p.span_id == parent_id) else {
            continue;
        };
        if (parent.pid, parent.tid) == (span.pid, span.tid) {
            continue;
        }
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"fleet\",\"ph\":\"s\",\"id\":{},{},\"pid\":{},\"tid\":{}}}",
            escaped(&span.name),
            span.span_id,
            us_field("ts", parent.start_unix_ns.saturating_sub(t0)),
            parent.pid,
            parent.tid
        ));
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"fleet\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},{},\"pid\":{},\"tid\":{}}}",
            escaped(&span.name),
            span.span_id,
            us_field("ts", span.start_unix_ns.saturating_sub(t0)),
            span.pid,
            span.tid
        ));
    }
    out.write_all(b"{\"traceEvents\":[")?;
    out.write_all(events.join(",").as_bytes())?;
    out.write_all(b"]}")?;
    Ok(())
}

/// Expands a cell span into child spans, one per non-empty engine phase,
/// named `phase:<label>`.
///
/// Phase totals are accumulated sums, not intervals, so the children are
/// laid out sequentially from the parent's start — a within-cell time
/// breakdown rather than a literal timeline. Children are clamped to the
/// parent's extent so viewers always render them nested under it.
pub fn phase_children(parent: &SpanEvent, phases: &PhaseTotals) -> Vec<SpanEvent> {
    let parent_end = parent.start_ns.saturating_add(parent.dur_ns);
    let mut cursor = parent.start_ns;
    let mut out = Vec::new();
    for phase in Phase::ALL {
        let nanos = phases.nanos(phase);
        if nanos == 0 {
            continue;
        }
        let start_ns = cursor.min(parent_end);
        let dur_ns = nanos.min(parent_end.saturating_sub(start_ns));
        out.push(SpanEvent {
            name: format!("phase:{}", phase.label()),
            start_ns,
            dur_ns,
            tid: parent.tid,
            depth: parent.depth + 1,
        });
        cursor = start_ns.saturating_add(dur_ns);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn ev(name: &str, start_ns: u64, dur_ns: u64, tid: u64, depth: u32) -> SpanEvent {
        SpanEvent {
            name: name.to_string(),
            start_ns,
            dur_ns,
            tid,
            depth,
        }
    }

    #[test]
    fn trace_json_parses_and_preserves_precision() {
        let events = vec![
            ev("cell:LS", 1_234_567, 9_876_543, 0, 0),
            ev("phase:\"odd\"", 2_000_000, 1_000, 0, 1),
        ];
        let mut buf = Vec::new();
        write_trace(&mut buf, &events).expect("write");
        let text = String::from_utf8(buf).expect("utf-8");
        let doc: serde_json::Value =
            serde_json::from_str(&text).expect("chrome trace output is valid JSON");
        let list = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        assert_eq!(list.len(), 2);
        assert_eq!(
            list[0].get("name").and_then(|v| v.as_str()),
            Some("cell:LS")
        );
        assert_eq!(list[0].get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(list[0].get("ts").and_then(|v| v.as_f64()), Some(1234.567));
        assert_eq!(list[0].get("dur").and_then(|v| v.as_f64()), Some(9876.543));
        assert_eq!(
            list[1].get("name").and_then(|v| v.as_str()),
            Some("phase:\"odd\"")
        );
    }

    #[test]
    fn empty_trace_is_valid() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).expect("write");
        assert_eq!(buf, b"{\"traceEvents\":[]}");
    }

    fn dist(
        pid: u32,
        tid: u64,
        span_id: u64,
        parent: Option<u64>,
        name: &str,
        start: u64,
        dur: u64,
    ) -> DistSpan {
        DistSpan {
            trace_id: 7,
            span_id,
            parent_span_id: parent,
            name: name.to_owned(),
            request_id: format!("rq-{pid}"),
            start_unix_ns: start,
            dur_ns: dur,
            pid,
            tid,
        }
    }

    #[test]
    fn dist_trace_names_processes_and_draws_cross_process_flows() {
        // Daemon A (pid 100) dispatches and forwards; daemon B (pid 200)
        // dispatches as a child of the forward span.
        let spans = vec![
            dist(100, 1, 0x10, None, "dispatch", 1_000_000_000, 5_000_000),
            dist(
                100,
                1,
                0x11,
                Some(0x10),
                "forward",
                1_001_000_000,
                3_000_000,
            ),
            dist(
                200,
                2,
                0x20,
                Some(0x11),
                "dispatch",
                1_002_000_000,
                1_000_000,
            ),
        ];
        let mut buf = Vec::new();
        write_dist_trace(
            &mut buf,
            &spans,
            &[(100, "smrseekd 127.0.0.1:9001".to_owned())],
        )
        .expect("write");
        let text = String::from_utf8(buf).expect("utf-8");
        let doc: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let list = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        // 2 process_name + 2 thread_name + 3 slices + 1 flow pair.
        assert_eq!(list.len(), 2 + 2 + 3 + 2, "{text}");
        let by_ph = |ph: &str| -> Vec<&serde_json::Value> {
            list.iter()
                .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some(ph))
                .collect()
        };
        let meta = by_ph("M");
        assert!(meta.iter().any(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(|v| v.as_str())
                == Some("smrseekd 127.0.0.1:9001")
        }));
        assert!(meta.iter().any(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(|v| v.as_str())
                == Some("pid 200")
        }));
        // Timestamps are normalized to the earliest span.
        let slices = by_ph("X");
        assert_eq!(slices[0].get("ts").and_then(|v| v.as_f64()), Some(0.0));
        assert_eq!(
            slices[0]
                .get("args")
                .and_then(|a| a.get("span_id"))
                .and_then(|v| v.as_str()),
            Some("0000000000000010")
        );
        // Only the cross-process link (forward -> B's dispatch) flows.
        let starts = by_ph("s");
        let finishes = by_ph("f");
        assert_eq!(starts.len(), 1, "{text}");
        assert_eq!(finishes.len(), 1);
        assert_eq!(starts[0].get("pid").and_then(|v| v.as_u64()), Some(100));
        assert_eq!(finishes[0].get("pid").and_then(|v| v.as_u64()), Some(200));
        assert_eq!(
            starts[0].get("id").and_then(|v| v.as_u64()),
            finishes[0].get("id").and_then(|v| v.as_u64()),
        );
    }

    #[test]
    fn phase_children_nest_inside_parent() {
        let parent = ev("cell:LS", 1_000, 10_000, 3, 0);
        let mut totals = PhaseTotals::default();
        totals.record(Phase::Lookup, Duration::from_nanos(4_000));
        totals.record(Phase::Seek, Duration::from_nanos(2_000));
        let children = phase_children(&parent, &totals);
        assert_eq!(children.len(), 2);
        assert_eq!(children[0].name, "phase:lookup");
        assert_eq!(children[1].name, "phase:seek");
        let parent_end = parent.start_ns + parent.dur_ns;
        let mut prev_end = parent.start_ns;
        for child in &children {
            assert_eq!(child.tid, parent.tid);
            assert_eq!(child.depth, parent.depth + 1);
            assert!(child.start_ns >= prev_end);
            assert!(child.start_ns + child.dur_ns <= parent_end);
            prev_end = child.start_ns + child.dur_ns;
        }
    }

    #[test]
    fn phase_children_clamp_to_parent_extent() {
        // Totals longer than the parent (accumulated across many records)
        // must still render inside it.
        let parent = ev("cell:NoLS", 0, 1_000, 0, 0);
        let mut totals = PhaseTotals::default();
        totals.record(Phase::Ingest, Duration::from_nanos(900));
        totals.record(Phase::Lookup, Duration::from_nanos(5_000));
        totals.record(Phase::Seek, Duration::from_nanos(5_000));
        let children = phase_children(&parent, &totals);
        assert_eq!(children.len(), 3);
        for child in &children {
            assert!(child.start_ns + child.dur_ns <= 1_000);
        }
        assert_eq!(children[0].dur_ns, 900);
        assert_eq!(children[1].dur_ns, 100);
        assert_eq!(children[2].dur_ns, 0);
    }
}
