//! Engine phase accounting: where simulation time goes, per phase.
//!
//! The engine attributes each record's processing to a small fixed set of
//! [`Phase`]s (trace ingest, extent lookup, seek accounting, host cache,
//! checkpoint I/O) and accumulates durations plus call counts into a
//! [`PhaseTotals`]. Totals are plain mergeable values — the runner sums
//! them across matrix cells, the daemon folds them into `/metrics` — and
//! never enter serialized reports, which must stay byte-deterministic.
//!
//! Accounting is off by default: timing every record costs two
//! `Instant::now()` calls per phase, too much for throughput-sensitive
//! replay. [`set_phase_accounting`] flips a process-wide flag the engine
//! reads once per run, so steady-state cost when off is zero.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A stage of per-record simulation work that the engine accounts for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Pulling the next record out of the trace source (parse or mmap read).
    Ingest,
    /// Translation-layer work: extent-map lookup and remapping.
    Lookup,
    /// Seek detection and distance/series bookkeeping.
    Seek,
    /// Host-side RAM cache probe and insertion.
    HostCache,
    /// Snapshot construction and checkpoint emission.
    Checkpoint,
    /// Adaptive-policy work: per-region heat classification and gate
    /// derivation.
    Classify,
}

impl Phase {
    /// Every phase, in the order used for indexing and display.
    pub const ALL: [Phase; 6] = [
        Phase::Ingest,
        Phase::Lookup,
        Phase::Seek,
        Phase::HostCache,
        Phase::Checkpoint,
        Phase::Classify,
    ];

    /// Stable lower-case label, used as the `phase` metric label and in
    /// profile output.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Ingest => "ingest",
            Phase::Lookup => "lookup",
            Phase::Seek => "seek",
            Phase::HostCache => "host_cache",
            Phase::Checkpoint => "checkpoint",
            Phase::Classify => "classify",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Ingest => 0,
            Phase::Lookup => 1,
            Phase::Seek => 2,
            Phase::HostCache => 3,
            Phase::Checkpoint => 4,
            Phase::Classify => 5,
        }
    }
}

/// Accumulated wall time and call counts per [`Phase`].
///
/// Totals merge associatively, so per-cell totals from parallel runner
/// threads sum into matrix totals in any order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    nanos: [u64; 6],
    calls: [u64; 6],
}

impl PhaseTotals {
    /// Adds one timed interval to `phase`.
    pub fn record(&mut self, phase: Phase, elapsed: Duration) {
        let i = phase.index();
        self.nanos[i] = self.nanos[i].saturating_add(elapsed.as_nanos() as u64);
        self.calls[i] += 1;
    }

    /// Folds another set of totals into this one.
    pub fn merge(&mut self, other: &PhaseTotals) {
        for i in 0..6 {
            self.nanos[i] = self.nanos[i].saturating_add(other.nanos[i]);
            self.calls[i] = self.calls[i].saturating_add(other.calls[i]);
        }
    }

    /// Accumulated nanoseconds in `phase`.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Number of intervals recorded for `phase`.
    pub fn calls(&self, phase: Phase) -> u64 {
        self.calls[phase.index()]
    }

    /// Accumulated time in `phase` as floating-point seconds.
    pub fn seconds(&self, phase: Phase) -> f64 {
        self.nanos[phase.index()] as f64 / 1e9
    }

    /// Sum of accumulated nanoseconds across all phases.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().copied().sum()
    }

    /// True when nothing has been recorded (accounting was off).
    pub fn is_zero(&self) -> bool {
        self.total_nanos() == 0 && self.calls.iter().all(|&c| c == 0)
    }

    /// Every phase with its accumulated `(nanos, calls)`, in
    /// [`Phase::ALL`] order — the iteration consumers (SSE progress
    /// events, exporters) use to serialize totals without knowing the
    /// phase set.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, u64, u64)> + '_ {
        Phase::ALL
            .into_iter()
            .map(|phase| (phase, self.nanos(phase), self.calls(phase)))
    }
}

/// Process-wide switch the engine samples at run start.
static ACCOUNTING: AtomicBool = AtomicBool::new(false);

/// Enables or disables engine phase accounting for runs started after the
/// call. Runs already in flight keep the setting they started with.
pub fn set_phase_accounting(enabled: bool) {
    ACCOUNTING.store(enabled, Ordering::Relaxed);
}

/// Whether engine phase accounting is currently enabled.
pub fn phase_accounting() -> bool {
    ACCOUNTING.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge_accumulate() {
        let mut a = PhaseTotals::default();
        assert!(a.is_zero());
        a.record(Phase::Lookup, Duration::from_nanos(100));
        a.record(Phase::Lookup, Duration::from_nanos(50));
        a.record(Phase::Seek, Duration::from_nanos(7));
        let mut b = PhaseTotals::default();
        b.record(Phase::Lookup, Duration::from_nanos(1));
        b.record(Phase::Checkpoint, Duration::from_nanos(9));
        a.merge(&b);
        assert_eq!(a.nanos(Phase::Lookup), 151);
        assert_eq!(a.calls(Phase::Lookup), 3);
        assert_eq!(a.nanos(Phase::Seek), 7);
        assert_eq!(a.nanos(Phase::Checkpoint), 9);
        assert_eq!(a.nanos(Phase::Ingest), 0);
        assert_eq!(a.total_nanos(), 167);
        assert!(!a.is_zero());
    }

    #[test]
    fn merge_is_order_independent() {
        let mut x = PhaseTotals::default();
        x.record(Phase::Ingest, Duration::from_nanos(3));
        let mut y = PhaseTotals::default();
        y.record(Phase::HostCache, Duration::from_nanos(5));
        let mut xy = x;
        xy.merge(&y);
        let mut yx = y;
        yx.merge(&x);
        assert_eq!(xy, yx);
    }

    #[test]
    fn labels_match_all_order() {
        let labels: Vec<&str> = Phase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            [
                "ingest",
                "lookup",
                "seek",
                "host_cache",
                "checkpoint",
                "classify"
            ]
        );
    }

    #[test]
    fn iter_yields_all_phases_in_order() {
        let mut t = PhaseTotals::default();
        t.record(Phase::Lookup, Duration::from_nanos(40));
        t.record(Phase::Lookup, Duration::from_nanos(2));
        let pairs: Vec<(Phase, u64, u64)> = t.iter().collect();
        assert_eq!(pairs.len(), Phase::ALL.len());
        assert_eq!(pairs[1], (Phase::Lookup, 42, 2));
        assert_eq!(pairs[0], (Phase::Ingest, 0, 0));
        let order: Vec<Phase> = pairs.iter().map(|&(p, _, _)| p).collect();
        assert_eq!(order, Phase::ALL.to_vec());
    }

    #[test]
    fn seconds_converts_nanos() {
        let mut t = PhaseTotals::default();
        t.record(Phase::Seek, Duration::from_millis(1500));
        assert!((t.seconds(Phase::Seek) - 1.5).abs() < 1e-9);
    }
}
