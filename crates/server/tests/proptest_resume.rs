//! Property tests for the snapshot/resume subsystem.
//!
//! The invariant the whole checkpoint design rests on: for ANY trace, ANY
//! cut point, and every standard-sweep configuration, snapshotting at the
//! cut and resuming over the remaining records yields a report
//! byte-identical (as serialized JSON) to the uninterrupted run. A second
//! property pushes the snapshot through the on-disk container so the
//! encode/decode framing is under the same randomized scrutiny.

use proptest::prelude::*;
use smrseek_policy::PolicyConfig;
use smrseek_sim::checkpoint::{decode_engine_snapshot, encode_engine_snapshot};
use smrseek_sim::{EngineSnapshot, SimConfig, Simulation};
use smrseek_trace::{Lba, TraceRecord};

/// One arbitrary record: mixed ops, sector-aligned LBAs within a 16 MiB
/// span, 1–64 sectors long.
fn record_strategy() -> impl Strategy<Value = TraceRecord> {
    (0u64..1 << 12, 1u32..64, prop::bool::ANY).prop_map(|(block, sectors, is_read)| {
        let lba = Lba::new(block * 8);
        if is_read {
            TraceRecord::read(block, lba, sectors)
        } else {
            TraceRecord::write(block, lba, sectors)
        }
    })
}

/// The five standard-sweep configs plus the adaptive policy stack, with
/// the report-shaping extras (distances, fragment tracking, host cache)
/// toggled at random so the snapshot has to carry every optional piece of
/// engine state — including the policy classifier and the tiered cache.
fn config_strategy() -> impl Strategy<Value = SimConfig> {
    let mut sweep = SimConfig::standard_sweep().to_vec();
    // Small regions so the 16 MiB trace span crosses many classifier
    // regions and gates actually flip inside short random traces.
    sweep.push(SimConfig::ls_adaptive().with_policy(PolicyConfig {
        region_sectors: 512,
        ..PolicyConfig::default()
    }));
    (
        0..sweep.len(),
        prop::bool::ANY,
        prop::bool::ANY,
        prop_oneof![
            1 => Just(None),
            2 => (1u64..1 << 20).prop_map(Some),
        ],
    )
        .prop_map(move |(i, distances, fragments, cache)| {
            let mut config = sweep[i];
            config.record_distances = distances;
            config.track_fragments = fragments;
            config.host_cache_bytes = cache;
            config
        })
}

/// Runs `records` under `config`, snapshotting exactly once at `cut`, and
/// returns `(snapshot, straight-through report JSON)`.
fn snapshot_at(records: &[TraceRecord], config: &SimConfig, cut: u64) -> (EngineSnapshot, String) {
    let run = config.with_checkpoint_every(cut.max(1));
    let mut snap = None;
    let report = Simulation::new(&run)
        .checkpoint_sink(|s: &EngineSnapshot| {
            if s.logical_ops == cut {
                snap = Some(s.clone());
            }
        })
        .run(records.iter().copied());
    let whole = serde_json::to_string(&report).expect("report serializes");
    (snap.expect("cadence fires at the cut"), whole)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// snapshot at k + resume over records k.. == uninterrupted run, for
    /// arbitrary traces, cut points, and sweep configs. The derived
    /// frontier must be pinned (as every caller does) because the resumed
    /// run cannot re-derive it from the full trace it never sees.
    #[test]
    fn resume_equals_straight_through(
        records in prop::collection::vec(record_strategy(), 2..160),
        cut_fraction in 1u64..100,
        config in config_strategy(),
    ) {
        let top = smrseek_trace::binary::top_sector(&records);
        let config = config.with_frontier_hint(top);
        let cut = (records.len() as u64 * cut_fraction / 100).max(1);
        let (snap, whole) = snapshot_at(&records, &config, cut);
        prop_assert_eq!(snap.logical_ops, cut);
        let resumed = Simulation::new(&config)
            .resume_from(&snap)
            .run(records[cut as usize..].iter().copied());
        prop_assert_eq!(
            serde_json::to_string(&resumed).expect("report serializes"),
            whole,
            "resume from {} of {} diverged", cut, records.len()
        );
    }

    /// The container framing is lossless: encode → decode returns the
    /// exact snapshot, and the decoded state resumes identically too.
    #[test]
    fn container_round_trip_preserves_resume(
        records in prop::collection::vec(record_strategy(), 4..80),
        config in config_strategy(),
        digest in 1u64..u64::MAX,
    ) {
        let digest = u128::from(digest) << 32 | 0xfeed;
        let top = smrseek_trace::binary::top_sector(&records);
        let config = config.with_frontier_hint(top);
        let cut = (records.len() / 2) as u64;
        let (snap, _) = snapshot_at(&records, &config, cut);
        let container = encode_engine_snapshot(digest, "prop-key", &snap);
        prop_assert_eq!(container.record_index, cut);
        let decoded = decode_engine_snapshot(&container).expect("round trip decodes");
        prop_assert_eq!(&decoded, &snap);
        let from_decoded = Simulation::new(&config)
            .resume_from(&decoded)
            .run(records[cut as usize..].iter().copied());
        let straight = Simulation::new(&config).run(records.iter().copied());
        prop_assert_eq!(
            serde_json::to_string(&from_decoded).expect("serializes"),
            serde_json::to_string(&straight).expect("serializes")
        );
    }
}
