//! Property tests for intra-trace sharded simulation.
//!
//! The invariant the sharded executor rests on: for ANY trace, ANY shard
//! count, and every sweep configuration, `Simulation::shards(k)` yields a
//! report byte-identical (as serialized JSON) to the serial run. NoLS
//! shapes seed shard heads directly; log-structured (and host-cached)
//! shapes replay a transition-only prepass and seed shards from its
//! extent-map boundary checkpoints — sharding is exact everywhere, no
//! configuration falls back to serial here. A second property extends the
//! identity to runs resumed from a mid-trace snapshot, where shard
//! seeding must use absolute record indices.

use proptest::prelude::*;
use smrseek_policy::PolicyConfig;
use smrseek_sim::{SimConfig, Simulation};
use smrseek_trace::{Lba, TraceRecord};

/// One arbitrary record: mixed ops, sector-aligned LBAs within a 16 MiB
/// span, 1–64 sectors long.
fn record_strategy() -> impl Strategy<Value = TraceRecord> {
    (0u64..1 << 12, 1u32..64, prop::bool::ANY).prop_map(|(block, sectors, is_read)| {
        let lba = Lba::new(block * 8);
        if is_read {
            TraceRecord::read(block, lba, sectors)
        } else {
            TraceRecord::write(block, lba, sectors)
        }
    })
}

/// The five standard-sweep configs plus the adaptive policy stack, with
/// the report-shaping extras (distances, long-seek series, host cache,
/// fragment tracking, zones) toggled at random, so the direct-seeded NoLS
/// shapes and every checkpoint-seeded log-structured shape — including
/// the one carrying classifier and tiered-cache state — come under the
/// same identity check.
fn sweep_with_adaptive() -> Vec<SimConfig> {
    let mut configs = SimConfig::standard_sweep().to_vec();
    // Small regions so the 16 MiB trace span crosses many classifier
    // regions and gates actually flip inside short random traces.
    configs.push(SimConfig::ls_adaptive().with_policy(PolicyConfig {
        region_sectors: 512,
        ..PolicyConfig::default()
    }));
    configs
}

fn config_strategy() -> impl Strategy<Value = SimConfig> {
    let sweep = sweep_with_adaptive();
    (
        0..sweep.len(),
        prop::bool::ANY,
        prop_oneof![
            1 => Just(0u64),
            2 => 1u64..200,
        ],
        prop_oneof![
            2 => Just(None),
            1 => (1u64..1 << 20).prop_map(Some),
        ],
        prop::bool::ANY,
        prop_oneof![
            3 => Just(None),
            1 => (8u64..1 << 16).prop_map(Some),
        ],
    )
        .prop_map(move |(i, distances, longseek, cache, fragments, zones)| {
            let mut config = sweep[i];
            config.record_distances = distances;
            config.longseek_bucket_ops = longseek;
            config.host_cache_bytes = cache;
            config.track_fragments = fragments;
            config.zone_sectors = zones;
            config
        })
}

fn report_json(report: &smrseek_sim::RunReport) -> String {
    serde_json::to_string(report).expect("report serializes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// shards(k).run_trace == serial run_trace, byte for byte, for
    /// arbitrary traces, shard counts, and sweep configs.
    #[test]
    fn sharded_equals_serial(
        records in prop::collection::vec(record_strategy(), 1..200),
        shards in 1usize..=16,
        config in config_strategy(),
    ) {
        let serial = report_json(&Simulation::new(&config).run_trace(&records));
        let sharded = report_json(
            &Simulation::new(&config).shards(shards).run_trace(&records),
        );
        prop_assert_eq!(
            sharded, serial,
            "{} shards diverged over {} records", shards, records.len()
        );
    }

    /// Resuming from a snapshot and sharding the remainder still equals
    /// the uninterrupted serial run: shard workers must seed their seek
    /// counters and series buckets with absolute indices, not
    /// remainder-relative ones.
    #[test]
    fn sharded_resume_equals_straight_through(
        records in prop::collection::vec(record_strategy(), 2..160),
        cut_fraction in 1u64..100,
        shards in 2usize..=16,
        config in config_strategy(),
    ) {
        let top = smrseek_trace::binary::top_sector(&records);
        let config = config.with_frontier_hint(top);
        let whole = report_json(&Simulation::new(&config).run_trace(&records));
        let cut = ((records.len() as u64 * cut_fraction / 100).max(1) as usize)
            .min(records.len() - 1);
        let run = config.with_checkpoint_every(cut as u64);
        let mut snap = None;
        Simulation::new(&run)
            .checkpoint_sink(|s: &smrseek_sim::EngineSnapshot| {
                if s.logical_ops == cut as u64 {
                    snap = Some(s.clone());
                }
            })
            .run(records.iter().copied());
        let snap = snap.expect("cadence fires at the cut");
        let resumed = Simulation::new(&config)
            .resume_from(&snap)
            .shards(shards)
            .run_trace(&records[cut..]);
        prop_assert_eq!(
            report_json(&resumed), whole,
            "sharded resume from {} of {} diverged", cut, records.len()
        );
    }

    /// Policy-off reports keep the pre-policy wire shape: no sweep
    /// configuration (none of which carries a policy or a flash tier)
    /// may grow a `"policy"` or `"cache_tiers"` key, so downstream
    /// consumers of archived reports never see the new fields unless the
    /// run opted in.
    #[test]
    fn policy_off_reports_keep_pre_policy_shape(
        records in prop::collection::vec(record_strategy(), 1..120),
        config in config_strategy(),
    ) {
        let has_policy = config.policy.is_some();
        let json = report_json(&Simulation::new(&config).run_trace(&records));
        prop_assert_eq!(
            json.contains("\"policy\""), has_policy,
            "policy key presence must match the config: {}", json
        );
        prop_assert_eq!(
            json.contains("\"cache_tiers\""), has_policy,
            "cache_tiers key presence must match the config: {}", json
        );
    }
}

/// The adaptive stack is the only configuration that opts into the new
/// report fields, and it always carries both.
#[test]
fn adaptive_report_carries_policy_and_tier_stats() {
    let records: Vec<TraceRecord> = (0..64)
        .map(|i| TraceRecord::write(i, Lba::new(i * 8), 8))
        .chain((0..64).map(|i| TraceRecord::read(64 + i, Lba::new(i * 8), 8)))
        .collect();
    let report = Simulation::new(&SimConfig::ls_adaptive()).run_trace(&records);
    assert!(
        report.policy.is_some(),
        "adaptive run must report PolicyStats"
    );
    assert!(
        report.cache_tiers.is_some(),
        "adaptive run must report per-tier cache stats"
    );
}
