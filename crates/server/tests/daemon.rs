//! End-to-end tests for `smrseekd` over real loopback sockets.
//!
//! The headline test drives the *actual binary*: it starts `smrseek serve`
//! on an ephemeral port, submits the same job from four concurrent
//! clients, and asserts the daemon's result document is byte-identical to
//! what `smrseek simulate --json` writes offline — the acceptance bar for
//! the daemon never growing a second execution path. The queue-full test
//! uses the in-process server so it can pin `workers = 0` (a knob the CLI
//! does not expose) and make backpressure deterministic.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_smrseek")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smrseekd-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A minimal HTTP/1.1 response as read off the wire.
struct HttpResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl HttpResponse {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn body_str(&self) -> String {
        String::from_utf8(self.body.clone()).expect("utf8 body")
    }
}

/// One request against the daemon; the connection closes after the
/// response (the daemon always answers `Connection: close`).
fn request(addr: &str, method: &str, path: &str, body: Option<&str>) -> HttpResponse {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set timeout");
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("send head");
    stream.write_all(body.as_bytes()).expect("send body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    parse_http(&raw)
}

/// Splits a raw HTTP/1.1 response into status, headers, and body.
fn parse_http(raw: &[u8]) -> HttpResponse {
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a blank line");
    let head = String::from_utf8(raw[..split].to_vec()).expect("utf8 head");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_owned(), v.trim().to_owned()))
        .collect();
    HttpResponse {
        status,
        headers,
        body: raw[split + 4..].to_vec(),
    }
}

/// A `POST /v1/jobs` carrying a client-chosen `x-request-id` header.
fn request_with_id(addr: &str, body: &str, request_id: &str) -> HttpResponse {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set timeout");
    let head = format!(
        "POST /v1/jobs HTTP/1.1\r\nhost: {addr}\r\nx-request-id: {request_id}\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("send head");
    stream.write_all(body.as_bytes()).expect("send body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    parse_http(&raw)
}

/// Pulls one numeric metric value out of a Prometheus exposition.
fn metric(text: &str, name: &str) -> Option<u64> {
    text.lines()
        .find(|l| l.split_whitespace().next() == Some(name))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// Starts `smrseek serve` on an ephemeral port and returns the child and
/// the bound address parsed from its startup line.
fn spawn_daemon(extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(bin())
        .arg("serve")
        .args(["--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn smrseek serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read startup line");
    // Keep draining stdout so the daemon's shutdown message never hits a
    // closed pipe (which would fail its final print and dirty its exit).
    std::thread::spawn(move || {
        let mut rest = String::new();
        let _ = reader.read_to_string(&mut rest);
    });
    let addr = line
        .trim()
        .strip_prefix("smrseekd listening on http://")
        .unwrap_or_else(|| panic!("unexpected startup line {line:?}"))
        .to_owned();
    (child, addr)
}

fn terminate(mut child: Child) {
    let pid = child.id().to_string();
    let killed = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .map(|s| s.success())
        .unwrap_or(false);
    assert!(killed, "sent SIGTERM to the daemon");
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "daemon exits cleanly after SIGTERM");
}

fn write_trace(dir: &Path, name: &str) -> PathBuf {
    let path = dir.join(name);
    let out = Command::new(bin())
        .args(["gen", "hm_1", "--ops", "400", "--out"])
        .arg(&path)
        .output()
        .expect("run gen");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    path
}

#[test]
fn concurrent_clients_share_one_job_and_match_offline_bytes() {
    let dir = temp_dir("e2e");
    let trace = write_trace(&dir, "t.csv");

    // The offline truth: exactly the file `simulate --json` writes.
    let offline_json = dir.join("offline.json");
    let out = Command::new(bin())
        .arg("simulate")
        .arg(&trace)
        .arg("--json")
        .arg(&offline_json)
        .output()
        .expect("run simulate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let offline = std::fs::read(&offline_json).expect("read offline json");

    let (child, addr) = spawn_daemon(&["--workers", "2", "--queue-depth", "8"]);
    let submit_body = format!(
        "{{\"trace\": {{\"path\": {:?}}}}}",
        trace.to_str().expect("utf8 path")
    );

    // Four concurrent clients submit the identical job and then poll for
    // its result. The job table guarantees exactly one of them enqueues.
    let results: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                let body = submit_body.clone();
                scope.spawn(move || {
                    let submit = request(&addr, "POST", "/v1/jobs", Some(&body));
                    assert!(
                        submit.status == 202 || submit.status == 200,
                        "submit got {}: {}",
                        submit.status,
                        submit.body_str()
                    );
                    let id = submit
                        .body_str()
                        .split("\"id\":")
                        .nth(1)
                        .and_then(|s| {
                            s.chars()
                                .take_while(char::is_ascii_digit)
                                .collect::<String>()
                                .parse::<u64>()
                                .ok()
                        })
                        .expect("submit body has an id");
                    let deadline = Instant::now() + Duration::from_secs(60);
                    loop {
                        let poll = request(&addr, "GET", &format!("/v1/jobs/{id}/result"), None);
                        match poll.status {
                            200 => return poll.body,
                            202 => {
                                assert!(Instant::now() < deadline, "job finished in time");
                                std::thread::sleep(Duration::from_millis(20));
                            }
                            other => panic!("poll got {other}: {}", poll.body_str()),
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    for body in &results {
        assert_eq!(
            body, &offline,
            "daemon result is byte-identical to offline simulate --json"
        );
    }

    // All four submissions shared one cache entry: one miss, three hits.
    let metrics = request(&addr, "GET", "/metrics", None);
    assert_eq!(metrics.status, 200);
    let text = metrics.body_str();
    assert_eq!(
        metric(&text, "smrseekd_result_cache_misses_total"),
        Some(1),
        "exactly one miss:\n{text}"
    );
    assert!(
        metric(&text, "smrseekd_result_cache_hits_total").expect("hits metric") >= 3,
        "at least three hits:\n{text}"
    );
    assert_eq!(metric(&text, "smrseekd_traces_registered"), Some(1));
    let records = std::fs::read_to_string(&trace)
        .expect("read trace csv")
        .lines()
        .skip(1) // header
        .filter(|l| !l.trim().is_empty())
        .count() as u64;
    assert_eq!(
        metric(&text, "smrseekd_records_replayed_total"),
        Some(records * 5),
        "one sweep replayed the trace under five layers"
    );

    let health = request(&addr, "GET", "/healthz", None);
    assert_eq!(health.status, 200);
    let health_body = health.body_str();
    assert!(
        health_body.starts_with("ok\n"),
        "first line stays `ok`: {health_body}"
    );
    assert!(health_body.contains("workers: 2"), "{health_body}");
    assert!(health_body.contains("queue_depth: 0"), "{health_body}");
    assert!(health_body.contains("queue_capacity: 8"), "{health_body}");

    // The jobs listing shows the one deduplicated job, finished.
    let listing = request(&addr, "GET", "/v1/jobs", None);
    assert_eq!(listing.status, 200);
    assert_eq!(listing.body_str(), r#"{"jobs":[{"id":1,"status":"done"}]}"#);

    terminate(child);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_dir_survives_daemon_restart_and_skips_the_prefix() {
    let dir = temp_dir("ckpt");
    let trace = write_trace(&dir, "t.csv");
    let ckpt = dir.join("checkpoints");
    let ckpt_arg = ckpt.to_str().expect("utf8 path");
    let submit_body = format!(
        "{{\"trace\": {{\"path\": {:?}}}}}",
        trace.to_str().expect("utf8 path")
    );
    let records = std::fs::read_to_string(&trace)
        .expect("read trace csv")
        .lines()
        .skip(1) // header
        .filter(|l| !l.trim().is_empty())
        .count() as u64;
    assert!(
        records >= 100,
        "trace long enough for at least one checkpoint: {records}"
    );

    let run_once = |expect_hits: u64, expect_misses: u64| -> (Vec<u8>, u64) {
        let (child, addr) = spawn_daemon(&[
            "--workers",
            "1",
            "--checkpoint-dir",
            ckpt_arg,
            "--checkpoint-every",
            "100",
        ]);
        let submit = request(&addr, "POST", "/v1/jobs", Some(&submit_body));
        assert_eq!(submit.status, 202, "{}", submit.body_str());
        let deadline = Instant::now() + Duration::from_secs(60);
        let body = loop {
            let poll = request(&addr, "GET", "/v1/jobs/1/result", None);
            match poll.status {
                200 => break poll.body,
                202 => {
                    assert!(Instant::now() < deadline, "job finished in time");
                    std::thread::sleep(Duration::from_millis(20));
                }
                other => panic!("poll got {other}: {}", poll.body_str()),
            }
        };
        let text = request(&addr, "GET", "/metrics", None).body_str();
        assert_eq!(
            metric(&text, "smrseekd_checkpoint_hits_total"),
            Some(expect_hits),
            "{text}"
        );
        assert_eq!(
            metric(&text, "smrseekd_checkpoint_misses_total"),
            Some(expect_misses),
            "{text}"
        );
        let skipped =
            metric(&text, "smrseekd_checkpoint_records_skipped_total").expect("skipped metric");
        terminate(child);
        (body, skipped)
    };

    // Cold daemon: no checkpoints yet, all five sweep cells miss.
    let (cold, cold_skipped) = run_once(0, 5);
    assert_eq!(cold_skipped, 0);
    // A fresh daemon process sharing the directory resumes every cell
    // from the deepest stored checkpoint.
    let (warm, warm_skipped) = run_once(5, 0);
    assert_eq!(
        warm_skipped,
        (records - records % 100) * 5,
        "each cell skipped up to its last checkpoint"
    );
    assert_eq!(warm, cold, "prefix reuse never changes result bytes");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn status_envelope_inlines_the_result() {
    let (child, addr) = spawn_daemon(&["--workers", "1"]);
    let submit = request(
        &addr,
        "POST",
        "/v1/jobs",
        Some(r#"{"trace": {"profile": "w91", "ops": 200}, "config": {"layer": "ls_cache"}}"#),
    );
    assert_eq!(submit.status, 202, "{}", submit.body_str());
    let deadline = Instant::now() + Duration::from_secs(60);
    let envelope = loop {
        let status = request(&addr, "GET", "/v1/jobs/1", None);
        assert_eq!(status.status, 200);
        let body = status.body_str();
        if body.contains("\"status\":\"done\"") {
            break body;
        }
        assert!(
            !body.contains("\"status\":\"failed\""),
            "job failed: {body}"
        );
        assert!(Instant::now() < deadline, "job finished in time");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(
        envelope.contains("\"layer_name\""),
        "done envelope inlines the RunReport: {envelope}"
    );
    assert_eq!(request(&addr, "GET", "/v1/jobs/99", None).status, 404);
    terminate(child);
}

#[test]
fn full_queue_backpressure_over_the_wire() {
    // workers = 0 keeps the single queue slot occupied deterministically;
    // only the in-process API exposes that, so this test uses it, still
    // talking to the daemon over a real socket.
    let handle = smrseek_server::start(smrseek_server::ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        queue_depth: 1,
        workers: 0,
        ..smrseek_server::ServerConfig::default()
    })
    .expect("start in-process daemon");
    let addr = handle.addr().to_string();

    let first = request(
        &addr,
        "POST",
        "/v1/jobs",
        Some(r#"{"trace": {"profile": "hm_1", "ops": 50}}"#),
    );
    assert_eq!(first.status, 202, "{}", first.body_str());
    let second = request(
        &addr,
        "POST",
        "/v1/jobs",
        Some(r#"{"trace": {"profile": "w91", "ops": 50}}"#),
    );
    assert_eq!(second.status, 503, "{}", second.body_str());
    assert_eq!(
        second.header("retry-after"),
        Some("1"),
        "503 carries Retry-After"
    );
    // A duplicate of the queued job is still a hit, not a rejection.
    let dup = request(
        &addr,
        "POST",
        "/v1/jobs",
        Some(r#"{"trace": {"profile": "hm_1", "ops": 50}}"#),
    );
    assert_eq!(dup.status, 200, "{}", dup.body_str());
    assert!(dup.body_str().contains("\"cache\":\"hit\""));

    let text = request(&addr, "GET", "/metrics", None).body_str();
    assert_eq!(metric(&text, "smrseekd_jobs_rejected_total"), Some(1));
    assert_eq!(metric(&text, "smrseekd_queue_depth"), Some(1));
    assert_eq!(metric(&text, "smrseekd_queue_capacity"), Some(1));
    handle.shutdown();
}

#[test]
fn request_ids_propagate_and_phase_metrics_export() {
    // Own spawn: stderr piped (the access log lives there) and the log
    // threshold raised to info so access lines are emitted.
    let mut child = Command::new(bin())
        .arg("serve")
        .args(["--addr", "127.0.0.1:0", "--workers", "1"])
        .env("SMRSEEK_LOG", "info")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn smrseek serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read startup line");
    std::thread::spawn(move || {
        let mut rest = String::new();
        let _ = reader.read_to_string(&mut rest);
    });
    let addr = line
        .trim()
        .strip_prefix("smrseekd listening on http://")
        .unwrap_or_else(|| panic!("unexpected startup line {line:?}"))
        .to_owned();
    let stderr = child.stderr.take().expect("stderr piped");
    let access_log = std::thread::spawn(move || {
        let mut buf = String::new();
        let _ = BufReader::new(stderr).read_to_string(&mut buf);
        buf
    });

    let submit = request(
        &addr,
        "POST",
        "/v1/jobs",
        Some(r#"{"trace": {"profile": "hm_1", "ops": 300}}"#),
    );
    assert_eq!(submit.status, 202, "{}", submit.body_str());
    let rid = submit
        .header("x-request-id")
        .expect("submit response carries x-request-id")
        .to_owned();
    assert!(
        submit
            .body_str()
            .contains(&format!(r#""request_id":"{rid}""#)),
        "submit body echoes its request id: {}",
        submit.body_str()
    );

    // Every later status poll gets its own id in the header, but the
    // envelope keeps naming the request that created the job.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = request(&addr, "GET", "/v1/jobs/1", None);
        assert_eq!(status.status, 200);
        let poll_rid = status
            .header("x-request-id")
            .expect("status response carries x-request-id");
        assert_ne!(poll_rid, rid, "each request gets a fresh id");
        let body = status.body_str();
        assert!(
            body.contains(&format!(r#""request_id":"{rid}""#)),
            "status envelope names the creating request: {body}"
        );
        if body.contains("\"status\":\"done\"") {
            break;
        }
        assert!(
            !body.contains("\"status\":\"failed\""),
            "job failed: {body}"
        );
        assert!(Instant::now() < deadline, "job finished in time");
        std::thread::sleep(Duration::from_millis(20));
    }

    // With the job done, its engine phase totals are on /metrics, along
    // with the uptime gauge and build info.
    let text = request(&addr, "GET", "/metrics", None).body_str();
    let phase_value = |phase: &str| -> f64 {
        let prefix = format!("smrseekd_engine_phase_seconds_total{{phase=\"{phase}\"}}");
        text.lines()
            .find(|l| l.starts_with(&prefix))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{prefix} exported:\n{text}"))
    };
    for phase in ["ingest", "lookup", "seek"] {
        assert!(
            phase_value(phase) > 0.0,
            "{phase} time accumulated:\n{text}"
        );
    }
    assert!(
        text.contains("smrseekd_build_info{version="),
        "build info exported:\n{text}"
    );
    assert!(
        text.lines()
            .any(|l| l.starts_with("smrseekd_uptime_seconds ")),
        "uptime exported:\n{text}"
    );

    terminate(child);
    let log = access_log.join().expect("stderr thread");
    assert!(
        log.contains(&format!("request_id={rid} POST /v1/jobs status=202")),
        "access log names the submit request:\n{log}"
    );
}

#[test]
fn stalled_clients_are_reaped_without_blocking_live_traffic() {
    // Short idle timeout so the test is quick; only the in-process API
    // exposes the knob.
    let handle = smrseek_server::start(smrseek_server::ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 0,
        idle_timeout: Duration::from_millis(400),
        ..smrseek_server::ServerConfig::default()
    })
    .expect("start in-process daemon");
    let addr = handle.addr().to_string();

    // One client stalls mid-head, one mid-body; neither ever finishes.
    let mut mid_head = TcpStream::connect(&addr).expect("connect");
    mid_head
        .write_all(b"POST /v1/jobs HTTP/1.1\r\ncontent-le")
        .expect("send partial head");
    let mut mid_body = TcpStream::connect(&addr).expect("connect");
    mid_body
        .write_all(b"POST /v1/jobs HTTP/1.1\r\ncontent-length: 500\r\n\r\n{\"trace\"")
        .expect("send partial body");

    // The daemon keeps answering other clients while the stalled pair
    // sits there.
    assert_eq!(request(&addr, "GET", "/healthz", None).status, 200);

    // Both stalled connections get closed by the reaper (EOF on read),
    // with nothing written back.
    for (name, stream) in [("mid-head", &mut mid_head), ("mid-body", &mut mid_body)] {
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("set timeout");
        let mut buf = Vec::new();
        stream
            .read_to_end(&mut buf)
            .unwrap_or_else(|e| panic!("{name}: daemon reset instead of close: {e}"));
        assert!(
            buf.is_empty(),
            "{name}: reaped connection got a response: {:?}",
            String::from_utf8_lossy(&buf)
        );
    }

    let text = request(&addr, "GET", "/metrics", None).body_str();
    assert_eq!(
        metric(&text, "smrseekd_connections_reaped_total"),
        Some(2),
        "both stalled connections were reaped:\n{text}"
    );
    assert!(
        metric(&text, "smrseekd_connections_accepted_total").expect("accepted metric") >= 4,
        "{text}"
    );
    handle.shutdown();
}

#[test]
fn sse_events_stream_replays_job_lifecycle() {
    let handle = smrseek_server::start(smrseek_server::ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        ..smrseek_server::ServerConfig::default()
    })
    .expect("start in-process daemon");
    let addr = handle.addr().to_string();

    let submit = request(
        &addr,
        "POST",
        "/v1/jobs",
        Some(r#"{"trace": {"profile": "hm_1", "ops": 300}}"#),
    );
    assert_eq!(submit.status, 202, "{}", submit.body_str());

    // Subscribe immediately: the stream replays history from the queued
    // frame and follows the job to its terminal frame, then closes.
    let events = request(&addr, "GET", "/v1/jobs/1/events", None);
    assert_eq!(events.status, 200);
    assert_eq!(
        events.header("content-type"),
        Some("text/event-stream"),
        "events endpoint speaks SSE"
    );
    let body = events.body_str();
    let position = |frame: &str| {
        body.find(&format!("event: {frame}\n"))
            .unwrap_or_else(|| panic!("stream carries a {frame} frame: {body}"))
    };
    let (queued, running, done) = (position("queued"), position("running"), position("done"));
    assert!(
        queued < running && running < done,
        "frames arrive in lifecycle order: {body}"
    );
    // The daemon runs with phase accounting on, so the finishing job
    // publishes its engine phase split before the terminal frame.
    let phases = position("phases");
    assert!(running < phases && phases < done, "{body}");
    assert!(body.contains("\"seconds\":"), "{body}");
    assert!(
        body.contains(r#"data: {"id":1,"status":"done"}"#),
        "terminal frame carries the status JSON: {body}"
    );

    // A late subscriber to the finished job replays the same history.
    let replay = request(&addr, "GET", "/v1/jobs/1/events", None);
    assert_eq!(replay.body_str(), body, "late subscribers see full history");

    assert_eq!(
        request(&addr, "GET", "/v1/jobs/99/events", None).status,
        404
    );
    handle.shutdown();
}

/// Reserves two loopback ports by binding and dropping ephemeral
/// listeners. A tiny race (the kernel could hand the port to someone
/// else before the daemon rebinds) is accepted; callers retry.
fn reserve_ports() -> (u16, u16) {
    let a = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let b = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let (pa, pb) = (
        a.local_addr().expect("addr").port(),
        b.local_addr().expect("addr").port(),
    );
    (pa, pb)
}

#[test]
fn two_daemon_fleet_computes_each_unique_sweep_exactly_once() {
    // Start two in-process daemons sharing a --peers list. Ports must be
    // known before either binds, so reserve-then-rebind with retries.
    let (handle_a, handle_b, peers) = {
        let mut attempt = 0;
        loop {
            attempt += 1;
            let (pa, pb) = reserve_ports();
            let peers = vec![format!("127.0.0.1:{pa}"), format!("127.0.0.1:{pb}")];
            let config = |addr: &str| smrseek_server::ServerConfig {
                addr: addr.to_owned(),
                workers: 1,
                peers: peers.clone(),
                ..smrseek_server::ServerConfig::default()
            };
            match smrseek_server::start(config(&peers[0])) {
                Ok(a) => match smrseek_server::start(config(&peers[1])) {
                    Ok(b) => break (a, b, peers),
                    Err(e) => {
                        a.shutdown();
                        assert!(attempt < 5, "could not bind reserved port: {e}");
                    }
                },
                Err(e) => assert!(attempt < 5, "could not bind reserved port: {e}"),
            }
        }
    };

    // Submit 8 distinct sweeps, every one through daemon A. Each must be
    // computed exactly once somewhere in the fleet, and the result must
    // match the offline (in-process, no daemon) replay byte-for-byte.
    let mut forwarded = 0;
    for seed in 0..8u64 {
        let body = format!(r#"{{"trace": {{"profile": "hm_1", "seed": {seed}, "ops": 120}}}}"#);
        let submit = request(&peers[0], "POST", "/v1/jobs", Some(&body));
        assert_eq!(submit.status, 202, "{}", submit.body_str());
        assert!(
            submit.body_str().contains("\"cache\":\"miss\""),
            "distinct seeds never collide: {}",
            submit.body_str()
        );
        // The relay header names the peer that owns (and computed) it.
        let owner_addr = match submit.header("x-smrseek-peer") {
            Some(peer) => {
                assert_eq!(peer, peers[1], "only the other daemon is a relay target");
                forwarded += 1;
                peers[1].clone()
            }
            None => peers[0].clone(),
        };
        let id: u64 = submit
            .body_str()
            .split("\"id\":")
            .nth(1)
            .and_then(|s| {
                s.chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
                    .parse()
                    .ok()
            })
            .expect("submit body has an id");

        let deadline = Instant::now() + Duration::from_secs(60);
        let fleet_doc = loop {
            let poll = request(&owner_addr, "GET", &format!("/v1/jobs/{id}/result"), None);
            match poll.status {
                200 => break poll.body,
                202 => {
                    assert!(Instant::now() < deadline, "job finished in time");
                    std::thread::sleep(Duration::from_millis(10));
                }
                other => panic!("poll got {other}: {}", poll.body_str()),
            }
        };

        // Offline truth, computed with the same engine entry point the
        // CLI uses — no daemon involved.
        let profile = smrseek_workloads::profiles::by_name("hm_1").expect("profile exists");
        let source = smrseek_sim::TraceSource::from_profile(
            &profile,
            &smrseek_sim::experiments::ExpOptions { seed, ops: 120 },
        );
        let work = smrseek_server::worker::JobWork {
            source,
            kind: smrseek_server::worker::JobKind::Sweep,
            digest: None,
        };
        let offline = smrseek_server::worker::run_job(&work, std::num::NonZeroUsize::MIN, None)
            .expect("offline replay");
        assert_eq!(
            String::from_utf8(fleet_doc).expect("utf8 result"),
            offline.doc,
            "fleet result is byte-identical to the offline replay (seed {seed})"
        );
    }
    assert!(
        forwarded > 0,
        "with 8 distinct keys and 128 vnodes, some keys must land on daemon B"
    );

    // Fleet-wide accounting: exactly 8 misses total (each unique sweep
    // computed once), split across the two daemons; A forwarded the rest.
    let text_a = request(&peers[0], "GET", "/metrics", None).body_str();
    let text_b = request(&peers[1], "GET", "/metrics", None).body_str();
    let misses_a = metric(&text_a, "smrseekd_result_cache_misses_total").expect("metric");
    let misses_b = metric(&text_b, "smrseekd_result_cache_misses_total").expect("metric");
    assert_eq!(
        misses_a + misses_b,
        8,
        "each unique sweep enqueued exactly once fleet-wide:\n{text_a}\n{text_b}"
    );
    assert_eq!(
        misses_b as usize, forwarded,
        "B only computed forwarded keys"
    );
    let forwarded_metric = text_a
        .lines()
        .find(|l| {
            l.starts_with(&format!(
                "smrseekd_forwarded_total{{peer=\"{}\"}}",
                peers[1]
            ))
        })
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("per-peer forward counter exported");
    assert_eq!(forwarded_metric as usize, forwarded);

    // Submitting a duplicate of a forwarded key through A is a hit on B.
    let dup = request(
        &peers[0],
        "POST",
        "/v1/jobs",
        Some(r#"{"trace": {"profile": "hm_1", "seed": 0, "ops": 120}}"#),
    );
    assert_eq!(dup.status, 200, "{}", dup.body_str());
    assert!(
        dup.body_str().contains("\"cache\":\"hit\""),
        "{}",
        dup.body_str()
    );

    handle_a.shutdown();
    handle_b.shutdown();
}

#[test]
fn loadgen_thousand_concurrent_submissions_zero_drops() {
    let handle = smrseek_server::start(smrseek_server::ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        queue_depth: 64,
        ..smrseek_server::ServerConfig::default()
    })
    .expect("start in-process daemon");

    let report = smrseek_server::loadgen::run(&smrseek_server::loadgen::LoadConfig {
        addr: handle.addr(),
        requests: 1000,
        concurrency: 128,
        distinct: 4,
        ops: 100,
        timeout: Duration::from_secs(60),
    })
    .expect("load generator runs");

    assert_eq!(report.dropped, 0, "no silent drops: {report:?}");
    assert_eq!(
        report.completed, 1000,
        "every submission got a response: {report:?}"
    );
    for status in report.statuses.keys() {
        assert!(
            [200, 202, 503].contains(status),
            "unexpected status {status}: {report:?}"
        );
    }
    assert!(report.p50_us > 0, "latencies were measured: {report:?}");
    assert!(report.p50_us <= report.p99_us && report.p99_us <= report.p999_us);

    // The daemon saw all thousand connections and reaped none of them.
    let addr = handle.addr().to_string();
    let text = request(&addr, "GET", "/metrics", None).body_str();
    assert!(
        metric(&text, "smrseekd_connections_accepted_total").expect("accepted metric") >= 1000,
        "{text}"
    );
    assert_eq!(
        metric(&text, "smrseekd_connections_reaped_total"),
        Some(0),
        "healthy clients are never reaped:\n{text}"
    );
    handle.shutdown();
}

#[test]
fn version_flag_prints_and_exits_zero() {
    let out = Command::new(bin())
        .arg("--version")
        .output()
        .expect("run --version");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.starts_with("smrseek "),
        "version line names the binary: {text}"
    );
}

#[test]
fn usage_errors_always_carry_the_usage_string() {
    for argv in [
        vec!["--ops"],                // flag missing its value
        vec!["table1", "--ops", "x"], // non-integer value
        vec!["gen"],                  // missing operand
        vec!["serve", "--addr"],      // serve flag missing its value
        vec!["frobnicate"],           // unknown command
    ] {
        let out = Command::new(bin()).args(&argv).output().expect("run CLI");
        assert_eq!(out.status.code(), Some(2), "{argv:?} exits 2");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("usage: smrseek"),
            "{argv:?} stderr carries usage:\n{err}"
        );
    }
}

/// Spawns `smrseek serve` pinned to `addr` as a fleet member. `None`
/// means the reserved port was stolen between release and bind — the
/// caller reserves fresh ports and retries.
fn try_spawn_at(addr: &str, peers: &str) -> Option<Child> {
    let mut child = Command::new(bin())
        .args(["serve", "--addr", addr, "--peers", peers])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn smrseek serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read startup line");
    if !line.contains("listening") {
        let _ = child.kill();
        let _ = child.wait();
        return None;
    }
    // Keep draining stdout so the shutdown message never hits a closed
    // pipe (which would fail the final print and dirty the exit code).
    std::thread::spawn(move || {
        let mut rest = String::new();
        let _ = reader.read_to_string(&mut rest);
    });
    Some(child)
}

/// `(name, pid, span_id, parent_span_id, request_id)` rows from one
/// daemon's `GET /v1/trace/<id>` span array.
fn span_rows(spans: &[serde::Value]) -> Vec<(String, u64, String, Option<String>, String)> {
    use serde::Value;
    spans
        .iter()
        .map(|s| {
            (
                s.get("name")
                    .and_then(Value::as_str)
                    .expect("name")
                    .to_owned(),
                s.get("pid").and_then(Value::as_u64).expect("pid"),
                s.get("span_id")
                    .and_then(Value::as_str)
                    .expect("span_id")
                    .to_owned(),
                s.get("parent_span_id")
                    .and_then(Value::as_str)
                    .map(str::to_owned),
                s.get("request_id")
                    .and_then(Value::as_str)
                    .expect("request_id")
                    .to_owned(),
            )
        })
        .collect()
}

#[test]
fn forwarded_job_yields_one_stitched_trace_across_two_pids() {
    // Two real `smrseek serve` processes sharing a --peers list, so the
    // stitched trace genuinely spans two OS pids (in-process daemons
    // would share one).
    let (child_a, child_b, peers) = {
        let mut attempt = 0;
        loop {
            attempt += 1;
            let (pa, pb) = reserve_ports();
            let peers = vec![format!("127.0.0.1:{pa}"), format!("127.0.0.1:{pb}")];
            let list = peers.join(",");
            let Some(a) = try_spawn_at(&peers[0], &list) else {
                assert!(attempt < 5, "could not bind reserved ports");
                continue;
            };
            match try_spawn_at(&peers[1], &list) {
                Some(b) => break (a, b, peers),
                None => {
                    terminate(a);
                    assert!(attempt < 5, "could not bind reserved ports");
                }
            }
        }
    };

    // Submit distinct sweeps through A until one forwards to B. A
    // client-chosen request id rides along so every span of the trace
    // carries it on both daemons.
    let mut forwarded = None;
    for seed in 0..8u64 {
        let body = format!(r#"{{"trace": {{"profile": "hm_1", "seed": {seed}, "ops": 120}}}}"#);
        let submit = request_with_id(&peers[0], &body, "rq-stitch");
        assert_eq!(submit.status, 202, "{}", submit.body_str());
        let trace = submit
            .header("x-smrseek-trace")
            .expect("every submission response names its trace context")
            .to_owned();
        if submit.header("x-smrseek-peer").is_some() {
            let id: u64 = submit
                .body_str()
                .split("\"id\":")
                .nth(1)
                .and_then(|s| {
                    s.chars()
                        .take_while(char::is_ascii_digit)
                        .collect::<String>()
                        .parse()
                        .ok()
                })
                .expect("submit body has an id");
            forwarded = Some((trace, id));
            break;
        }
    }
    let (trace_header, id) =
        forwarded.expect("with 8 distinct keys and 128 vnodes, some key lands on daemon B");
    let (trace_id, dispatch_span) = trace_header
        .split_once('-')
        .expect("header is <trace>-<span>");
    assert_eq!(trace_id.len(), 32, "{trace_header}");
    assert_eq!(dispatch_span.len(), 16, "{trace_header}");

    // Wait for the owner to finish so its queue/replay spans exist.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let poll = request(&peers[1], "GET", &format!("/v1/jobs/{id}/result"), None);
        match poll.status {
            200 => break,
            202 => {
                assert!(Instant::now() < deadline, "job finished in time");
                std::thread::sleep(Duration::from_millis(10));
            }
            other => panic!("poll got {other}: {}", poll.body_str()),
        }
    }

    // Each daemon serves its own half of the trace.
    let fetch = |addr: &str| {
        let resp = request(addr, "GET", &format!("/v1/trace/{trace_id}"), None);
        assert_eq!(resp.status, 200, "{addr}: {}", resp.body_str());
        let value: serde::Value =
            serde_json::from_str(&resp.body_str()).expect("trace body is JSON");
        assert_eq!(
            value.get("trace_id").and_then(serde::Value::as_str),
            Some(trace_id)
        );
        span_rows(
            value
                .get("spans")
                .and_then(serde::Value::as_array)
                .expect("spans array"),
        )
    };
    let rows_a = fetch(&peers[0]);
    let rows_b = fetch(&peers[1]);

    let find = |rows: &[(String, u64, String, Option<String>, String)], name: &str| {
        rows.iter()
            .find(|(n, ..)| n == name)
            .unwrap_or_else(|| panic!("{name} span present in {rows:?}"))
            .clone()
    };
    let a_dispatch = find(&rows_a, "dispatch");
    let a_forward = find(&rows_a, "forward");
    let b_dispatch = find(&rows_b, "dispatch");
    let b_queue = find(&rows_b, "queue");
    let b_replay = find(&rows_b, "replay");
    assert_eq!(
        rows_a.len(),
        2,
        "origin records dispatch+forward: {rows_a:?}"
    );
    assert_eq!(
        rows_b.len(),
        3,
        "owner records dispatch+queue+replay: {rows_b:?}"
    );

    // One trace, two pids, five spans, fully linked: the origin's
    // dispatch is the root, its forward child carries the hop, the
    // owner's dispatch parents to the forward span, and queue/replay
    // hang off the owner's dispatch.
    assert_ne!(a_dispatch.1, b_dispatch.1, "two distinct OS pids");
    assert_eq!(
        a_dispatch.2, dispatch_span,
        "response header names the root span"
    );
    assert_eq!(a_dispatch.3, None, "root span has no parent");
    assert_eq!(a_forward.3.as_deref(), Some(a_dispatch.2.as_str()));
    assert_eq!(b_dispatch.3.as_deref(), Some(a_forward.2.as_str()));
    assert_eq!(b_queue.3.as_deref(), Some(b_dispatch.2.as_str()));
    assert_eq!(b_replay.3.as_deref(), Some(b_dispatch.2.as_str()));
    for (name, _, _, _, request_id) in [&a_dispatch, &a_forward, &b_dispatch, &b_queue, &b_replay] {
        assert_eq!(
            request_id, "rq-stitch",
            "{name} carries the client-chosen request id on both daemons"
        );
    }

    // The origin's /healthz shows the fleet view, including the forward
    // it just made.
    let health = request(&peers[0], "GET", "/healthz", None).body_str();
    assert!(health.contains("fleet_peers: 2"), "{health}");
    assert!(health.contains("self_vnodes: 64"), "{health}");
    assert!(
        health.contains(&format!("peer {} forwarded=1 errors=0", peers[1])),
        "{health}"
    );

    // `smrseek trace` stitches both halves into one Perfetto file with
    // cross-pid flow arrows.
    let out = temp_dir("stitched").join("trace.json");
    let output = Command::new(bin())
        .args([
            "trace",
            trace_id,
            "--peers",
            &peers.join(","),
            "--out",
            out.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run smrseek trace");
    assert!(
        output.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let summary = String::from_utf8_lossy(&output.stdout);
    assert!(
        summary.contains("5 span(s) across 2 process(es) from 2 daemon(s)"),
        "{summary}"
    );
    let doc = std::fs::read_to_string(&out).expect("trace file written");
    assert!(
        doc.contains("\"ph\":\"s\"") && doc.contains("\"ph\":\"f\""),
        "cross-pid flow arrows present: {doc}"
    );

    terminate(child_a);
    terminate(child_b);
}
