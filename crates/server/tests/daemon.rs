//! End-to-end tests for `smrseekd` over real loopback sockets.
//!
//! The headline test drives the *actual binary*: it starts `smrseek serve`
//! on an ephemeral port, submits the same job from four concurrent
//! clients, and asserts the daemon's result document is byte-identical to
//! what `smrseek simulate --json` writes offline — the acceptance bar for
//! the daemon never growing a second execution path. The queue-full test
//! uses the in-process server so it can pin `workers = 0` (a knob the CLI
//! does not expose) and make backpressure deterministic.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_smrseek")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smrseekd-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// A minimal HTTP/1.1 response as read off the wire.
struct HttpResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl HttpResponse {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    fn body_str(&self) -> String {
        String::from_utf8(self.body.clone()).expect("utf8 body")
    }
}

/// One request against the daemon; the connection closes after the
/// response (the daemon always answers `Connection: close`).
fn request(addr: &str, method: &str, path: &str, body: Option<&str>) -> HttpResponse {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("set timeout");
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("send head");
    stream.write_all(body.as_bytes()).expect("send body");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a blank line");
    let head = String::from_utf8(raw[..split].to_vec()).expect("utf8 head");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_owned(), v.trim().to_owned()))
        .collect();
    HttpResponse {
        status,
        headers,
        body: raw[split + 4..].to_vec(),
    }
}

/// Pulls one numeric metric value out of a Prometheus exposition.
fn metric(text: &str, name: &str) -> Option<u64> {
    text.lines()
        .find(|l| l.split_whitespace().next() == Some(name))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

/// Starts `smrseek serve` on an ephemeral port and returns the child and
/// the bound address parsed from its startup line.
fn spawn_daemon(extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(bin())
        .arg("serve")
        .args(["--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn smrseek serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read startup line");
    // Keep draining stdout so the daemon's shutdown message never hits a
    // closed pipe (which would fail its final print and dirty its exit).
    std::thread::spawn(move || {
        let mut rest = String::new();
        let _ = reader.read_to_string(&mut rest);
    });
    let addr = line
        .trim()
        .strip_prefix("smrseekd listening on http://")
        .unwrap_or_else(|| panic!("unexpected startup line {line:?}"))
        .to_owned();
    (child, addr)
}

fn terminate(mut child: Child) {
    let pid = child.id().to_string();
    let killed = Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .map(|s| s.success())
        .unwrap_or(false);
    assert!(killed, "sent SIGTERM to the daemon");
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "daemon exits cleanly after SIGTERM");
}

fn write_trace(dir: &Path, name: &str) -> PathBuf {
    let path = dir.join(name);
    let out = Command::new(bin())
        .args(["gen", "hm_1", "--ops", "400", "--out"])
        .arg(&path)
        .output()
        .expect("run gen");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    path
}

#[test]
fn concurrent_clients_share_one_job_and_match_offline_bytes() {
    let dir = temp_dir("e2e");
    let trace = write_trace(&dir, "t.csv");

    // The offline truth: exactly the file `simulate --json` writes.
    let offline_json = dir.join("offline.json");
    let out = Command::new(bin())
        .arg("simulate")
        .arg(&trace)
        .arg("--json")
        .arg(&offline_json)
        .output()
        .expect("run simulate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let offline = std::fs::read(&offline_json).expect("read offline json");

    let (child, addr) = spawn_daemon(&["--workers", "2", "--queue-depth", "8"]);
    let submit_body = format!(
        "{{\"trace\": {{\"path\": {:?}}}}}",
        trace.to_str().expect("utf8 path")
    );

    // Four concurrent clients submit the identical job and then poll for
    // its result. The job table guarantees exactly one of them enqueues.
    let results: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                let body = submit_body.clone();
                scope.spawn(move || {
                    let submit = request(&addr, "POST", "/v1/jobs", Some(&body));
                    assert!(
                        submit.status == 202 || submit.status == 200,
                        "submit got {}: {}",
                        submit.status,
                        submit.body_str()
                    );
                    let id = submit
                        .body_str()
                        .split("\"id\":")
                        .nth(1)
                        .and_then(|s| {
                            s.chars()
                                .take_while(char::is_ascii_digit)
                                .collect::<String>()
                                .parse::<u64>()
                                .ok()
                        })
                        .expect("submit body has an id");
                    let deadline = Instant::now() + Duration::from_secs(60);
                    loop {
                        let poll = request(&addr, "GET", &format!("/v1/jobs/{id}/result"), None);
                        match poll.status {
                            200 => return poll.body,
                            202 => {
                                assert!(Instant::now() < deadline, "job finished in time");
                                std::thread::sleep(Duration::from_millis(20));
                            }
                            other => panic!("poll got {other}: {}", poll.body_str()),
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    for body in &results {
        assert_eq!(
            body, &offline,
            "daemon result is byte-identical to offline simulate --json"
        );
    }

    // All four submissions shared one cache entry: one miss, three hits.
    let metrics = request(&addr, "GET", "/metrics", None);
    assert_eq!(metrics.status, 200);
    let text = metrics.body_str();
    assert_eq!(
        metric(&text, "smrseekd_result_cache_misses_total"),
        Some(1),
        "exactly one miss:\n{text}"
    );
    assert!(
        metric(&text, "smrseekd_result_cache_hits_total").expect("hits metric") >= 3,
        "at least three hits:\n{text}"
    );
    assert_eq!(metric(&text, "smrseekd_traces_registered"), Some(1));
    let records = std::fs::read_to_string(&trace)
        .expect("read trace csv")
        .lines()
        .skip(1) // header
        .filter(|l| !l.trim().is_empty())
        .count() as u64;
    assert_eq!(
        metric(&text, "smrseekd_records_replayed_total"),
        Some(records * 5),
        "one sweep replayed the trace under five layers"
    );

    let health = request(&addr, "GET", "/healthz", None);
    assert_eq!(health.status, 200);
    let health_body = health.body_str();
    assert!(
        health_body.starts_with("ok\n"),
        "first line stays `ok`: {health_body}"
    );
    assert!(health_body.contains("workers: 2"), "{health_body}");
    assert!(health_body.contains("queue_depth: 0"), "{health_body}");
    assert!(health_body.contains("queue_capacity: 8"), "{health_body}");

    // The jobs listing shows the one deduplicated job, finished.
    let listing = request(&addr, "GET", "/v1/jobs", None);
    assert_eq!(listing.status, 200);
    assert_eq!(listing.body_str(), r#"{"jobs":[{"id":1,"status":"done"}]}"#);

    terminate(child);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_dir_survives_daemon_restart_and_skips_the_prefix() {
    let dir = temp_dir("ckpt");
    let trace = write_trace(&dir, "t.csv");
    let ckpt = dir.join("checkpoints");
    let ckpt_arg = ckpt.to_str().expect("utf8 path");
    let submit_body = format!(
        "{{\"trace\": {{\"path\": {:?}}}}}",
        trace.to_str().expect("utf8 path")
    );
    let records = std::fs::read_to_string(&trace)
        .expect("read trace csv")
        .lines()
        .skip(1) // header
        .filter(|l| !l.trim().is_empty())
        .count() as u64;
    assert!(
        records >= 100,
        "trace long enough for at least one checkpoint: {records}"
    );

    let run_once = |expect_hits: u64, expect_misses: u64| -> (Vec<u8>, u64) {
        let (child, addr) = spawn_daemon(&[
            "--workers",
            "1",
            "--checkpoint-dir",
            ckpt_arg,
            "--checkpoint-every",
            "100",
        ]);
        let submit = request(&addr, "POST", "/v1/jobs", Some(&submit_body));
        assert_eq!(submit.status, 202, "{}", submit.body_str());
        let deadline = Instant::now() + Duration::from_secs(60);
        let body = loop {
            let poll = request(&addr, "GET", "/v1/jobs/1/result", None);
            match poll.status {
                200 => break poll.body,
                202 => {
                    assert!(Instant::now() < deadline, "job finished in time");
                    std::thread::sleep(Duration::from_millis(20));
                }
                other => panic!("poll got {other}: {}", poll.body_str()),
            }
        };
        let text = request(&addr, "GET", "/metrics", None).body_str();
        assert_eq!(
            metric(&text, "smrseekd_checkpoint_hits_total"),
            Some(expect_hits),
            "{text}"
        );
        assert_eq!(
            metric(&text, "smrseekd_checkpoint_misses_total"),
            Some(expect_misses),
            "{text}"
        );
        let skipped =
            metric(&text, "smrseekd_checkpoint_records_skipped_total").expect("skipped metric");
        terminate(child);
        (body, skipped)
    };

    // Cold daemon: no checkpoints yet, all five sweep cells miss.
    let (cold, cold_skipped) = run_once(0, 5);
    assert_eq!(cold_skipped, 0);
    // A fresh daemon process sharing the directory resumes every cell
    // from the deepest stored checkpoint.
    let (warm, warm_skipped) = run_once(5, 0);
    assert_eq!(
        warm_skipped,
        (records - records % 100) * 5,
        "each cell skipped up to its last checkpoint"
    );
    assert_eq!(warm, cold, "prefix reuse never changes result bytes");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn status_envelope_inlines_the_result() {
    let (child, addr) = spawn_daemon(&["--workers", "1"]);
    let submit = request(
        &addr,
        "POST",
        "/v1/jobs",
        Some(r#"{"trace": {"profile": "w91", "ops": 200}, "config": {"layer": "ls_cache"}}"#),
    );
    assert_eq!(submit.status, 202, "{}", submit.body_str());
    let deadline = Instant::now() + Duration::from_secs(60);
    let envelope = loop {
        let status = request(&addr, "GET", "/v1/jobs/1", None);
        assert_eq!(status.status, 200);
        let body = status.body_str();
        if body.contains("\"status\":\"done\"") {
            break body;
        }
        assert!(
            !body.contains("\"status\":\"failed\""),
            "job failed: {body}"
        );
        assert!(Instant::now() < deadline, "job finished in time");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(
        envelope.contains("\"layer_name\""),
        "done envelope inlines the RunReport: {envelope}"
    );
    assert_eq!(request(&addr, "GET", "/v1/jobs/99", None).status, 404);
    terminate(child);
}

#[test]
fn full_queue_backpressure_over_the_wire() {
    // workers = 0 keeps the single queue slot occupied deterministically;
    // only the in-process API exposes that, so this test uses it, still
    // talking to the daemon over a real socket.
    let handle = smrseek_server::start(smrseek_server::ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        queue_depth: 1,
        workers: 0,
        job_threads: std::num::NonZeroUsize::MIN,
        checkpoint_dir: None,
        checkpoint_every: 100_000,
    })
    .expect("start in-process daemon");
    let addr = handle.addr().to_string();

    let first = request(
        &addr,
        "POST",
        "/v1/jobs",
        Some(r#"{"trace": {"profile": "hm_1", "ops": 50}}"#),
    );
    assert_eq!(first.status, 202, "{}", first.body_str());
    let second = request(
        &addr,
        "POST",
        "/v1/jobs",
        Some(r#"{"trace": {"profile": "w91", "ops": 50}}"#),
    );
    assert_eq!(second.status, 503, "{}", second.body_str());
    assert_eq!(
        second.header("retry-after"),
        Some("1"),
        "503 carries Retry-After"
    );
    // A duplicate of the queued job is still a hit, not a rejection.
    let dup = request(
        &addr,
        "POST",
        "/v1/jobs",
        Some(r#"{"trace": {"profile": "hm_1", "ops": 50}}"#),
    );
    assert_eq!(dup.status, 200, "{}", dup.body_str());
    assert!(dup.body_str().contains("\"cache\":\"hit\""));

    let text = request(&addr, "GET", "/metrics", None).body_str();
    assert_eq!(metric(&text, "smrseekd_jobs_rejected_total"), Some(1));
    assert_eq!(metric(&text, "smrseekd_queue_depth"), Some(1));
    assert_eq!(metric(&text, "smrseekd_queue_capacity"), Some(1));
    handle.shutdown();
}

#[test]
fn request_ids_propagate_and_phase_metrics_export() {
    // Own spawn: stderr piped (the access log lives there) and the log
    // threshold raised to info so access lines are emitted.
    let mut child = Command::new(bin())
        .arg("serve")
        .args(["--addr", "127.0.0.1:0", "--workers", "1"])
        .env("SMRSEEK_LOG", "info")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn smrseek serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read startup line");
    std::thread::spawn(move || {
        let mut rest = String::new();
        let _ = reader.read_to_string(&mut rest);
    });
    let addr = line
        .trim()
        .strip_prefix("smrseekd listening on http://")
        .unwrap_or_else(|| panic!("unexpected startup line {line:?}"))
        .to_owned();
    let stderr = child.stderr.take().expect("stderr piped");
    let access_log = std::thread::spawn(move || {
        let mut buf = String::new();
        let _ = BufReader::new(stderr).read_to_string(&mut buf);
        buf
    });

    let submit = request(
        &addr,
        "POST",
        "/v1/jobs",
        Some(r#"{"trace": {"profile": "hm_1", "ops": 300}}"#),
    );
    assert_eq!(submit.status, 202, "{}", submit.body_str());
    let rid = submit
        .header("x-request-id")
        .expect("submit response carries x-request-id")
        .to_owned();
    assert!(
        submit
            .body_str()
            .contains(&format!(r#""request_id":"{rid}""#)),
        "submit body echoes its request id: {}",
        submit.body_str()
    );

    // Every later status poll gets its own id in the header, but the
    // envelope keeps naming the request that created the job.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = request(&addr, "GET", "/v1/jobs/1", None);
        assert_eq!(status.status, 200);
        let poll_rid = status
            .header("x-request-id")
            .expect("status response carries x-request-id");
        assert_ne!(poll_rid, rid, "each request gets a fresh id");
        let body = status.body_str();
        assert!(
            body.contains(&format!(r#""request_id":"{rid}""#)),
            "status envelope names the creating request: {body}"
        );
        if body.contains("\"status\":\"done\"") {
            break;
        }
        assert!(
            !body.contains("\"status\":\"failed\""),
            "job failed: {body}"
        );
        assert!(Instant::now() < deadline, "job finished in time");
        std::thread::sleep(Duration::from_millis(20));
    }

    // With the job done, its engine phase totals are on /metrics, along
    // with the uptime gauge and build info.
    let text = request(&addr, "GET", "/metrics", None).body_str();
    let phase_value = |phase: &str| -> f64 {
        let prefix = format!("smrseekd_engine_phase_seconds_total{{phase=\"{phase}\"}}");
        text.lines()
            .find(|l| l.starts_with(&prefix))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{prefix} exported:\n{text}"))
    };
    for phase in ["ingest", "lookup", "seek"] {
        assert!(
            phase_value(phase) > 0.0,
            "{phase} time accumulated:\n{text}"
        );
    }
    assert!(
        text.contains("smrseekd_build_info{version="),
        "build info exported:\n{text}"
    );
    assert!(
        text.lines()
            .any(|l| l.starts_with("smrseekd_uptime_seconds ")),
        "uptime exported:\n{text}"
    );

    terminate(child);
    let log = access_log.join().expect("stderr thread");
    assert!(
        log.contains(&format!("request_id={rid} POST /v1/jobs status=202")),
        "access log names the submit request:\n{log}"
    );
}

#[test]
fn version_flag_prints_and_exits_zero() {
    let out = Command::new(bin())
        .arg("--version")
        .output()
        .expect("run --version");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.starts_with("smrseek "),
        "version line names the binary: {text}"
    );
}

#[test]
fn usage_errors_always_carry_the_usage_string() {
    for argv in [
        vec!["--ops"],                // flag missing its value
        vec!["table1", "--ops", "x"], // non-integer value
        vec!["gen"],                  // missing operand
        vec!["serve", "--addr"],      // serve flag missing its value
        vec!["frobnicate"],           // unknown command
    ] {
        let out = Command::new(bin()).args(&argv).output().expect("run CLI");
        assert_eq!(out.status.code(), Some(2), "{argv:?} exits 2");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("usage: smrseek"),
            "{argv:?} stderr carries usage:\n{err}"
        );
    }
}
