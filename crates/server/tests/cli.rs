//! End-to-end tests of the `smrseek` binary: argument handling, figure
//! commands, JSON output, trace generation and ingestion.

use std::path::PathBuf;
use std::process::{Command, Output};

fn smrseek(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_smrseek"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn smrseek_env(args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_smrseek"));
    cmd.args(args);
    for (key, value) in env {
        cmd.env(key, value);
    }
    cmd.output().expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("smrseek_cli_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = smrseek(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn unknown_command_fails() {
    let out = smrseek(&["fig99"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn list_shows_all_profiles() {
    let out = smrseek(&["list"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for name in ["usr_1", "w91", "ts_0", "w106"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn fig11_runs_small() {
    let out = smrseek(&["fig11", "--ops", "1500", "--seed", "3"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("Fig 11a"));
    assert!(text.contains("Fig 11b"));
    assert!(text.contains("LS+cache"));
}

#[test]
fn fig8_json_output_is_valid() {
    let json_path = tmp("fig8.json");
    let out = smrseek(&[
        "fig8",
        "--ops",
        "1500",
        "--json",
        json_path.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let data = std::fs::read_to_string(&json_path).expect("json written");
    let value: serde_json::Value = serde_json::from_str(&data).expect("valid JSON");
    assert_eq!(value.as_array().expect("array of rows").len(), 21);
    std::fs::remove_file(&json_path).ok();
}

#[test]
fn gen_characterize_simulate_pipeline() {
    let csv_path = tmp("w95.csv");
    let out = smrseek(&[
        "gen",
        "w95",
        "--ops",
        "1200",
        "--out",
        csv_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = smrseek(&["characterize", csv_path.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("reads"));

    let out = smrseek(&["simulate", csv_path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("NoLS"));
    assert!(text.contains("LS+cache"));
    std::fs::remove_file(&csv_path).ok();
}

#[test]
fn gen_without_out_prints_csv() {
    let out = smrseek(&["gen", "hm_1", "--ops", "200"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.starts_with("timestamp_us,op,offset_bytes,length_bytes"));
    assert!(text.lines().count() > 100);
}

#[test]
fn gen_unknown_profile_fails() {
    let out = smrseek(&["gen", "bogus"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown profile"));
}

#[test]
fn simulate_blktrace_format() {
    let blk_path = tmp("t.blk");
    std::fs::write(
        &blk_path,
        "  8,0 1 1 0.000000000 1 Q W 0 + 64 [x]\n  8,0 1 2 0.100000000 1 Q R 0 + 64 [x]\n",
    )
    .expect("write temp");
    // Auto-sniffed.
    let out = smrseek(&["characterize", blk_path.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("1 reads / 1 writes"));
    // Explicit format flag.
    let out = smrseek(&[
        "characterize",
        blk_path.to_str().unwrap(),
        "--format",
        "blktrace",
    ]);
    assert!(out.status.success());
    std::fs::remove_file(&blk_path).ok();
}

#[test]
fn binary_trace_sniffed_by_magic_not_mistaken_for_csv() {
    // Regression: a binary `.smrt` file fed to simulate/characterize used
    // to fall through to the line-based sniffer and mis-detect as CSV.
    // The magic check must win, for v1 and v2 images alike.
    use smrseek_trace::binary::{write_binary, write_binary_v2};
    use smrseek_trace::{Lba, TraceRecord};
    let records = vec![
        TraceRecord::write(0, Lba::new(0), 8),
        TraceRecord::read(10, Lba::new(64), 16),
    ];
    let mut v1 = Vec::new();
    write_binary(&mut v1, &records).expect("vec write cannot fail");
    let mut v2 = Vec::new();
    write_binary_v2(&mut v2, &records).expect("vec write cannot fail");
    for (version, buf) in [("v1", v1), ("v2", v2)] {
        let path = tmp(&format!("magic.{version}.smrt"));
        std::fs::write(&path, &buf).expect("write temp");
        for command in ["characterize", "simulate"] {
            let out = smrseek(&[command, path.to_str().unwrap()]);
            assert!(
                out.status.success(),
                "{version} {command}: {}",
                String::from_utf8_lossy(&out.stderr)
            );
        }
        let out = smrseek(&["characterize", path.to_str().unwrap()]);
        assert!(stdout(&out).contains("1 reads / 1 writes"), "{version}");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn convert_then_simulate_matches_csv_run() {
    let csv = tmp("convert.csv");
    let smrt = tmp("convert.smrt");
    let out = smrseek(&["gen", "w91", "--ops", "800", "--out", csv.to_str().unwrap()]);
    assert!(out.status.success());
    let out = smrseek(&["convert", csv.to_str().unwrap(), smrt.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("binary v2"));
    let from_csv = smrseek(&["simulate", csv.to_str().unwrap()]);
    let from_bin = smrseek(&["simulate", smrt.to_str().unwrap()]);
    assert!(from_csv.status.success() && from_bin.status.success());
    // Same seek table (first stdout line differs only in the path shown).
    let table = |out: &Output| stdout(out).lines().skip(1).collect::<Vec<_>>().join("\n");
    assert_eq!(table(&from_csv), table(&from_bin));
    std::fs::remove_file(&csv).ok();
    std::fs::remove_file(&smrt).ok();
}

#[test]
fn simulate_cache_is_byte_identical_and_replays_sidecar() {
    let csv = tmp("cached.csv");
    let sidecar = tmp("cached.csv.smrt");
    std::fs::remove_file(&sidecar).ok();
    let out = smrseek(&[
        "gen",
        "hm_1",
        "--ops",
        "600",
        "--out",
        csv.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let j = |n: &str| tmp(n).to_str().unwrap().to_owned();
    let (ju, j1, j2) = (j("cached_u.json"), j("cached_1.json"), j("cached_2.json"));
    let uncached = smrseek(&["simulate", csv.to_str().unwrap(), "--json", &ju]);
    let first = smrseek(&["simulate", csv.to_str().unwrap(), "--cache", "--json", &j1]);
    assert!(sidecar.exists(), "first cached run writes the sidecar");
    // `-v` so the cache chatter (info level) reaches stderr.
    let second = smrseek(&[
        "simulate",
        csv.to_str().unwrap(),
        "--cache",
        "--json",
        &j2,
        "-v",
    ]);
    assert!(uncached.status.success() && first.status.success() && second.status.success());
    assert_eq!(
        stdout(&uncached),
        stdout(&first),
        "--cache must not change stdout"
    );
    assert_eq!(stdout(&uncached), stdout(&second));
    let read = |p: &str| std::fs::read(p).expect("json written");
    assert_eq!(read(&ju), read(&j1), "--cache must not change JSON");
    assert_eq!(read(&ju), read(&j2));
    assert!(
        String::from_utf8_lossy(&second.stderr).contains("cache: replaying"),
        "second run replays the mmapped sidecar"
    );
    for p in [ju, j1, j2] {
        std::fs::remove_file(p).ok();
    }
    std::fs::remove_file(&csv).ok();
    std::fs::remove_file(&sidecar).ok();
}

#[test]
fn simulate_json_handles_zero_baseline_trace() {
    // A fully sequential trace incurs zero NoLS seeks, making SAF
    // components infinite. JSON output must still succeed (components
    // serialize as null), not die on a non-finite float.
    let path = tmp("seq.csv");
    let mut csv = String::from("timestamp_us,op,offset_bytes,length_bytes\n");
    for i in 0..64u64 {
        csv.push_str(&format!("{},W,{},4096\n", i * 10, i * 4096));
    }
    std::fs::write(&path, csv).expect("write temp");
    let json_path = tmp("seq.json");
    let out = smrseek(&[
        "simulate",
        path.to_str().unwrap(),
        "--json",
        json_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let data = std::fs::read_to_string(&json_path).expect("json written");
    let value: serde_json::Value = serde_json::from_str(&data).expect("valid JSON");
    assert!(
        value.as_array().is_some_and(|rows| !rows.is_empty()),
        "layer rows present"
    );
    assert!(data.contains("null"), "infinite SAF components become null");
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&json_path).ok();
}

#[test]
fn characterize_missing_file_fails_cleanly() {
    let out = smrseek(&["characterize", "/nonexistent/trace.csv"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
}

#[test]
fn bad_flag_values_rejected() {
    for args in [
        &["fig2", "--ops", "abc"][..],
        &["fig2", "--seed"][..],
        &["fig2", "--format", "weird"][..],
    ] {
        let out = smrseek(args);
        assert!(!out.status.success(), "{args:?} should fail");
    }
}

#[test]
fn sniffs_msr_csv() {
    // 7 comma-separated fields: Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime.
    let path = tmp("sniff.msr.csv");
    std::fs::write(
        &path,
        "128166372003061629,hm,1,Read,2449920,4096,1339\n\
         128166372016853766,hm,1,Write,2449920,4096,231\n",
    )
    .expect("write temp");
    let out = smrseek(&["characterize", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("1 reads / 1 writes"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn sniffs_cp_csv() {
    // 4 comma-separated fields, with the CloudPhysics header line.
    let path = tmp("sniff.cp.csv");
    std::fs::write(
        &path,
        "timestamp_us,op,offset_bytes,length_bytes\n\
         0,R,4096,4096\n\
         100,W,8192,8192\n",
    )
    .expect("write temp");
    let out = smrseek(&["characterize", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("1 reads / 1 writes"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn sniffs_blkparse_text() {
    // Whitespace-separated with a "+" sector-count field.
    let path = tmp("sniff.blk");
    std::fs::write(
        &path,
        "  8,0 1 1 0.000000000 1 Q R 128 + 8 [fio]\n  8,0 1 2 0.000200000 1 Q W 136 + 8 [fio]\n",
    )
    .expect("write temp");
    let out = smrseek(&["characterize", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout(&out).contains("1 reads / 1 writes"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn misdetected_format_fails_cleanly_not_panics() {
    // Looks like a CloudPhysics CSV to the sniffer (few comma fields) but
    // the fields are garbage: the parser must report a parse error (exit
    // code 65), not panic, and stderr must name the offending file.
    let path = tmp("sniff.garbage");
    std::fs::write(&path, "hello,world\nthis,is,not,a,trace\n").expect("write temp");
    let out = smrseek(&["characterize", path.to_str().unwrap()]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(65), "parse errors exit with 65");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "clean message, got: {err}");
    assert!(!err.contains("panicked"), "must not panic: {err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn sniff_empty_file_fails_cleanly() {
    let path = tmp("sniff.empty");
    std::fs::write(&path, "# only a comment\n\n").expect("write temp");
    let out = smrseek(&["characterize", path.to_str().unwrap()]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(65));
    assert!(String::from_utf8_lossy(&out.stderr).contains("no data lines"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn exit_codes_distinguish_usage_from_io() {
    // Bad usage: exit 2.
    let out = smrseek(&["fig99"]);
    assert_eq!(out.status.code(), Some(2));
    let out = smrseek(&["fig2", "--ops", "abc"]);
    assert_eq!(out.status.code(), Some(2));
    // I/O failure: exit 74 (EX_IOERR).
    let out = smrseek(&["characterize", "/nonexistent/trace.csv"]);
    assert_eq!(out.status.code(), Some(74));
}

#[test]
fn all_smoke_test_runs_every_experiment() {
    let out = smrseek(&["all", "--ops", "2000", "-v"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    for heading in ["Table I", "Fig 2a", "Fig 11b", "Extension"] {
        assert!(text.contains(heading), "missing {heading}");
    }
    // The per-run timing summary goes to stderr, never stdout.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("19 experiments"), "timing summary on stderr");
    assert!(!text.contains("experiments,"), "stdout stays clean");
}

#[test]
fn all_json_is_byte_identical_across_thread_counts() {
    let p1 = tmp("all_t1.json");
    let p4 = tmp("all_t4.json");
    let out1 = smrseek(&[
        "all",
        "--ops",
        "1000",
        "--threads",
        "1",
        "--json",
        p1.to_str().unwrap(),
    ]);
    let out4 = smrseek(&[
        "all",
        "--ops",
        "1000",
        "--threads",
        "4",
        "--json",
        p4.to_str().unwrap(),
    ]);
    assert!(out1.status.success() && out4.status.success());
    assert_eq!(
        stdout(&out1),
        stdout(&out4),
        "stdout must not depend on --threads"
    );
    let j1 = std::fs::read(&p1).expect("json written");
    let j4 = std::fs::read(&p4).expect("json written");
    assert!(!j1.is_empty());
    assert_eq!(j1, j4, "JSON must be byte-identical for any --threads");
    std::fs::remove_file(&p1).ok();
    std::fs::remove_file(&p4).ok();
}

#[test]
fn snapshot_then_resume_matches_simulate_bytes() {
    let csv = tmp("resume.csv");
    let ckpt = tmp("resume_ckpts");
    std::fs::remove_dir_all(&ckpt).ok();
    let out = smrseek(&[
        "gen",
        "usr_1",
        "--ops",
        "900",
        "--out",
        csv.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let j = |n: &str| tmp(n).to_str().unwrap().to_owned();
    let (js, jr, jc) = (j("resume_s.json"), j("resume_r.json"), j("resume_c.json"));

    // The straight-through truth: stdout and JSON of plain `simulate`.
    let sim = smrseek(&["simulate", csv.to_str().unwrap(), "--json", &js]);
    assert!(sim.status.success());

    // Checkpoint the sweep partway in, then resume from the stored state.
    let snap = smrseek(&[
        "snapshot",
        csv.to_str().unwrap(),
        ckpt.to_str().unwrap(),
        "--at",
        "250",
    ]);
    assert!(
        snap.status.success(),
        "{}",
        String::from_utf8_lossy(&snap.stderr)
    );
    let snap_text = stdout(&snap);
    assert!(
        snap_text.contains("checkpointed 250 of"),
        "snapshot names its cut point: {snap_text}"
    );
    assert_eq!(
        snap_text.matches(".smrs").count(),
        5,
        "one checkpoint file per sweep config: {snap_text}"
    );

    let resumed = smrseek(&[
        "resume",
        csv.to_str().unwrap(),
        ckpt.to_str().unwrap(),
        "--json",
        &jr,
        "-v",
    ]);
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert!(
        String::from_utf8_lossy(&resumed.stderr).contains("5 checkpoint hit(s), 0 miss(es)"),
        "all five cells resumed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        stdout(&sim),
        stdout(&resumed),
        "resume stdout is byte-identical to simulate"
    );
    let read = |p: &str| std::fs::read(p).expect("json written");
    assert_eq!(read(&js), read(&jr), "resume JSON is byte-identical");

    // Resuming against an empty store degrades to a cold run, same bytes.
    let empty = tmp("resume_empty_ckpts");
    std::fs::remove_dir_all(&empty).ok();
    let cold = smrseek(&[
        "resume",
        csv.to_str().unwrap(),
        empty.to_str().unwrap(),
        "--json",
        &jc,
        "-v",
    ]);
    assert!(cold.status.success());
    assert!(
        String::from_utf8_lossy(&cold.stderr).contains("0 checkpoint hit(s), 5 miss(es)"),
        "{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    assert_eq!(stdout(&sim), stdout(&cold));
    assert_eq!(read(&js), read(&jc));

    // Misuse is a usage error, not a crash.
    let no_at = smrseek(&["snapshot", csv.to_str().unwrap(), ckpt.to_str().unwrap()]);
    assert_eq!(no_at.status.code(), Some(2), "snapshot without --at");
    let too_deep = smrseek(&[
        "snapshot",
        csv.to_str().unwrap(),
        ckpt.to_str().unwrap(),
        "--at",
        "99999999",
    ]);
    assert_eq!(too_deep.status.code(), Some(2), "--at beyond the trace");

    for p in [js, jr, jc] {
        std::fs::remove_file(p).ok();
    }
    std::fs::remove_file(&csv).ok();
    std::fs::remove_dir_all(&ckpt).ok();
}

#[test]
fn threads_flag_rejects_zero() {
    let out = smrseek(&["fig2", "--threads", "0"]);
    assert!(!out.status.success());
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads"));
}

#[test]
fn extension_commands_run() {
    for command in ["timeamp", "hostcache", "clean"] {
        let out = smrseek(&[command, "--ops", "1000"]);
        assert!(
            out.status.success(),
            "{command}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(stdout(&out).contains("Extension"));
    }
}

#[test]
fn stderr_is_quiet_by_default_and_env_restores_chatter() {
    // Successful runs print nothing to stderr at the default (warn)
    // threshold; SMRSEEK_LOG=debug restores the progress lines.
    let quiet = smrseek_env(&["fig3", "--ops", "500"], &[("SMRSEEK_LOG", "warn")]);
    assert!(quiet.status.success());
    assert_eq!(
        String::from_utf8_lossy(&quiet.stderr),
        "",
        "no chatter at the default level"
    );
    let chatty = smrseek_env(&["fig3", "--ops", "500"], &[("SMRSEEK_LOG", "debug")]);
    assert!(chatty.status.success());
    assert!(
        String::from_utf8_lossy(&chatty.stderr).contains("fig3: done in"),
        "{}",
        String::from_utf8_lossy(&chatty.stderr)
    );
    assert_eq!(
        stdout(&quiet),
        stdout(&chatty),
        "logging never touches stdout"
    );
}

#[test]
fn log_json_emits_structured_lines() {
    let out = smrseek(&["fig3", "--ops", "500", "-v", "--log-json"]);
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    let mut saw_done = false;
    for line in err.lines() {
        let value: serde_json::Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("stderr line is not JSON ({e}): {line}"));
        assert!(value.get("ts_us").is_some(), "{line}");
        assert!(value.get("level").is_some(), "{line}");
        let msg = value
            .get("msg")
            .and_then(serde_json::Value::as_str)
            .expect("msg field");
        saw_done |= msg.contains("fig3: done in");
    }
    assert!(saw_done, "timing line present as JSON: {err}");
}

#[test]
fn profile_writes_valid_chrome_trace_with_nested_phases() {
    let csv = tmp("profile.csv");
    let json = tmp("profile.json");
    let out = smrseek(&[
        "gen",
        "hm_1",
        "--ops",
        "800",
        "--out",
        csv.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = smrseek(&[
        "profile",
        csv.to_str().unwrap(),
        "--out",
        json.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("span(s)"), "{text}");
    for phase in ["ingest", "lookup", "seek", "checkpoint"] {
        assert!(text.contains(phase), "phase table lists {phase}: {text}");
    }
    let data = std::fs::read_to_string(&json).expect("trace written");
    let value: serde_json::Value = serde_json::from_str(&data).expect("valid Chrome trace JSON");
    let events = value
        .get("traceEvents")
        .and_then(serde_json::Value::as_array)
        .expect("traceEvents array");
    // One complete event per sweep cell, each with phase children that
    // nest inside the parent (same tid, time-contained).
    let span = |e: &serde_json::Value| -> (String, f64, f64, i64) {
        (
            e.get("name")
                .and_then(serde_json::Value::as_str)
                .expect("name")
                .to_owned(),
            e.get("ts").and_then(serde_json::Value::as_f64).expect("ts"),
            e.get("dur")
                .and_then(serde_json::Value::as_f64)
                .expect("dur"),
            e.get("tid")
                .and_then(serde_json::Value::as_i64)
                .expect("tid"),
        )
    };
    let cells: Vec<_> = events
        .iter()
        .map(span)
        .filter(|(name, ..)| name.starts_with("cell:"))
        .collect();
    assert_eq!(cells.len(), 5, "one span per sweep cell: {data}");
    let phases: Vec<_> = events
        .iter()
        .map(span)
        .filter(|(name, ..)| name.starts_with("phase:"))
        .collect();
    assert!(
        phases
            .iter()
            .any(|(name, _, dur, _)| name == "phase:lookup" && *dur > 0.0),
        "non-zero lookup phase: {data}"
    );
    for phase in ["phase:ingest", "phase:seek", "phase:checkpoint"] {
        assert!(
            phases.iter().any(|(name, ..)| name == phase),
            "{phase} present: {data}"
        );
    }
    for (name, ts, dur, tid) in &phases {
        let eps = 1e-6;
        assert!(
            cells.iter().any(|(_, cts, cdur, ctid)| {
                ctid == tid && *ts + eps >= *cts && ts + dur <= cts + cdur + eps
            }),
            "{name} nests inside a cell span"
        );
    }
    // `ph:"X"` complete events throughout.
    for e in events {
        assert_eq!(
            e.get("ph").and_then(serde_json::Value::as_str),
            Some("X"),
            "{e:?}"
        );
    }
    std::fs::remove_file(&csv).ok();
    std::fs::remove_file(&json).ok();
}

#[test]
fn profile_without_trace_is_a_usage_error() {
    let out = smrseek(&["profile"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("profile needs a trace file"));
}

#[test]
fn simulate_output_is_invariant_under_shard_policy() {
    let csv = tmp("shards.csv");
    let out = smrseek(&[
        "gen",
        "mds_0",
        "--ops",
        "4000",
        "--out",
        csv.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let runs: Vec<(String, Vec<u8>)> = ["serial", "auto", "4"]
        .iter()
        .map(|policy| {
            let json = tmp(&format!("shards_{policy}.json"));
            let out = smrseek(&[
                "simulate",
                csv.to_str().unwrap(),
                "--shards",
                policy,
                "--threads",
                "4",
                "--json",
                json.to_str().unwrap(),
            ]);
            assert!(out.status.success(), "--shards {policy} failed");
            let bytes = std::fs::read(&json).expect("json written");
            std::fs::remove_file(&json).ok();
            (stdout(&out), bytes)
        })
        .collect();
    for (text, bytes) in &runs[1..] {
        assert_eq!(text, &runs[0].0, "stdout must not depend on --shards");
        assert_eq!(bytes, &runs[0].1, "JSON must not depend on --shards");
    }
    std::fs::remove_file(&csv).ok();
}

#[test]
fn bad_shards_value_rejected() {
    let out = smrseek(&["simulate", "whatever", "--shards", "zero"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--shards"));
}

#[test]
fn bench_emits_throughput_json() {
    let json = tmp("bench.json");
    let out = smrseek(&["bench", "--ops", "50000", "--json", json.to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("ingest") && text.contains("serial") && text.contains("shard"));
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&json).expect("json written"))
            .expect("bench JSON parses");
    let text = serde_json::to_string(&parsed).expect("re-serializes");
    assert!(text.contains("\"records\":50000"));
    assert!(text.contains("speedup_vs_serial"));
    std::fs::remove_file(&json).ok();
}
