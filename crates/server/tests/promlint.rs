//! A promtool-style lint for the daemon's Prometheus text exposition.
//!
//! `GET /metrics` output is consumed by scrapers that silently drop
//! malformed families, so the format is a compatibility surface worth
//! testing like one: every series must carry `# HELP`/`# TYPE` before its
//! first sample, label values must be well-formed (escaped quotes,
//! backslashes, no stray characters), and histogram buckets must be
//! cumulative and terminated by `le="+Inf"`. The lint runs against the
//! real exposition (both a bare `Metrics::render` and the in-process
//! `/metrics` route) and against hand-broken expositions to prove it
//! actually bites.

use smrseek_server::http::Request;
use smrseek_server::metrics::{Endpoint, Metrics};
use smrseek_server::{route, ServerState};
use std::collections::{HashMap, HashSet};
use std::time::Duration;

/// Parses a `{key="value",...}` label block, enforcing escape rules.
fn parse_labels(block: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = block.chars().peekable();
    loop {
        if chars.peek().is_none() {
            return Ok(labels);
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("bad label name {key:?} in {block:?}"));
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key:?} value not quoted in {block:?}"));
        }
        let mut value = String::new();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '"' => {
                    closed = true;
                    break;
                }
                '\\' => match chars.next() {
                    Some('\\' | '"' | 'n') => value.push(c),
                    other => {
                        return Err(format!("bad escape \\{other:?} in label {key:?}"));
                    }
                },
                c => value.push(c),
            }
        }
        if !closed {
            return Err(format!("unterminated value for label {key:?} in {block:?}"));
        }
        labels.push((key, value));
        match chars.next() {
            None => return Ok(labels),
            Some(',') => {}
            Some(c) => return Err(format!("expected ',' between labels, got {c:?}")),
        }
    }
}

/// Lints one exposition; returns every violation found (empty = clean).
fn lint(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    let mut helped: HashSet<String> = HashSet::new();
    let mut typed: HashMap<String, String> = HashMap::new();
    // (histogram base, labels minus `le`) -> buckets in exposition order.
    let mut buckets: HashMap<(String, String), Vec<(f64, f64)>> = HashMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            let mut parts = comment.splitn(3, ' ');
            match (parts.next(), parts.next(), parts.next()) {
                (Some("HELP"), Some(name), Some(_)) => {
                    helped.insert(name.to_owned());
                }
                (Some("TYPE"), Some(name), Some(kind)) => {
                    typed.insert(name.to_owned(), kind.to_owned());
                }
                _ => errors.push(format!("malformed comment: {line}")),
            }
            continue;
        }
        // A sample: name[{labels}] value
        let (series, value) = match line.rsplit_once(' ') {
            Some(split) => split,
            None => {
                errors.push(format!("sample has no value: {line}"));
                continue;
            }
        };
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            v => match v.parse() {
                Ok(v) => v,
                Err(_) => {
                    errors.push(format!("non-numeric value {value:?}: {line}"));
                    continue;
                }
            },
        };
        let (name, labels) = match series.split_once('{') {
            None => (series, Vec::new()),
            Some((name, rest)) => match rest.strip_suffix('}') {
                None => {
                    errors.push(format!("unclosed label block: {line}"));
                    continue;
                }
                Some(block) => match parse_labels(block) {
                    Ok(labels) => (name, labels),
                    Err(e) => {
                        errors.push(format!("{e}: {line}"));
                        continue;
                    }
                },
            },
        };
        // Histogram samples document their base family's HELP/TYPE.
        let base = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let stripped = name.strip_suffix(suffix)?;
                (typed.get(stripped).map(String::as_str) == Some("histogram")).then_some(stripped)
            })
            .unwrap_or(name);
        if !helped.contains(base) {
            errors.push(format!("sample before # HELP {base}: {line}"));
        }
        if !typed.contains_key(base) {
            errors.push(format!("sample before # TYPE {base}: {line}"));
        }
        if name.ends_with("_bucket") && typed.get(base).map(String::as_str) == Some("histogram") {
            let le = labels.iter().find(|(k, _)| k == "le");
            match le {
                None => errors.push(format!("bucket without le label: {line}")),
                Some((_, le)) => {
                    let le = if le == "+Inf" {
                        f64::INFINITY
                    } else {
                        le.parse().unwrap_or(f64::NAN)
                    };
                    let others: Vec<String> = labels
                        .iter()
                        .filter(|(k, _)| k != "le")
                        .map(|(k, v)| format!("{k}={v}"))
                        .collect();
                    buckets
                        .entry((base.to_owned(), others.join(",")))
                        .or_default()
                        .push((le, value));
                }
            }
        }
    }
    for ((base, labels), series) in &buckets {
        let who = format!("{base}{{{labels}}}");
        for pair in series.windows(2) {
            if pair[1].0 <= pair[0].0 {
                errors.push(format!("{who}: le bounds not increasing"));
            }
            if pair[1].1 < pair[0].1 {
                errors.push(format!("{who}: bucket counts not cumulative"));
            }
        }
        if series.last().map(|(le, _)| *le) != Some(f64::INFINITY) {
            errors.push(format!("{who}: buckets do not end with le=\"+Inf\""));
        }
    }
    errors
}

#[test]
fn real_exposition_is_lint_clean() {
    let m = Metrics::new();
    // Populate every family: request latencies across endpoints (the
    // histogram), cache/checkpoint counters, engine phases.
    for (i, endpoint) in Endpoint::ALL.iter().enumerate() {
        for us in [3, 900, 40_000] {
            m.observe(*endpoint, Duration::from_micros(us + i as u64));
        }
    }
    m.cache_hit();
    m.cache_miss();
    m.rejected();
    m.replayed(12345);
    let mut phases = smrseek_obs::PhaseTotals::default();
    phases.record(smrseek_obs::Phase::Lookup, Duration::from_millis(7));
    phases.record(smrseek_obs::Phase::Seek, Duration::from_nanos(3));
    m.engine_phases(&phases);
    let text = m.render(&smrseek_server::jobs::JobSnapshot::default(), 2);
    let errors = lint(&text);
    assert!(errors.is_empty(), "lint violations: {errors:#?}\n{text}");
}

#[test]
fn metrics_route_is_lint_clean() {
    let state = ServerState::new(4, 0);
    // Exercise the route machinery a few times so endpoint histograms
    // have data, then lint what a scraper would actually receive.
    for _ in 0..3 {
        state
            .metrics
            .observe(Endpoint::Metrics, Duration::from_micros(250));
    }
    let request = Request {
        method: "GET".to_owned(),
        target: "/metrics".to_owned(),
        headers: Vec::new(),
        body: Vec::new(),
    };
    let response = route(&state, None, &request, "rq-lint").1;
    assert_eq!(response.status, 200);
    let text = String::from_utf8(response.body().to_vec()).expect("utf8 exposition");
    let errors = lint(&text);
    assert!(errors.is_empty(), "lint violations: {errors:#?}\n{text}");
}

#[test]
fn lint_catches_missing_help_and_type() {
    let errors = lint("m_total 1\n");
    assert_eq!(errors.len(), 2, "{errors:?}");
    assert!(errors[0].contains("# HELP"), "{errors:?}");
    assert!(errors[1].contains("# TYPE"), "{errors:?}");
    // HELP alone is not enough.
    let errors = lint("# HELP m_total x\nm_total 1\n");
    assert_eq!(errors.len(), 1, "{errors:?}");
    assert!(errors[0].contains("# TYPE"), "{errors:?}");
    // Comments after the sample do not count.
    let errors = lint("m_total 1\n# HELP m_total x\n# TYPE m_total counter\n");
    assert_eq!(errors.len(), 2, "order matters: {errors:?}");
}

#[test]
fn lint_catches_broken_histograms() {
    let head = "# HELP h x\n# TYPE h histogram\n";
    // Counts that go down are not cumulative.
    let errors = lint(&format!(
        "{head}h_bucket{{le=\"1\"}} 5\nh_bucket{{le=\"2\"}} 3\nh_bucket{{le=\"+Inf\"}} 5\n"
    ));
    assert!(
        errors.iter().any(|e| e.contains("not cumulative")),
        "{errors:?}"
    );
    // A histogram that never closes with +Inf.
    let errors = lint(&format!(
        "{head}h_bucket{{le=\"1\"}} 5\nh_bucket{{le=\"2\"}} 7\n"
    ));
    assert!(errors.iter().any(|e| e.contains("+Inf")), "{errors:?}");
    // Unordered le bounds.
    let errors = lint(&format!(
        "{head}h_bucket{{le=\"2\"}} 3\nh_bucket{{le=\"1\"}} 5\nh_bucket{{le=\"+Inf\"}} 5\n"
    ));
    assert!(
        errors.iter().any(|e| e.contains("not increasing")),
        "{errors:?}"
    );
    // Distinct label sets are tracked independently: both must close.
    let errors = lint(&format!(
        "{head}h_bucket{{e=\"a\",le=\"1\"}} 1\nh_bucket{{e=\"a\",le=\"+Inf\"}} 2\n\
         h_bucket{{e=\"b\",le=\"1\"}} 1\n"
    ));
    assert_eq!(errors.len(), 1, "{errors:?}");
    assert!(errors[0].contains("e=b"), "{errors:?}");
}

#[test]
fn lint_catches_malformed_labels() {
    let head = "# HELP m x\n# TYPE m gauge\n";
    for bad in [
        "m{l=\"a} 1",      // unterminated value (quote swallowed by `}`)
        "m{l=a\"} 1",      // unquoted value
        "m{l=\"a\\x\"} 1", // invalid escape
        "m{l=\"a\" b} 1",  // junk between labels
        "m{le=\"1\"",      // unclosed block
    ] {
        let errors = lint(&format!("{head}{bad}\n"));
        assert!(!errors.is_empty(), "lint accepted {bad:?}");
    }
    // Properly escaped values pass.
    let errors = lint(&format!("{head}m{{l=\"quote \\\" backslash \\\\\"}} 1\n"));
    assert!(errors.is_empty(), "{errors:?}");
}
