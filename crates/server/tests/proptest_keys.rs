//! Property tests for the result cache's config canonicalization.
//!
//! The cache key must be *sound* (two requests with the same key must be
//! observably identical — a collision would serve one request the other's
//! report) and *tight enough* (edits the engine cannot observe must not
//! change the key, or the cache never hits). Both directions are checked
//! against the engine itself: when the properties say "observably equal",
//! a short replay confirms the reports really are byte-identical.

use proptest::prelude::*;
use smrseek_sim::runner::RunMatrix;
use smrseek_sim::{SimConfig, TraceSource};
use smrseek_trace::{Lba, TraceRecord};
use std::num::NonZeroUsize;

/// A small mixed read/write trace, deterministic by construction.
fn trace() -> Vec<TraceRecord> {
    (0..96u64)
        .map(|i| {
            if i % 3 == 0 {
                TraceRecord::read(i * 10, Lba::new((i * 113) % 2048 * 8), 8)
            } else {
                TraceRecord::write(i * 10, Lba::new((i * 29) % 2048 * 8), 16)
            }
        })
        .collect()
}

fn report_bytes(config: SimConfig) -> String {
    let source = TraceSource::from_records("k", trace());
    let outcomes = RunMatrix::cross(&[source], &[config]).execute(NonZeroUsize::MIN);
    serde_json::to_string_pretty(&outcomes[0].report).expect("report serializes")
}

/// Any of the five layer constructors.
fn layer_strategy() -> impl Strategy<Value = SimConfig> {
    prop_oneof![
        Just(SimConfig::no_ls()),
        Just(SimConfig::log_structured()),
        Just(SimConfig::ls_defrag()),
        Just(SimConfig::ls_prefetch()),
        Just(SimConfig::ls_cache()),
    ]
}

/// `None` one time in three, otherwise a host cache size in bytes.
fn host_cache_strategy() -> impl Strategy<Value = Option<u64>> {
    prop_oneof![
        1 => Just(None),
        2 => (1u64..1 << 24).prop_map(Some),
    ]
}

/// A config with every shared knob randomized.
fn config_strategy() -> impl Strategy<Value = SimConfig> {
    (
        layer_strategy(),
        prop::bool::ANY,
        prop::bool::ANY,
        1..10_000u64,
        host_cache_strategy(),
    )
        .prop_map(|(mut config, distances, fragments, bucket, cache)| {
            config.record_distances = distances;
            config.track_fragments = fragments;
            config.longseek_bucket_ops = bucket;
            config.host_cache_bytes = cache;
            config
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Unobservable edits never change the key: a NoLS config keeps its
    /// key when LS-only knobs are set, and an LS config keeps its key
    /// when the frontier hint it would derive is made explicit. The
    /// engine agrees: both variants replay to byte-identical reports.
    #[test]
    fn neutral_edits_share_a_key(base in config_strategy(), top in 1u64..1 << 20) {
        let mut edited = base;
        if matches!(base.layer, smrseek_sim::LayerChoice::NoLs) {
            // Zones, frontier hints, and fragment tracking only exist
            // under a translation layer; NoLS replays ignore them.
            edited.zone_sectors = Some(top);
            edited.frontier_hint = Some(top);
            edited.track_fragments = !edited.track_fragments;
        } else {
            // An explicit hint equal to the derived top is a no-op.
            edited.frontier_hint = Some(top);
        }
        let key_base = base.cache_key(Some(top));
        let key_edited = edited.cache_key(Some(top));
        prop_assert_eq!(&key_base, &key_edited, "neutral edit changed the key");
    }

    /// Key soundness against the engine: whenever two random configs
    /// collide on a key, their replays must be byte-identical. (Collisions
    /// are common here because the strategy reuses the five constructors.)
    #[test]
    fn equal_keys_mean_equal_reports(a in config_strategy(), b in config_strategy()) {
        let top = 2048 * 8;
        if a.cache_key(Some(top)) == b.cache_key(Some(top)) {
            prop_assert_eq!(
                report_bytes(a.canonical(Some(top))),
                report_bytes(b.canonical(Some(top))),
                "colliding keys must serve interchangeable reports"
            );
        }
    }

    /// Every report-shaping knob separates keys: editing it must yield a
    /// different key, because the engine's output observably differs.
    #[test]
    fn observable_edits_separate_keys(base in config_strategy(), top in 1u64..1 << 20) {
        let mut distances = base;
        distances.record_distances = !distances.record_distances;
        prop_assert_ne!(base.cache_key(Some(top)), distances.cache_key(Some(top)));

        let mut bucket = base;
        bucket.longseek_bucket_ops += 1;
        prop_assert_ne!(base.cache_key(Some(top)), bucket.cache_key(Some(top)));

        let mut cache = base;
        cache.host_cache_bytes = Some(cache.host_cache_bytes.map_or(4096, |b| b + 4096));
        prop_assert_ne!(base.cache_key(Some(top)), cache.cache_key(Some(top)));
    }

    /// The key respects the trace: the same config over traces with
    /// different derived tops keys differently for LS layers (the frontier
    /// placement is observable) and identically for NoLS (it is not).
    #[test]
    fn derived_top_is_part_of_ls_keys(base in config_strategy(), top in 2u64..1 << 20) {
        let a = base.cache_key(Some(top));
        let b = base.cache_key(Some(top - 1));
        if matches!(base.layer, smrseek_sim::LayerChoice::NoLs) {
            prop_assert_eq!(a, b, "NoLS cannot observe the frontier");
        } else if base.frontier_hint.is_none() {
            prop_assert_ne!(a, b, "LS frontier derives from the top sector");
        }
    }
}
