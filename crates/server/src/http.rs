//! A deliberately small HTTP/1.1 implementation over [`std::net`].
//!
//! The daemon needs exactly one request per connection, no TLS, no
//! chunked encoding, and bounded header/body sizes — a few hundred lines
//! of `std` beat an external dependency here (the build environment is
//! offline; see `vendor/README.md`). Every response carries
//! `Connection: close`, so clients never have to reason about keep-alive
//! against a daemon that may be draining for shutdown.

use std::io::{self, Read, Write};

/// Largest accepted request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body.
const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercase as received.
    pub method: String,
    /// Request target path (query strings are not used by the API and are
    /// kept attached verbatim).
    pub target: String,
    /// Headers as `(name, value)` pairs in arrival order, names as
    /// received (matching is case-insensitive via [`Request::header`]).
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header named `name` (case-insensitive), trimmed.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be parsed. Distinguishes "peer went away"
/// (not an error worth answering) from "peer sent garbage" (400).
#[derive(Debug)]
pub enum RequestError {
    /// The connection closed before a full request arrived.
    Closed,
    /// Transport-level failure (timeout, reset).
    Io(io::Error),
    /// The bytes did not form an acceptable HTTP/1.1 request.
    Malformed(String),
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// Reads one HTTP/1.1 request from `stream`.
///
/// # Errors
///
/// [`RequestError::Closed`] when the peer closes before sending anything,
/// [`RequestError::Malformed`] for oversized or syntactically invalid
/// requests, [`RequestError::Io`] for transport failures.
pub fn read_request(stream: &mut impl Read) -> Result<Request, RequestError> {
    // Read in chunks and scan for the blank line; a chunk can overshoot
    // the head, so the surplus bytes roll into the body read below. The
    // head is capped so a hostile peer cannot balloon memory.
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut scanned = 0usize;
    let head_len = loop {
        // The terminator can straddle a chunk boundary, so rescan the
        // last three bytes of the previous pass.
        let from = scanned.saturating_sub(3);
        if let Some(pos) = buf[from..].windows(4).position(|w| w == b"\r\n\r\n") {
            break from + pos + 4;
        }
        scanned = buf.len();
        if buf.len() > MAX_HEAD_BYTES {
            return Err(RequestError::Malformed("request head too large".into()));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            if buf.is_empty() {
                return Err(RequestError::Closed);
            }
            return Err(RequestError::Malformed("truncated request head".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    if head_len > MAX_HEAD_BYTES {
        return Err(RequestError::Malformed("request head too large".into()));
    }
    let surplus = buf.split_off(head_len);
    let head = String::from_utf8(buf)
        .map_err(|_| RequestError::Malformed("request head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if !m.is_empty() && t.starts_with('/') => (m, t, v),
        _ => {
            return Err(RequestError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }

    let mut content_length = 0usize;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| RequestError::Malformed("bad Content-Length".into()))?;
            }
            headers.push((name.to_owned(), value.trim().to_owned()));
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::Malformed("request body too large".into()));
    }
    // Body bytes that arrived with the head chunk come first; only the
    // remainder is read off the stream.
    let mut body = vec![0u8; content_length];
    let carried = surplus.len().min(content_length);
    body[..carried].copy_from_slice(&surplus[..carried]);
    stream
        .read_exact(&mut body[carried..])
        .map_err(|_| RequestError::Malformed("connection closed mid-body".into()))?;
    Ok(Request {
        method: method.to_owned(),
        target: target.to_owned(),
        headers,
        body,
    })
}

/// One HTTP response, always sent with `Connection: close`.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond `Content-Type`/`Content-Length`/`Connection`.
    pub extra: Vec<(String, String)>,
    content_type: &'static str,
    body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            extra: Vec::new(),
            content_type: "application/json",
            body: body.into().into_bytes(),
        }
    }

    /// A plain-text response (health checks, Prometheus exposition).
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            extra: Vec::new(),
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// Adds one extra header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.extra.push((name.into(), value.into()));
        self
    }

    /// The response body bytes.
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            _ => "Status",
        }
    }
}

/// Serializes `response` to wire bytes (what [`write_response`] would
/// send) — the form the nonblocking reactor queues for flushing.
pub fn response_bytes(response: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(response.body.len() + 256);
    write_response(&mut out, response).expect("writing to a Vec cannot fail");
    out
}

/// Splits raw response bytes (a full `Connection: close` exchange) into
/// `(status, body)`. Used by the fleet forwarder and the load generator,
/// which read peer responses to EOF.
///
/// # Errors
///
/// Returns a message when the bytes do not look like an HTTP/1.1 response.
pub fn parse_response(raw: &[u8]) -> Result<(u16, Vec<u8>), String> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| "response head never terminated".to_owned())?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| "response head is not UTF-8".to_owned())?;
    let status_line = head.lines().next().unwrap_or_default();
    let mut parts = status_line.split(' ');
    match (parts.next(), parts.next()) {
        (Some(version), Some(code)) if version.starts_with("HTTP/1.") => {
            let status: u16 = code
                .parse()
                .map_err(|_| format!("bad status code {code:?}"))?;
            Ok((status, raw[head_end + 4..].to_vec()))
        }
        _ => Err(format!("bad status line {status_line:?}")),
    }
}

/// Writes `response` to `stream` and flushes it.
///
/// # Errors
///
/// Propagates transport write failures.
pub fn write_response(stream: &mut impl Write, response: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
        response.status,
        response.reason(),
        response.content_type,
        response.body.len(),
    );
    for (name, value) in &response.extra {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, RequestError> {
        read_request(&mut &bytes[..])
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n").expect("parses");
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_content_length() {
        let req =
            parse(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"").expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"a\"");
    }

    #[test]
    fn classifies_clean_close_and_garbage() {
        assert!(matches!(parse(b""), Err(RequestError::Closed)));
        assert!(matches!(
            parse(b"NOT-HTTP\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET /x HTTP/2.0\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        // Truncated body: Content-Length promises more than arrives.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nxy"),
            Err(RequestError::Malformed(_))
        ));
    }

    /// Yields at most `step` bytes per `read` call, forcing the head
    /// terminator (and the head/body boundary) to straddle reads.
    struct Trickle<'a> {
        data: &'a [u8],
        step: usize,
    }

    impl Read for Trickle<'_> {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            let n = self.data.len().min(self.step).min(out.len());
            out[..n].copy_from_slice(&self.data[..n]);
            self.data = &self.data[n..];
            Ok(n)
        }
    }

    #[test]
    fn parses_across_any_read_fragmentation() {
        let wire = b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 12\r\n\r\n{\"body\":true}";
        for step in [1usize, 2, 3, 5, 7, 64, 4096] {
            let req = read_request(&mut Trickle { data: wire, step }).expect("parses");
            assert_eq!(req.method, "POST", "step {step}");
            assert_eq!(req.body, b"{\"body\":true", "step {step}");
        }
    }

    #[test]
    fn oversized_head_is_rejected() {
        let mut wire = b"GET /x HTTP/1.1\r\n".to_vec();
        wire.extend_from_slice(b"x-pad: ");
        wire.resize(MAX_HEAD_BYTES + 10, b'a');
        wire.extend_from_slice(b"\r\n\r\n");
        match parse(&wire) {
            Err(RequestError::Malformed(msg)) => assert_eq!(msg, "request head too large"),
            other => panic!("expected malformed, got {other:?}"),
        }
    }

    #[test]
    fn headers_are_kept_and_matched_case_insensitively() {
        let req = parse(b"POST /v1/jobs HTTP/1.1\r\nX-Smrseek-Forwarded: 1\r\nHost: a\r\n\r\n")
            .expect("parses");
        assert_eq!(req.header("x-smrseek-forwarded"), Some("1"));
        assert_eq!(req.header("HOST"), Some("a"));
        assert_eq!(req.header("absent"), None);
    }

    #[test]
    fn parse_response_splits_status_and_body() {
        let resp = Response::json(503, r#"{"error":"full"}"#).with_header("retry-after", "1");
        let raw = response_bytes(&resp);
        let (status, body) = parse_response(&raw).expect("parses");
        assert_eq!(status, 503);
        assert_eq!(body, br#"{"error":"full"}"#);
        assert!(parse_response(b"not-http").is_err());
        assert!(parse_response(b"SPAM/9 200\r\n\r\n").is_err());
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        let resp = Response::json(503, "{}").with_header("retry-after", "1");
        write_response(&mut out, &resp).expect("writes");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
