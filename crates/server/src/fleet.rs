//! Horizontal sharding of the result cache across daemon peers.
//!
//! A fleet is a static list of daemon addresses, each running with the
//! same `--peers` list. Every job key — the same canonical
//! (trace digest × config) string the result cache uses — maps to exactly
//! one *owner* via a consistent-hash ring ([`VNODES`] virtual nodes per
//! peer, FNV-1a hashed). A daemon that receives a submission it does not
//! own re-POSTs the body to the owner with the `x-smrseek-forwarded`
//! marker and relays the owner's response verbatim (plus an
//! `x-smrseek-peer` header naming who computed it); the marker stops a
//! misconfigured fleet from bouncing a request forever. Because routing
//! is a pure function of the key, N daemons compute each unique sweep
//! exactly once between them, and results stay byte-identical to offline
//! runs — the fleet only moves *where* a job runs, never *how*.

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Header a forwarding daemon stamps on the re-POST so the owner always
/// handles it locally (loop prevention).
pub const FORWARDED_HEADER: &str = "x-smrseek-forwarded";

/// Header added to a relayed response naming the peer that computed it.
pub const PEER_HEADER: &str = "x-smrseek-peer";

/// Virtual nodes per peer on the hash ring. 64 keeps the key split within
/// a few percent of even for small fleets while the ring stays tiny.
const VNODES: usize = 64;

/// How long a forward may spend connecting, and separately reading or
/// writing, before it fails with 502. Forwarded submissions only enqueue
/// work (202/200/503 come back immediately); they never wait for results.
const FORWARD_TIMEOUT: Duration = Duration::from_secs(5);

/// FNV-1a 64-bit over `bytes`, pushed through a 64-bit finalizer
/// (MurmurHash3's avalanche). Plain FNV mixes similar short strings —
/// exactly what `addr#vnode` labels are — into nearby ring positions,
/// which skews ownership badly; the finalizer spreads them uniformly
/// while staying dependency-free.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xff51_afd7_ed55_8ccd);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    hash ^ (hash >> 33)
}

/// The static peer set and this daemon's place in it.
#[derive(Debug)]
pub struct Fleet {
    /// Every peer's advertised address, in `--peers` order.
    peers: Vec<SocketAddr>,
    /// Index of this daemon in `peers`.
    self_index: usize,
    /// `(vnode hash, peer index)` sorted by hash.
    ring: Vec<(u64, usize)>,
}

impl Fleet {
    /// Builds the ring from the shared `--peers` list. `self_addr` is the
    /// address this daemon is reachable at (its bound address) and must
    /// appear in `peers` — every daemon in a fleet runs with the same
    /// list, so a missing self means a misconfigured fleet.
    ///
    /// # Errors
    ///
    /// Unparsable peer addresses and a `peers` list that does not contain
    /// `self_addr` are configuration errors.
    pub fn new(self_addr: SocketAddr, peers: &[String]) -> Result<Fleet, String> {
        if peers.is_empty() {
            return Err("fleet needs at least one peer".to_owned());
        }
        let peers: Vec<SocketAddr> = peers
            .iter()
            .map(|p| {
                p.parse::<SocketAddr>()
                    .map_err(|e| format!("bad peer address {p:?}: {e}"))
            })
            .collect::<Result<_, _>>()?;
        let self_index = peers
            .iter()
            .position(|&p| p == self_addr)
            .ok_or_else(|| format!("own address {self_addr} is not in --peers"))?;
        let mut ring: Vec<(u64, usize)> = peers
            .iter()
            .enumerate()
            .flat_map(|(index, peer)| {
                (0..VNODES).map(move |vnode| (fnv1a(format!("{peer}#{vnode}").as_bytes()), index))
            })
            .collect();
        ring.sort_unstable();
        Ok(Fleet {
            peers,
            self_index,
            ring,
        })
    }

    /// The peer index owning `key`: the first vnode at or after the key's
    /// hash, wrapping around the ring.
    pub fn owner(&self, key: &str) -> usize {
        let hash = fnv1a(key.as_bytes());
        let at = self.ring.partition_point(|&(h, _)| h < hash);
        self.ring[if at == self.ring.len() { 0 } else { at }].1
    }

    /// Whether `index` is this daemon.
    pub fn is_self(&self, index: usize) -> bool {
        index == self.self_index
    }

    /// Whether this daemon owns `key`.
    pub fn owns(&self, key: &str) -> bool {
        self.is_self(self.owner(key))
    }

    /// The address of peer `index`.
    pub fn peer(&self, index: usize) -> SocketAddr {
        self.peers[index]
    }

    /// Every peer address except this daemon's, as metric labels.
    pub fn remote_labels(&self) -> Vec<String> {
        self.peers
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != self.self_index)
            .map(|(_, p)| p.to_string())
            .collect()
    }

    /// Number of peers in the fleet.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// Virtual nodes this daemon owns on the ring (its share of the key
    /// space is proportional; `/healthz` reports it).
    pub fn self_vnodes(&self) -> usize {
        self.ring
            .iter()
            .filter(|&&(_, index)| index == self.self_index)
            .count()
    }

    /// A fleet is never empty ([`Fleet::new`] refuses an empty list).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Re-POSTs a submission body to `peer` and returns the relayed
/// `(status, body)`. Blocking with [`FORWARD_TIMEOUT`]s on connect,
/// read, and write — callers run on the auxiliary dispatch pool, never
/// the reactor thread.
///
/// `trace` is the [`smrseek_obs::dtrace::TRACE_HEADER`] value for the hop
/// (the origin's trace id plus its `forward` span id), when the request
/// is traced; the owner's `dispatch` span parents to it, stitching both
/// daemons into one trace. The origin's `x-request-id` rides along
/// unconditionally so both hops log the same id.
///
/// # Errors
///
/// Connect/IO failures and malformed relayed responses return a message
/// the caller wraps in a 502.
pub fn forward(
    peer: SocketAddr,
    body: &[u8],
    request_id: &str,
    trace: Option<&str>,
) -> Result<(u16, Vec<u8>), String> {
    use std::io::{Read, Write};
    let mut stream = TcpStream::connect_timeout(&peer, FORWARD_TIMEOUT)
        .map_err(|e| format!("connect to peer {peer}: {e}"))?;
    let _ = stream.set_read_timeout(Some(FORWARD_TIMEOUT));
    let _ = stream.set_write_timeout(Some(FORWARD_TIMEOUT));
    let trace_line = trace.map_or(String::new(), |value| {
        format!("{}: {value}\r\n", smrseek_obs::dtrace::TRACE_HEADER)
    });
    let head = format!(
        "POST /v1/jobs HTTP/1.1\r\nhost: {peer}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n{FORWARDED_HEADER}: 1\r\nx-request-id: {request_id}\r\n{trace_line}connection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| format!("send to peer {peer}: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read from peer {peer}: {e}"))?;
    crate::http::parse_response(&raw).map_err(|e| format!("bad response from peer {peer}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(addrs: &[&str], self_addr: &str) -> Fleet {
        let peers: Vec<String> = addrs.iter().map(|&a| a.to_owned()).collect();
        Fleet::new(self_addr.parse().expect("addr parses"), &peers).expect("fleet builds")
    }

    #[test]
    fn every_key_has_exactly_one_owner_fleet_wide() {
        let addrs = ["127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003"];
        let fleets: Vec<Fleet> = addrs.iter().map(|&a| fleet(&addrs, a)).collect();
        for i in 0..200 {
            let key = format!("profile:hm_1:seed={i}|sweep");
            let owners: Vec<usize> = fleets.iter().map(|f| f.owner(&key)).collect();
            assert!(
                owners.iter().all(|&o| o == owners[0]),
                "peers disagree on {key}: {owners:?}"
            );
            let claimed: Vec<bool> = fleets.iter().map(|f| f.owns(&key)).collect();
            assert_eq!(
                claimed.iter().filter(|&&c| c).count(),
                1,
                "{key} claimed by {claimed:?}"
            );
        }
    }

    #[test]
    fn keys_spread_across_peers() {
        let addrs = ["127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003"];
        let f = fleet(&addrs, addrs[0]);
        let mut counts = [0usize; 3];
        for i in 0..600 {
            counts[f.owner(&format!("key-{i}"))] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            assert!(
                count > 600 / 3 / 3,
                "peer {i} owns {count}/600 keys — ring badly skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn single_peer_owns_everything() {
        let f = fleet(&["127.0.0.1:9001"], "127.0.0.1:9001");
        assert_eq!(f.len(), 1);
        assert!(!f.is_empty());
        for i in 0..50 {
            assert!(f.owns(&format!("k{i}")));
        }
    }

    #[test]
    fn misconfigured_fleets_are_refused() {
        let peers = vec!["127.0.0.1:9001".to_owned()];
        let err = Fleet::new("127.0.0.1:9099".parse().expect("parses"), &peers)
            .expect_err("self missing");
        assert!(err.contains("not in --peers"), "{err}");
        assert!(Fleet::new("127.0.0.1:9001".parse().expect("parses"), &[]).is_err());
        let bad = vec!["not-an-addr".to_owned()];
        let err =
            Fleet::new("127.0.0.1:9001".parse().expect("parses"), &bad).expect_err("bad addr");
        assert!(err.contains("bad peer address"), "{err}");
    }

    #[test]
    fn forward_to_dead_peer_reports_error() {
        // Port 1 on localhost refuses connections (nothing listens there).
        let err = forward("127.0.0.1:1".parse().expect("parses"), b"{}", "rq-x", None)
            .expect_err("dead peer");
        assert!(err.contains("peer 127.0.0.1:1"), "{err}");
    }

    #[test]
    fn every_peer_holds_its_vnode_share() {
        let addrs = ["127.0.0.1:9001", "127.0.0.1:9002"];
        for addr in addrs {
            assert_eq!(fleet(&addrs, addr).self_vnodes(), VNODES);
        }
    }
}
