//! The `smrseek` command-line interface.
//!
//! Regenerates every table and figure of *"Minimizing Read Seeks for SMR
//! Disk"* (IISWC 2018) from the synthetic Table-I workload profiles, and
//! can characterize or simulate external traces in the MSR or
//! CloudPhysics CSV formats.
//!
//! ```text
//! smrseek <command> [--ops N] [--seed S] [--threads N] [--json FILE]
//!
//! commands:
//!   table1 | fig2 | fig3 | fig4 | fig5 | fig7 | fig8 | fig10 | fig11
//!   classify               log-friendly / agnostic / sensitive taxonomy
//!   analyze                trace-level analysis vs seek class
//!   frag                   static vs dynamic fragmentation (§IV-A)
//!   ablate                 run the parameter-sweep ablations
//!   adaptive               adaptive policy engine vs each fixed mechanism
//!   timeamp                extension: seek-time amplification
//!   hostcache              extension: host buffer-cache interaction
//!   clean                  extension: finite-log cleaning sweep
//!   reorder                extension: NCQ elevator vs prefetching
//!   zones                  extension: SAF robustness to ZBC zone backing
//!   plotdata [--out DIR]   write plot-ready CSV series for every figure
//!   all                    run every experiment in order
//!   characterize <file>    Table-I style stats for an external trace
//!   simulate <file>        NoLS/LS/mechanism SAF for an external trace
//!   bench                  ingest + replay throughput, serial vs sharded
//!   convert <in> <out>     convert any trace to the v2 binary format
//!   gen <profile>          emit a synthetic trace as CloudPhysics CSV
//!   list                   list the 21 workload profiles
//!   serve                  run the smrseekd HTTP daemon (see crate docs)
//!   bench-daemon           drive a running daemon with concurrent
//!                          submissions; p50/p99/p999 latency + drops
//!   snapshot <trace> <dir> checkpoint the sweep --at N records into <dir>
//!   resume <trace> <dir>   run the sweep, resuming from <dir>'s checkpoints
//!   profile <trace>        replay the sweep under span recording and write
//!                          a Chrome trace-event JSON (`--out`, default
//!                          trace.json) viewable in Perfetto
//!   trace <trace-id>       fetch a distributed trace from a daemon
//!                          (`--addr`) or a whole fleet (`--peers`),
//!                          stitch the spans, and write a Chrome
//!                          trace-event JSON (`--out`, default
//!                          trace.json) viewable in Perfetto
//! ```
//!
//! Diagnostics go through the `smrseek-obs` leveled logger: quiet (warn)
//! by default, `-v`/`--verbose` or `SMRSEEK_LOG=debug` restores the
//! progress chatter, `--log-json` switches stderr to JSON lines.
//!
//! Trace files may be MSR CSV, CloudPhysics CSV, blkparse text, or the
//! compact binary format (`--format msr|cp|blktrace|binary`, auto-sniffed
//! by default — binary files are recognized by their `SMRT` magic).
//! `--cache` stages traces through mmapped `.smrt` sidecars so repeat
//! runs replay with zero parse cost.

use smrseek_sim::checkpoint::checkpoint_config_key;
use smrseek_sim::experiments::{
    ablation, adaptive, analyze, classify, cleaning, fig10, fig11, fig2, fig3, fig4, fig5, fig7,
    fig8, fragmentation, host_cache, reorder, table1, time_amp, zones, ExpOptions,
};
use smrseek_sim::runner::{self, parallel_map, MatrixStats, RunCell, RunMatrix, ShardPolicy};
use smrseek_sim::{
    saf, tracecache, CheckpointStore, SimConfig, Simulation, TextTable, TraceSource,
};
use smrseek_trace::binary::{self, MmapTrace};
use smrseek_trace::parse::{parse_reader, BlktraceParser, CpParser, MsrParser};
use smrseek_trace::writer::write_cp_csv;
use smrseek_trace::{characterize, TraceRecord};
use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read as _, Write};
use std::num::NonZeroUsize;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

/// A CLI failure, classified so the exit code can tell misuse (2), bad
/// trace data (65, `EX_DATAERR`) and I/O failure (74, `EX_IOERR`) apart.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CliError {
    /// Bad command line: unknown command/flag, missing operand.
    Usage(String),
    /// The environment failed us: open/create/read/write errors.
    Io(String),
    /// The input was readable but malformed: trace or format errors.
    Parse(String),
}

impl CliError {
    fn usage(msg: impl Into<String>) -> Self {
        CliError::Usage(msg.into())
    }

    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Parse(_) => 65,
            CliError::Io(_) => 74,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Every usage failure prints the usage string exactly once,
            // whether or not the originating site embedded it.
            CliError::Usage(msg) if msg.contains("usage:") => write!(f, "{msg}"),
            CliError::Usage(msg) => write!(f, "{msg}\n{}", usage()),
            CliError::Io(msg) => write!(f, "error: {msg}"),
            CliError::Parse(msg) => write!(f, "error: {msg}"),
        }
    }
}

struct Args {
    command: String,
    file: Option<String>,
    file2: Option<String>,
    opts: ExpOptions,
    json: Option<String>,
    out: Option<String>,
    format: TraceFormat,
    threads: NonZeroUsize,
    shards: ShardPolicy,
    cache: bool,
    addr: String,
    workers: usize,
    queue_depth: usize,
    peers: Vec<String>,
    requests: usize,
    concurrency: usize,
    distinct: usize,
    at: Option<u64>,
    ops_explicit: bool,
    checkpoint_dir: Option<String>,
    checkpoint_every: u64,
    verbose: bool,
    log_json: bool,
}

#[derive(Clone, Copy, PartialEq)]
enum TraceFormat {
    Auto,
    Msr,
    Cp,
    Blktrace,
    Binary,
}

fn usage() -> String {
    "usage: smrseek <table1|fig2|...|fig11|ablate|adaptive|timeamp|hostcache|clean|all|list> \
     [--ops N] [--seed S] [--threads N] [--cache] [--json FILE]\n       \
     smrseek <characterize|simulate> <trace> [--format msr|cp|blktrace|binary] [--cache] \
     [--shards auto|serial|N] [--json FILE]\n       \
     smrseek bench [--ops N] [--seed S] [--json FILE]\n       \
     smrseek convert <trace> <out.smrt> [--format msr|cp|blktrace|binary]\n       \
     smrseek gen <profile> [--ops N] [--seed S] [--out FILE]\n       \
     smrseek serve [--addr HOST:PORT] [--workers N] [--queue-depth N] [--threads N] \
     [--checkpoint-dir DIR] [--checkpoint-every N] [--peers ADDR,ADDR,...]\n       \
     smrseek bench-daemon [--addr HOST:PORT] [--requests N] [--concurrency N] \
     [--distinct N] [--ops N] [--json FILE]\n       \
     smrseek snapshot <trace> <dir> --at N [--format ...] [--cache]\n       \
     smrseek resume <trace> <dir> [--format ...] [--cache] [--json FILE]\n       \
     smrseek profile <trace> [--out trace.json] [--format ...] [--cache] [--threads N]\n       \
     smrseek trace <trace-id> [--addr HOST:PORT] [--peers ADDR,ADDR,...] [--out trace.json]\n       \
     smrseek --version\n\
     global flags: -v/--verbose (or SMRSEEK_LOG=debug) for progress chatter, \
     --log-json for JSON-lines stderr\n\
     threads: --threads N workers run matrix cells; SMRSEEK_THREADS overrides the default \
     (host parallelism). Within a cell, --shards splits one trace's records across \
     ceil(threads/cells) workers (auto), a fixed count, or none (serial); sharded replay \
     is exact for every sweep configuration (log-structured runs shard via extent-map \
     boundary checkpoints), so reports never change; the rare serial fallbacks \
     (checkpoint-emitting or sub-2-record runs) warn on stderr and are noted in the \
     matrix summary."
        .to_owned()
}

fn parse_args(argv: &[String]) -> Result<Args, CliError> {
    let mut it = argv.iter();
    let command = it.next().ok_or_else(|| CliError::usage(usage()))?.clone();
    let mut args = Args {
        command,
        file: None,
        file2: None,
        opts: ExpOptions::default(),
        json: None,
        out: None,
        format: TraceFormat::Auto,
        threads: runner::default_threads(),
        shards: ShardPolicy::Auto,
        cache: false,
        addr: "127.0.0.1:7070".to_owned(),
        workers: 2,
        queue_depth: 64,
        peers: Vec::new(),
        requests: 2000,
        concurrency: 256,
        distinct: 16,
        at: None,
        ops_explicit: false,
        checkpoint_dir: None,
        checkpoint_every: 100_000,
        verbose: false,
        log_json: false,
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--ops" => {
                args.opts.ops = it
                    .next()
                    .ok_or_else(|| CliError::usage("--ops needs a value"))?
                    .parse()
                    .map_err(|_| CliError::usage("--ops must be an integer"))?;
                args.ops_explicit = true;
            }
            "--seed" => {
                args.opts.seed = it
                    .next()
                    .ok_or_else(|| CliError::usage("--seed needs a value"))?
                    .parse()
                    .map_err(|_| CliError::usage("--seed must be an integer"))?;
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .ok_or_else(|| CliError::usage("--threads needs a value"))?
                    .parse()
                    .map_err(|_| CliError::usage("--threads must be a positive integer"))?;
            }
            "--shards" => {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::usage("--shards needs auto|serial|N"))?;
                args.shards = match value.as_str() {
                    "auto" => ShardPolicy::Auto,
                    "serial" | "1" => ShardPolicy::Serial,
                    n => ShardPolicy::Fixed(n.parse().map_err(|_| {
                        CliError::usage("--shards must be auto, serial, or a positive integer")
                    })?),
                };
            }
            "--json" => {
                args.json = Some(
                    it.next()
                        .ok_or_else(|| CliError::usage("--json needs a path"))?
                        .clone(),
                );
            }
            "--out" => {
                args.out = Some(
                    it.next()
                        .ok_or_else(|| CliError::usage("--out needs a path"))?
                        .clone(),
                );
            }
            "--format" => {
                args.format = match it
                    .next()
                    .ok_or_else(|| CliError::usage("--format needs msr|cp|blktrace|binary"))?
                    .as_str()
                {
                    "msr" => TraceFormat::Msr,
                    "cp" => TraceFormat::Cp,
                    "blktrace" => TraceFormat::Blktrace,
                    "binary" | "smrt" => TraceFormat::Binary,
                    other => return Err(CliError::usage(format!("unknown format {other:?}"))),
                };
            }
            "--cache" => {
                args.cache = true;
            }
            "-v" | "--verbose" => {
                args.verbose = true;
            }
            "--log-json" => {
                args.log_json = true;
            }
            "--addr" => {
                args.addr = it
                    .next()
                    .ok_or_else(|| CliError::usage("--addr needs host:port"))?
                    .clone();
            }
            "--workers" => {
                args.workers = it
                    .next()
                    .ok_or_else(|| CliError::usage("--workers needs a value"))?
                    .parse()
                    .map_err(|_| CliError::usage("--workers must be an integer"))?;
            }
            "--queue-depth" => {
                args.queue_depth = it
                    .next()
                    .ok_or_else(|| CliError::usage("--queue-depth needs a value"))?
                    .parse()
                    .map_err(|_| CliError::usage("--queue-depth must be an integer"))?;
            }
            "--peers" => {
                args.peers = it
                    .next()
                    .ok_or_else(|| CliError::usage("--peers needs addr,addr,..."))?
                    .split(',')
                    .filter(|p| !p.is_empty())
                    .map(str::to_owned)
                    .collect();
            }
            "--requests" => {
                args.requests = it
                    .next()
                    .ok_or_else(|| CliError::usage("--requests needs a value"))?
                    .parse()
                    .map_err(|_| CliError::usage("--requests must be an integer"))?;
            }
            "--concurrency" => {
                args.concurrency = it
                    .next()
                    .ok_or_else(|| CliError::usage("--concurrency needs a value"))?
                    .parse()
                    .map_err(|_| CliError::usage("--concurrency must be a positive integer"))?;
            }
            "--distinct" => {
                args.distinct = it
                    .next()
                    .ok_or_else(|| CliError::usage("--distinct needs a value"))?
                    .parse()
                    .map_err(|_| CliError::usage("--distinct must be a positive integer"))?;
            }
            "--at" => {
                args.at = Some(
                    it.next()
                        .ok_or_else(|| CliError::usage("--at needs a record count"))?
                        .parse()
                        .map_err(|_| CliError::usage("--at must be an integer"))?,
                );
            }
            "--checkpoint-dir" => {
                args.checkpoint_dir = Some(
                    it.next()
                        .ok_or_else(|| CliError::usage("--checkpoint-dir needs a path"))?
                        .clone(),
                );
            }
            "--checkpoint-every" => {
                args.checkpoint_every = it
                    .next()
                    .ok_or_else(|| CliError::usage("--checkpoint-every needs a value"))?
                    .parse()
                    .map_err(|_| CliError::usage("--checkpoint-every must be an integer"))?;
            }
            other if args.file.is_none() && !other.starts_with("--") => {
                args.file = Some(other.to_owned());
            }
            other if args.file2.is_none() && !other.starts_with("--") => {
                args.file2 = Some(other.to_owned());
            }
            other => {
                return Err(CliError::usage(format!(
                    "unknown argument {other:?}\n{}",
                    usage()
                )))
            }
        }
    }
    Ok(args)
}

fn load_trace(path: &str, format: TraceFormat) -> Result<Vec<TraceRecord>, CliError> {
    let format = match format {
        TraceFormat::Auto => sniff_format(path)?,
        other => other,
    };
    if format == TraceFormat::Binary {
        return Ok(open_mmap(path)?.iter().collect());
    }
    let file = File::open(path).map_err(|e| CliError::Io(format!("cannot open {path}: {e}")))?;
    let reader = BufReader::new(file);
    let parsed = match format {
        TraceFormat::Msr => parse_reader(reader, MsrParser::new()),
        TraceFormat::Cp => parse_reader(reader, CpParser::new()),
        TraceFormat::Blktrace => parse_reader(reader, BlktraceParser::new()),
        TraceFormat::Auto | TraceFormat::Binary => unreachable!("resolved above"),
    };
    parsed.map_err(|e| match e {
        smrseek_trace::Error::Io(e) => CliError::Io(format!("{path}: {e}")),
        other => CliError::Parse(format!("{path}: {other}")),
    })
}

/// Maps a binary `.smrt` trace read-only, classifying failures for the
/// exit code.
fn open_mmap(path: &str) -> Result<MmapTrace, CliError> {
    MmapTrace::open(Path::new(path)).map_err(|e| match e {
        smrseek_trace::Error::Io(e) => CliError::Io(format!("{path}: {e}")),
        other => CliError::Parse(format!("{path}: {other}")),
    })
}

/// Binary traces carry the `SMRT` magic in their first bytes; MSR lines
/// have 7 comma-separated fields; CloudPhysics lines have 4; blkparse
/// lines are whitespace-separated with a `+` before the count. The magic
/// is checked first so a binary file is never mistaken for CSV.
fn sniff_format(path: &str) -> Result<TraceFormat, CliError> {
    let mut file =
        File::open(path).map_err(|e| CliError::Io(format!("cannot open {path}: {e}")))?;
    let mut prefix = [0u8; 6];
    let mut filled = 0;
    while filled < prefix.len() {
        match file.read(&mut prefix[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) => return Err(CliError::Io(format!("{path}: {e}"))),
        }
    }
    if binary::sniff_magic(&prefix[..filled]).is_some() {
        return Ok(TraceFormat::Binary);
    }
    let file = File::open(path).map_err(|e| CliError::Io(format!("cannot open {path}: {e}")))?;
    for line in BufReader::new(file).lines() {
        let line = line.map_err(|e| CliError::Io(format!("{path}: {e}")))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with("timestamp_us") {
            continue;
        }
        if t.split_whitespace().any(|f| f == "+") {
            return Ok(TraceFormat::Blktrace);
        }
        return Ok(if t.split(',').count() >= 7 {
            TraceFormat::Msr
        } else {
            TraceFormat::Cp
        });
    }
    Err(CliError::Parse(format!(
        "{path}: no data lines to sniff the format from"
    )))
}

/// The trace supply for `simulate`: binary inputs are mmapped directly;
/// with `--cache` a `.smrt` sidecar next to the trace is mmapped when
/// present and populated (then mmapped) after the first parse; otherwise
/// the trace is parsed into memory. Cache failures degrade to the parsed
/// path with a stderr note, never failing the run.
fn simulate_source(path: &str, format: TraceFormat, cache: bool) -> Result<TraceSource, CliError> {
    let format = match format {
        TraceFormat::Auto => sniff_format(path)?,
        other => other,
    };
    if format == TraceFormat::Binary {
        return Ok(TraceSource::from_mmap(path, Arc::new(open_mmap(path)?)));
    }
    if !cache {
        return Ok(TraceSource::from_records(path, load_trace(path, format)?));
    }
    let sidecar = tracecache::sidecar_path(Path::new(path));
    if sidecar.exists() {
        match MmapTrace::open(&sidecar) {
            Ok(map) => {
                smrseek_obs::info!("cache: replaying {}", sidecar.display());
                return Ok(TraceSource::from_mmap(path, Arc::new(map)));
            }
            Err(e) => {
                smrseek_obs::warn!("cache: ignoring {}: {e}; reparsing", sidecar.display());
            }
        }
    }
    let records = load_trace(path, format)?;
    match tracecache::write_sidecar(&sidecar, &records) {
        Ok(()) => smrseek_obs::info!("cache: wrote {}", sidecar.display()),
        Err(e) => smrseek_obs::warn!("cache: {e}"),
    }
    Ok(TraceSource::from_records(path, records))
}

/// The synthetic-profile cache directory implied by `--cache`.
fn cache_dir(args: &Args) -> Option<PathBuf> {
    args.cache
        .then(|| PathBuf::from(tracecache::DEFAULT_CACHE_DIR))
}

fn maybe_write_json<T: serde::Serialize>(json: &Option<String>, value: &T) -> Result<(), CliError> {
    if let Some(path) = json {
        let text =
            serde_json::to_string_pretty(value).map_err(|e| CliError::Parse(e.to_string()))?;
        let mut f =
            File::create(path).map_err(|e| CliError::Io(format!("cannot create {path}: {e}")))?;
        f.write_all(text.as_bytes())
            .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
        smrseek_obs::info!("wrote {path}");
    }
    Ok(())
}

/// Set by the `SIGINT`/`SIGTERM` handler; the serve loop polls it.
static SHUTDOWN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn request_shutdown(_signum: i32) {
    SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// Installs `request_shutdown` for `SIGINT` (2) and `SIGTERM` (15) via
/// `signal(2)`, declared raw like `mmap(2)` in the trace crate — the
/// build environment has no libc crate. Setting a flag is all the
/// handler does, which is async-signal-safe.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, request_shutdown as *const () as usize);
        signal(SIGTERM, request_shutdown as *const () as usize);
    }
}

/// `smrseek profile <trace>`: replays the standard sweep with span
/// recording and phase accounting on, checkpointing a few times per cell
/// so checkpoint I/O shows up too, and writes the spans as Chrome
/// trace-event JSON (open in Perfetto or `chrome://tracing`). Each
/// per-cell span gets synthetic `phase:*` children laying out where the
/// cell's replay time went.
fn run_profile(args: &Args) -> Result<String, CliError> {
    let path = args
        .file
        .as_ref()
        .ok_or_else(|| CliError::usage("profile needs a trace file"))?;
    let out_path = args.out.clone().unwrap_or_else(|| "trace.json".to_owned());
    let source = simulate_source(path, args.format, args.cache)?;
    let records = source.records().len() as u64;
    if records == 0 {
        return Err(CliError::Parse(format!("{path}: empty trace")));
    }
    let digest = source.digest().as_u128();
    // Checkpoints land in a throwaway store: the point is to exercise
    // (and time) checkpoint I/O, not to persist anything.
    let dir = std::env::temp_dir().join(format!("smrseek-profile-{}", std::process::id()));
    let store = CheckpointStore::new(&dir);
    let labels = ["NoLS", "LS", "LS+defrag", "LS+prefetch", "LS+cache"];
    let every = (records / 3).max(1);
    let mut matrix = RunMatrix::new();
    for (config, label) in SimConfig::standard_sweep().iter().zip(labels) {
        matrix.push(
            RunCell::new(source.clone(), config.with_checkpoint_every(every)).with_label(label),
        );
    }
    smrseek_obs::set_phase_accounting(true);
    smrseek_obs::span::start_recording(1 << 18);
    let (outcomes, _usage) = matrix.execute_checkpointed(args.threads, &store, digest);
    smrseek_obs::span::stop_recording();
    let (mut events, dropped) = smrseek_obs::span::take_events();
    smrseek_obs::set_phase_accounting(false);
    std::fs::remove_dir_all(&dir).ok();
    // Lay each cell's phase totals out as children of its span.
    let by_span: HashMap<String, &smrseek_obs::PhaseTotals> = outcomes
        .iter()
        .map(|o| (format!("cell:{}", o.label), &o.metrics.phases))
        .collect();
    let mut children = Vec::new();
    for event in &events {
        if let Some(phases) = by_span.get(&event.name) {
            children.extend(smrseek_obs::chrome::phase_children(event, phases));
        }
    }
    events.extend(children);
    let file = File::create(&out_path)
        .map_err(|e| CliError::Io(format!("cannot create {out_path}: {e}")))?;
    let mut writer = BufWriter::new(file);
    smrseek_obs::chrome::write_trace(&mut writer, &events)
        .and_then(|()| writer.flush())
        .map_err(|e| CliError::Io(format!("cannot write {out_path}: {e}")))?;
    let mut merged = smrseek_obs::PhaseTotals::default();
    for outcome in &outcomes {
        merged.merge(&outcome.metrics.phases);
    }
    let mut table = TextTable::new(vec!["phase", "calls", "seconds"]);
    for phase in smrseek_obs::Phase::ALL {
        table.row(vec![
            phase.label().to_owned(),
            merged.calls(phase).to_string(),
            format!("{:.6}", merged.seconds(phase)),
        ]);
    }
    if dropped > 0 {
        smrseek_obs::warn!("profile: span buffer overflowed, {dropped} span(s) dropped");
    }
    Ok(format!(
        "{path}: {records} ops, {} span(s) -> {out_path}\n{table}",
        events.len()
    ))
}

/// Runs the daemon until a termination signal, then drains gracefully.

/// `smrseek bench` replays `--ops` records (default 10 million — large
/// enough that per-record overheads dominate any constant cost) of a
/// deterministic mixed read/write workload through the NoLS baseline and
/// a log-structured layer, and reports ingest bandwidth off the binary
/// format plus replay throughput serial vs sharded for each. Sharding
/// splits one trace across threads ([`Simulation::shards`]; the LS config
/// pays a serial transition prepass first), so speedups are bounded by
/// the host's CPU count — reported alongside (and warned about when it is
/// 1) so numbers from different machines compare honestly.
fn run_bench(args: &Args) -> Result<String, CliError> {
    #[derive(serde::Serialize)]
    struct BenchPhase {
        seconds: f64,
        records_per_s: f64,
    }
    #[derive(serde::Serialize)]
    struct BenchShard {
        shards: usize,
        seconds: f64,
        records_per_s: f64,
        speedup_vs_serial: f64,
    }
    #[derive(serde::Serialize)]
    struct BenchConfigRun {
        config: &'static str,
        serial: BenchPhase,
        sharded: Vec<BenchShard>,
    }
    #[derive(serde::Serialize)]
    struct BenchReport {
        records: usize,
        trace_bytes: usize,
        host_cpus: usize,
        default_threads: usize,
        ingest_mib_per_s: f64,
        ingest: BenchPhase,
        configs: Vec<BenchConfigRun>,
    }

    let n = if args.ops_explicit {
        args.opts.ops
    } else {
        10_000_000
    };
    let seed = args.opts.seed | 1;
    smrseek_obs::info!("bench: generating {n} records");
    let records: Vec<TraceRecord> = (0..n as u64)
        .map(|i| {
            // A multiplicative scramble over a 16 GiB span: almost every
            // record seeks, so the seek model is fully exercised.
            let lba = smrseek_trace::Lba::new(
                i.wrapping_mul(seed).wrapping_mul(2654435761) % (1 << 22) * 8,
            );
            if i % 3 == 0 {
                TraceRecord::read(i, lba, 8)
            } else {
                TraceRecord::write(i, lba, 16)
            }
        })
        .collect();
    let mut buf = Vec::new();
    binary::write_binary_v2(&mut buf, &records).map_err(|e| CliError::Io(e.to_string()))?;
    let trace_bytes = buf.len();
    drop(records);
    let map = MmapTrace::from_bytes(buf).map_err(|e| CliError::Parse(e.to_string()))?;

    let phase = |seconds: f64| BenchPhase {
        seconds,
        records_per_s: n as f64 / seconds,
    };
    // Ingest: one block-decode pass over the mapped bytes, no simulation.
    let start = Instant::now();
    let mut blocks = map.blocks();
    let mut decoded = 0usize;
    while let Some(block) = blocks.next_block() {
        decoded += block.len();
    }
    let ingest_s = start.elapsed().as_secs_f64();
    if decoded != n {
        return Err(CliError::Parse(format!(
            "bench decoded {decoded} of {n} records"
        )));
    }

    let host_cpus = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    if host_cpus == 1 {
        smrseek_obs::warn!(
            "bench: only 1 host CPU available — sharded replay cannot run in parallel here, \
             so speedups measure sharding overhead, not gain"
        );
    }

    // One history-free config (direct head seeding), one log-structured
    // config (checkpoint-seeded sharding with its serial prepass), and the
    // full mechanism stack with and without the adaptive policy engine —
    // the last pair reads off the engine's end-to-end overhead.
    let fixed_stack = {
        let mut c = SimConfig::ls_adaptive();
        c.policy = None;
        c.flash_cache_bytes = None;
        c
    };
    let bench_configs = [
        ("NoLS", SimConfig::no_ls()),
        ("LS", SimConfig::log_structured()),
        ("LS+fixed", fixed_stack),
        ("LS+adaptive", SimConfig::ls_adaptive()),
    ];
    let mut configs = Vec::with_capacity(bench_configs.len());
    for (name, config) in bench_configs {
        let replay = |shards: usize| {
            let start = Instant::now();
            let report = Simulation::new(&config).shards(shards).run_trace(&map);
            (start.elapsed().as_secs_f64(), report.logical_ops)
        };
        // Warm the page cache and branch predictors off the books.
        replay(1);
        let (serial_s, serial_ops) = replay(1);
        if serial_ops != n as u64 {
            return Err(CliError::Parse(format!(
                "bench replayed {serial_ops} of {n} records"
            )));
        }
        let sharded = [1usize, 2, 4, 8]
            .into_iter()
            .map(|shards| {
                let (seconds, _) = replay(shards);
                smrseek_obs::info!(
                    "bench: {name} {shards} shard(s): {:.0} records/s",
                    n as f64 / seconds
                );
                BenchShard {
                    shards,
                    seconds,
                    records_per_s: n as f64 / seconds,
                    speedup_vs_serial: serial_s / seconds,
                }
            })
            .collect::<Vec<_>>();
        configs.push(BenchConfigRun {
            config: name,
            serial: phase(serial_s),
            sharded,
        });
    }

    let report = BenchReport {
        records: n,
        trace_bytes,
        host_cpus,
        default_threads: runner::default_threads().get(),
        ingest_mib_per_s: trace_bytes as f64 / (1 << 20) as f64 / ingest_s,
        ingest: phase(ingest_s),
        configs,
    };
    maybe_write_json(&args.json, &report)?;

    let mut table = TextTable::new(vec!["stage", "seconds", "records/s", "speedup"]);
    table.row(vec![
        "ingest".into(),
        format!("{:.3}", report.ingest.seconds),
        format!("{:.0}", report.ingest.records_per_s),
        String::new(),
    ]);
    for run in &report.configs {
        table.row(vec![
            format!("{} serial", run.config),
            format!("{:.3}", run.serial.seconds),
            format!("{:.0}", run.serial.records_per_s),
            "1.00".into(),
        ]);
        for s in &run.sharded {
            table.row(vec![
                format!("{} {} shard(s)", run.config, s.shards),
                format!("{:.3}", s.seconds),
                format!("{:.0}", s.records_per_s),
                format!("{:.2}", s.speedup_vs_serial),
            ]);
        }
    }
    Ok(format!(
        "bench: {n} records ({:.1} MiB binary), {host_cpus} host CPU(s)\n{table}",
        trace_bytes as f64 / (1 << 20) as f64
    ))
}

fn run_serve(args: &Args) -> Result<String, CliError> {
    let config = smrseek_server::ServerConfig {
        addr: args.addr.clone(),
        queue_depth: args.queue_depth,
        workers: args.workers,
        job_threads: args.threads,
        checkpoint_dir: args.checkpoint_dir.as_ref().map(PathBuf::from),
        checkpoint_every: args.checkpoint_every,
        peers: args.peers.clone(),
        ..smrseek_server::ServerConfig::default()
    };
    let handle = smrseek_server::start(config)
        .map_err(|e| CliError::Io(format!("cannot bind {}: {e}", args.addr)))?;
    // The address line goes to stdout (and is flushed) so scripts that
    // bind port 0 can learn the real port before talking to the daemon.
    println!("smrseekd listening on http://{}", handle.addr());
    std::io::stdout()
        .flush()
        .map_err(|e| CliError::Io(format!("cannot write startup line: {e}")))?;
    install_signal_handlers();
    while !SHUTDOWN.load(std::sync::atomic::Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    smrseek_obs::info!("smrseekd: signal received, draining running jobs");
    let (hits, misses) = handle.state().metrics.cache_counts();
    handle.shutdown();
    Ok(format!(
        "smrseekd: clean shutdown ({hits} cache hits, {misses} misses)\n"
    ))
}

/// `smrseek bench-daemon`: drives `--requests` submissions at a running
/// daemon with up to `--concurrency` in flight and reports completion,
/// drop, and backpressure counts plus the p50/p99/p999 latency tail.
/// The daemon must already be listening on `--addr` (typically
/// `smrseek serve` in another process).
fn run_bench_daemon(args: &Args) -> Result<String, CliError> {
    let addr = args
        .addr
        .parse()
        .map_err(|e| CliError::usage(format!("--addr must be a literal host:port: {e}")))?;
    let config = smrseek_server::loadgen::LoadConfig {
        addr,
        requests: args.requests,
        concurrency: args.concurrency.max(1),
        distinct: args.distinct.max(1),
        ops: if args.ops_explicit {
            args.opts.ops as u64
        } else {
            smrseek_server::loadgen::LoadConfig::default().ops
        },
        ..smrseek_server::loadgen::LoadConfig::default()
    };
    let report = smrseek_server::loadgen::run(&config)
        .map_err(|e| CliError::Io(format!("load generator failed: {e}")))?;
    maybe_write_json(&args.json, &report.to_json())?;
    Ok(format!(
        "bench-daemon: {} requests at concurrency {} against {addr}\n{}",
        args.requests,
        config.concurrency,
        report.render_text()
    ))
}

/// One `GET /v1/trace/<id>` against a daemon, relayed as `(status, body)`.
fn fetch_trace(addr: &str, id: &str) -> Result<(u16, Vec<u8>), CliError> {
    let timeout = std::time::Duration::from_secs(5);
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| CliError::Io(format!("connect to {addr}: {e}")))?;
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let head = format!("GET /v1/trace/{id} HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\n\r\n");
    stream
        .write_all(head.as_bytes())
        .map_err(|e| CliError::Io(format!("send to {addr}: {e}")))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| CliError::Io(format!("read from {addr}: {e}")))?;
    smrseek_server::http::parse_response(&raw)
        .map_err(|e| CliError::Parse(format!("bad response from {addr}: {e}")))
}

/// Decodes a `GET /v1/trace/<id>` body into [`smrseek_obs::DistSpan`]s.
fn parse_trace_body(body: &[u8]) -> Result<Vec<smrseek_obs::DistSpan>, String> {
    use serde::Value;
    fn hex_span_id(value: &Value) -> Option<u64> {
        value.as_str().and_then(|s| u64::from_str_radix(s, 16).ok())
    }
    fn number(span: &Value, key: &str) -> Result<u64, String> {
        span.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("span is missing {key}"))
    }
    let text = std::str::from_utf8(body).map_err(|_| "trace body is not UTF-8".to_owned())?;
    let root: Value =
        serde_json::from_str(text).map_err(|e| format!("trace body is not JSON: {e}"))?;
    let trace_id = root
        .get("trace_id")
        .and_then(Value::as_str)
        .and_then(smrseek_obs::dtrace::parse_trace_id)
        .ok_or("trace body has no trace_id")?;
    let spans = root
        .get("spans")
        .and_then(Value::as_array)
        .ok_or("trace body has no spans array")?;
    spans
        .iter()
        .map(|span| {
            Ok(smrseek_obs::DistSpan {
                trace_id,
                span_id: span
                    .get("span_id")
                    .and_then(hex_span_id)
                    .ok_or("span is missing span_id")?,
                parent_span_id: span.get("parent_span_id").and_then(hex_span_id),
                name: span
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("span is missing name")?
                    .to_owned(),
                request_id: span
                    .get("request_id")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_owned(),
                start_unix_ns: number(span, "start_unix_ns")?,
                dur_ns: number(span, "dur_ns")?,
                pid: u32::try_from(number(span, "pid")?).map_err(|_| "pid overflows u32")?,
                tid: number(span, "tid")?,
            })
        })
        .collect()
}

/// `smrseek trace`: fetches `GET /v1/trace/<trace-id>` from a daemon
/// (`--addr`) or every member of a fleet (`--peers`), stitches the spans
/// into one timeline, and writes a Chrome trace-event JSON (loadable in
/// Perfetto) to `--out`. Daemons that answer 404 simply never touched
/// the trace — a forwarded job leaves spans on exactly two fleet
/// members — so 404s are skipped, not fatal; only a trace no daemon
/// holds is an error.
fn run_trace_fetch(args: &Args) -> Result<String, CliError> {
    let id = args
        .file
        .as_ref()
        .ok_or_else(|| CliError::usage("trace needs a trace id (32 lowercase hex digits)"))?;
    if smrseek_obs::dtrace::parse_trace_id(id).is_none() {
        return Err(CliError::usage(format!(
            "{id:?} is not a trace id (expected 32 lowercase hex digits, \
             e.g. from a POST /v1/jobs x-smrseek-trace response header)"
        )));
    }
    let addrs: &[String] = if args.peers.is_empty() {
        std::slice::from_ref(&args.addr)
    } else {
        &args.peers
    };
    let mut spans: Vec<smrseek_obs::DistSpan> = Vec::new();
    let mut processes: Vec<(u32, String)> = Vec::new();
    let mut holders = 0usize;
    for addr in addrs {
        let (status, body) = fetch_trace(addr, id)?;
        match status {
            200 => {}
            404 => continue,
            other => {
                return Err(CliError::Io(format!(
                    "daemon {addr} answered {other} for trace {id}: {}",
                    String::from_utf8_lossy(&body).trim()
                )))
            }
        }
        holders += 1;
        let parsed =
            parse_trace_body(&body).map_err(|e| CliError::Parse(format!("{addr}: {e}")))?;
        for span in parsed {
            if !processes.iter().any(|&(pid, _)| pid == span.pid) {
                processes.push((span.pid, format!("smrseekd {addr} (pid {})", span.pid)));
            }
            // `--addr` may also appear in `--peers`; keep one copy of
            // each span rather than double-drawing its slice.
            if !spans
                .iter()
                .any(|s| s.span_id == span.span_id && s.pid == span.pid)
            {
                spans.push(span);
            }
        }
    }
    if spans.is_empty() {
        return Err(CliError::Io(format!(
            "no daemon at {} holds trace {id} (traces are evicted FIFO; re-run the job?)",
            addrs.join(", ")
        )));
    }
    spans.sort_by_key(|s| (s.start_unix_ns, s.span_id));
    let out = args.out.clone().unwrap_or_else(|| "trace.json".to_owned());
    let file = File::create(&out).map_err(|e| CliError::Io(format!("cannot create {out}: {e}")))?;
    let mut writer = BufWriter::new(file);
    smrseek_obs::chrome::write_dist_trace(&mut writer, &spans, &processes)
        .and_then(|()| writer.flush())
        .map_err(|e| CliError::Io(format!("cannot write {out}: {e}")))?;
    Ok(format!(
        "trace {id}: {} span(s) across {} process(es) from {holders} daemon(s) -> {out}\n",
        spans.len(),
        processes.len()
    ))
}

fn run_experiment(args: &Args) -> Result<String, CliError> {
    let opts = &args.opts;
    Ok(match args.command.as_str() {
        "table1" => {
            let cache = cache_dir(args);
            let rows = table1::run_cached(opts, args.threads, cache.as_deref());
            maybe_write_json(&args.json, &rows)?;
            table1::render(&rows)
        }
        "fig2" => {
            let cache = cache_dir(args);
            let (rows, stats) = fig2::run_cached(opts, args.threads, cache.as_deref());
            smrseek_obs::info!("{}", stats.summary("fig2"));
            maybe_write_json(&args.json, &rows)?;
            fig2::render(&rows)
        }
        "fig3" => {
            let series = fig3::run(opts);
            maybe_write_json(&args.json, &series)?;
            fig3::render(&series)
        }
        "fig4" => {
            let cdfs = fig4::run(opts);
            maybe_write_json(&args.json, &cdfs)?;
            fig4::render(&cdfs)
        }
        "fig5" => {
            let dists = fig5::run(opts);
            maybe_write_json(&args.json, &dists)?;
            fig5::render(&dists)
        }
        "fig7" => {
            let patterns = fig7::run(opts);
            maybe_write_json(&args.json, &patterns)?;
            fig7::render(&patterns)
        }
        "fig8" => {
            let rows = fig8::run(opts);
            maybe_write_json(&args.json, &rows)?;
            fig8::render(&rows)
        }
        "fig10" => {
            let stats = fig10::run(opts);
            maybe_write_json(&args.json, &stats)?;
            fig10::render(&stats)
        }
        "fig11" => {
            let rows = fig11::run(opts);
            maybe_write_json(&args.json, &rows)?;
            fig11::render(&rows)
        }
        "ablate" => {
            let (sweeps, stats) = ablation::run_with_threads(opts, args.threads);
            smrseek_obs::info!("{}", stats.summary("ablate"));
            maybe_write_json(&args.json, &sweeps)?;
            ablation::render(&sweeps)
        }
        "adaptive" => {
            let cache = cache_dir(args);
            let (report, stats) = adaptive::run_cached(opts, args.threads, cache.as_deref());
            smrseek_obs::info!("{}", stats.summary("adaptive"));
            maybe_write_json(&args.json, &report)?;
            adaptive::render(&report)
        }
        "analyze" => {
            let rows = analyze::run(opts);
            maybe_write_json(&args.json, &rows)?;
            analyze::render(&rows)
        }
        "frag" => {
            let rows = fragmentation::run(opts);
            maybe_write_json(&args.json, &rows)?;
            fragmentation::render(&rows)
        }
        "classify" => {
            let rows = classify::run(opts);
            maybe_write_json(&args.json, &rows)?;
            classify::render(&rows)
        }
        "timeamp" => {
            let rows = time_amp::run(opts);
            maybe_write_json(&args.json, &rows)?;
            time_amp::render(&rows)
        }
        "hostcache" => {
            let sweeps = host_cache::run(opts);
            maybe_write_json(&args.json, &sweeps)?;
            host_cache::render(&sweeps)
        }
        "clean" => {
            let points = cleaning::run(opts);
            let policies = cleaning::compare_policies(opts);
            maybe_write_json(&args.json, &(&points, &policies))?;
            format!(
                "{}\n{}",
                cleaning::render(&points),
                cleaning::render_policies(&policies)
            )
        }
        "zones" => {
            let rows = zones::run(opts);
            maybe_write_json(&args.json, &rows)?;
            zones::render(&rows)
        }
        "reorder" => {
            let rows = reorder::run(opts);
            maybe_write_json(&args.json, &rows)?;
            reorder::render(&rows)
        }
        "all" => {
            // Every section becomes one cell of work for `parallel_map`:
            // output text and JSON are assembled in this fixed order, so
            // stdout and `--json` are byte-identical for any --threads.
            use serde::{Serialize, Value};
            use std::time::Duration;
            type Section = (&'static str, Box<dyn Fn() -> (String, Value) + Sync>);
            let o = *opts;
            let table1_cache = cache_dir(args);
            let fig2_cache = cache_dir(args);
            let sections: Vec<Section> = vec![
                (
                    "table1",
                    Box::new(move || {
                        let r = table1::run_cached(&o, NonZeroUsize::MIN, table1_cache.as_deref());
                        (format!("{}\n", table1::render(&r)), r.to_value())
                    }),
                ),
                (
                    "fig2",
                    Box::new(move || {
                        let r = fig2::run_cached(&o, NonZeroUsize::MIN, fig2_cache.as_deref()).0;
                        (fig2::render(&r), r.to_value())
                    }),
                ),
                (
                    "fig3",
                    Box::new(move || {
                        let r = fig3::run(&o);
                        (format!("{}\n", fig3::render(&r)), r.to_value())
                    }),
                ),
                (
                    "fig4",
                    Box::new(move || {
                        let r = fig4::run(&o);
                        (format!("{}\n", fig4::render(&r)), r.to_value())
                    }),
                ),
                (
                    "fig5",
                    Box::new(move || {
                        let r = fig5::run(&o);
                        (format!("{}\n", fig5::render(&r)), r.to_value())
                    }),
                ),
                (
                    "fig7",
                    Box::new(move || {
                        let r = fig7::run(&o);
                        (format!("{}\n", fig7::render(&r)), r.to_value())
                    }),
                ),
                (
                    "fig8",
                    Box::new(move || {
                        let r = fig8::run(&o);
                        (format!("{}\n", fig8::render(&r)), r.to_value())
                    }),
                ),
                (
                    "fig10",
                    Box::new(move || {
                        let r = fig10::run(&o);
                        (format!("{}\n", fig10::render(&r)), r.to_value())
                    }),
                ),
                (
                    "fig11",
                    Box::new(move || {
                        let r = fig11::run(&o);
                        (fig11::render(&r), r.to_value())
                    }),
                ),
                (
                    "classify",
                    Box::new(move || {
                        let r = classify::run(&o);
                        (format!("{}\n", classify::render(&r)), r.to_value())
                    }),
                ),
                (
                    "analyze",
                    Box::new(move || {
                        let r = analyze::run(&o);
                        (format!("{}\n", analyze::render(&r)), r.to_value())
                    }),
                ),
                (
                    "frag",
                    Box::new(move || {
                        let r = fragmentation::run(&o);
                        (format!("{}\n", fragmentation::render(&r)), r.to_value())
                    }),
                ),
                (
                    "ablate",
                    Box::new(move || {
                        let r = ablation::run(&o);
                        (ablation::render(&r), r.to_value())
                    }),
                ),
                (
                    "adaptive",
                    Box::new(move || {
                        let r = adaptive::run(&o);
                        (adaptive::render(&r), r.to_value())
                    }),
                ),
                (
                    "timeamp",
                    Box::new(move || {
                        let r = time_amp::run(&o);
                        (format!("{}\n", time_amp::render(&r)), r.to_value())
                    }),
                ),
                (
                    "hostcache",
                    Box::new(move || {
                        let r = host_cache::run(&o);
                        (host_cache::render(&r), r.to_value())
                    }),
                ),
                (
                    "clean",
                    Box::new(move || {
                        let r = cleaning::run(&o);
                        (format!("{}\n", cleaning::render(&r)), r.to_value())
                    }),
                ),
                (
                    "reorder",
                    Box::new(move || {
                        let r = reorder::run(&o);
                        (format!("{}\n", reorder::render(&r)), r.to_value())
                    }),
                ),
                (
                    "zones",
                    Box::new(move || {
                        let r = zones::run(&o);
                        (zones::render(&r), r.to_value())
                    }),
                ),
            ];
            let results: Vec<(String, Value, Duration)> =
                parallel_map(&sections, args.threads, |(_, job)| {
                    let t = Instant::now();
                    let (text, value) = job();
                    (text, value, t.elapsed())
                });
            let mut out = String::new();
            let mut doc = Vec::with_capacity(results.len());
            let mut busy = Duration::ZERO;
            for ((name, _), (text, value, wall)) in sections.iter().zip(results) {
                smrseek_obs::info!("all: {name} {:.2}s", wall.as_secs_f64());
                busy += wall;
                out.push_str(&text);
                doc.push(((*name).to_owned(), value));
            }
            smrseek_obs::info!(
                "all: {} experiments, {:.2}s of sim time on {} thread(s)",
                doc.len(),
                busy.as_secs_f64(),
                args.threads
            );
            maybe_write_json(&args.json, &Value::Object(doc))?;
            out
        }
        "plotdata" => {
            let dir = args.out.clone().unwrap_or_else(|| "plotdata".to_owned());
            let written = smrseek_sim::plotdata::export_all(opts, std::path::Path::new(&dir))
                .map_err(CliError::Io)?;
            let mut out = format!("wrote {} CSV files to {dir}/:\n", written.len());
            for p in written {
                out.push_str(&format!("  {}\n", p.display()));
            }
            out
        }
        "list" => {
            let mut table = TextTable::new(vec!["name", "family", "reads", "writes", "guest OS"]);
            for p in smrseek_workloads::profiles::all() {
                table.row(vec![
                    p.name.to_owned(),
                    p.family.to_string(),
                    p.row.read_count.to_string(),
                    p.row.write_count.to_string(),
                    p.row.os.to_owned(),
                ]);
            }
            format!("Table-I workload profiles\n{table}")
        }
        "gen" => {
            let name = args
                .file
                .as_ref()
                .ok_or_else(|| CliError::usage("gen needs a profile name"))?;
            let profile = smrseek_workloads::profiles::by_name(name).ok_or_else(|| {
                CliError::usage(format!("unknown profile {name:?} (try `smrseek list`)"))
            })?;
            let trace = profile.generate_scaled(opts.seed, opts.ops);
            match &args.out {
                Some(path) => {
                    let mut f = File::create(path)
                        .map_err(|e| CliError::Io(format!("cannot create {path}: {e}")))?;
                    write_cp_csv(&mut f, &trace)
                        .map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
                    format!("wrote {} records to {path}\n", trace.len())
                }
                None => {
                    let mut buf = Vec::new();
                    write_cp_csv(&mut buf, &trace).map_err(|e| CliError::Io(e.to_string()))?;
                    String::from_utf8(buf).expect("CSV is UTF-8")
                }
            }
        }
        "characterize" => {
            let path = args
                .file
                .as_ref()
                .ok_or_else(|| CliError::usage("characterize needs a trace file"))?;
            let trace = load_trace(path, args.format)?;
            let stats = characterize(&trace);
            let analysis = smrseek_trace::summarize(&trace);
            maybe_write_json(&args.json, &(&stats, &analysis))?;
            format!(
                "{path}: {stats}\n  sequentiality {:.1}%, footprint {:.1} MiB\n  {} overwrites (median interval {}), read-after-write {:.1}%\n  WSS mean {:.0} / peak {} blocks of 4 KiB\n",
                100.0 * stats.sequentiality(),
                stats.footprint_sectors as f64 / 2048.0,
                analysis.overwrites,
                analysis
                    .median_overwrite_interval
                    .map_or_else(|| "n/a".to_owned(), |v| v.to_string()),
                100.0 * analysis.read_after_write,
                analysis.mean_wss_blocks,
                analysis.peak_wss_blocks,
            )
        }
        "simulate" => {
            let path = args
                .file
                .as_ref()
                .ok_or_else(|| CliError::usage("simulate needs a trace file"))?;
            let source = simulate_source(path, args.format, args.cache)?;
            let matrix = RunMatrix::cross(&[source], &SimConfig::standard_sweep());
            let outcomes = matrix.execute_with(args.threads, args.shards);
            smrseek_obs::info!(
                "{}",
                MatrixStats::from_outcomes(&outcomes).summary("simulate")
            );
            let ops = outcomes[0].report.logical_ops;
            let safs = saf::sweep_safs(&outcomes);
            let mut table = TextTable::new(vec!["layer", "read seeks", "write seeks", "SAF"]);
            for (outcome, (layer, saf)) in outcomes.iter().zip(&safs) {
                table.row(vec![
                    layer.clone(),
                    outcome.report.seeks.read_seeks.to_string(),
                    outcome.report.seeks.write_seeks.to_string(),
                    format!("{:.2}", saf.total),
                ]);
            }
            maybe_write_json(&args.json, &safs)?;
            format!("{path}: {ops} ops\n{table}")
        }
        "bench" => run_bench(args)?,
        "serve" => run_serve(args)?,
        "bench-daemon" => run_bench_daemon(args)?,
        "profile" => run_profile(args)?,
        "trace" => run_trace_fetch(args)?,
        "snapshot" => {
            let path = args
                .file
                .as_ref()
                .ok_or_else(|| CliError::usage("snapshot needs a trace file"))?;
            let dir = args
                .file2
                .as_ref()
                .ok_or_else(|| CliError::usage("snapshot needs a checkpoint directory"))?;
            let at = args
                .at
                .ok_or_else(|| CliError::usage("snapshot needs --at N (records into the trace)"))?;
            if at == 0 {
                return Err(CliError::usage("--at must be positive"));
            }
            let source = simulate_source(path, args.format, args.cache)?;
            let records = source.records();
            if at as usize > records.len() {
                return Err(CliError::usage(format!(
                    "--at {at} exceeds the trace's {} records",
                    records.len()
                )));
            }
            let digest = source.digest().as_u128();
            let top = source.top_sector();
            let store = CheckpointStore::new(dir);
            let configs = SimConfig::standard_sweep();
            // Replay only the prefix under each sweep config, with the
            // cadence set to fire exactly once — at record `at`.
            let saved: Vec<(String, Result<PathBuf, String>)> =
                parallel_map(&configs, args.threads, |config| {
                    let run = config.with_frontier_hint(top).with_checkpoint_every(at);
                    let mut written = Err("no checkpoint emitted".to_owned());
                    let report = Simulation::new(&run)
                        .checkpoint_sink(|snap: &smrseek_sim::EngineSnapshot| {
                            if snap.logical_ops == at {
                                written = store
                                    .save(digest, &checkpoint_config_key(config, top), snap)
                                    .map_err(|e| e.to_string());
                            }
                        })
                        .run(records[..at as usize].iter().copied());
                    (report.layer_name, written)
                });
            let mut out = format!(
                "{path}: checkpointed {at} of {} records (digest {digest:032x})\n",
                records.len()
            );
            for (layer, written) in saved {
                let file = written.map_err(CliError::Io)?;
                out.push_str(&format!("  {layer}: {}\n", file.display()));
            }
            out
        }
        "resume" => {
            let path = args
                .file
                .as_ref()
                .ok_or_else(|| CliError::usage("resume needs a trace file"))?;
            let dir = args
                .file2
                .as_ref()
                .ok_or_else(|| CliError::usage("resume needs a checkpoint directory"))?;
            let source = simulate_source(path, args.format, args.cache)?;
            let digest = source.digest().as_u128();
            let store = CheckpointStore::new(dir);
            let matrix = RunMatrix::cross(&[source], &SimConfig::standard_sweep());
            let (outcomes, usage) = matrix.execute_checkpointed(args.threads, &store, digest);
            smrseek_obs::info!(
                "resume: {} checkpoint hit(s), {} miss(es), {} record(s) skipped",
                usage.hits,
                usage.misses,
                usage.records_skipped
            );
            // Everything below matches `simulate` exactly: resuming from a
            // checkpoint must never change output bytes.
            let ops = outcomes[0].report.logical_ops;
            let safs = saf::sweep_safs(&outcomes);
            let mut table = TextTable::new(vec!["layer", "read seeks", "write seeks", "SAF"]);
            for (outcome, (layer, saf)) in outcomes.iter().zip(&safs) {
                table.row(vec![
                    layer.clone(),
                    outcome.report.seeks.read_seeks.to_string(),
                    outcome.report.seeks.write_seeks.to_string(),
                    format!("{:.2}", saf.total),
                ]);
            }
            maybe_write_json(&args.json, &safs)?;
            format!("{path}: {ops} ops\n{table}")
        }
        "convert" => {
            let input = args
                .file
                .as_ref()
                .ok_or_else(|| CliError::usage("convert needs <trace> <out.smrt>"))?;
            let out = args
                .file2
                .as_ref()
                .ok_or_else(|| CliError::usage("convert needs an output path"))?;
            let records = load_trace(input, args.format)?;
            tracecache::write_sidecar(Path::new(out), &records).map_err(CliError::Io)?;
            format!(
                "wrote {} records to {out} (binary v2, top sector {})\n",
                records.len(),
                binary::top_sector(&records)
            )
        }
        other => {
            return Err(CliError::usage(format!(
                "unknown command {other:?}\n{}",
                usage()
            )))
        }
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--version" || a == "-V") {
        println!("smrseek {}", env!("CARGO_PKG_VERSION"));
        return ExitCode::SUCCESS;
    }
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(err) => {
            eprintln!("{err}");
            return ExitCode::from(err.exit_code());
        }
    };
    // Threshold first from the environment, then `-v` raises it to debug
    // (never lowers); `--log-json` switches stderr to JSON lines.
    smrseek_obs::log::init_from_env();
    if args.verbose && smrseek_obs::log::level() < smrseek_obs::Level::Debug {
        smrseek_obs::log::set_level(smrseek_obs::Level::Debug);
    }
    if args.log_json {
        smrseek_obs::log::set_json(true);
    }
    let started = Instant::now();
    match run_experiment(&args) {
        Ok(output) => {
            print!("{output}");
            smrseek_obs::info!(
                "{}: done in {:.2}s ({} thread(s))",
                args.command,
                started.elapsed().as_secs_f64(),
                args.threads
            );
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("{err}");
            ExitCode::from(err.exit_code())
        }
    }
}
