//! `smrseekd`: the simulation-as-a-service daemon behind `smrseek serve`.
//!
//! The engine can replay traces in bounded memory, fan out across
//! threads, and share one mmapped copy of a trace — but a fresh CLI
//! process re-does all of that setup per experiment and throws the
//! results away. This crate turns the engine into a *persistent* service
//! in the spirit of host-side translation daemons (SALSA, SMORE): traces
//! load once into a shared registry, results are cached by content
//! (trace digest × canonicalized config), and sustained concurrent load
//! becomes something future PRs can measure against.
//!
//! The HTTP surface (all JSON unless noted):
//!
//! | Route                      | Meaning                                      |
//! |----------------------------|----------------------------------------------|
//! | `POST /v1/jobs`            | submit a job → `{id, status, cache}`, or 503 + `Retry-After` when the queue is full |
//! | `GET /v1/jobs`             | every known job as `{id, status}` pairs      |
//! | `GET /v1/jobs/<id>`        | status envelope, result inlined when done    |
//! | `GET /v1/jobs/<id>/result` | the raw result document, byte-stable         |
//! | `GET /v1/jobs/<id>/events` | live job progress as Server-Sent Events (see [`sse`]) |
//! | `GET /v1/trace/<trace-id>` | every distributed span this daemon recorded for a trace |
//! | `GET /healthz`             | liveness probe (text: `ok`, workers, queue depth/capacity, fleet view) |
//! | `GET /metrics`             | Prometheus text exposition                   |
//!
//! Since PR 9 the daemon fronts everything with the nonblocking
//! event-loop core in `smrseek-net`: one reactor thread multiplexes
//! every connection through epoll, slow or stalled clients are reaped on
//! a deadline instead of pinning a thread, quick GETs answer inline on
//! the reactor, and submissions (which may mmap a trace or forward to a
//! peer) run on a small auxiliary pool — worker threads only ever replay
//! simulations. With `--peers`, N daemons shard the result cache by
//! consistent hashing on the job key so each unique sweep is computed
//! exactly once fleet-wide (see [`fleet`]).
//!
//! With `--checkpoint-dir`, workers also persist periodic engine
//! snapshots keyed like the result cache; a resubmitted job (same trace ×
//! config) resumes from the stored prefix instead of replaying from
//! record zero — including across daemon restarts. See
//! [`worker::CheckpointPolicy`].
//!
//! Everything is `std`: `std::net` sockets, `std::thread` workers, the
//! vendored `serde_json` for JSON. See [`http`] for the wire format,
//! [`jobs`] for queueing/caching semantics, [`worker`] for execution,
//! [`metrics`] for observability, [`api`] for request parsing.

pub mod api;
pub mod fleet;
pub mod http;
pub mod jobs;
pub mod loadgen;
pub mod metrics;
pub mod sse;
pub mod worker;

use crate::api::{JobRequest, TraceRef};
use crate::fleet::Fleet;
use crate::http::{read_request, Request, RequestError, Response};
use crate::jobs::{JobId, JobState, JobTable, JobTrace, Submit};
use crate::metrics::{Endpoint, Metrics};
use crate::worker::{CheckpointPolicy, JobKind, JobWork};
use serde::{Number, Value};
use smrseek_net::{Action, NetConfig, NetHandle};
use smrseek_obs::dtrace::{self, TRACE_HEADER};
use smrseek_obs::{DistSpan, SpanStore, TraceContext};
use smrseek_sim::experiments::ExpOptions;
use smrseek_sim::tracecache::TraceRegistry;
use smrseek_sim::{CheckpointStore, TraceSource};
use smrseek_workloads::profiles;
use std::fmt::Write as _;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Mints a process-unique request id: the pid (hex) plus a sequence
/// number, e.g. `0000abcd-000001`. Stable across threads, trivially
/// greppable in the access log, and echoed on every job the request
/// creates.
fn next_request_id() -> String {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed) + 1;
    format!("{:08x}-{seq:06}", std::process::id())
}

/// Distinct traces the per-daemon span store retains before evicting
/// whole traces FIFO. A trace is a handful of spans; 256 comfortably
/// covers "submit a sweep, then go fetch its trace".
const SPAN_STORE_TRACES: usize = 256;

/// A client-supplied `x-request-id` the daemon will honor: 1–64 bytes of
/// `[A-Za-z0-9_-]`. Anything else (absent, empty, too long, or containing
/// characters that would corrupt the access log or response headers) is
/// ignored and the daemon mints its own id instead. Forwarded hops always
/// pass the origin's id, so one fleet-wide submission logs one id.
fn client_request_id(request: &Request) -> Option<String> {
    let id = request.header("x-request-id")?;
    let valid = !id.is_empty()
        && id.len() <= 64
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-');
    valid.then(|| id.to_owned())
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Maximum queued (accepted but not yet running) jobs before
    /// submissions are refused with 503.
    pub queue_depth: usize,
    /// Worker threads draining the queue. Zero is allowed and means jobs
    /// queue but never run — useful for tests and drain-only maintenance.
    pub workers: usize,
    /// Threads each job's run matrix may use.
    pub job_threads: NonZeroUsize,
    /// Directory of simulation checkpoints shared across jobs (and, being
    /// plain files, across daemon restarts). `None` disables prefix reuse.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint emission cadence (records) when `checkpoint_dir` is set.
    pub checkpoint_every: u64,
    /// The full fleet peer list (every daemon's advertised address,
    /// including this one's bound address) for sharding the result cache.
    /// Empty means a standalone daemon.
    pub peers: Vec<String>,
    /// How long a connection may sit without delivering a complete
    /// request (or draining a response) before the reactor reaps it.
    pub idle_timeout: Duration,
    /// Auxiliary dispatch threads for work too slow for the reactor
    /// (trace loading, peer forwarding).
    pub aux_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            queue_depth: 64,
            workers: 2,
            job_threads: NonZeroUsize::MIN,
            checkpoint_dir: None,
            checkpoint_every: 100_000,
            peers: Vec::new(),
            idle_timeout: Duration::from_secs(10),
            aux_threads: 2,
        }
    }
}

/// State shared by every daemon thread.
pub struct ServerState {
    /// Job queue, lifecycle, and result cache.
    pub jobs: Arc<JobTable>,
    /// Counters and latency histograms.
    pub metrics: Arc<Metrics>,
    /// Shared open traces (one mapping per file trace, process-wide).
    pub registry: TraceRegistry,
    /// Distributed spans recorded by this process, served by
    /// `GET /v1/trace/<trace-id>`.
    pub spans: Arc<SpanStore>,
    /// Configured worker-thread count, reported by `/healthz`.
    pub workers: usize,
}

impl ServerState {
    /// Fresh state with a queue bound of `queue_depth` served by
    /// `workers` threads; the daemon builds one in [`start`], tests build
    /// one directly to exercise [`route`].
    pub fn new(queue_depth: usize, workers: usize) -> Self {
        ServerState {
            jobs: Arc::new(JobTable::new(queue_depth)),
            metrics: Arc::new(Metrics::new()),
            registry: TraceRegistry::new(),
            spans: Arc::new(SpanStore::new(SPAN_STORE_TRACES)),
            workers,
        }
    }
}

/// A running daemon. Dropping the handle does *not* stop the server;
/// call [`Handle::shutdown`].
pub struct Handle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    net: Option<NetHandle>,
    workers: Vec<JoinHandle<()>>,
}

impl Handle {
    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (tests and the CLI read metrics through this).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Graceful shutdown: stop the reactor (open connections are closed,
    /// no new ones accepted), let every worker finish the job it is
    /// running (queued jobs are dropped), and join all threads.
    pub fn shutdown(mut self) {
        if let Some(net) = self.net.take() {
            net.shutdown();
        }
        self.state.jobs.shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Starts the daemon.
///
/// # Errors
///
/// Returns the bind error when the address is unavailable.
pub fn start(config: ServerConfig) -> io::Result<Handle> {
    // The daemon always pays for coarse phase accounting (a few
    // `Instant::now` calls per record) so `/metrics` can export where
    // replay time goes; offline CLI runs leave it off.
    smrseek_obs::set_phase_accounting(true);
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(ServerState::new(config.queue_depth, config.workers));
    let fleet = if config.peers.is_empty() {
        None
    } else {
        let fleet = Fleet::new(addr, &config.peers)
            .map_err(|msg| io::Error::new(io::ErrorKind::InvalidInput, msg))?;
        state.metrics.register_peers(&fleet.remote_labels());
        Some(Arc::new(fleet))
    };
    let policy = config.checkpoint_dir.as_ref().map(|dir| {
        Arc::new(CheckpointPolicy {
            store: CheckpointStore::new(dir),
            every: config.checkpoint_every,
        })
    });
    let workers = worker::spawn_workers(
        config.workers,
        Arc::clone(&state.jobs),
        Arc::clone(&state.metrics),
        Arc::clone(&state.spans),
        config.job_threads,
        policy,
    );
    let dispatcher = Arc::new(DaemonDispatcher {
        state: Arc::clone(&state),
        fleet,
    });
    let net = smrseek_net::serve(
        listener,
        dispatcher,
        NetConfig {
            idle_timeout: config.idle_timeout,
            aux_threads: config.aux_threads.max(1),
            ..NetConfig::default()
        },
    )?;
    state.metrics.set_net_stats(net.stats());
    Ok(Handle {
        addr,
        state,
        net: Some(net),
        workers,
    })
}

/// Bridges the reactor to daemon routing. Quick GETs answer inline on
/// the reactor thread; `POST /v1/jobs` defers to the auxiliary pool
/// (resolving a trace can mmap + digest a file, and fleet forwarding
/// blocks on a peer); `GET /v1/jobs/<id>/events` returns the job's live
/// event stream.
struct DaemonDispatcher {
    state: Arc<ServerState>,
    fleet: Option<Arc<Fleet>>,
}

/// Logs and accounts one finished request, returning the wire bytes.
fn finish(
    state: &ServerState,
    endpoint: Endpoint,
    line: &str,
    request_id: &str,
    response: Response,
    started: Instant,
) -> Vec<u8> {
    let response = response.with_header("x-request-id", request_id);
    let elapsed = started.elapsed();
    smrseek_obs::info!(
        "request_id={request_id} {line} status={} duration_us={}",
        response.status,
        elapsed.as_micros()
    );
    state.metrics.observe(endpoint, elapsed);
    http::response_bytes(&response)
}

impl DaemonDispatcher {
    fn respond(
        &self,
        endpoint: Endpoint,
        line: &str,
        request_id: &str,
        response: Response,
        started: Instant,
    ) -> Action {
        Action::Respond(finish(
            &self.state,
            endpoint,
            line,
            request_id,
            response,
            started,
        ))
    }

    /// `GET /v1/jobs/<id>/events`: hand the connection the job's event
    /// stream. The latency observed is subscription setup, not stream
    /// lifetime.
    fn subscribe(&self, raw_id: &str, line: &str, request_id: &str, started: Instant) -> Action {
        let stream = raw_id
            .parse::<JobId>()
            .ok()
            .and_then(|id| self.state.jobs.events(id));
        match stream {
            Some(stream) => {
                let elapsed = started.elapsed();
                smrseek_obs::info!(
                    "request_id={request_id} {line} status=200 duration_us={} stream=open",
                    elapsed.as_micros()
                );
                self.state.metrics.observe(Endpoint::JobEvents, elapsed);
                Action::Stream {
                    head: sse::response_head(request_id),
                    stream,
                }
            }
            None => self.respond(
                Endpoint::JobEvents,
                line,
                request_id,
                Response::json(404, error_body("no such job")),
                started,
            ),
        }
    }
}

impl smrseek_net::Dispatcher for DaemonDispatcher {
    fn dispatch(&self, raw: Vec<u8>) -> Action {
        let started = Instant::now();
        let request_id = next_request_id();
        let request = match read_request(&mut &raw[..]) {
            Ok(request) => request,
            Err(RequestError::Malformed(msg)) => {
                return self.respond(
                    Endpoint::Other,
                    "(malformed)",
                    &request_id,
                    Response::json(400, error_body(&msg)),
                    started,
                );
            }
            // The framer only hands over complete requests, so a short
            // read here means the head itself was malformed.
            Err(RequestError::Closed | RequestError::Io(_)) => {
                return self.respond(
                    Endpoint::Other,
                    "(malformed)",
                    &request_id,
                    Response::json(400, error_body("truncated request")),
                    started,
                );
            }
        };
        // Honor a well-formed client-supplied id (a forwarding peer always
        // sends the origin's), otherwise keep the minted one.
        let request_id = client_request_id(&request).unwrap_or(request_id);
        let line = format!("{} {}", request.method, request.target);
        let path = request.target.split('?').next().unwrap_or("");
        if request.method == "GET" && path.starts_with("/v1/jobs/") {
            if let Some(raw_id) = path["/v1/jobs/".len()..].strip_suffix("/events") {
                return self.subscribe(raw_id, &line, &request_id, started);
            }
        }
        if request.method == "POST" && path == "/v1/jobs" {
            // The submission's trace context: continue the caller's trace
            // (its header span — a peer's `forward` span, or a client's
            // own root — becomes the parent), or mint a fresh root.
            let incoming = request.header(TRACE_HEADER).and_then(TraceContext::parse);
            let ctx = incoming.map_or_else(TraceContext::mint, |parent| parent.child());
            let parent_span = incoming.map(|parent| parent.span_id);
            let state = Arc::clone(&self.state);
            let fleet = self.fleet.clone();
            return Action::Defer(Box::new(move || {
                let dispatch_start = dtrace::unix_nanos();
                let response = submit_routed(&state, fleet.as_deref(), &request, &request_id, ctx);
                state.spans.record(DistSpan {
                    trace_id: ctx.trace_id,
                    span_id: ctx.span_id,
                    parent_span_id: parent_span,
                    name: "dispatch".to_owned(),
                    request_id: request_id.clone(),
                    start_unix_ns: dispatch_start,
                    dur_ns: dtrace::unix_nanos().saturating_sub(dispatch_start),
                    pid: std::process::id(),
                    tid: smrseek_obs::current_tid(),
                });
                // Echo the context so the submitter can fetch the trace.
                let response = response.with_header(TRACE_HEADER, ctx.header_value());
                Action::Respond(finish(
                    &state,
                    Endpoint::JobsPost,
                    &line,
                    &request_id,
                    response,
                    started,
                ))
            }));
        }
        let (endpoint, response) = route(&self.state, self.fleet.as_deref(), &request, &request_id);
        self.respond(endpoint, &line, &request_id, response, started)
    }
}

/// Routes one request against the daemon state. Connection threads call
/// this; it is public so tests can exercise the full API in-process.
/// `fleet` (when sharded) feeds the `/healthz` fleet view; `request_id`
/// is echoed in submit/status envelopes and retained on any job this
/// request creates.
pub fn route(
    state: &ServerState,
    fleet: Option<&Fleet>,
    request: &Request,
    request_id: &str,
) -> (Endpoint, Response) {
    let path = request.target.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            let snap = state.jobs.snapshot();
            let mut body = format!(
                "ok\nworkers: {}\nqueue_depth: {}\nqueue_capacity: {}\n",
                state.workers, snap.queue_depth, snap.capacity
            );
            if let Some(fleet) = fleet {
                let _ = writeln!(body, "fleet_peers: {}", fleet.len());
                let _ = writeln!(body, "self_vnodes: {}", fleet.self_vnodes());
                for (peer, forwarded, errors) in state.metrics.peer_counts() {
                    let _ = writeln!(body, "peer {peer} forwarded={forwarded} errors={errors}");
                }
            }
            (Endpoint::Healthz, Response::text(200, body))
        }
        ("GET", "/metrics") => {
            let body = state
                .metrics
                .render(&state.jobs.snapshot(), state.registry.len());
            (Endpoint::Metrics, Response::text(200, body))
        }
        ("POST", "/v1/jobs") => (
            Endpoint::JobsPost,
            submit_job(state, &request.body, request_id),
        ),
        ("GET", "/v1/jobs") => (Endpoint::JobsGet, jobs_list(state)),
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            let rest = &path["/v1/jobs/".len()..];
            if let Some(id) = rest.strip_suffix("/result") {
                (Endpoint::JobResult, job_result(state, id))
            } else {
                (Endpoint::JobsGet, job_status(state, rest))
            }
        }
        ("GET", path) if path.starts_with("/v1/trace/") => (
            Endpoint::Trace,
            trace_spans(state, &path["/v1/trace/".len()..]),
        ),
        (_, "/healthz" | "/metrics" | "/v1/jobs") => (
            Endpoint::Other,
            Response::json(405, error_body("method not allowed")),
        ),
        _ => (
            Endpoint::Other,
            Response::json(404, error_body("not found")),
        ),
    }
}

/// `GET /v1/trace/<trace-id>`: every distributed span this process
/// recorded for the trace, in record order. A fleet collector (the CLI's
/// `trace` subcommand) asks each daemon and merges the fragments by the
/// shared trace id.
fn trace_spans(state: &ServerState, raw_id: &str) -> Response {
    let Some(trace_id) = dtrace::parse_trace_id(raw_id) else {
        return Response::json(
            400,
            error_body("malformed trace id (32 lowercase hex digits)"),
        );
    };
    let Some(spans) = state.spans.get(trace_id) else {
        return Response::json(404, error_body("no such trace"));
    };
    let spans_json: Vec<Value> = spans
        .iter()
        .map(|span| {
            Value::Object(vec![
                (
                    "span_id".to_owned(),
                    Value::String(format!("{:016x}", span.span_id)),
                ),
                (
                    "parent_span_id".to_owned(),
                    span.parent_span_id
                        .map_or(Value::Null, |id| Value::String(format!("{id:016x}"))),
                ),
                ("name".to_owned(), Value::String(span.name.clone())),
                (
                    "request_id".to_owned(),
                    Value::String(span.request_id.clone()),
                ),
                (
                    "start_unix_ns".to_owned(),
                    Value::Number(Number::U(span.start_unix_ns)),
                ),
                ("dur_ns".to_owned(), Value::Number(Number::U(span.dur_ns))),
                (
                    "pid".to_owned(),
                    Value::Number(Number::U(u64::from(span.pid))),
                ),
                ("tid".to_owned(), Value::Number(Number::U(span.tid))),
            ])
        })
        .collect();
    Response::json(
        200,
        serde_json::to_string(&Value::Object(vec![
            (
                "trace_id".to_owned(),
                Value::String(format!("{trace_id:032x}")),
            ),
            ("spans".to_owned(), Value::Array(spans_json)),
        ]))
        .expect("trace body serializes"),
    )
}

fn error_body(msg: &str) -> String {
    serde_json::to_string(&Value::Object(vec![(
        "error".to_owned(),
        Value::String(msg.to_owned()),
    )]))
    .expect("error body serializes")
}

/// Resolves a parsed request into runnable work plus its cache key.
fn resolve(state: &ServerState, request: &JobRequest) -> Result<(String, JobWork), String> {
    let (source, trace_key, top, digest) = match &request.trace {
        TraceRef::Path(path) => {
            let entry = state
                .registry
                .load(path)
                .map_err(|e| format!("cannot load trace {}: {e}", path.display()))?;
            (
                entry.source.clone(),
                api::trace_key(&request.trace, Some(entry.digest)),
                Some(entry.top_sector),
                Some(entry.digest),
            )
        }
        TraceRef::Profile { name, seed, ops } => {
            let profile = profiles::by_name(name)
                .ok_or_else(|| format!("unknown profile {name:?} (try `smrseek list`)"))?;
            let opts = ExpOptions {
                seed: *seed,
                ops: *ops,
            };
            (
                TraceSource::from_profile(&profile, &opts),
                api::trace_key(&request.trace, None),
                // A generator's sector bound is unknown without materializing
                // the records; the engine derives it per-replay exactly like
                // the CLI does, so the canonical key simply omits it.
                None,
                // Same for the content digest: checkpointed workers compute
                // it on demand from the materialized records.
                None,
            )
        }
    };
    let key = api::result_key(&trace_key, top, request.config.as_ref());
    let kind = match request.config {
        None => JobKind::Sweep,
        Some(config) => JobKind::Single(Box::new(config)),
    };
    Ok((
        key,
        JobWork {
            source,
            kind,
            digest,
        },
    ))
}

fn submit_job(state: &ServerState, body: &[u8], request_id: &str) -> Response {
    let request = match api::parse_job_request(body) {
        Ok(request) => request,
        Err(msg) => return Response::json(400, error_body(&msg)),
    };
    let (key, work) = match resolve(state, &request) {
        Ok(resolved) => resolved,
        Err(msg) => return Response::json(400, error_body(&msg)),
    };
    submit_local(state, key, work, request_id, None)
}

/// The fleet-aware submission path the dispatcher defers to: resolve the
/// job key, forward to its consistent-hash owner when that is another
/// peer, otherwise enqueue locally. A request already marked
/// [`fleet::FORWARDED_HEADER`] is always handled locally — the owner
/// check happened on the first hop, and honoring the marker means a
/// misconfigured fleet degrades to local computation instead of a
/// forwarding loop.
fn submit_routed(
    state: &ServerState,
    fleet: Option<&Fleet>,
    request: &Request,
    request_id: &str,
    ctx: TraceContext,
) -> Response {
    let job_request = match api::parse_job_request(&request.body) {
        Ok(parsed) => parsed,
        Err(msg) => return Response::json(400, error_body(&msg)),
    };
    let (key, work) = match resolve(state, &job_request) {
        Ok(resolved) => resolved,
        Err(msg) => return Response::json(400, error_body(&msg)),
    };
    if let Some(fleet) = fleet {
        let owner = fleet.owner(&key);
        if !fleet.is_self(owner) && request.header(fleet::FORWARDED_HEADER).is_none() {
            let peer = fleet.peer(owner);
            let label = peer.to_string();
            // The hop gets its own span: the owner's `dispatch` parents to
            // it through the forwarded header, stitching both daemons.
            let forward_ctx = ctx.child();
            let forward_start = dtrace::unix_nanos();
            let relayed = fleet::forward(
                peer,
                &request.body,
                request_id,
                Some(&forward_ctx.header_value()),
            );
            state.spans.record(DistSpan {
                trace_id: forward_ctx.trace_id,
                span_id: forward_ctx.span_id,
                parent_span_id: Some(ctx.span_id),
                name: "forward".to_owned(),
                request_id: request_id.to_owned(),
                start_unix_ns: forward_start,
                dur_ns: dtrace::unix_nanos().saturating_sub(forward_start),
                pid: std::process::id(),
                tid: smrseek_obs::current_tid(),
            });
            return match relayed {
                Ok((status, body)) => {
                    state.metrics.forwarded(&label);
                    let relayed = Response::json(status, String::from_utf8_lossy(&body))
                        .with_header(fleet::PEER_HEADER, &label);
                    // parse_response flattens headers, so re-add the one
                    // contract header a 503 carries.
                    if status == 503 {
                        relayed.with_header("retry-after", "1")
                    } else {
                        relayed
                    }
                }
                Err(msg) => {
                    state.metrics.forward_error(&label);
                    Response::json(502, error_body(&msg))
                }
            };
        }
    }
    let trace = JobTrace {
        parent: ctx,
        queued_unix_ns: dtrace::unix_nanos(),
    };
    submit_local(state, key, work, request_id, Some(trace))
}

/// Enqueues resolved work against the local job table / result cache.
fn submit_local(
    state: &ServerState,
    key: String,
    work: JobWork,
    request_id: &str,
    trace: Option<JobTrace>,
) -> Response {
    match state
        .jobs
        .submit_traced(key, work, request_id.to_owned(), trace)
    {
        Submit::Queued(id) => {
            state.metrics.cache_miss();
            Response::json(202, submit_body(id, "queued", "miss", request_id))
        }
        Submit::Existing(id) => {
            state.metrics.cache_hit();
            let status = state.jobs.status(id).map_or("queued", |s| s.state.label());
            Response::json(200, submit_body(id, status, "hit", request_id))
        }
        Submit::Full => {
            state.metrics.rejected();
            Response::json(503, error_body("job queue full")).with_header("retry-after", "1")
        }
    }
}

fn jobs_list(state: &ServerState) -> Response {
    let jobs: Vec<Value> = state
        .jobs
        .list()
        .into_iter()
        .map(|(id, job_state)| {
            Value::Object(vec![
                ("id".to_owned(), Value::Number(Number::U(id))),
                (
                    "status".to_owned(),
                    Value::String(job_state.label().to_owned()),
                ),
            ])
        })
        .collect();
    Response::json(
        200,
        serde_json::to_string(&Value::Object(vec![(
            "jobs".to_owned(),
            Value::Array(jobs),
        )]))
        .expect("jobs list serializes"),
    )
}

fn submit_body(id: JobId, status: &str, cache: &str, request_id: &str) -> String {
    serde_json::to_string(&Value::Object(vec![
        ("id".to_owned(), Value::Number(Number::U(id))),
        ("status".to_owned(), Value::String(status.to_owned())),
        ("cache".to_owned(), Value::String(cache.to_owned())),
        (
            "request_id".to_owned(),
            Value::String(request_id.to_owned()),
        ),
    ]))
    .expect("submit body serializes")
}

fn job_status(state: &ServerState, raw_id: &str) -> Response {
    let Some((id, status)) = raw_id
        .parse::<JobId>()
        .ok()
        .and_then(|id| state.jobs.status(id).map(|s| (id, s)))
    else {
        return Response::json(404, error_body("no such job"));
    };
    let mut fields = vec![
        ("id".to_owned(), Value::Number(Number::U(id))),
        (
            "status".to_owned(),
            Value::String(status.state.label().to_owned()),
        ),
        (
            "request_id".to_owned(),
            Value::String(status.request_id.clone()),
        ),
    ];
    match status.state {
        JobState::Done => {
            let doc = status.result.expect("done job has a result");
            let parsed: Value = serde_json::from_str(&doc).expect("stored results are JSON");
            fields.push(("result".to_owned(), parsed));
        }
        JobState::Failed => {
            fields.push((
                "error".to_owned(),
                Value::String(status.error.unwrap_or_default()),
            ));
        }
        JobState::Queued | JobState::Running => {}
    }
    Response::json(
        200,
        serde_json::to_string(&Value::Object(fields)).expect("status body serializes"),
    )
}

fn job_result(state: &ServerState, raw_id: &str) -> Response {
    let Some(status) = raw_id
        .parse::<JobId>()
        .ok()
        .and_then(|id| state.jobs.status(id))
    else {
        return Response::json(404, error_body("no such job"));
    };
    match status.state {
        JobState::Done => {
            Response::json(200, status.result.expect("done job has a result").as_str())
        }
        JobState::Failed => Response::json(
            500,
            error_body(&status.error.unwrap_or_else(|| "job failed".to_owned())),
        ),
        pending => Response::json(
            202,
            serde_json::to_string(&Value::Object(vec![(
                "status".to_owned(),
                Value::String(pending.label().to_owned()),
            )]))
            .expect("pending body serializes"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_state(workers: usize, queue_depth: usize) -> (Arc<ServerState>, Vec<JoinHandle<()>>) {
        let state = Arc::new(ServerState::new(queue_depth, workers));
        let handles = worker::spawn_workers(
            workers,
            Arc::clone(&state.jobs),
            Arc::clone(&state.metrics),
            Arc::clone(&state.spans),
            NonZeroUsize::MIN,
            None,
        );
        (state, handles)
    }

    fn stop(state: &ServerState, handles: Vec<JoinHandle<()>>) {
        state.jobs.shutdown();
        for h in handles {
            h.join().expect("worker exits");
        }
    }

    fn get(state: &ServerState, target: &str) -> Response {
        let request = Request {
            method: "GET".to_owned(),
            target: target.to_owned(),
            headers: Vec::new(),
            body: Vec::new(),
        };
        route(state, None, &request, "rq-test").1
    }

    fn post(state: &ServerState, target: &str, body: &str) -> Response {
        let request = Request {
            method: "POST".to_owned(),
            target: target.to_owned(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        };
        route(state, None, &request, "rq-test").1
    }

    fn body_str(resp: &Response) -> String {
        String::from_utf8(resp.body().to_vec()).expect("utf8 body")
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let (state, handles) = test_state(0, 4);
        let health = get(&state, "/healthz");
        assert_eq!(health.status, 200);
        let body = body_str(&health);
        assert!(body.starts_with("ok\n"), "first line stays `ok`: {body}");
        assert!(body.contains("workers: 0"), "{body}");
        assert!(body.contains("queue_depth: 0"), "{body}");
        assert!(body.contains("queue_capacity: 4"), "{body}");
        assert_eq!(get(&state, "/nope").status, 404);
        assert_eq!(get(&state, "/v1/jobs/17").status, 404);
        let delete = Request {
            method: "DELETE".to_owned(),
            target: "/metrics".to_owned(),
            headers: Vec::new(),
            body: Vec::new(),
        };
        assert_eq!(route(&state, None, &delete, "rq-test").1.status, 405);
        stop(&state, handles);
    }

    #[test]
    fn full_queue_returns_503_with_retry_after() {
        // No workers: the single queue slot stays occupied.
        let (state, handles) = test_state(0, 1);
        let first = post(
            &state,
            "/v1/jobs",
            r#"{"trace": {"profile": "hm_1", "ops": 50}}"#,
        );
        assert_eq!(first.status, 202, "{}", body_str(&first));
        let second = post(
            &state,
            "/v1/jobs",
            r#"{"trace": {"profile": "w91", "ops": 50}}"#,
        );
        assert_eq!(second.status, 503);
        assert!(second
            .extra
            .iter()
            .any(|(k, v)| k == "retry-after" && v == "1"));
        let metrics = body_str(&get(&state, "/metrics"));
        assert!(metrics.contains("smrseekd_jobs_rejected_total 1"));
        stop(&state, handles);
    }

    #[test]
    fn bad_submissions_are_400() {
        let (state, handles) = test_state(0, 4);
        assert_eq!(post(&state, "/v1/jobs", "nope").status, 400);
        assert_eq!(
            post(
                &state,
                "/v1/jobs",
                r#"{"trace": {"profile": "no_such_profile", "ops": 5}}"#
            )
            .status,
            400
        );
        assert_eq!(
            post(
                &state,
                "/v1/jobs",
                r#"{"trace": {"path": "/no/such/file"}}"#
            )
            .status,
            400
        );
        stop(&state, handles);
    }

    #[test]
    fn jobs_list_reflects_submissions_in_order() {
        let (state, handles) = test_state(0, 4);
        let empty = get(&state, "/v1/jobs");
        assert_eq!(empty.status, 200);
        assert_eq!(body_str(&empty), r#"{"jobs":[]}"#);
        for profile in ["hm_1", "w91"] {
            let body = format!(r#"{{"trace": {{"profile": "{profile}", "ops": 50}}}}"#);
            assert_eq!(post(&state, "/v1/jobs", &body).status, 202);
        }
        let listed = body_str(&get(&state, "/v1/jobs"));
        assert_eq!(
            listed,
            r#"{"jobs":[{"id":1,"status":"queued"},{"id":2,"status":"queued"}]}"#
        );
        // healthz reflects the two queued jobs.
        assert!(body_str(&get(&state, "/healthz")).contains("queue_depth: 2"));
        stop(&state, handles);
    }

    #[test]
    fn duplicate_submission_is_a_hit_even_while_queued() {
        let (state, handles) = test_state(0, 4);
        let body = r#"{"trace": {"profile": "hm_1", "ops": 50}}"#;
        let first = post(&state, "/v1/jobs", body);
        assert_eq!(first.status, 202);
        assert!(body_str(&first).contains("\"cache\":\"miss\""));
        let second = post(&state, "/v1/jobs", body);
        assert_eq!(second.status, 200);
        assert!(body_str(&second).contains("\"cache\":\"hit\""));
        assert_eq!(state.metrics.cache_counts(), (1, 1));
        // Status endpoint sees the one queued job; /result says not ready.
        let result = get(&state, "/v1/jobs/1/result");
        assert_eq!(result.status, 202);
        stop(&state, handles);
    }

    #[test]
    fn request_ids_are_echoed_in_submit_and_status() {
        let (state, handles) = test_state(0, 4);
        let body = r#"{"trace": {"profile": "hm_1", "ops": 50}}"#;
        let submit = Request {
            method: "POST".to_owned(),
            target: "/v1/jobs".to_owned(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        };
        let first = route(&state, None, &submit, "rq-creator").1;
        assert_eq!(first.status, 202);
        assert!(
            body_str(&first).contains(r#""request_id":"rq-creator""#),
            "{}",
            body_str(&first)
        );
        // A duplicate submission echoes *its own* request id in the
        // submit response, but the job keeps its creator's id.
        let second = route(&state, None, &submit, "rq-duplicate").1;
        assert_eq!(second.status, 200);
        assert!(
            body_str(&second).contains(r#""request_id":"rq-duplicate""#),
            "{}",
            body_str(&second)
        );
        let status = get(&state, "/v1/jobs/1");
        assert_eq!(status.status, 200);
        assert!(
            body_str(&status).contains(r#""request_id":"rq-creator""#),
            "{}",
            body_str(&status)
        );
        // The raw-result and listing routes stay byte-stable: no ids.
        let listed = body_str(&get(&state, "/v1/jobs"));
        assert!(!listed.contains("request_id"), "{listed}");
        let minted = next_request_id();
        assert_eq!(minted.len(), 8 + 1 + 6, "pid-hex dash seq: {minted}");
        stop(&state, handles);
    }

    #[test]
    fn client_request_ids_are_validated_not_trusted() {
        let with_header = |value: &str| Request {
            method: "POST".to_owned(),
            target: "/v1/jobs".to_owned(),
            headers: vec![("x-request-id".to_owned(), value.to_owned())],
            body: Vec::new(),
        };
        assert_eq!(
            client_request_id(&with_header("bench-42_A")).as_deref(),
            Some("bench-42_A")
        );
        assert_eq!(
            client_request_id(&with_header(&"a".repeat(64))).as_deref(),
            Some("a".repeat(64)).as_deref(),
            "64 bytes is the inclusive cap"
        );
        // Anything unusable in logs or headers is discarded; the daemon
        // mints its own id instead of echoing attacker-shaped bytes.
        for bad in [
            "",
            " ",
            "rq id",
            "rq/../x",
            "rq\r\nset-cookie: x",
            &"a".repeat(65),
        ] {
            assert_eq!(client_request_id(&with_header(bad)), None, "{bad:?}");
        }
        let no_header = Request {
            method: "POST".to_owned(),
            target: "/v1/jobs".to_owned(),
            headers: Vec::new(),
            body: Vec::new(),
        };
        assert_eq!(client_request_id(&no_header), None);
    }

    #[test]
    fn trace_endpoint_serves_stored_spans_and_rejects_junk() {
        let (state, handles) = test_state(0, 4);
        // Malformed ids are 400, never a lookup.
        for bad in ["xyz", "123", &"A".repeat(32), &"0".repeat(32)] {
            let resp = get(&state, &format!("/v1/trace/{bad}"));
            assert_eq!(resp.status, 400, "{bad:?}");
        }
        // Well-formed but unknown ids are 404.
        let unknown = format!("/v1/trace/{:032x}", 0xdead_beefu128);
        assert_eq!(get(&state, &unknown).status, 404);
        // A recorded span comes back in the JSON body with hex ids.
        let ctx = TraceContext::mint();
        state.spans.record(DistSpan {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_span_id: None,
            name: "dispatch".to_owned(),
            request_id: "rq-trace".to_owned(),
            start_unix_ns: 17,
            dur_ns: 3,
            pid: std::process::id(),
            tid: smrseek_obs::current_tid(),
        });
        let resp = get(&state, &format!("/v1/trace/{}", ctx.trace_hex()));
        assert_eq!(resp.status, 200);
        let body = body_str(&resp);
        let value: serde::Value = serde_json::from_str(&body).expect("valid JSON: {body}");
        assert_eq!(
            value.get("trace_id").and_then(serde::Value::as_str),
            Some(ctx.trace_hex().as_str())
        );
        let spans = value
            .get("spans")
            .and_then(serde::Value::as_array)
            .expect("spans array");
        assert_eq!(spans.len(), 1);
        let span = &spans[0];
        assert_eq!(
            span.get("span_id").and_then(serde::Value::as_str),
            Some(format!("{:016x}", ctx.span_id).as_str())
        );
        assert!(span
            .get("parent_span_id")
            .is_some_and(serde::Value::is_null));
        assert_eq!(
            span.get("name").and_then(serde::Value::as_str),
            Some("dispatch")
        );
        assert_eq!(
            span.get("start_unix_ns").and_then(serde::Value::as_u64),
            Some(17)
        );
        stop(&state, handles);
    }
}
