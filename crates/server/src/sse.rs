//! Server-Sent Events encoding for `GET /v1/jobs/<id>/events`.
//!
//! Each job carries an append-only [`smrseek_net::EventStream`] of
//! pre-encoded SSE frames: `queued` on submission, `running` when a
//! worker picks it up, a `phases` frame carrying the engine's
//! per-[`Phase`] timing from `smrseek-obs` once the replay finishes, and
//! a terminal `done`/`failed` frame after which the stream closes and
//! subscribers see EOF. Subscribers that connect late replay the full
//! history — the stream is the job's progress log, not a fan-out bus.

use serde::{Number, Value};
use smrseek_obs::PhaseTotals;

/// Encodes one SSE frame: `event: <name>` + one `data:` line.
///
/// `data` must be a single line (the callers pass compact JSON, which
/// cannot contain raw newlines).
pub fn encode_event(name: &str, data: &str) -> Vec<u8> {
    debug_assert!(!data.contains('\n'), "SSE data must be one line");
    format!("event: {name}\ndata: {data}\n\n").into_bytes()
}

/// The response head for an event-stream subscription, through the blank
/// line. SSE responses carry no `Content-Length`; the connection closes
/// when the stream does.
pub fn response_head(request_id: &str) -> Vec<u8> {
    format!(
        "HTTP/1.1 200 OK\r\ncontent-type: text/event-stream\r\ncache-control: no-store\r\nconnection: close\r\nx-request-id: {request_id}\r\n\r\n"
    )
    .into_bytes()
}

/// Compact JSON for a plain status transition: `{"id":N,"status":"..."}`
/// plus an optional `"error"` field.
pub fn status_data(id: u64, status: &str, error: Option<&str>) -> String {
    let mut fields = vec![
        ("id".to_owned(), Value::Number(Number::U(id))),
        ("status".to_owned(), Value::String(status.to_owned())),
    ];
    if let Some(error) = error {
        fields.push(("error".to_owned(), Value::String(error.to_owned())));
    }
    serde_json::to_string(&Value::Object(fields)).expect("status data serializes")
}

/// Compact JSON for the `phases` frame: per-phase engine seconds and call
/// counts from the job's merged [`PhaseTotals`]. Phases that never ran
/// are omitted so the frame stays small.
///
/// [`Phase`]: smrseek_obs::Phase
pub fn phases_data(id: u64, phases: &PhaseTotals) -> String {
    let entries: Vec<(String, Value)> = phases
        .iter()
        .filter(|&(_, nanos, calls)| nanos > 0 || calls > 0)
        .map(|(phase, nanos, calls)| {
            (
                phase.label().to_owned(),
                Value::Object(vec![
                    (
                        "seconds".to_owned(),
                        Value::Number(Number::F(nanos as f64 / 1e9)),
                    ),
                    ("calls".to_owned(), Value::Number(Number::U(calls))),
                ]),
            )
        })
        .collect();
    serde_json::to_string(&Value::Object(vec![
        ("id".to_owned(), Value::Number(Number::U(id))),
        ("phases".to_owned(), Value::Object(entries)),
    ]))
    .expect("phases data serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use smrseek_obs::Phase;
    use std::time::Duration;

    #[test]
    fn frames_follow_the_sse_wire_format() {
        let frame = encode_event("queued", &status_data(7, "queued", None));
        assert_eq!(
            String::from_utf8(frame).expect("utf8"),
            "event: queued\ndata: {\"id\":7,\"status\":\"queued\"}\n\n"
        );
        let failed = encode_event("failed", &status_data(7, "failed", Some("boom")));
        assert!(String::from_utf8(failed)
            .expect("utf8")
            .contains("\"error\":\"boom\""));
    }

    #[test]
    fn response_head_is_an_event_stream() {
        let head = String::from_utf8(response_head("rq-1")).expect("utf8");
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(head.contains("content-type: text/event-stream\r\n"));
        assert!(head.contains("x-request-id: rq-1\r\n"));
        assert!(head.ends_with("\r\n\r\n"));
    }

    #[test]
    fn phases_data_keeps_only_recorded_phases() {
        let mut totals = PhaseTotals::default();
        totals.record(Phase::Lookup, Duration::from_millis(250));
        totals.record(Phase::Ingest, Duration::from_millis(50));
        let data = phases_data(3, &totals);
        assert!(data.starts_with("{\"id\":3,\"phases\":{"), "{data}");
        assert!(
            data.contains("\"lookup\":{\"seconds\":0.25,\"calls\":1}"),
            "{data}"
        );
        assert!(data.contains("\"ingest\""), "{data}");
        assert!(
            !data.contains("\"seek\""),
            "unrecorded phase leaked: {data}"
        );
    }
}
