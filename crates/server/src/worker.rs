//! The worker pool: pulls jobs off the table and replays them through
//! [`smrseek_sim::runner`].
//!
//! Workers are plain OS threads blocked on the job table's condvar; each
//! job replays on the shared [`RunMatrix`] machinery, so a sweep job's
//! five layer configurations fan out across the run's `job_threads` via
//! the same `parallel_map` the CLI uses — the daemon adds queueing and
//! caching, never a second execution path (that is what keeps its results
//! byte-identical to offline runs).

use crate::jobs::JobTable;
use crate::metrics::Metrics;
use smrseek_cache::TierStats;
use smrseek_obs::{DistSpan, PhaseTotals, SpanStore};
use smrseek_policy::PolicyStats;
use smrseek_sim::runner::RunMatrix;
use smrseek_sim::{saf, CheckpointStore, CheckpointUsage, SimConfig, TraceSource};
use std::num::NonZeroUsize;
use std::sync::Arc;
use std::thread::JoinHandle;

/// What a job computes.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// The standard five-layer sweep; the result document is the
    /// `Vec<(layer, Saf)>` JSON that `smrseek simulate --json` writes.
    Sweep,
    /// One configuration; the result document is its full `RunReport`.
    /// Boxed so the queued-job footprint is one pointer, not a whole
    /// `SimConfig`, which dwarfs the dataless `Sweep` variant.
    Single(Box<SimConfig>),
}

/// A resolved, ready-to-run job: the trace source is already loaded (and
/// for file traces, shared through the registry's single mapping).
#[derive(Debug, Clone)]
pub struct JobWork {
    /// The records to replay.
    pub source: TraceSource,
    /// What to compute over them.
    pub kind: JobKind,
    /// Full-trace content digest when already known (file traces get it
    /// from the registry). Checkpointed runs of generator traces compute
    /// it on demand; `None` plus no checkpoint store means it is never
    /// needed.
    pub digest: Option<smrseek_trace::TraceDigest>,
}

/// The worker pool's prefix-reuse policy: where checkpoints live and how
/// often replays emit them. When configured, every job probes the store
/// for a checkpoint of its (trace digest × canonical config) identity and
/// resumes from the longest stored prefix instead of replaying from record
/// zero — across daemon restarts, since the store is plain files.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// The on-disk checkpoint store shared by all workers.
    pub store: CheckpointStore,
    /// Emit a checkpoint every this many records.
    pub every: u64,
}

/// A finished job's payload: the result document plus replay accounting.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Result document (pretty JSON, byte-stable for a trace + config).
    pub doc: String,
    /// Logical records the job accounts for (full trace length per cell,
    /// whether or not a prefix was skipped via checkpoint).
    pub records: u64,
    /// Checkpoint reuse accounting (all zero without a policy).
    pub checkpoints: CheckpointUsage,
    /// Engine phase timing merged across the job's cells (all zero unless
    /// phase accounting is enabled — the daemon enables it at startup).
    pub phases: PhaseTotals,
    /// Adaptive-policy decision counters merged across the job's cells
    /// (all zero for jobs without a policy config).
    pub policy: PolicyStats,
    /// Multi-level cache counters merged across the job's cells (all zero
    /// without a flash tier).
    pub tiers: TierStats,
}

/// Replays one job, resuming from / refreshing checkpoints when `policy`
/// is set. The result document is byte-identical with or without a
/// policy — checkpoints change wall time, never results.
///
/// # Errors
///
/// Serialization failures (e.g. a non-finite float in a report) surface
/// as the job's failure message.
pub fn run_job(
    work: &JobWork,
    threads: NonZeroUsize,
    policy: Option<&CheckpointPolicy>,
) -> Result<JobOutcome, String> {
    let mut configs: Vec<SimConfig> = match &work.kind {
        JobKind::Sweep => SimConfig::standard_sweep().to_vec(),
        JobKind::Single(config) => vec![**config],
    };
    let (outcomes, checkpoints) = match policy {
        None => {
            let matrix = RunMatrix::cross(std::slice::from_ref(&work.source), &configs);
            (matrix.execute(threads), CheckpointUsage::default())
        }
        Some(policy) => {
            let digest = work
                .digest
                .unwrap_or_else(|| work.source.digest())
                .as_u128();
            for config in &mut configs {
                *config = config.with_checkpoint_every(policy.every);
            }
            let matrix = RunMatrix::cross(std::slice::from_ref(&work.source), &configs);
            matrix.execute_checkpointed(threads, &policy.store, digest)
        }
    };
    let records = outcomes.iter().map(|o| o.metrics.records).sum();
    let mut phases = PhaseTotals::default();
    let mut policy_stats = PolicyStats::default();
    let mut tiers = TierStats::default();
    for outcome in &outcomes {
        phases.merge(&outcome.metrics.phases);
        if let Some(p) = &outcome.report.policy {
            policy_stats.merge(p);
        }
        if let Some(t) = &outcome.report.cache_tiers {
            tiers.merge(t);
        }
    }
    let doc = match &work.kind {
        JobKind::Sweep => serde_json::to_string_pretty(&saf::sweep_safs(&outcomes)),
        JobKind::Single(_) => serde_json::to_string_pretty(&outcomes[0].report),
    };
    doc.map(|doc| JobOutcome {
        doc,
        records,
        checkpoints,
        phases,
        policy: policy_stats,
        tiers,
    })
    .map_err(|e| format!("cannot serialize result: {e}"))
}

/// Records the worker-side spans of one traced job: `queue` (submission
/// to dequeue — jobs that sat behind a deep queue show it here, not as
/// mysteriously slow replays) and `replay` (the engine run itself), both
/// children of the owner's `dispatch` span.
fn record_job_spans(
    spans: &SpanStore,
    jobs: &JobTable,
    id: crate::jobs::JobId,
) -> Option<DistSpan> {
    let (trace, request_id) = jobs.job_trace(id)?;
    let dequeued = smrseek_obs::unix_nanos();
    let queue = trace.parent.child();
    spans.record(DistSpan {
        trace_id: trace.parent.trace_id,
        span_id: queue.span_id,
        parent_span_id: Some(trace.parent.span_id),
        name: "queue".to_owned(),
        request_id: request_id.clone(),
        start_unix_ns: trace.queued_unix_ns,
        dur_ns: dequeued.saturating_sub(trace.queued_unix_ns),
        pid: std::process::id(),
        tid: smrseek_obs::current_tid(),
    });
    let replay = trace.parent.child();
    Some(DistSpan {
        trace_id: trace.parent.trace_id,
        span_id: replay.span_id,
        parent_span_id: Some(trace.parent.span_id),
        name: "replay".to_owned(),
        request_id,
        start_unix_ns: dequeued,
        dur_ns: 0,
        pid: std::process::id(),
        tid: smrseek_obs::current_tid(),
    })
}

/// Spawns `count` worker threads draining `jobs` until shutdown.
pub fn spawn_workers(
    count: usize,
    jobs: Arc<JobTable>,
    metrics: Arc<Metrics>,
    spans: Arc<SpanStore>,
    threads: NonZeroUsize,
    policy: Option<Arc<CheckpointPolicy>>,
) -> Vec<JoinHandle<()>> {
    (0..count)
        .map(|i| {
            let jobs = Arc::clone(&jobs);
            let metrics = Arc::clone(&metrics);
            let spans = Arc::clone(&spans);
            let policy = policy.clone();
            std::thread::Builder::new()
                .name(format!("smrseekd-worker-{i}"))
                .spawn(move || {
                    while let Some((id, work)) = jobs.next_job() {
                        let replay_span = record_job_spans(&spans, &jobs, id);
                        let outcome = run_job(&work, threads, policy.as_deref());
                        if let Some(mut span) = replay_span {
                            span.dur_ns =
                                smrseek_obs::unix_nanos().saturating_sub(span.start_unix_ns);
                            spans.record(span);
                        }
                        if let Ok(out) = &outcome {
                            metrics.replayed(out.records);
                            metrics.checkpoint_usage(&out.checkpoints);
                            metrics.engine_phases(&out.phases);
                            metrics.policy_stats(&out.policy);
                            metrics.tier_stats(&out.tiers);
                            jobs.publish_phases(id, &out.phases);
                        }
                        jobs.complete(id, outcome.map(|out| out.doc));
                    }
                })
                .expect("worker thread spawns")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smrseek_trace::{Lba, TraceRecord};

    fn source() -> TraceSource {
        let records: Vec<TraceRecord> = (0..300u64)
            .map(|i| {
                if i % 4 == 0 {
                    TraceRecord::read(i, Lba::new((i * 131) % 4096 * 8), 8)
                } else {
                    TraceRecord::write(i, Lba::new((i * 37) % 4096 * 8), 8)
                }
            })
            .collect();
        TraceSource::from_records("t", records)
    }

    #[test]
    fn sweep_job_matches_offline_sweep_bytes() {
        let work = JobWork {
            source: source(),
            kind: JobKind::Sweep,
            digest: None,
        };
        let out = run_job(&work, NonZeroUsize::MIN, None).expect("job runs");
        assert_eq!(out.records, 300 * 5, "five layers each replay the trace");
        assert_eq!(out.checkpoints, smrseek_sim::CheckpointUsage::default());
        // The offline path: exactly what the CLI writes for --json.
        let matrix = RunMatrix::cross(
            std::slice::from_ref(&work.source),
            &SimConfig::standard_sweep(),
        );
        let offline = serde_json::to_string_pretty(&saf::sweep_safs(
            &matrix.execute(NonZeroUsize::new(4).expect("nonzero")),
        ))
        .expect("serializes");
        assert_eq!(
            out.doc, offline,
            "daemon and offline sweeps are byte-identical"
        );
    }

    #[test]
    fn checkpointed_rerun_reuses_prefix_and_matches_cold_bytes() {
        let dir =
            std::env::temp_dir().join(format!("smrseekd_worker_ckpt_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let policy = CheckpointPolicy {
            store: CheckpointStore::new(&dir),
            every: 100,
        };
        let work = JobWork {
            source: source(),
            kind: JobKind::Sweep,
            digest: None,
        };
        let cold = run_job(&work, NonZeroUsize::MIN, None).expect("cold run");
        let first = run_job(&work, NonZeroUsize::MIN, Some(&policy)).expect("first run");
        assert_eq!(first.checkpoints.hits, 0);
        assert_eq!(first.checkpoints.misses, 5);
        let second = run_job(&work, NonZeroUsize::MIN, Some(&policy)).expect("second run");
        assert_eq!(second.checkpoints.hits, 5);
        assert_eq!(second.checkpoints.misses, 0);
        assert_eq!(second.checkpoints.records_skipped, 5 * 300);
        assert_eq!(second.records, 5 * 300, "accounting stays the full count");
        assert_eq!(first.doc, cold.doc, "policy never changes result bytes");
        assert_eq!(second.doc, cold.doc, "resumed run matches cold bytes");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_job_returns_full_report() {
        let work = JobWork {
            source: source(),
            kind: JobKind::Single(Box::new(SimConfig::ls_cache().with_distances())),
            digest: None,
        };
        let out = run_job(&work, NonZeroUsize::MIN, None).expect("job runs");
        let (doc, records) = (out.doc, out.records);
        assert_eq!(records, 300);
        let value: serde::Value = serde_json::from_str(&doc).expect("valid JSON");
        assert_eq!(
            value.get("layer_name").and_then(serde::Value::as_str),
            Some("LS+cache")
        );
        assert!(value.get("seeks").is_some());
        assert!(
            !value["distances"].is_null(),
            "with_distances carries through"
        );
    }

    #[test]
    fn pool_drains_jobs_and_counts_records() {
        let jobs = Arc::new(JobTable::new(8));
        let metrics = Arc::new(Metrics::new());
        let ids: Vec<_> = (0..3)
            .map(|i| {
                match jobs.submit(
                    format!("k{i}"),
                    JobWork {
                        source: source(),
                        kind: JobKind::Single(Box::new(SimConfig::no_ls())),
                        digest: None,
                    },
                    format!("rq-{i}"),
                ) {
                    crate::jobs::Submit::Queued(id) => id,
                    other => panic!("expected queue, got {other:?}"),
                }
            })
            .collect();
        let workers = spawn_workers(
            2,
            Arc::clone(&jobs),
            Arc::clone(&metrics),
            Arc::new(SpanStore::new(8)),
            NonZeroUsize::MIN,
            None,
        );
        // Poll until all three finish (workers run them concurrently).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let done = ids
                .iter()
                .all(|&id| jobs.status(id).expect("known").state == crate::jobs::JobState::Done);
            if done {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "jobs finished in time"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        jobs.shutdown();
        for worker in workers {
            worker.join().expect("worker exits cleanly");
        }
        assert_eq!(metrics.replayed_total(), 900);
    }
}
