//! The worker pool: pulls jobs off the table and replays them through
//! [`smrseek_sim::runner`].
//!
//! Workers are plain OS threads blocked on the job table's condvar; each
//! job replays on the shared [`RunMatrix`] machinery, so a sweep job's
//! five layer configurations fan out across the run's `job_threads` via
//! the same `parallel_map` the CLI uses — the daemon adds queueing and
//! caching, never a second execution path (that is what keeps its results
//! byte-identical to offline runs).

use crate::jobs::JobTable;
use crate::metrics::Metrics;
use smrseek_sim::runner::RunMatrix;
use smrseek_sim::{saf, SimConfig, TraceSource};
use std::num::NonZeroUsize;
use std::sync::Arc;
use std::thread::JoinHandle;

/// What a job computes.
#[derive(Debug, Clone)]
pub enum JobKind {
    /// The standard five-layer sweep; the result document is the
    /// `Vec<(layer, Saf)>` JSON that `smrseek simulate --json` writes.
    Sweep,
    /// One configuration; the result document is its full `RunReport`.
    Single(SimConfig),
}

/// A resolved, ready-to-run job: the trace source is already loaded (and
/// for file traces, shared through the registry's single mapping).
#[derive(Debug, Clone)]
pub struct JobWork {
    /// The records to replay.
    pub source: TraceSource,
    /// What to compute over them.
    pub kind: JobKind,
}

/// Replays one job. Returns the result document (pretty JSON, stable
/// byte-for-byte for a given trace + config) and the number of logical
/// records replayed, or a client-facing error message.
///
/// # Errors
///
/// Serialization failures (e.g. a non-finite float in a report) surface
/// as the job's failure message.
pub fn run_job(work: &JobWork, threads: NonZeroUsize) -> Result<(String, u64), String> {
    let configs: Vec<SimConfig> = match &work.kind {
        JobKind::Sweep => SimConfig::standard_sweep().to_vec(),
        JobKind::Single(config) => vec![*config],
    };
    let matrix = RunMatrix::cross(std::slice::from_ref(&work.source), &configs);
    let outcomes = matrix.execute(threads);
    let records = outcomes.iter().map(|o| o.metrics.records).sum();
    let doc = match &work.kind {
        JobKind::Sweep => serde_json::to_string_pretty(&saf::sweep_safs(&outcomes)),
        JobKind::Single(_) => serde_json::to_string_pretty(&outcomes[0].report),
    };
    doc.map(|doc| (doc, records))
        .map_err(|e| format!("cannot serialize result: {e}"))
}

/// Spawns `count` worker threads draining `jobs` until shutdown.
pub fn spawn_workers(
    count: usize,
    jobs: Arc<JobTable>,
    metrics: Arc<Metrics>,
    threads: NonZeroUsize,
) -> Vec<JoinHandle<()>> {
    (0..count)
        .map(|i| {
            let jobs = Arc::clone(&jobs);
            let metrics = Arc::clone(&metrics);
            std::thread::Builder::new()
                .name(format!("smrseekd-worker-{i}"))
                .spawn(move || {
                    while let Some((id, work)) = jobs.next_job() {
                        let outcome = run_job(&work, threads);
                        if let Ok((_, records)) = &outcome {
                            metrics.replayed(*records);
                        }
                        jobs.complete(id, outcome.map(|(doc, _)| doc));
                    }
                })
                .expect("worker thread spawns")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smrseek_trace::{Lba, TraceRecord};

    fn source() -> TraceSource {
        let records: Vec<TraceRecord> = (0..300u64)
            .map(|i| {
                if i % 4 == 0 {
                    TraceRecord::read(i, Lba::new((i * 131) % 4096 * 8), 8)
                } else {
                    TraceRecord::write(i, Lba::new((i * 37) % 4096 * 8), 8)
                }
            })
            .collect();
        TraceSource::from_records("t", records)
    }

    #[test]
    fn sweep_job_matches_offline_sweep_bytes() {
        let work = JobWork {
            source: source(),
            kind: JobKind::Sweep,
        };
        let (doc, records) = run_job(&work, NonZeroUsize::MIN).expect("job runs");
        assert_eq!(records, 300 * 5, "five layers each replay the trace");
        // The offline path: exactly what the CLI writes for --json.
        let matrix = RunMatrix::cross(
            std::slice::from_ref(&work.source),
            &SimConfig::standard_sweep(),
        );
        let offline = serde_json::to_string_pretty(&saf::sweep_safs(
            &matrix.execute(NonZeroUsize::new(4).expect("nonzero")),
        ))
        .expect("serializes");
        assert_eq!(doc, offline, "daemon and offline sweeps are byte-identical");
    }

    #[test]
    fn single_job_returns_full_report() {
        let work = JobWork {
            source: source(),
            kind: JobKind::Single(SimConfig::ls_cache().with_distances()),
        };
        let (doc, records) = run_job(&work, NonZeroUsize::MIN).expect("job runs");
        assert_eq!(records, 300);
        let value: serde::Value = serde_json::from_str(&doc).expect("valid JSON");
        assert_eq!(
            value.get("layer_name").and_then(serde::Value::as_str),
            Some("LS+cache")
        );
        assert!(value.get("seeks").is_some());
        assert!(
            !value["distances"].is_null(),
            "with_distances carries through"
        );
    }

    #[test]
    fn pool_drains_jobs_and_counts_records() {
        let jobs = Arc::new(JobTable::new(8));
        let metrics = Arc::new(Metrics::new());
        let ids: Vec<_> = (0..3)
            .map(|i| {
                match jobs.submit(
                    format!("k{i}"),
                    JobWork {
                        source: source(),
                        kind: JobKind::Single(SimConfig::no_ls()),
                    },
                ) {
                    crate::jobs::Submit::Queued(id) => id,
                    other => panic!("expected queue, got {other:?}"),
                }
            })
            .collect();
        let workers = spawn_workers(
            2,
            Arc::clone(&jobs),
            Arc::clone(&metrics),
            NonZeroUsize::MIN,
        );
        // Poll until all three finish (workers run them concurrently).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let done = ids
                .iter()
                .all(|&id| jobs.status(id).expect("known").state == crate::jobs::JobState::Done);
            if done {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "jobs finished in time"
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        jobs.shutdown();
        for worker in workers {
            worker.join().expect("worker exits cleanly");
        }
        assert_eq!(metrics.replayed_total(), 900);
    }
}
