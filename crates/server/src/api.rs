//! JSON request parsing and cache-key derivation for the `/v1` API.
//!
//! A job submission names a trace — by file path or as a synthetic
//! Table-I profile — and optionally a single [`SimConfig`]; with no
//! config the job runs the standard five-layer sweep and its result is
//! the exact document `smrseek simulate --json` writes offline.
//!
//! ```json
//! {"trace": {"path": "/traces/web_2.csv"}}
//! {"trace": {"profile": "hm_1", "ops": 20000, "seed": 7},
//!  "config": {"layer": "ls_cache", "record_distances": true}}
//! ```
//!
//! Parsing is strict: unknown config knobs are rejected rather than
//! ignored, because a silently-dropped knob would make two *different*
//! requests share a cache key — precisely the staleness the
//! content-addressed cache exists to prevent.

use serde::Value;
use smrseek_policy::PolicyConfig;
use smrseek_sim::{LayerChoice, SimConfig};
use std::path::PathBuf;

/// Where a job's records come from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceRef {
    /// An on-disk trace (any supported format; loaded through the shared
    /// registry and identified by content digest).
    Path(PathBuf),
    /// A synthetic Table-I workload, identified by its generator inputs.
    Profile {
        /// Profile name (`smrseek list`).
        name: String,
        /// Generator seed.
        seed: u64,
        /// Operation count.
        ops: usize,
    },
}

/// One parsed job submission.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// The trace to replay.
    pub trace: TraceRef,
    /// A single configuration, or `None` for the standard sweep.
    pub config: Option<SimConfig>,
}

/// Parses a `POST /v1/jobs` body.
///
/// # Errors
///
/// Returns a client-facing message (served as HTTP 400) for malformed
/// JSON, a missing/ambiguous trace reference, or an invalid config.
pub fn parse_job_request(body: &[u8]) -> Result<JobRequest, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let value: Value =
        serde_json::from_str(text).map_err(|e| format!("body is not valid JSON: {e}"))?;
    let trace = value
        .get("trace")
        .ok_or_else(|| "missing field `trace`".to_owned())?;
    let trace = parse_trace_ref(trace)?;
    let config = match value.get("config") {
        None => None,
        Some(Value::Null) => None,
        Some(config) => Some(parse_config(config)?),
    };
    Ok(JobRequest { trace, config })
}

fn parse_trace_ref(v: &Value) -> Result<TraceRef, String> {
    match (v.get("path"), v.get("profile")) {
        (Some(path), None) => {
            let path = path
                .as_str()
                .ok_or_else(|| "`trace.path` must be a string".to_owned())?;
            Ok(TraceRef::Path(PathBuf::from(path)))
        }
        (None, Some(profile)) => {
            let name = profile
                .as_str()
                .ok_or_else(|| "`trace.profile` must be a string".to_owned())?;
            let seed = match v.get("seed") {
                None => 42, // ExpOptions::default() — matches the CLI
                Some(s) => s
                    .as_u64()
                    .ok_or_else(|| "`trace.seed` must be an unsigned integer".to_owned())?,
            };
            let ops = match v.get("ops") {
                None => return Err("`trace.ops` is required for profile traces".to_owned()),
                Some(o) => o
                    .as_u64()
                    .ok_or_else(|| "`trace.ops` must be an unsigned integer".to_owned())?
                    as usize,
            };
            Ok(TraceRef::Profile {
                name: name.to_owned(),
                seed,
                ops,
            })
        }
        (Some(_), Some(_)) => Err("`trace` must name either `path` or `profile`, not both".into()),
        (None, None) => Err("`trace` must contain `path` or `profile`".into()),
    }
}

/// Parses a `config` object into a [`SimConfig`].
///
/// The `layer` field selects a constructor (`nols`, `ls`, `ls_defrag`,
/// `ls_prefetch`, `ls_cache`, `ls_adaptive`, all at paper defaults); every
/// other knob is optional and maps 1:1 onto a [`SimConfig`] field.
pub fn parse_config(v: &Value) -> Result<SimConfig, String> {
    let entries = v
        .as_object()
        .ok_or_else(|| "`config` must be an object".to_owned())?;
    let layer = v.get("layer").and_then(Value::as_str).ok_or_else(|| {
        "`config.layer` must be one of nols|ls|ls_defrag|ls_prefetch|ls_cache|ls_adaptive"
            .to_owned()
    })?;
    let mut config = match layer {
        "nols" => SimConfig::no_ls(),
        "ls" => SimConfig::log_structured(),
        "ls_defrag" => SimConfig::ls_defrag(),
        "ls_prefetch" => SimConfig::ls_prefetch(),
        "ls_cache" => SimConfig::ls_cache(),
        "ls_adaptive" => SimConfig::ls_adaptive(),
        other => return Err(format!("unknown layer {other:?}")),
    };
    for (key, value) in entries {
        match key.as_str() {
            "layer" => {}
            "record_distances" => {
                config.record_distances = value
                    .as_bool()
                    .ok_or_else(|| "`record_distances` must be a bool".to_owned())?;
            }
            "track_fragments" => {
                config.track_fragments = value
                    .as_bool()
                    .ok_or_else(|| "`track_fragments` must be a bool".to_owned())?;
            }
            "longseek_bucket_ops" => {
                config.longseek_bucket_ops = value.as_u64().ok_or_else(|| {
                    "`longseek_bucket_ops` must be an unsigned integer".to_owned()
                })?;
            }
            "host_cache_bytes" => {
                config.host_cache_bytes =
                    Some(value.as_u64().ok_or_else(|| {
                        "`host_cache_bytes` must be an unsigned integer".to_owned()
                    })?);
            }
            "zone_sectors" => {
                config.zone_sectors = Some(
                    value
                        .as_u64()
                        .ok_or_else(|| "`zone_sectors` must be an unsigned integer".to_owned())?,
                );
            }
            "frontier_hint" => {
                config.frontier_hint = Some(
                    value
                        .as_u64()
                        .ok_or_else(|| "`frontier_hint` must be an unsigned integer".to_owned())?,
                );
            }
            "flash_cache_bytes" => {
                config.flash_cache_bytes =
                    Some(value.as_u64().ok_or_else(|| {
                        "`flash_cache_bytes` must be an unsigned integer".to_owned()
                    })?);
            }
            "policy" => {
                config.policy = Some(parse_policy(value)?);
            }
            other => return Err(format!("unknown config field {other:?}")),
        }
    }
    if matches!(config.layer, LayerChoice::NoLs) && config.zone_sectors.is_some() {
        // Not an error the engine would catch — zones are silently ignored
        // by NoLS — but accepting it would imply it did something.
        return Err("`zone_sectors` has no effect with layer \"nols\"".to_owned());
    }
    // The adaptive knobs reuse the engine builder's validation so the API
    // rejects exactly what `SimConfig::builder` would (zero regions, a
    // policy with nothing to gate, a flash tier without its front cache).
    if config.policy.is_some() || config.flash_cache_bytes.is_some() {
        let mut builder = SimConfig::builder(config.layer);
        if let Some(policy) = config.policy {
            builder = builder.policy(policy);
        }
        if let Some(flash) = config.flash_cache_bytes {
            builder = builder.flash_cache(flash);
        }
        builder.build().map_err(|e| e.to_string())?;
    }
    Ok(config)
}

/// Parses a `config.policy` object into a [`PolicyConfig`]. Starts from
/// the paper-default configuration; every field is optional and unknown
/// fields are rejected (same staleness argument as [`parse_config`]).
fn parse_policy(v: &Value) -> Result<PolicyConfig, String> {
    let entries = v
        .as_object()
        .ok_or_else(|| "`config.policy` must be an object".to_owned())?;
    let mut policy = PolicyConfig::default();
    for (key, value) in entries {
        let int = |name: &str| {
            value
                .as_i64()
                .and_then(|i| i32::try_from(i).ok())
                .ok_or_else(|| format!("`policy.{name}` must be an integer"))
        };
        match key.as_str() {
            "region_sectors" => {
                policy.region_sectors = value.as_u64().ok_or_else(|| {
                    "`policy.region_sectors` must be an unsigned integer".to_owned()
                })?;
            }
            "ewma_shift" => {
                policy.ewma_shift = value
                    .as_u64()
                    .and_then(|u| u32::try_from(u).ok())
                    .ok_or_else(|| "`policy.ewma_shift` must be an unsigned integer".to_owned())?;
            }
            "frag_weight" => policy.frag_weight = int("frag_weight")?,
            "write_weight" => policy.write_weight = int("write_weight")?,
            "hot_enter" => policy.hot_enter = int("hot_enter")?,
            "hot_exit" => policy.hot_exit = int("hot_exit")?,
            "score_clamp" => policy.score_clamp = int("score_clamp")?,
            other => return Err(format!("unknown policy field {other:?}")),
        }
    }
    Ok(policy)
}

/// The content identity of a trace reference: file traces use their
/// record digest (format- and path-independent); synthetic traces use
/// their generator inputs, which fully determine the records.
pub fn trace_key(trace: &TraceRef, digest: Option<smrseek_trace::TraceDigest>) -> String {
    match (trace, digest) {
        (TraceRef::Path(_), Some(digest)) => format!("trace:{digest}"),
        (TraceRef::Path(path), None) => format!("path:{}", path.display()),
        (TraceRef::Profile { name, seed, ops }, _) => {
            format!("profile:{name}:s{seed}:o{ops}")
        }
    }
}

/// The result-cache key of a job: trace identity plus either the fixed
/// sweep marker or the canonicalized single config (see
/// [`SimConfig::cache_key`]).
pub fn result_key(trace_key: &str, top: Option<u64>, config: Option<&SimConfig>) -> String {
    match config {
        None => format!("{trace_key}|sweep"),
        Some(config) => format!("{trace_key}|{}", config.cache_key(top)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_path_sweep_request() {
        let req = parse_job_request(br#"{"trace": {"path": "/tmp/t.csv"}}"#).expect("parses");
        assert_eq!(req.trace, TraceRef::Path(PathBuf::from("/tmp/t.csv")));
        assert!(req.config.is_none());
    }

    #[test]
    fn parses_profile_single_config_request() {
        let req = parse_job_request(
            br#"{"trace": {"profile": "hm_1", "ops": 500, "seed": 7},
                 "config": {"layer": "ls_cache", "record_distances": true,
                            "host_cache_bytes": 1048576}}"#,
        )
        .expect("parses");
        assert_eq!(
            req.trace,
            TraceRef::Profile {
                name: "hm_1".into(),
                seed: 7,
                ops: 500
            }
        );
        let config = req.config.expect("has config");
        assert!(config.record_distances);
        assert_eq!(config.host_cache_bytes, Some(1048576));
        assert!(matches!(
            config.layer,
            LayerChoice::Ls { cache: Some(_), .. }
        ));
    }

    #[test]
    fn profile_seed_defaults_to_cli_default() {
        let req =
            parse_job_request(br#"{"trace": {"profile": "w91", "ops": 10}}"#).expect("parses");
        assert_eq!(
            req.trace,
            TraceRef::Profile {
                name: "w91".into(),
                seed: 42,
                ops: 10
            }
        );
    }

    #[test]
    fn parses_adaptive_config_request() {
        let req = parse_job_request(
            br#"{"trace": {"profile": "hm_1", "ops": 500},
                 "config": {"layer": "ls_adaptive",
                            "policy": {"region_sectors": 512, "hot_enter": 6},
                            "flash_cache_bytes": 1048576}}"#,
        )
        .expect("parses");
        let config = req.config.expect("has config");
        let policy = config.policy.expect("has policy");
        assert_eq!(policy.region_sectors, 512);
        assert_eq!(policy.hot_enter, 6);
        assert_eq!(
            policy.ewma_shift,
            PolicyConfig::default().ewma_shift,
            "unset knobs keep paper defaults"
        );
        assert_eq!(config.flash_cache_bytes, Some(1048576));
        // The adaptive knobs change the cache key: the same trace under a
        // different policy must never share a cached result.
        let base = result_key("t", Some(100), Some(&SimConfig::ls_adaptive()));
        assert_ne!(base, result_key("t", Some(100), Some(&config)));
        assert_ne!(
            base,
            result_key("t", Some(100), Some(&SimConfig::ls_cache()))
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for (body, needle) in [
            (&b"not json"[..], "not valid JSON"),
            (br#"{}"#, "missing field `trace`"),
            (br#"{"trace": {}}"#, "`path` or `profile`"),
            (
                br#"{"trace": {"path": "a", "profile": "b", "ops": 1}}"#,
                "not both",
            ),
            (
                br#"{"trace": {"profile": "w91"}}"#,
                "`trace.ops` is required",
            ),
            (
                br#"{"trace": {"path": "a"}, "config": {"layer": "warp"}}"#,
                "unknown layer",
            ),
            (
                br#"{"trace": {"path": "a"}, "config": {"layer": "ls", "typo_knob": 1}}"#,
                "unknown config field",
            ),
            (
                br#"{"trace": {"path": "a"}, "config": {"layer": "nols", "zone_sectors": 8}}"#,
                "no effect",
            ),
            (
                br#"{"trace": {"path": "a"},
                     "config": {"layer": "ls_adaptive", "policy": {"warp": 1}}}"#,
                "unknown policy field",
            ),
            (
                br#"{"trace": {"path": "a"},
                     "config": {"layer": "ls_adaptive", "policy": {"region_sectors": 0}}}"#,
                "region",
            ),
            (
                br#"{"trace": {"path": "a"},
                     "config": {"layer": "nols", "policy": {}}}"#,
                "NoLS",
            ),
            (
                br#"{"trace": {"path": "a"},
                     "config": {"layer": "ls", "policy": {}}}"#,
                "mechanism",
            ),
            (
                br#"{"trace": {"path": "a"},
                     "config": {"layer": "ls_defrag", "flash_cache_bytes": 1024}}"#,
                "selective cache",
            ),
        ] {
            let err = parse_job_request(body).expect_err("must reject");
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
    }

    #[test]
    fn keys_separate_traces_and_configs() {
        let sweep_a = result_key("trace:abc", Some(100), None);
        let sweep_b = result_key("trace:def", Some(100), None);
        assert_ne!(sweep_a, sweep_b);
        let single = result_key("trace:abc", Some(100), Some(&SimConfig::ls_cache()));
        assert_ne!(sweep_a, single);
        // Derived-vs-explicit frontier hints canonicalize together.
        let explicit = SimConfig::log_structured().with_frontier_hint(100);
        assert_eq!(
            result_key("t", Some(100), Some(&SimConfig::log_structured())),
            result_key("t", None, Some(&explicit)),
        );
    }

    #[test]
    fn profile_key_is_generator_addressed() {
        let profile = TraceRef::Profile {
            name: "hm_1".into(),
            seed: 7,
            ops: 500,
        };
        assert_eq!(trace_key(&profile, None), "profile:hm_1:s7:o500");
        let other = TraceRef::Profile {
            name: "hm_1".into(),
            seed: 8,
            ops: 500,
        };
        assert_ne!(trace_key(&profile, None), trace_key(&other, None));
    }
}
