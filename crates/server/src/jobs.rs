//! The job table: a bounded queue, per-job lifecycle, and the
//! content-addressed result cache.
//!
//! One mutex-protected table holds every job the daemon has ever accepted
//! this process, indexed both by id and by *cache key* (trace digest +
//! canonicalized config, see [`crate::api`]). Submitting a key that is
//! already present — queued, running, or done — returns the existing job
//! instead of enqueuing a duplicate: the dedup map IS the result cache,
//! and because the check happens under the same lock as insertion, N
//! concurrent submissions of one key yield exactly one miss and N−1 hits
//! no matter how the threads interleave.
//!
//! Backpressure is explicit: when `capacity` jobs are already waiting,
//! [`JobTable::submit`] refuses (the HTTP layer answers 503 +
//! `Retry-After`) rather than queueing unboundedly or blocking the
//! connection handler.

use crate::sse;
use crate::worker::JobWork;
use smrseek_net::EventStream;
use smrseek_obs::{PhaseTotals, TraceContext};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

/// Job identifier, sequential from 1 within one daemon process.
pub type JobId = u64;

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is replaying it.
    Running,
    /// Finished; the result document is available.
    Done,
    /// The replay failed; the error message is available.
    Failed,
}

impl JobState {
    /// Lower-case label used in the API and in metrics.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    /// All states, in lifecycle order (metrics iterate this).
    pub const ALL: [JobState; 4] = [
        JobState::Queued,
        JobState::Running,
        JobState::Done,
        JobState::Failed,
    ];
}

/// Distributed-trace linkage a job carries from submission to replay: the
/// worker's `queue` and `replay` spans parent to the owner's `dispatch`
/// span through this.
#[derive(Debug, Clone, Copy)]
pub struct JobTrace {
    /// The creating request's trace id plus its `dispatch` span id (the
    /// parent of every span the worker records for this job).
    pub parent: TraceContext,
    /// Wall-clock submission time; the worker's `queue` span covers
    /// submit → dequeue.
    pub queued_unix_ns: u64,
}

struct Job {
    state: JobState,
    work: Arc<JobWork>,
    /// The finished result document (pretty JSON), shared so concurrent
    /// readers never copy it.
    result: Option<Arc<String>>,
    error: Option<String>,
    /// Request id of the submission that created the job, echoed in every
    /// status response so clients and the access log correlate.
    request_id: String,
    /// Trace linkage from the creating submission, when it was traced.
    trace: Option<JobTrace>,
    /// The job's progress log as pre-encoded SSE frames; closed after the
    /// terminal `done`/`failed` frame. Late subscribers replay history.
    events: Arc<EventStream>,
}

/// A point-in-time view of one job, as served by `GET /v1/jobs/<id>`.
#[derive(Debug, Clone)]
pub struct JobStatus {
    /// Current lifecycle state.
    pub state: JobState,
    /// The result document when [`JobState::Done`].
    pub result: Option<Arc<String>>,
    /// The failure message when [`JobState::Failed`].
    pub error: Option<String>,
    /// Request id of the submission that created the job.
    pub request_id: String,
}

/// Outcome of a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submit {
    /// New work accepted under this id (a cache miss).
    Queued(JobId),
    /// An identical job already exists (a cache hit) — poll this id.
    Existing(JobId),
    /// The queue is at capacity; retry later.
    Full,
}

#[derive(Default)]
struct Inner {
    jobs: HashMap<JobId, Job>,
    queue: VecDeque<JobId>,
    by_key: HashMap<String, JobId>,
    next_id: JobId,
    shutdown: bool,
}

/// Counts by state plus queue occupancy, for `/metrics`.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobSnapshot {
    /// Jobs waiting for a worker.
    pub queued: u64,
    /// Jobs currently replaying.
    pub running: u64,
    /// Jobs finished successfully.
    pub done: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Current queue depth (equals `queued`).
    pub queue_depth: usize,
    /// Configured queue capacity.
    pub capacity: usize,
}

impl JobSnapshot {
    /// The count for one state.
    pub fn count(&self, state: JobState) -> u64 {
        match state {
            JobState::Queued => self.queued,
            JobState::Running => self.running,
            JobState::Done => self.done,
            JobState::Failed => self.failed,
        }
    }
}

/// The shared job table. All daemon threads (connection handlers, the
/// worker pool, shutdown) coordinate exclusively through it.
pub struct JobTable {
    inner: Mutex<Inner>,
    ready: Condvar,
    capacity: usize,
}

impl JobTable {
    /// A table accepting at most `capacity` queued (not yet running)
    /// jobs at a time.
    pub fn new(capacity: usize) -> Self {
        JobTable {
            inner: Mutex::new(Inner::default()),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Submits work under a cache key. See [`Submit`] for the outcomes;
    /// the hit-or-miss decision and the enqueue are one critical section.
    /// `request_id` is retained on a miss (the id of the request that
    /// created the job); hits keep the original submission's id.
    pub fn submit(&self, key: String, work: JobWork, request_id: String) -> Submit {
        self.submit_traced(key, work, request_id, None)
    }

    /// [`submit`](Self::submit) plus the distributed-trace linkage the
    /// worker's spans parent to. Like the request id, the trace is
    /// retained only on a miss — a cache hit joins the original job and
    /// its original trace.
    pub fn submit_traced(
        &self,
        key: String,
        work: JobWork,
        request_id: String,
        trace: Option<JobTrace>,
    ) -> Submit {
        let mut inner = self.lock();
        if let Some(&id) = inner.by_key.get(&key) {
            return Submit::Existing(id);
        }
        if inner.queue.len() >= self.capacity {
            return Submit::Full;
        }
        inner.next_id += 1;
        let id = inner.next_id;
        let events = Arc::new(EventStream::new());
        events.append(&sse::encode_event(
            "queued",
            &sse::status_data(id, "queued", None),
        ));
        inner.jobs.insert(
            id,
            Job {
                state: JobState::Queued,
                work: Arc::new(work),
                result: None,
                error: None,
                request_id,
                trace,
                events,
            },
        );
        inner.queue.push_back(id);
        inner.by_key.insert(key, id);
        self.ready.notify_one();
        Submit::Queued(id)
    }

    /// Blocks until a job is available, marks it running, and returns it.
    /// Returns `None` once [`shutdown`](Self::shutdown) has been called —
    /// queued jobs are intentionally left behind (drain-running, not
    /// drain-queued: a stop request should not wait out a deep queue).
    pub fn next_job(&self) -> Option<(JobId, Arc<JobWork>)> {
        let mut inner = self.lock();
        loop {
            if inner.shutdown {
                return None;
            }
            if let Some(id) = inner.queue.pop_front() {
                let job = inner.jobs.get_mut(&id).expect("queued job exists");
                job.state = JobState::Running;
                job.events.append(&sse::encode_event(
                    "running",
                    &sse::status_data(id, "running", None),
                ));
                return Some((id, Arc::clone(&job.work)));
            }
            inner = self.ready.wait(inner).expect("job table lock poisoned");
        }
    }

    /// Records a job's outcome, emits the terminal progress frame, and
    /// closes the job's event stream (subscribers see EOF).
    pub fn complete(&self, id: JobId, outcome: Result<String, String>) {
        let mut inner = self.lock();
        let job = inner.jobs.get_mut(&id).expect("completed job exists");
        match outcome {
            Ok(doc) => {
                job.result = Some(Arc::new(doc));
                job.state = JobState::Done;
                job.events.append(&sse::encode_event(
                    "done",
                    &sse::status_data(id, "done", None),
                ));
            }
            Err(msg) => {
                job.events.append(&sse::encode_event(
                    "failed",
                    &sse::status_data(id, "failed", Some(&msg)),
                ));
                job.error = Some(msg);
                job.state = JobState::Failed;
            }
        }
        job.events.close();
    }

    /// Publishes the `phases` progress frame for a finishing job: the
    /// engine's per-phase timing from `smrseek-obs`, merged across the
    /// job's cells. Workers call this just before [`complete`].
    ///
    /// [`complete`]: Self::complete
    pub fn publish_phases(&self, id: JobId, phases: &PhaseTotals) {
        if phases.is_zero() {
            return;
        }
        let inner = self.lock();
        if let Some(job) = inner.jobs.get(&id) {
            job.events
                .append(&sse::encode_event("phases", &sse::phases_data(id, phases)));
        }
    }

    /// A job's trace linkage and request id, when the creating submission
    /// was traced. Workers call this once per dequeued job to record the
    /// `queue`/`replay` spans.
    pub fn job_trace(&self, id: JobId) -> Option<(JobTrace, String)> {
        let inner = self.lock();
        inner
            .jobs
            .get(&id)
            .and_then(|job| job.trace.map(|trace| (trace, job.request_id.clone())))
    }

    /// The progress event stream of a job, or `None` for an unknown id —
    /// the backing for `GET /v1/jobs/<id>/events`.
    pub fn events(&self, id: JobId) -> Option<Arc<EventStream>> {
        let inner = self.lock();
        inner.jobs.get(&id).map(|job| Arc::clone(&job.events))
    }

    /// The current status of a job, or `None` for an unknown id.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let inner = self.lock();
        inner.jobs.get(&id).map(|job| JobStatus {
            state: job.state,
            result: job.result.clone(),
            error: job.error.clone(),
            request_id: job.request_id.clone(),
        })
    }

    /// Every known job as `(id, state)`, sorted by id — the backing for
    /// `GET /v1/jobs`. Ids are sequential, so this is also submission
    /// order.
    pub fn list(&self) -> Vec<(JobId, JobState)> {
        let inner = self.lock();
        let mut jobs: Vec<(JobId, JobState)> = inner
            .jobs
            .iter()
            .map(|(&id, job)| (id, job.state))
            .collect();
        jobs.sort_unstable_by_key(|&(id, _)| id);
        jobs
    }

    /// Counts for `/metrics`.
    pub fn snapshot(&self) -> JobSnapshot {
        let inner = self.lock();
        let mut snap = JobSnapshot {
            queue_depth: inner.queue.len(),
            capacity: self.capacity,
            ..JobSnapshot::default()
        };
        for job in inner.jobs.values() {
            match job.state {
                JobState::Queued => snap.queued += 1,
                JobState::Running => snap.running += 1,
                JobState::Done => snap.done += 1,
                JobState::Failed => snap.failed += 1,
            }
        }
        snap
    }

    /// Begins shutdown: wakes every idle worker so it can observe the
    /// flag and exit. Workers finish the job they are running first.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.ready.notify_all();
    }

    /// Whether [`shutdown`](Self::shutdown) has been called.
    pub fn is_shutdown(&self) -> bool {
        self.lock().shutdown
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("job table lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::JobKind;
    use smrseek_sim::TraceSource;

    fn work() -> JobWork {
        JobWork {
            source: TraceSource::from_records("t", Vec::new()),
            kind: JobKind::Sweep,
            digest: None,
        }
    }

    #[test]
    fn dedup_is_first_miss_then_hits() {
        let table = JobTable::new(4);
        let first = table.submit("k".into(), work(), "rq-test".into());
        let Submit::Queued(id) = first else {
            panic!("first submission queues: {first:?}");
        };
        for _ in 0..3 {
            assert_eq!(
                table.submit("k".into(), work(), "rq-later".into()),
                Submit::Existing(id)
            );
        }
        assert_eq!(table.snapshot().queued, 1, "duplicates never enqueue");
        assert_eq!(
            table.status(id).expect("known").request_id,
            "rq-test",
            "cache hits keep the creating request's id"
        );
    }

    #[test]
    fn queue_capacity_rejects_not_blocks() {
        let table = JobTable::new(1);
        assert!(matches!(
            table.submit("a".into(), work(), "rq-test".into()),
            Submit::Queued(_)
        ));
        assert_eq!(
            table.submit("b".into(), work(), "rq-test".into()),
            Submit::Full
        );
        // The rejected key was not retained: submitting it again after
        // space frees up must succeed, not alias a phantom entry.
        let (id, _) = table.next_job().expect("job available");
        table.complete(id, Ok("{}".into()));
        assert!(matches!(
            table.submit("b".into(), work(), "rq-test".into()),
            Submit::Queued(_)
        ));
    }

    #[test]
    fn lifecycle_and_status() {
        let table = JobTable::new(2);
        let Submit::Queued(id) = table.submit("k".into(), work(), "rq-test".into()) else {
            panic!("queues");
        };
        assert_eq!(table.status(id).expect("known").state, JobState::Queued);
        let (popped, _) = table.next_job().expect("job available");
        assert_eq!(popped, id);
        assert_eq!(table.status(id).expect("known").state, JobState::Running);
        table.complete(id, Ok("[1]".into()));
        let status = table.status(id).expect("known");
        assert_eq!(status.state, JobState::Done);
        assert_eq!(status.result.expect("has result").as_str(), "[1]");
        assert!(table.status(999).is_none());
        // A finished job still serves cache hits.
        assert_eq!(
            table.submit("k".into(), work(), "rq-test".into()),
            Submit::Existing(id)
        );
    }

    #[test]
    fn list_is_sorted_and_tracks_states() {
        let table = JobTable::new(4);
        assert!(table.list().is_empty());
        let Submit::Queued(a) = table.submit("a".into(), work(), "rq-test".into()) else {
            panic!("queues");
        };
        let Submit::Queued(b) = table.submit("b".into(), work(), "rq-test".into()) else {
            panic!("queues");
        };
        let (popped, _) = table.next_job().expect("job available");
        assert_eq!(popped, a);
        table.complete(a, Ok("[]".into()));
        assert_eq!(
            table.list(),
            vec![(a, JobState::Done), (b, JobState::Queued)]
        );
    }

    #[test]
    fn failures_keep_their_message() {
        let table = JobTable::new(2);
        let Submit::Queued(id) = table.submit("k".into(), work(), "rq-test".into()) else {
            panic!("queues");
        };
        table.next_job().expect("job available");
        table.complete(id, Err("boom".into()));
        let status = table.status(id).expect("known");
        assert_eq!(status.state, JobState::Failed);
        assert_eq!(status.error.as_deref(), Some("boom"));
        assert_eq!(table.snapshot().failed, 1);
    }

    #[test]
    fn shutdown_wakes_and_stops_workers() {
        let table = std::sync::Arc::new(JobTable::new(2));
        let waiter = {
            let table = std::sync::Arc::clone(&table);
            std::thread::spawn(move || table.next_job().is_none())
        };
        // Give the worker a moment to block on the condvar, then stop.
        std::thread::sleep(std::time::Duration::from_millis(20));
        table.shutdown();
        assert!(waiter.join().expect("worker thread"), "worker saw shutdown");
        assert!(table.is_shutdown());
        assert!(table.next_job().is_none(), "no work after shutdown");
    }
}
