//! Daemon metrics and their Prometheus text exposition (`GET /metrics`).
//!
//! Counters are lock-free atomics bumped on the request path; per-endpoint
//! latency reuses the log₂-binned [`LogHistogram`] from the seek model
//! (one mutex per endpoint, touched once per request). Job-state gauges
//! are not tracked incrementally at all — they are recomputed from the
//! job table at scrape time, which cannot drift from the truth.

use crate::jobs::{JobSnapshot, JobState};
use smrseek_cache::TierStats;
use smrseek_disk::histogram::LogHistogram;
use smrseek_net::LoopStats;
use smrseek_obs::{Phase, PhaseTotals};
use smrseek_policy::PolicyStats;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// The API surface, as labeled in per-endpoint metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `POST /v1/jobs`
    JobsPost,
    /// `GET /v1/jobs/<id>`
    JobsGet,
    /// `GET /v1/jobs/<id>/result`
    JobResult,
    /// `GET /v1/jobs/<id>/events` (SSE subscriptions; latency is the
    /// time to start the stream, not its lifetime).
    JobEvents,
    /// Anything else (404s, bad methods).
    Other,
}

impl Endpoint {
    /// All endpoints, in exposition order.
    pub const ALL: [Endpoint; 7] = [
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::JobsPost,
        Endpoint::JobsGet,
        Endpoint::JobResult,
        Endpoint::JobEvents,
        Endpoint::Other,
    ];

    /// The metric label for this endpoint.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::JobsPost => "jobs_post",
            Endpoint::JobsGet => "jobs_get",
            Endpoint::JobResult => "job_result",
            Endpoint::JobEvents => "job_events",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Healthz => 0,
            Endpoint::Metrics => 1,
            Endpoint::JobsPost => 2,
            Endpoint::JobsGet => 3,
            Endpoint::JobResult => 4,
            Endpoint::JobEvents => 5,
            Endpoint::Other => 6,
        }
    }
}

/// Per-peer forwarding counters for a sharded fleet.
struct PeerStats {
    addr: String,
    forwarded: AtomicU64,
    errors: AtomicU64,
}

#[derive(Default)]
struct EndpointStats {
    requests: u64,
    latency_us: LogHistogram,
    latency_sum_us: u64,
}

/// All daemon metrics. One instance lives in the server state; every
/// method is safe to call from any thread.
pub struct Metrics {
    /// Construction time, for the uptime gauge.
    started: Instant,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    jobs_rejected: AtomicU64,
    records_replayed: AtomicU64,
    checkpoint_hits: AtomicU64,
    checkpoint_misses: AtomicU64,
    checkpoint_records_skipped: AtomicU64,
    /// Engine phase time from finished jobs, in nanoseconds, indexed in
    /// [`Phase::ALL`] order (atomics: workers fold totals in concurrently).
    engine_phase_nanos: [AtomicU64; 6],
    /// Adaptive-policy gate flips from finished jobs, indexed
    /// defrag / prefetch / cache (the `mechanism` label order).
    policy_gate_flips: [AtomicU64; 3],
    /// Multi-level cache lookups from finished jobs, indexed RAM-hit /
    /// flash-hit (the `tier` label order), plus total misses.
    cache_tier_hits: [AtomicU64; 2],
    cache_tier_misses: AtomicU64,
    /// Deliberately a `Mutex` per endpoint, not atomics: a latency
    /// observation touches three fields of one [`EndpointStats`] (count,
    /// histogram bin, sum) that must move together, and the lock is
    /// per-endpoint and held for nanoseconds once per *completed* request
    /// — far off the hot path, and different endpoints never contend.
    /// Revisit only if a profile ever shows same-endpoint convoying.
    endpoints: [Mutex<EndpointStats>; 7],
    /// Event-loop counters, wired in once the reactor starts (absent in
    /// in-process tests; the families render as zeros then).
    net: OnceLock<Arc<LoopStats>>,
    /// Fleet peers this daemon forwards to, registered once at startup so
    /// every per-peer family exports zero-valued samples from scrape one.
    peers: OnceLock<Vec<PeerStats>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh, all-zero metrics; uptime counts from this call.
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            cache_hits: AtomicU64::default(),
            cache_misses: AtomicU64::default(),
            jobs_rejected: AtomicU64::default(),
            records_replayed: AtomicU64::default(),
            checkpoint_hits: AtomicU64::default(),
            checkpoint_misses: AtomicU64::default(),
            checkpoint_records_skipped: AtomicU64::default(),
            engine_phase_nanos: Default::default(),
            policy_gate_flips: Default::default(),
            cache_tier_hits: Default::default(),
            cache_tier_misses: AtomicU64::default(),
            endpoints: Default::default(),
            net: OnceLock::new(),
            peers: OnceLock::new(),
        }
    }

    /// Wires the reactor's event-loop counters into the exposition. The
    /// daemon calls this once after `smrseek_net::serve` returns; later
    /// calls are ignored.
    pub fn set_net_stats(&self, stats: Arc<LoopStats>) {
        let _ = self.net.set(stats);
    }

    /// Registers the fleet peers this daemon may forward to (their
    /// advertised addresses, excluding itself). Call once at startup;
    /// later calls are ignored.
    pub fn register_peers(&self, addrs: &[String]) {
        let _ = self.peers.set(
            addrs
                .iter()
                .map(|addr| PeerStats {
                    addr: addr.clone(),
                    forwarded: AtomicU64::default(),
                    errors: AtomicU64::default(),
                })
                .collect(),
        );
    }

    /// A submission was forwarded to `peer` (its consistent-hash owner).
    pub fn forwarded(&self, peer: &str) {
        self.bump_peer(peer, |p| &p.forwarded);
    }

    /// A forward to `peer` failed (refused, timed out, or bad relay).
    pub fn forward_error(&self, peer: &str) {
        self.bump_peer(peer, |p| &p.errors);
    }

    fn bump_peer(&self, peer: &str, field: impl Fn(&PeerStats) -> &AtomicU64) {
        if let Some(peers) = self.peers.get() {
            if let Some(stats) = peers.iter().find(|p| p.addr == peer) {
                field(stats).fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Current `(forwarded, errors)` counters for `peer`, when registered.
    pub fn forward_counts(&self, peer: &str) -> Option<(u64, u64)> {
        self.peers.get().and_then(|peers| {
            peers.iter().find(|p| p.addr == peer).map(|p| {
                (
                    p.forwarded.load(Ordering::Relaxed),
                    p.errors.load(Ordering::Relaxed),
                )
            })
        })
    }

    /// A submission matched an existing job (any state).
    pub fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// A submission enqueued new work.
    pub fn cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// A submission was refused because the queue was full.
    pub fn rejected(&self) {
        self.jobs_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker finished replaying `records` logical records.
    pub fn replayed(&self, records: u64) {
        self.records_replayed.fetch_add(records, Ordering::Relaxed);
    }

    /// Total logical records replayed so far.
    pub fn replayed_total(&self) -> u64 {
        self.records_replayed.load(Ordering::Relaxed)
    }

    /// Current cache hit/miss counters (used by tests and the CLI).
    pub fn cache_counts(&self) -> (u64, u64) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }

    /// Folds in one job's checkpoint prefix-reuse accounting.
    pub fn checkpoint_usage(&self, usage: &smrseek_sim::CheckpointUsage) {
        self.checkpoint_hits
            .fetch_add(usage.hits, Ordering::Relaxed);
        self.checkpoint_misses
            .fetch_add(usage.misses, Ordering::Relaxed);
        self.checkpoint_records_skipped
            .fetch_add(usage.records_skipped, Ordering::Relaxed);
    }

    /// Current checkpoint counters `(hits, misses, records_skipped)`.
    pub fn checkpoint_counts(&self) -> (u64, u64, u64) {
        (
            self.checkpoint_hits.load(Ordering::Relaxed),
            self.checkpoint_misses.load(Ordering::Relaxed),
            self.checkpoint_records_skipped.load(Ordering::Relaxed),
        )
    }

    /// Folds one finished job's engine phase totals into the daemon-wide
    /// phase counters.
    pub fn engine_phases(&self, phases: &PhaseTotals) {
        for (i, phase) in Phase::ALL.iter().enumerate() {
            let nanos = phases.nanos(*phase);
            if nanos > 0 {
                self.engine_phase_nanos[i].fetch_add(nanos, Ordering::Relaxed);
            }
        }
    }

    /// Folds one finished job's adaptive-policy decision counters into the
    /// daemon-wide gate-flip totals.
    pub fn policy_stats(&self, stats: &PolicyStats) {
        let flips = [
            stats.defrag_gate_flips,
            stats.prefetch_gate_flips,
            stats.cache_gate_flips,
        ];
        for (counter, flip) in self.policy_gate_flips.iter().zip(flips) {
            if flip > 0 {
                counter.fetch_add(flip, Ordering::Relaxed);
            }
        }
    }

    /// Folds one finished job's multi-level cache counters into the
    /// daemon-wide per-tier totals.
    pub fn tier_stats(&self, stats: &TierStats) {
        let hits = [stats.ram_hits, stats.flash_hits];
        for (counter, hit) in self.cache_tier_hits.iter().zip(hits) {
            if hit > 0 {
                counter.fetch_add(hit, Ordering::Relaxed);
            }
        }
        if stats.misses > 0 {
            self.cache_tier_misses
                .fetch_add(stats.misses, Ordering::Relaxed);
        }
    }

    /// Records one served request on `endpoint` taking `elapsed`.
    pub fn observe(&self, endpoint: Endpoint, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let mut stats = self.endpoints[endpoint.index()]
            .lock()
            .expect("endpoint metrics lock poisoned");
        stats.requests += 1;
        stats.latency_sum_us = stats.latency_sum_us.saturating_add(us);
        stats
            .latency_us
            .record(i64::try_from(us).unwrap_or(i64::MAX));
    }

    /// Renders the Prometheus text exposition. `jobs` is a fresh snapshot
    /// of the job table; `traces` the registry size.
    pub fn render(&self, jobs: &JobSnapshot, traces: usize) -> String {
        let mut out = String::with_capacity(2048);

        out.push_str(
            "# HELP smrseekd_build_info Build metadata; always 1.\n\
             # TYPE smrseekd_build_info gauge\n",
        );
        let _ = writeln!(
            out,
            "smrseekd_build_info{{version=\"{}\"}} 1",
            env!("CARGO_PKG_VERSION")
        );
        out.push_str(
            "# HELP smrseekd_uptime_seconds Seconds since the daemon started.\n\
             # TYPE smrseekd_uptime_seconds gauge\n",
        );
        let _ = writeln!(
            out,
            "smrseekd_uptime_seconds {:.3}",
            self.started.elapsed().as_secs_f64()
        );

        out.push_str("# HELP smrseekd_jobs Jobs by lifecycle state.\n# TYPE smrseekd_jobs gauge\n");
        for state in JobState::ALL {
            let _ = writeln!(
                out,
                "smrseekd_jobs{{state=\"{}\"}} {}",
                state.label(),
                jobs.count(state)
            );
        }

        out.push_str("# HELP smrseekd_queue_depth Jobs waiting for a worker.\n# TYPE smrseekd_queue_depth gauge\n");
        let _ = writeln!(out, "smrseekd_queue_depth {}", jobs.queue_depth);
        out.push_str("# HELP smrseekd_queue_capacity Configured queue bound.\n# TYPE smrseekd_queue_capacity gauge\n");
        let _ = writeln!(out, "smrseekd_queue_capacity {}", jobs.capacity);

        out.push_str("# HELP smrseekd_traces_registered Distinct traces held open by the registry.\n# TYPE smrseekd_traces_registered gauge\n");
        let _ = writeln!(out, "smrseekd_traces_registered {traces}");

        out.push_str("# HELP smrseekd_records_replayed_total Logical records replayed by finished jobs.\n# TYPE smrseekd_records_replayed_total counter\n");
        let _ = writeln!(
            out,
            "smrseekd_records_replayed_total {}",
            self.records_replayed.load(Ordering::Relaxed)
        );

        out.push_str("# HELP smrseekd_result_cache_hits_total Submissions served by an existing job.\n# TYPE smrseekd_result_cache_hits_total counter\n");
        let _ = writeln!(
            out,
            "smrseekd_result_cache_hits_total {}",
            self.cache_hits.load(Ordering::Relaxed)
        );
        out.push_str("# HELP smrseekd_result_cache_misses_total Submissions that enqueued new work.\n# TYPE smrseekd_result_cache_misses_total counter\n");
        let _ = writeln!(
            out,
            "smrseekd_result_cache_misses_total {}",
            self.cache_misses.load(Ordering::Relaxed)
        );
        out.push_str("# HELP smrseekd_jobs_rejected_total Submissions refused with 503 (queue full).\n# TYPE smrseekd_jobs_rejected_total counter\n");
        let _ = writeln!(
            out,
            "smrseekd_jobs_rejected_total {}",
            self.jobs_rejected.load(Ordering::Relaxed)
        );

        out.push_str("# HELP smrseekd_checkpoint_hits_total Run cells resumed from a stored checkpoint.\n# TYPE smrseekd_checkpoint_hits_total counter\n");
        let _ = writeln!(
            out,
            "smrseekd_checkpoint_hits_total {}",
            self.checkpoint_hits.load(Ordering::Relaxed)
        );
        out.push_str("# HELP smrseekd_checkpoint_misses_total Run cells replayed from record zero.\n# TYPE smrseekd_checkpoint_misses_total counter\n");
        let _ = writeln!(
            out,
            "smrseekd_checkpoint_misses_total {}",
            self.checkpoint_misses.load(Ordering::Relaxed)
        );
        out.push_str("# HELP smrseekd_checkpoint_records_skipped_total Records not replayed thanks to checkpoint resume.\n# TYPE smrseekd_checkpoint_records_skipped_total counter\n");
        let _ = writeln!(
            out,
            "smrseekd_checkpoint_records_skipped_total {}",
            self.checkpoint_records_skipped.load(Ordering::Relaxed)
        );

        out.push_str(
            "# HELP smrseekd_engine_phase_seconds_total Simulation engine time by phase, \
             summed over finished jobs.\n\
             # TYPE smrseekd_engine_phase_seconds_total counter\n",
        );
        for (i, phase) in Phase::ALL.iter().enumerate() {
            let nanos = self.engine_phase_nanos[i].load(Ordering::Relaxed);
            let _ = writeln!(
                out,
                "smrseekd_engine_phase_seconds_total{{phase=\"{}\"}} {:.9}",
                phase.label(),
                nanos as f64 / 1e9,
            );
        }

        out.push_str(
            "# HELP smrseekd_policy_gate_flips_total Adaptive-policy gate transitions, \
             by gated mechanism, summed over finished jobs.\n\
             # TYPE smrseekd_policy_gate_flips_total counter\n",
        );
        for (i, mechanism) in ["defrag", "prefetch", "cache"].iter().enumerate() {
            let _ = writeln!(
                out,
                "smrseekd_policy_gate_flips_total{{mechanism=\"{mechanism}\"}} {}",
                self.policy_gate_flips[i].load(Ordering::Relaxed)
            );
        }
        out.push_str(
            "# HELP smrseekd_cache_tier_hits_total Selective-cache lookups served, by tier, \
             summed over finished jobs.\n\
             # TYPE smrseekd_cache_tier_hits_total counter\n",
        );
        for (i, tier) in ["ram", "flash"].iter().enumerate() {
            let _ = writeln!(
                out,
                "smrseekd_cache_tier_hits_total{{tier=\"{tier}\"}} {}",
                self.cache_tier_hits[i].load(Ordering::Relaxed)
            );
        }
        out.push_str("# HELP smrseekd_cache_tier_misses_total Selective-cache lookups no tier could serve.\n# TYPE smrseekd_cache_tier_misses_total counter\n");
        let _ = writeln!(
            out,
            "smrseekd_cache_tier_misses_total {}",
            self.cache_tier_misses.load(Ordering::Relaxed)
        );

        // Event-loop counters: zeros until the reactor is wired in, so
        // the families are stable across in-process and daemon scrapes.
        let net_load = |f: fn(&LoopStats) -> &AtomicU64| {
            self.net
                .get()
                .map_or(0, |stats| f(stats).load(Ordering::Relaxed))
        };
        out.push_str("# HELP smrseekd_connections_accepted_total Connections accepted by the event loop.\n# TYPE smrseekd_connections_accepted_total counter\n");
        let _ = writeln!(
            out,
            "smrseekd_connections_accepted_total {}",
            net_load(|s| &s.accepted)
        );
        out.push_str("# HELP smrseekd_accept_errors_total accept(2) failures (e.g. fd exhaustion).\n# TYPE smrseekd_accept_errors_total counter\n");
        let _ = writeln!(
            out,
            "smrseekd_accept_errors_total {}",
            net_load(|s| &s.accept_errors)
        );
        out.push_str("# HELP smrseekd_connections_active Currently open client connections.\n# TYPE smrseekd_connections_active gauge\n");
        let _ = writeln!(
            out,
            "smrseekd_connections_active {}",
            net_load(|s| &s.active)
        );
        out.push_str("# HELP smrseekd_connections_reaped_total Connections closed by the idle/slow-client timeout.\n# TYPE smrseekd_connections_reaped_total counter\n");
        let _ = writeln!(
            out,
            "smrseekd_connections_reaped_total {}",
            net_load(|s| &s.reaped_idle)
        );
        out.push_str("# HELP smrseekd_dispatch_deferred_total Requests handed to the auxiliary dispatch pool.\n# TYPE smrseekd_dispatch_deferred_total counter\n");
        let _ = writeln!(
            out,
            "smrseekd_dispatch_deferred_total {}",
            net_load(|s| &s.deferred)
        );
        out.push_str("# HELP smrseekd_eventloop_wakeups_total Times the reactor woke from epoll_wait.\n# TYPE smrseekd_eventloop_wakeups_total counter\n");
        let _ = writeln!(
            out,
            "smrseekd_eventloop_wakeups_total {}",
            net_load(|s| &s.wakeups)
        );
        out.push_str("# HELP smrseekd_sse_streams_active Connections currently following a job event stream.\n# TYPE smrseekd_sse_streams_active gauge\n");
        let _ = writeln!(
            out,
            "smrseekd_sse_streams_active {}",
            net_load(|s| &s.streaming)
        );

        out.push_str("# HELP smrseekd_forwarded_total Submissions forwarded to their consistent-hash owner, by peer.\n# TYPE smrseekd_forwarded_total counter\n");
        if let Some(peers) = self.peers.get() {
            for peer in peers {
                let _ = writeln!(
                    out,
                    "smrseekd_forwarded_total{{peer=\"{}\"}} {}",
                    peer.addr,
                    peer.forwarded.load(Ordering::Relaxed)
                );
            }
        }
        out.push_str("# HELP smrseekd_forward_errors_total Failed submission forwards, by peer.\n# TYPE smrseekd_forward_errors_total counter\n");
        if let Some(peers) = self.peers.get() {
            for peer in peers {
                let _ = writeln!(
                    out,
                    "smrseekd_forward_errors_total{{peer=\"{}\"}} {}",
                    peer.addr,
                    peer.errors.load(Ordering::Relaxed)
                );
            }
        }

        out.push_str("# HELP smrseekd_http_requests_total Requests served, by endpoint.\n# TYPE smrseekd_http_requests_total counter\n");
        for endpoint in Endpoint::ALL {
            let stats = self.endpoints[endpoint.index()]
                .lock()
                .expect("endpoint metrics lock poisoned");
            let _ = writeln!(
                out,
                "smrseekd_http_requests_total{{endpoint=\"{}\"}} {}",
                endpoint.label(),
                stats.requests
            );
        }

        out.push_str(
            "# HELP smrseekd_http_request_duration_us Request latency in microseconds.\n\
             # TYPE smrseekd_http_request_duration_us histogram\n",
        );
        for endpoint in Endpoint::ALL {
            let stats = self.endpoints[endpoint.index()]
                .lock()
                .expect("endpoint metrics lock poisoned");
            if stats.requests == 0 {
                continue;
            }
            // The log histogram's bin i covers [2^i, 2^(i+1)), so each bin
            // closes at le = 2^(i+1); zeros fall in every bucket.
            let mut cumulative = stats.latency_us.zeros();
            for (floor, count) in stats.latency_us.nonzero_bins() {
                cumulative += count;
                let _ = writeln!(
                    out,
                    "smrseekd_http_request_duration_us_bucket{{endpoint=\"{}\",le=\"{}\"}} {cumulative}",
                    endpoint.label(),
                    floor.saturating_mul(2),
                );
            }
            let _ = writeln!(
                out,
                "smrseekd_http_request_duration_us_bucket{{endpoint=\"{}\",le=\"+Inf\"}} {}",
                endpoint.label(),
                stats.latency_us.count(),
            );
            let _ = writeln!(
                out,
                "smrseekd_http_request_duration_us_sum{{endpoint=\"{}\"}} {}",
                endpoint.label(),
                stats.latency_sum_us,
            );
            let _ = writeln!(
                out,
                "smrseekd_http_request_duration_us_count{{endpoint=\"{}\"}} {}",
                endpoint.label(),
                stats.requests,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.cache_miss();
        m.cache_hit();
        m.cache_hit();
        m.rejected();
        m.replayed(1000);
        m.replayed(500);
        assert_eq!(m.cache_counts(), (2, 1));
        let text = m.render(&JobSnapshot::default(), 3);
        assert!(text.contains("smrseekd_result_cache_hits_total 2"));
        assert!(text.contains("smrseekd_result_cache_misses_total 1"));
        assert!(text.contains("smrseekd_jobs_rejected_total 1"));
        assert!(text.contains("smrseekd_records_replayed_total 1500"));
        assert!(text.contains("smrseekd_traces_registered 3"));
    }

    #[test]
    fn job_gauges_come_from_the_snapshot() {
        let m = Metrics::new();
        let snap = JobSnapshot {
            queued: 2,
            running: 1,
            done: 4,
            failed: 1,
            queue_depth: 2,
            capacity: 16,
        };
        let text = m.render(&snap, 0);
        assert!(text.contains("smrseekd_jobs{state=\"queued\"} 2"));
        assert!(text.contains("smrseekd_jobs{state=\"running\"} 1"));
        assert!(text.contains("smrseekd_jobs{state=\"done\"} 4"));
        assert!(text.contains("smrseekd_jobs{state=\"failed\"} 1"));
        assert!(text.contains("smrseekd_queue_depth 2"));
        assert!(text.contains("smrseekd_queue_capacity 16"));
    }

    #[test]
    fn build_info_and_uptime_are_exported() {
        let m = Metrics::new();
        let text = m.render(&JobSnapshot::default(), 0);
        assert!(text.contains(&format!(
            "smrseekd_build_info{{version=\"{}\"}} 1",
            env!("CARGO_PKG_VERSION")
        )));
        assert!(text.contains("smrseekd_uptime_seconds "));
    }

    #[test]
    fn engine_phase_seconds_accumulate_across_jobs() {
        let m = Metrics::new();
        let text = m.render(&JobSnapshot::default(), 0);
        // All phases are exported even before any job finishes.
        assert!(text.contains("smrseekd_engine_phase_seconds_total{phase=\"lookup\"} 0.0"));

        let mut a = PhaseTotals::default();
        a.record(Phase::Lookup, Duration::from_millis(1500));
        a.record(Phase::Seek, Duration::from_nanos(5));
        let mut b = PhaseTotals::default();
        b.record(Phase::Lookup, Duration::from_millis(500));
        m.engine_phases(&a);
        m.engine_phases(&b);
        let text = m.render(&JobSnapshot::default(), 0);
        assert!(text.contains("smrseekd_engine_phase_seconds_total{phase=\"lookup\"} 2.000000000"));
        assert!(text.contains("smrseekd_engine_phase_seconds_total{phase=\"seek\"} 0.000000005"));
        assert!(text.contains("smrseekd_engine_phase_seconds_total{phase=\"ingest\"} 0.000000000"));
    }

    #[test]
    fn policy_and_tier_counters_accumulate_with_labels() {
        let m = Metrics::new();
        let text = m.render(&JobSnapshot::default(), 0);
        // Families are present (zero-valued) before any adaptive job runs.
        assert!(text.contains("smrseekd_policy_gate_flips_total{mechanism=\"defrag\"} 0"));
        assert!(text.contains("smrseekd_cache_tier_hits_total{tier=\"flash\"} 0"));
        assert!(text.contains("smrseekd_cache_tier_misses_total 0"));

        let stats = PolicyStats {
            defrag_gate_flips: 3,
            prefetch_gate_flips: 2,
            cache_gate_flips: 1,
            ..PolicyStats::default()
        };
        m.policy_stats(&stats);
        m.policy_stats(&stats);
        let tiers = TierStats {
            ram_hits: 10,
            flash_hits: 4,
            misses: 7,
            ..TierStats::default()
        };
        m.tier_stats(&tiers);
        let text = m.render(&JobSnapshot::default(), 0);
        assert!(text.contains("smrseekd_policy_gate_flips_total{mechanism=\"defrag\"} 6"));
        assert!(text.contains("smrseekd_policy_gate_flips_total{mechanism=\"prefetch\"} 4"));
        assert!(text.contains("smrseekd_policy_gate_flips_total{mechanism=\"cache\"} 2"));
        assert!(text.contains("smrseekd_cache_tier_hits_total{tier=\"ram\"} 10"));
        assert!(text.contains("smrseekd_cache_tier_hits_total{tier=\"flash\"} 4"));
        assert!(text.contains("smrseekd_cache_tier_misses_total 7"));
    }

    /// An offline promlint: the checks `promtool check metrics` applies to
    /// an exposition, run against a render with every family populated.
    #[test]
    fn exposition_passes_promlint() {
        let m = Metrics::new();
        m.cache_hit();
        m.cache_miss();
        m.rejected();
        m.replayed(10);
        m.policy_stats(&PolicyStats {
            defrag_gate_flips: 1,
            ..PolicyStats::default()
        });
        m.tier_stats(&TierStats {
            ram_hits: 1,
            flash_hits: 1,
            misses: 1,
            ..TierStats::default()
        });
        let mut phases = PhaseTotals::default();
        phases.record(Phase::Classify, Duration::from_millis(2));
        m.engine_phases(&phases);
        for endpoint in Endpoint::ALL {
            m.observe(endpoint, Duration::from_micros(5));
        }
        // Populate the event-loop and fleet families too, so the lint
        // walks every sample this daemon can ever emit.
        let net = Arc::new(LoopStats::default());
        net.accepted.fetch_add(9, Ordering::Relaxed);
        net.streaming.fetch_add(1, Ordering::Relaxed);
        m.set_net_stats(net);
        m.register_peers(&["127.0.0.1:9001".to_owned()]);
        m.forwarded("127.0.0.1:9001");
        m.forward_error("127.0.0.1:9001");
        let text = m.render(&JobSnapshot::default(), 1);

        let name_ok = |name: &str| {
            !name.is_empty()
                && name
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        };
        let mut helped = std::collections::HashSet::new();
        let mut typed = std::collections::HashMap::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, help) = rest.split_once(' ').expect("HELP has text");
                assert!(name_ok(name), "bad metric name {name}");
                assert!(!help.trim().is_empty(), "{name} has empty help");
                assert!(helped.insert(name.to_owned()), "duplicate HELP for {name}");
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, kind) = rest.split_once(' ').expect("TYPE has kind");
                assert!(
                    ["counter", "gauge", "histogram"].contains(&kind),
                    "{name}: unknown type {kind}"
                );
                assert!(helped.contains(name), "{name}: TYPE without preceding HELP");
                assert!(
                    typed.insert(name.to_owned(), kind.to_owned()).is_none(),
                    "duplicate TYPE for {name}"
                );
                if kind == "counter" {
                    assert!(
                        name.ends_with("_total"),
                        "counter {name} must end in _total"
                    );
                }
                continue;
            }
            assert!(!line.starts_with('#'), "unknown comment line: {line}");
            // A sample: name{labels} value — must belong to a declared
            // family (histograms declare via their base name).
            let name_end = line.find(['{', ' ']).expect("sample has a name");
            let name = &line[..name_end];
            assert!(name_ok(name), "bad sample name {name}");
            let family = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suffix| {
                    let base = name.strip_suffix(suffix)?;
                    (typed.get(base).map(String::as_str) == Some("histogram")).then_some(base)
                })
                .unwrap_or(name);
            assert!(
                typed.contains_key(family),
                "sample {name} has no TYPE declaration"
            );
            let value = line.rsplit(' ').next().expect("sample has a value");
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf",
                "{name}: unparsable value {value}"
            );
            if let Some(labels) = line[name_end..].strip_prefix('{') {
                let labels = labels.split_once('}').expect("labels close").0;
                for pair in labels.split(',') {
                    let (k, v) = pair.split_once('=').expect("label has =");
                    assert!(name_ok(k), "bad label name {k}");
                    assert!(
                        v.starts_with('"') && v.ends_with('"') && v.len() >= 2,
                        "{name}: unquoted label value {v}"
                    );
                }
            }
        }
        // Families this PR adds are all present and correctly typed.
        for family in [
            "smrseekd_policy_gate_flips_total",
            "smrseekd_cache_tier_hits_total",
            "smrseekd_cache_tier_misses_total",
            "smrseekd_connections_accepted_total",
            "smrseekd_accept_errors_total",
            "smrseekd_connections_reaped_total",
            "smrseekd_dispatch_deferred_total",
            "smrseekd_eventloop_wakeups_total",
            "smrseekd_forwarded_total",
            "smrseekd_forward_errors_total",
        ] {
            assert_eq!(
                typed.get(family).map(String::as_str),
                Some("counter"),
                "{family}"
            );
        }
        for family in ["smrseekd_connections_active", "smrseekd_sse_streams_active"] {
            assert_eq!(
                typed.get(family).map(String::as_str),
                Some("gauge"),
                "{family}"
            );
        }
        assert!(text.contains("phase=\"classify\""), "new phase is exported");
        assert!(text.contains("smrseekd_connections_accepted_total 9"));
        assert!(text.contains("smrseekd_sse_streams_active 1"));
        assert!(text.contains("smrseekd_forwarded_total{peer=\"127.0.0.1:9001\"} 1"));
        assert!(text.contains("smrseekd_forward_errors_total{peer=\"127.0.0.1:9001\"} 1"));
        assert!(
            text.contains("endpoint=\"job_events\""),
            "SSE endpoint is labeled"
        );
    }

    #[test]
    fn net_and_peer_families_render_zero_valued_before_wiring() {
        let m = Metrics::new();
        let text = m.render(&JobSnapshot::default(), 0);
        assert!(text.contains("smrseekd_connections_accepted_total 0"));
        assert!(text.contains("smrseekd_connections_active 0"));
        assert!(text.contains("smrseekd_sse_streams_active 0"));
        // No peers registered: the families declare but carry no samples.
        assert!(text.contains("# TYPE smrseekd_forwarded_total counter"));
        assert!(!text.contains("smrseekd_forwarded_total{"));
        assert_eq!(m.forward_counts("anyone"), None);
    }

    #[test]
    fn latency_histogram_is_cumulative_and_bounded() {
        let m = Metrics::new();
        m.observe(Endpoint::Healthz, Duration::from_micros(3));
        m.observe(Endpoint::Healthz, Duration::from_micros(3));
        m.observe(Endpoint::Healthz, Duration::from_micros(900));
        let text = m.render(&JobSnapshot::default(), 0);
        // 3 µs lands in bin [2,4) → le="4"; 900 µs in [512,1024) → le="1024".
        assert!(text
            .contains("smrseekd_http_request_duration_us_bucket{endpoint=\"healthz\",le=\"4\"} 2"));
        assert!(text.contains(
            "smrseekd_http_request_duration_us_bucket{endpoint=\"healthz\",le=\"1024\"} 3"
        ));
        assert!(text.contains(
            "smrseekd_http_request_duration_us_bucket{endpoint=\"healthz\",le=\"+Inf\"} 3"
        ));
        assert!(text.contains("smrseekd_http_request_duration_us_sum{endpoint=\"healthz\"} 906"));
        assert!(text.contains("smrseekd_http_request_duration_us_count{endpoint=\"healthz\"} 3"));
        // Endpoints never hit do not emit empty histogram series.
        assert!(!text.contains("endpoint=\"jobs_post\",le="));
    }
}
