//! Daemon metrics and their Prometheus text exposition (`GET /metrics`).
//!
//! Every family lives in one [`smrseek_obs::Registry`]; this module keeps
//! only what is the daemon's — family names, help strings, and the typed
//! handles the request path bumps. Counters are relaxed atomics behind
//! registry handles; per-endpoint latency is a registry log₂ histogram
//! (three relaxed adds per completed request, no locks). Job-state gauges
//! are not tracked incrementally at all — they are recomputed from the
//! job table at scrape time, which cannot drift from the truth.
//!
//! Exposition order, family names, label sets, and value formats are
//! byte-compatible with the pre-registry hand-rendered exposition (the
//! golden test below pins it), so dashboards survive the migration.

use crate::jobs::{JobSnapshot, JobState};
use smrseek_cache::TierStats;
use smrseek_net::LoopStats;
use smrseek_obs::{Counter, Gauge, Histogram, Phase, PhaseTotals, Registry, ValueFormat};
use smrseek_policy::PolicyStats;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// The API surface, as labeled in per-endpoint metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `POST /v1/jobs`
    JobsPost,
    /// `GET /v1/jobs/<id>`
    JobsGet,
    /// `GET /v1/jobs/<id>/result`
    JobResult,
    /// `GET /v1/jobs/<id>/events` (SSE subscriptions; latency is the
    /// time to start the stream, not its lifetime).
    JobEvents,
    /// `GET /v1/trace/<trace-id>` (distributed-trace export).
    Trace,
    /// Anything else (404s, bad methods).
    Other,
}

impl Endpoint {
    /// All endpoints, in exposition order.
    pub const ALL: [Endpoint; 8] = [
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::JobsPost,
        Endpoint::JobsGet,
        Endpoint::JobResult,
        Endpoint::JobEvents,
        Endpoint::Trace,
        Endpoint::Other,
    ];

    /// The metric label for this endpoint.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::JobsPost => "jobs_post",
            Endpoint::JobsGet => "jobs_get",
            Endpoint::JobResult => "job_result",
            Endpoint::JobEvents => "job_events",
            Endpoint::Trace => "trace",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Healthz => 0,
            Endpoint::Metrics => 1,
            Endpoint::JobsPost => 2,
            Endpoint::JobsGet => 3,
            Endpoint::JobResult => 4,
            Endpoint::JobEvents => 5,
            Endpoint::Trace => 6,
            Endpoint::Other => 7,
        }
    }
}

const FORWARDED_HELP: &str = "Submissions forwarded to their consistent-hash owner, by peer.";
const FORWARD_ERRORS_HELP: &str = "Failed submission forwards, by peer.";

/// Per-peer forwarding counters for a sharded fleet.
struct PeerCounters {
    addr: String,
    forwarded: Counter,
    errors: Counter,
}

/// All daemon metrics. One instance lives in the server state; every
/// method is safe to call from any thread.
pub struct Metrics {
    registry: Registry,
    /// Construction time, for the uptime gauge (stored as nanoseconds,
    /// rendered as fractional seconds at scrape time).
    started: Instant,
    uptime: Gauge,
    /// Scrape-time gauges recomputed from the job snapshot, indexed in
    /// [`JobState::ALL`] order.
    jobs_by_state: [Gauge; 4],
    queue_depth: Gauge,
    queue_capacity: Gauge,
    traces_registered: Gauge,
    records_replayed: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    jobs_rejected: Counter,
    checkpoint_hits: Counter,
    checkpoint_misses: Counter,
    checkpoint_records_skipped: Counter,
    /// Engine phase time from finished jobs, in nanoseconds, indexed in
    /// [`Phase::ALL`] order (rendered as seconds with 9 decimals).
    engine_phase_nanos: [Counter; 6],
    /// Adaptive-policy gate flips from finished jobs, indexed
    /// defrag / prefetch / cache (the `mechanism` label order).
    policy_gate_flips: [Counter; 3],
    /// Multi-level cache lookups from finished jobs, indexed RAM-hit /
    /// flash-hit (the `tier` label order), plus total misses.
    cache_tier_hits: [Counter; 2],
    cache_tier_misses: Counter,
    /// Event-loop counters, wired in once the reactor starts (absent in
    /// in-process tests; the callback series render as zeros then).
    net: Arc<OnceLock<Arc<LoopStats>>>,
    /// Fleet peers this daemon forwards to, registered once at startup so
    /// every per-peer family exports zero-valued samples from scrape one.
    peers: OnceLock<Vec<PeerCounters>>,
    endpoint_requests: [Counter; 8],
    endpoint_latency: [Histogram; 8],
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh, all-zero metrics; uptime counts from this call. Every
    /// family is registered here, in exposition order.
    pub fn new() -> Self {
        let registry = Registry::new();

        registry
            .labeled_gauge(
                "smrseekd_build_info",
                "Build metadata; always 1.",
                "version",
                env!("CARGO_PKG_VERSION"),
            )
            .set(1);
        let uptime = registry.gauge_fmt(
            "smrseekd_uptime_seconds",
            "Seconds since the daemon started.",
            ValueFormat::NanosSeconds3,
        );
        let jobs_by_state = JobState::ALL.map(|state| {
            registry.labeled_gauge(
                "smrseekd_jobs",
                "Jobs by lifecycle state.",
                "state",
                state.label(),
            )
        });
        let queue_depth = registry.gauge("smrseekd_queue_depth", "Jobs waiting for a worker.");
        let queue_capacity = registry.gauge("smrseekd_queue_capacity", "Configured queue bound.");
        let traces_registered = registry.gauge(
            "smrseekd_traces_registered",
            "Distinct traces held open by the registry.",
        );
        let records_replayed = registry.counter(
            "smrseekd_records_replayed_total",
            "Logical records replayed by finished jobs.",
        );
        let cache_hits = registry.counter(
            "smrseekd_result_cache_hits_total",
            "Submissions served by an existing job.",
        );
        let cache_misses = registry.counter(
            "smrseekd_result_cache_misses_total",
            "Submissions that enqueued new work.",
        );
        let jobs_rejected = registry.counter(
            "smrseekd_jobs_rejected_total",
            "Submissions refused with 503 (queue full).",
        );
        let checkpoint_hits = registry.counter(
            "smrseekd_checkpoint_hits_total",
            "Run cells resumed from a stored checkpoint.",
        );
        let checkpoint_misses = registry.counter(
            "smrseekd_checkpoint_misses_total",
            "Run cells replayed from record zero.",
        );
        let checkpoint_records_skipped = registry.counter(
            "smrseekd_checkpoint_records_skipped_total",
            "Records not replayed thanks to checkpoint resume.",
        );
        let engine_phase_nanos = Phase::ALL.map(|phase| {
            registry.labeled_counter_fmt(
                "smrseekd_engine_phase_seconds_total",
                "Simulation engine time by phase, summed over finished jobs.",
                "phase",
                phase.label(),
                ValueFormat::NanosSeconds9,
            )
        });
        let policy_gate_flips = ["defrag", "prefetch", "cache"].map(|mechanism| {
            registry.labeled_counter(
                "smrseekd_policy_gate_flips_total",
                "Adaptive-policy gate transitions, by gated mechanism, summed over finished jobs.",
                "mechanism",
                mechanism,
            )
        });
        let cache_tier_hits = ["ram", "flash"].map(|tier| {
            registry.labeled_counter(
                "smrseekd_cache_tier_hits_total",
                "Selective-cache lookups served, by tier, summed over finished jobs.",
                "tier",
                tier,
            )
        });
        let cache_tier_misses = registry.counter(
            "smrseekd_cache_tier_misses_total",
            "Selective-cache lookups no tier could serve.",
        );

        // Event-loop counters render through callbacks reading the
        // reactor's own atomics: zeros until `set_net_stats` wires the
        // source in, live afterwards, no copying either way.
        let net: Arc<OnceLock<Arc<LoopStats>>> = Arc::new(OnceLock::new());
        for (name, read) in LoopStats::readers() {
            let (family, help, is_gauge) = match name {
                "accepted" => (
                    "smrseekd_connections_accepted_total",
                    "Connections accepted by the event loop.",
                    false,
                ),
                "accept_errors" => (
                    "smrseekd_accept_errors_total",
                    "accept(2) failures (e.g. fd exhaustion).",
                    false,
                ),
                "active" => (
                    "smrseekd_connections_active",
                    "Currently open client connections.",
                    true,
                ),
                "reaped_idle" => (
                    "smrseekd_connections_reaped_total",
                    "Connections closed by the idle/slow-client timeout.",
                    false,
                ),
                "deferred" => (
                    "smrseekd_dispatch_deferred_total",
                    "Requests handed to the auxiliary dispatch pool.",
                    false,
                ),
                "wakeups" => (
                    "smrseekd_eventloop_wakeups_total",
                    "Times the reactor woke from epoll_wait.",
                    false,
                ),
                "streaming" => (
                    "smrseekd_sse_streams_active",
                    "Connections currently following a job event stream.",
                    true,
                ),
                other => unreachable!("unknown LoopStats reader {other}"),
            };
            let source = Arc::clone(&net);
            let value = move || source.get().map_or(0, |stats| read(stats));
            if is_gauge {
                registry.callback_gauge(family, help, value);
            } else {
                registry.callback_counter(family, help, value);
            }
        }

        // Per-peer families declare up front so a standalone daemon (no
        // peers) still exposes stable `# HELP`/`# TYPE` headers.
        registry.declare_counter("smrseekd_forwarded_total", FORWARDED_HELP, "peer");
        registry.declare_counter("smrseekd_forward_errors_total", FORWARD_ERRORS_HELP, "peer");

        let endpoint_requests = Endpoint::ALL.map(|endpoint| {
            registry.labeled_counter(
                "smrseekd_http_requests_total",
                "Requests served, by endpoint.",
                "endpoint",
                endpoint.label(),
            )
        });
        let endpoint_latency = Endpoint::ALL.map(|endpoint| {
            registry.labeled_histogram(
                "smrseekd_http_request_duration_us",
                "Request latency in microseconds.",
                "endpoint",
                endpoint.label(),
            )
        });

        Metrics {
            registry,
            started: Instant::now(),
            uptime,
            jobs_by_state,
            queue_depth,
            queue_capacity,
            traces_registered,
            records_replayed,
            cache_hits,
            cache_misses,
            jobs_rejected,
            checkpoint_hits,
            checkpoint_misses,
            checkpoint_records_skipped,
            engine_phase_nanos,
            policy_gate_flips,
            cache_tier_hits,
            cache_tier_misses,
            net,
            peers: OnceLock::new(),
            endpoint_requests,
            endpoint_latency,
        }
    }

    /// The registry behind the exposition, for callers registering extra
    /// families (they render after the daemon's own, in call order).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Wires the reactor's event-loop counters into the exposition. The
    /// daemon calls this once after `smrseek_net::serve` returns; later
    /// calls are ignored.
    pub fn set_net_stats(&self, stats: Arc<LoopStats>) {
        let _ = self.net.set(stats);
    }

    /// Registers the fleet peers this daemon may forward to (their
    /// advertised addresses, excluding itself). Call once at startup;
    /// later calls are ignored.
    pub fn register_peers(&self, addrs: &[String]) {
        if self.peers.get().is_some() {
            return;
        }
        let peers = addrs
            .iter()
            .map(|addr| PeerCounters {
                addr: addr.clone(),
                forwarded: self.registry.labeled_counter(
                    "smrseekd_forwarded_total",
                    FORWARDED_HELP,
                    "peer",
                    addr,
                ),
                errors: self.registry.labeled_counter(
                    "smrseekd_forward_errors_total",
                    FORWARD_ERRORS_HELP,
                    "peer",
                    addr,
                ),
            })
            .collect();
        let _ = self.peers.set(peers);
    }

    /// A submission was forwarded to `peer` (its consistent-hash owner).
    pub fn forwarded(&self, peer: &str) {
        self.bump_peer(peer, |p| &p.forwarded);
    }

    /// A forward to `peer` failed (refused, timed out, or bad relay).
    pub fn forward_error(&self, peer: &str) {
        self.bump_peer(peer, |p| &p.errors);
    }

    fn bump_peer(&self, peer: &str, field: impl Fn(&PeerCounters) -> &Counter) {
        if let Some(peers) = self.peers.get() {
            if let Some(stats) = peers.iter().find(|p| p.addr == peer) {
                field(stats).inc();
            }
        }
    }

    /// Current `(forwarded, errors)` counters for `peer`, when registered.
    pub fn forward_counts(&self, peer: &str) -> Option<(u64, u64)> {
        self.peers.get().and_then(|peers| {
            peers
                .iter()
                .find(|p| p.addr == peer)
                .map(|p| (p.forwarded.get(), p.errors.get()))
        })
    }

    /// Every registered peer with its `(forwarded, errors)` counters, in
    /// registration order (the `/healthz` fleet view walks this).
    pub fn peer_counts(&self) -> Vec<(String, u64, u64)> {
        self.peers.get().map_or_else(Vec::new, |peers| {
            peers
                .iter()
                .map(|p| (p.addr.clone(), p.forwarded.get(), p.errors.get()))
                .collect()
        })
    }

    /// A submission matched an existing job (any state).
    pub fn cache_hit(&self) {
        self.cache_hits.inc();
    }

    /// A submission enqueued new work.
    pub fn cache_miss(&self) {
        self.cache_misses.inc();
    }

    /// A submission was refused because the queue was full.
    pub fn rejected(&self) {
        self.jobs_rejected.inc();
    }

    /// A worker finished replaying `records` logical records.
    pub fn replayed(&self, records: u64) {
        self.records_replayed.add(records);
    }

    /// Total logical records replayed so far.
    pub fn replayed_total(&self) -> u64 {
        self.records_replayed.get()
    }

    /// Current cache hit/miss counters (used by tests and the CLI).
    pub fn cache_counts(&self) -> (u64, u64) {
        (self.cache_hits.get(), self.cache_misses.get())
    }

    /// Folds in one job's checkpoint prefix-reuse accounting.
    pub fn checkpoint_usage(&self, usage: &smrseek_sim::CheckpointUsage) {
        self.checkpoint_hits.add(usage.hits);
        self.checkpoint_misses.add(usage.misses);
        self.checkpoint_records_skipped.add(usage.records_skipped);
    }

    /// Current checkpoint counters `(hits, misses, records_skipped)`.
    pub fn checkpoint_counts(&self) -> (u64, u64, u64) {
        (
            self.checkpoint_hits.get(),
            self.checkpoint_misses.get(),
            self.checkpoint_records_skipped.get(),
        )
    }

    /// Folds one finished job's engine phase totals into the daemon-wide
    /// phase counters.
    pub fn engine_phases(&self, phases: &PhaseTotals) {
        for (i, phase) in Phase::ALL.iter().enumerate() {
            let nanos = phases.nanos(*phase);
            if nanos > 0 {
                self.engine_phase_nanos[i].add(nanos);
            }
        }
    }

    /// Folds one finished job's adaptive-policy decision counters into the
    /// daemon-wide gate-flip totals.
    pub fn policy_stats(&self, stats: &PolicyStats) {
        let flips = [
            stats.defrag_gate_flips,
            stats.prefetch_gate_flips,
            stats.cache_gate_flips,
        ];
        for (counter, flip) in self.policy_gate_flips.iter().zip(flips) {
            if flip > 0 {
                counter.add(flip);
            }
        }
    }

    /// Folds one finished job's multi-level cache counters into the
    /// daemon-wide per-tier totals.
    pub fn tier_stats(&self, stats: &TierStats) {
        let hits = [stats.ram_hits, stats.flash_hits];
        for (counter, hit) in self.cache_tier_hits.iter().zip(hits) {
            if hit > 0 {
                counter.add(hit);
            }
        }
        if stats.misses > 0 {
            self.cache_tier_misses.add(stats.misses);
        }
    }

    /// Records one served request on `endpoint` taking `elapsed`.
    pub fn observe(&self, endpoint: Endpoint, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.endpoint_latency[endpoint.index()].observe(us);
        self.endpoint_requests[endpoint.index()].inc();
    }

    /// Renders the Prometheus text exposition. `jobs` is a fresh snapshot
    /// of the job table; `traces` the registry size. Scrape-time gauges
    /// (uptime, job states, queue) are recomputed here, then the registry
    /// renders every family in registration order.
    pub fn render(&self, jobs: &JobSnapshot, traces: usize) -> String {
        self.uptime
            .set(u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        for (gauge, state) in self.jobs_by_state.iter().zip(JobState::ALL) {
            gauge.set(jobs.count(state));
        }
        self.queue_depth.set(jobs.queue_depth as u64);
        self.queue_capacity.set(jobs.capacity as u64);
        self.traces_registered.set(traces as u64);
        self.registry.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.cache_miss();
        m.cache_hit();
        m.cache_hit();
        m.rejected();
        m.replayed(1000);
        m.replayed(500);
        assert_eq!(m.cache_counts(), (2, 1));
        let text = m.render(&JobSnapshot::default(), 3);
        assert!(text.contains("smrseekd_result_cache_hits_total 2"));
        assert!(text.contains("smrseekd_result_cache_misses_total 1"));
        assert!(text.contains("smrseekd_jobs_rejected_total 1"));
        assert!(text.contains("smrseekd_records_replayed_total 1500"));
        assert!(text.contains("smrseekd_traces_registered 3"));
    }

    #[test]
    fn job_gauges_come_from_the_snapshot() {
        let m = Metrics::new();
        let snap = JobSnapshot {
            queued: 2,
            running: 1,
            done: 4,
            failed: 1,
            queue_depth: 2,
            capacity: 16,
        };
        let text = m.render(&snap, 0);
        assert!(text.contains("smrseekd_jobs{state=\"queued\"} 2"));
        assert!(text.contains("smrseekd_jobs{state=\"running\"} 1"));
        assert!(text.contains("smrseekd_jobs{state=\"done\"} 4"));
        assert!(text.contains("smrseekd_jobs{state=\"failed\"} 1"));
        assert!(text.contains("smrseekd_queue_depth 2"));
        assert!(text.contains("smrseekd_queue_capacity 16"));
    }

    #[test]
    fn build_info_and_uptime_are_exported() {
        let m = Metrics::new();
        let text = m.render(&JobSnapshot::default(), 0);
        assert!(text.contains(&format!(
            "smrseekd_build_info{{version=\"{}\"}} 1",
            env!("CARGO_PKG_VERSION")
        )));
        assert!(text.contains("smrseekd_uptime_seconds "));
    }

    #[test]
    fn engine_phase_seconds_accumulate_across_jobs() {
        let m = Metrics::new();
        let text = m.render(&JobSnapshot::default(), 0);
        // All phases are exported even before any job finishes.
        assert!(text.contains("smrseekd_engine_phase_seconds_total{phase=\"lookup\"} 0.0"));

        let mut a = PhaseTotals::default();
        a.record(Phase::Lookup, Duration::from_millis(1500));
        a.record(Phase::Seek, Duration::from_nanos(5));
        let mut b = PhaseTotals::default();
        b.record(Phase::Lookup, Duration::from_millis(500));
        m.engine_phases(&a);
        m.engine_phases(&b);
        let text = m.render(&JobSnapshot::default(), 0);
        assert!(text.contains("smrseekd_engine_phase_seconds_total{phase=\"lookup\"} 2.000000000"));
        assert!(text.contains("smrseekd_engine_phase_seconds_total{phase=\"seek\"} 0.000000005"));
        assert!(text.contains("smrseekd_engine_phase_seconds_total{phase=\"ingest\"} 0.000000000"));
    }

    #[test]
    fn policy_and_tier_counters_accumulate_with_labels() {
        let m = Metrics::new();
        let text = m.render(&JobSnapshot::default(), 0);
        // Families are present (zero-valued) before any adaptive job runs.
        assert!(text.contains("smrseekd_policy_gate_flips_total{mechanism=\"defrag\"} 0"));
        assert!(text.contains("smrseekd_cache_tier_hits_total{tier=\"flash\"} 0"));
        assert!(text.contains("smrseekd_cache_tier_misses_total 0"));

        let stats = PolicyStats {
            defrag_gate_flips: 3,
            prefetch_gate_flips: 2,
            cache_gate_flips: 1,
            ..PolicyStats::default()
        };
        m.policy_stats(&stats);
        m.policy_stats(&stats);
        let tiers = TierStats {
            ram_hits: 10,
            flash_hits: 4,
            misses: 7,
            ..TierStats::default()
        };
        m.tier_stats(&tiers);
        let text = m.render(&JobSnapshot::default(), 0);
        assert!(text.contains("smrseekd_policy_gate_flips_total{mechanism=\"defrag\"} 6"));
        assert!(text.contains("smrseekd_policy_gate_flips_total{mechanism=\"prefetch\"} 4"));
        assert!(text.contains("smrseekd_policy_gate_flips_total{mechanism=\"cache\"} 2"));
        assert!(text.contains("smrseekd_cache_tier_hits_total{tier=\"ram\"} 10"));
        assert!(text.contains("smrseekd_cache_tier_hits_total{tier=\"flash\"} 4"));
        assert!(text.contains("smrseekd_cache_tier_misses_total 7"));
    }

    /// An offline promlint: the checks `promtool check metrics` applies to
    /// an exposition, run against a render with every family populated.
    #[test]
    fn exposition_passes_promlint() {
        let m = Metrics::new();
        m.cache_hit();
        m.cache_miss();
        m.rejected();
        m.replayed(10);
        m.policy_stats(&PolicyStats {
            defrag_gate_flips: 1,
            ..PolicyStats::default()
        });
        m.tier_stats(&TierStats {
            ram_hits: 1,
            flash_hits: 1,
            misses: 1,
            ..TierStats::default()
        });
        let mut phases = PhaseTotals::default();
        phases.record(Phase::Classify, Duration::from_millis(2));
        m.engine_phases(&phases);
        for endpoint in Endpoint::ALL {
            m.observe(endpoint, Duration::from_micros(5));
        }
        // Populate the event-loop and fleet families too, so the lint
        // walks every sample this daemon can ever emit.
        let net = Arc::new(LoopStats::default());
        net.accepted
            .fetch_add(9, std::sync::atomic::Ordering::Relaxed);
        net.streaming
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        m.set_net_stats(net);
        m.register_peers(&["127.0.0.1:9001".to_owned()]);
        m.forwarded("127.0.0.1:9001");
        m.forward_error("127.0.0.1:9001");
        let text = m.render(&JobSnapshot::default(), 1);

        let name_ok = |name: &str| {
            !name.is_empty()
                && name
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
                && name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        };
        let mut helped = std::collections::HashSet::new();
        let mut typed = std::collections::HashMap::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, help) = rest.split_once(' ').expect("HELP has text");
                assert!(name_ok(name), "bad metric name {name}");
                assert!(!help.trim().is_empty(), "{name} has empty help");
                assert!(helped.insert(name.to_owned()), "duplicate HELP for {name}");
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, kind) = rest.split_once(' ').expect("TYPE has kind");
                assert!(
                    ["counter", "gauge", "histogram"].contains(&kind),
                    "{name}: unknown type {kind}"
                );
                assert!(helped.contains(name), "{name}: TYPE without preceding HELP");
                assert!(
                    typed.insert(name.to_owned(), kind.to_owned()).is_none(),
                    "duplicate TYPE for {name}"
                );
                if kind == "counter" {
                    assert!(
                        name.ends_with("_total"),
                        "counter {name} must end in _total"
                    );
                }
                continue;
            }
            assert!(!line.starts_with('#'), "unknown comment line: {line}");
            // A sample: name{labels} value — must belong to a declared
            // family (histograms declare via their base name).
            let name_end = line.find(['{', ' ']).expect("sample has a name");
            let name = &line[..name_end];
            assert!(name_ok(name), "bad sample name {name}");
            let family = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suffix| {
                    let base = name.strip_suffix(suffix)?;
                    (typed.get(base).map(String::as_str) == Some("histogram")).then_some(base)
                })
                .unwrap_or(name);
            assert!(
                typed.contains_key(family),
                "sample {name} has no TYPE declaration"
            );
            let value = line.rsplit(' ').next().expect("sample has a value");
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf",
                "{name}: unparsable value {value}"
            );
            if let Some(labels) = line[name_end..].strip_prefix('{') {
                let labels = labels.split_once('}').expect("labels close").0;
                for pair in labels.split(',') {
                    let (k, v) = pair.split_once('=').expect("label has =");
                    assert!(name_ok(k), "bad label name {k}");
                    assert!(
                        v.starts_with('"') && v.ends_with('"') && v.len() >= 2,
                        "{name}: unquoted label value {v}"
                    );
                }
            }
        }
        // Every family the daemon exports is present and correctly typed.
        for family in [
            "smrseekd_policy_gate_flips_total",
            "smrseekd_cache_tier_hits_total",
            "smrseekd_cache_tier_misses_total",
            "smrseekd_connections_accepted_total",
            "smrseekd_accept_errors_total",
            "smrseekd_connections_reaped_total",
            "smrseekd_dispatch_deferred_total",
            "smrseekd_eventloop_wakeups_total",
            "smrseekd_forwarded_total",
            "smrseekd_forward_errors_total",
        ] {
            assert_eq!(
                typed.get(family).map(String::as_str),
                Some("counter"),
                "{family}"
            );
        }
        for family in ["smrseekd_connections_active", "smrseekd_sse_streams_active"] {
            assert_eq!(
                typed.get(family).map(String::as_str),
                Some("gauge"),
                "{family}"
            );
        }
        assert!(text.contains("phase=\"classify\""), "new phase is exported");
        assert!(text.contains("smrseekd_connections_accepted_total 9"));
        assert!(text.contains("smrseekd_sse_streams_active 1"));
        assert!(text.contains("smrseekd_forwarded_total{peer=\"127.0.0.1:9001\"} 1"));
        assert!(text.contains("smrseekd_forward_errors_total{peer=\"127.0.0.1:9001\"} 1"));
        assert!(
            text.contains("endpoint=\"job_events\""),
            "SSE endpoint is labeled"
        );
        assert!(
            text.contains("endpoint=\"trace\""),
            "trace-export endpoint is labeled"
        );
    }

    #[test]
    fn net_and_peer_families_render_zero_valued_before_wiring() {
        let m = Metrics::new();
        let text = m.render(&JobSnapshot::default(), 0);
        assert!(text.contains("smrseekd_connections_accepted_total 0"));
        assert!(text.contains("smrseekd_connections_active 0"));
        assert!(text.contains("smrseekd_sse_streams_active 0"));
        // No peers registered: the families declare but carry no samples.
        assert!(text.contains("# TYPE smrseekd_forwarded_total counter"));
        assert!(!text.contains("smrseekd_forwarded_total{"));
        assert_eq!(m.forward_counts("anyone"), None);
        assert!(m.peer_counts().is_empty());
    }

    #[test]
    fn latency_histogram_is_cumulative_and_bounded() {
        let m = Metrics::new();
        m.observe(Endpoint::Healthz, Duration::from_micros(3));
        m.observe(Endpoint::Healthz, Duration::from_micros(3));
        m.observe(Endpoint::Healthz, Duration::from_micros(900));
        let text = m.render(&JobSnapshot::default(), 0);
        // 3 µs lands in bin [2,4) → le="4"; 900 µs in [512,1024) → le="1024".
        assert!(text
            .contains("smrseekd_http_request_duration_us_bucket{endpoint=\"healthz\",le=\"4\"} 2"));
        assert!(text.contains(
            "smrseekd_http_request_duration_us_bucket{endpoint=\"healthz\",le=\"1024\"} 3"
        ));
        assert!(text.contains(
            "smrseekd_http_request_duration_us_bucket{endpoint=\"healthz\",le=\"+Inf\"} 3"
        ));
        assert!(text.contains("smrseekd_http_request_duration_us_sum{endpoint=\"healthz\"} 906"));
        assert!(text.contains("smrseekd_http_request_duration_us_count{endpoint=\"healthz\"} 3"));
        // Endpoints never hit do not emit empty histogram series.
        assert!(!text.contains("endpoint=\"jobs_post\",le="));
    }

    /// The registry migration must not move, rename, or reformat a single
    /// family: this golden render pins the entire zero-valued exposition
    /// byte for byte (the uptime sample is the one nondeterministic line,
    /// normalized before comparing).
    #[test]
    fn golden_zero_valued_exposition_is_byte_stable() {
        let m = Metrics::new();
        let text = m.render(&JobSnapshot::default(), 0);
        let normalized: String = text
            .lines()
            .map(|line| {
                if line.starts_with("smrseekd_uptime_seconds ") {
                    "smrseekd_uptime_seconds 0.000\n".to_owned()
                } else {
                    format!("{line}\n")
                }
            })
            .collect();
        let expected = format!(
            "# HELP smrseekd_build_info Build metadata; always 1.\n\
             # TYPE smrseekd_build_info gauge\n\
             smrseekd_build_info{{version=\"{version}\"}} 1\n\
             # HELP smrseekd_uptime_seconds Seconds since the daemon started.\n\
             # TYPE smrseekd_uptime_seconds gauge\n\
             smrseekd_uptime_seconds 0.000\n\
             # HELP smrseekd_jobs Jobs by lifecycle state.\n\
             # TYPE smrseekd_jobs gauge\n\
             smrseekd_jobs{{state=\"queued\"}} 0\n\
             smrseekd_jobs{{state=\"running\"}} 0\n\
             smrseekd_jobs{{state=\"done\"}} 0\n\
             smrseekd_jobs{{state=\"failed\"}} 0\n\
             # HELP smrseekd_queue_depth Jobs waiting for a worker.\n\
             # TYPE smrseekd_queue_depth gauge\n\
             smrseekd_queue_depth 0\n\
             # HELP smrseekd_queue_capacity Configured queue bound.\n\
             # TYPE smrseekd_queue_capacity gauge\n\
             smrseekd_queue_capacity 0\n\
             # HELP smrseekd_traces_registered Distinct traces held open by the registry.\n\
             # TYPE smrseekd_traces_registered gauge\n\
             smrseekd_traces_registered 0\n\
             # HELP smrseekd_records_replayed_total Logical records replayed by finished jobs.\n\
             # TYPE smrseekd_records_replayed_total counter\n\
             smrseekd_records_replayed_total 0\n\
             # HELP smrseekd_result_cache_hits_total Submissions served by an existing job.\n\
             # TYPE smrseekd_result_cache_hits_total counter\n\
             smrseekd_result_cache_hits_total 0\n\
             # HELP smrseekd_result_cache_misses_total Submissions that enqueued new work.\n\
             # TYPE smrseekd_result_cache_misses_total counter\n\
             smrseekd_result_cache_misses_total 0\n\
             # HELP smrseekd_jobs_rejected_total Submissions refused with 503 (queue full).\n\
             # TYPE smrseekd_jobs_rejected_total counter\n\
             smrseekd_jobs_rejected_total 0\n\
             # HELP smrseekd_checkpoint_hits_total Run cells resumed from a stored checkpoint.\n\
             # TYPE smrseekd_checkpoint_hits_total counter\n\
             smrseekd_checkpoint_hits_total 0\n\
             # HELP smrseekd_checkpoint_misses_total Run cells replayed from record zero.\n\
             # TYPE smrseekd_checkpoint_misses_total counter\n\
             smrseekd_checkpoint_misses_total 0\n\
             # HELP smrseekd_checkpoint_records_skipped_total Records not replayed thanks to checkpoint resume.\n\
             # TYPE smrseekd_checkpoint_records_skipped_total counter\n\
             smrseekd_checkpoint_records_skipped_total 0\n\
             # HELP smrseekd_engine_phase_seconds_total Simulation engine time by phase, summed over finished jobs.\n\
             # TYPE smrseekd_engine_phase_seconds_total counter\n\
             smrseekd_engine_phase_seconds_total{{phase=\"ingest\"}} 0.000000000\n\
             smrseekd_engine_phase_seconds_total{{phase=\"lookup\"}} 0.000000000\n\
             smrseekd_engine_phase_seconds_total{{phase=\"seek\"}} 0.000000000\n\
             smrseekd_engine_phase_seconds_total{{phase=\"host_cache\"}} 0.000000000\n\
             smrseekd_engine_phase_seconds_total{{phase=\"checkpoint\"}} 0.000000000\n\
             smrseekd_engine_phase_seconds_total{{phase=\"classify\"}} 0.000000000\n\
             # HELP smrseekd_policy_gate_flips_total Adaptive-policy gate transitions, by gated mechanism, summed over finished jobs.\n\
             # TYPE smrseekd_policy_gate_flips_total counter\n\
             smrseekd_policy_gate_flips_total{{mechanism=\"defrag\"}} 0\n\
             smrseekd_policy_gate_flips_total{{mechanism=\"prefetch\"}} 0\n\
             smrseekd_policy_gate_flips_total{{mechanism=\"cache\"}} 0\n\
             # HELP smrseekd_cache_tier_hits_total Selective-cache lookups served, by tier, summed over finished jobs.\n\
             # TYPE smrseekd_cache_tier_hits_total counter\n\
             smrseekd_cache_tier_hits_total{{tier=\"ram\"}} 0\n\
             smrseekd_cache_tier_hits_total{{tier=\"flash\"}} 0\n\
             # HELP smrseekd_cache_tier_misses_total Selective-cache lookups no tier could serve.\n\
             # TYPE smrseekd_cache_tier_misses_total counter\n\
             smrseekd_cache_tier_misses_total 0\n\
             # HELP smrseekd_connections_accepted_total Connections accepted by the event loop.\n\
             # TYPE smrseekd_connections_accepted_total counter\n\
             smrseekd_connections_accepted_total 0\n\
             # HELP smrseekd_accept_errors_total accept(2) failures (e.g. fd exhaustion).\n\
             # TYPE smrseekd_accept_errors_total counter\n\
             smrseekd_accept_errors_total 0\n\
             # HELP smrseekd_connections_active Currently open client connections.\n\
             # TYPE smrseekd_connections_active gauge\n\
             smrseekd_connections_active 0\n\
             # HELP smrseekd_connections_reaped_total Connections closed by the idle/slow-client timeout.\n\
             # TYPE smrseekd_connections_reaped_total counter\n\
             smrseekd_connections_reaped_total 0\n\
             # HELP smrseekd_dispatch_deferred_total Requests handed to the auxiliary dispatch pool.\n\
             # TYPE smrseekd_dispatch_deferred_total counter\n\
             smrseekd_dispatch_deferred_total 0\n\
             # HELP smrseekd_eventloop_wakeups_total Times the reactor woke from epoll_wait.\n\
             # TYPE smrseekd_eventloop_wakeups_total counter\n\
             smrseekd_eventloop_wakeups_total 0\n\
             # HELP smrseekd_sse_streams_active Connections currently following a job event stream.\n\
             # TYPE smrseekd_sse_streams_active gauge\n\
             smrseekd_sse_streams_active 0\n\
             # HELP smrseekd_forwarded_total Submissions forwarded to their consistent-hash owner, by peer.\n\
             # TYPE smrseekd_forwarded_total counter\n\
             # HELP smrseekd_forward_errors_total Failed submission forwards, by peer.\n\
             # TYPE smrseekd_forward_errors_total counter\n\
             # HELP smrseekd_http_requests_total Requests served, by endpoint.\n\
             # TYPE smrseekd_http_requests_total counter\n\
             smrseekd_http_requests_total{{endpoint=\"healthz\"}} 0\n\
             smrseekd_http_requests_total{{endpoint=\"metrics\"}} 0\n\
             smrseekd_http_requests_total{{endpoint=\"jobs_post\"}} 0\n\
             smrseekd_http_requests_total{{endpoint=\"jobs_get\"}} 0\n\
             smrseekd_http_requests_total{{endpoint=\"job_result\"}} 0\n\
             smrseekd_http_requests_total{{endpoint=\"job_events\"}} 0\n\
             smrseekd_http_requests_total{{endpoint=\"trace\"}} 0\n\
             smrseekd_http_requests_total{{endpoint=\"other\"}} 0\n\
             # HELP smrseekd_http_request_duration_us Request latency in microseconds.\n\
             # TYPE smrseekd_http_request_duration_us histogram\n",
            version = env!("CARGO_PKG_VERSION"),
        );
        assert_eq!(normalized, expected);
    }
}
