//! The `smrseek bench-daemon` load generator: drives a daemon with
//! thousands of concurrent submissions and reports the latency tail.
//!
//! The generator is built on the same [`Poller`] the daemon's reactor
//! uses, pointed the other way: one thread multiplexes up to
//! `concurrency` nonblocking client connections, each performing one
//! `POST /v1/jobs` and reading to EOF (the daemon closes per request).
//! Every submission is accounted for exactly once — completed with a
//! status, or *dropped* if the connection died or timed out before a
//! full response arrived. A healthy daemon may answer 503 under
//! backpressure, but it must never silently drop a connection, so
//! [`LoadReport::dropped`] is the invariant the daemon bench gate
//! checks against zero.

use crate::http;
use smrseek_net::{Event, Interest, Poller};
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

/// Load shape for one run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Daemon address.
    pub addr: SocketAddr,
    /// Total submissions to perform.
    pub requests: usize,
    /// Maximum in-flight connections.
    pub concurrency: usize,
    /// Distinct job identities to spread submissions across (the rest
    /// are result-cache hits, like a real sweep fleet re-requesting).
    pub distinct: usize,
    /// Generator-profile ops per distinct job (kept small so the bench
    /// measures the daemon, not the simulator).
    pub ops: u64,
    /// Per-request deadline; exceeding it counts the request as dropped.
    pub timeout: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7070".parse().expect("literal parses"),
            requests: 2000,
            concurrency: 256,
            distinct: 16,
            ops: 200,
            timeout: Duration::from_secs(30),
        }
    }
}

/// What one run observed.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Submissions attempted.
    pub requests: u64,
    /// Full responses received (any status).
    pub completed: u64,
    /// Connections that died or timed out mid-exchange — the daemon's
    /// cardinal sin; must be zero.
    pub dropped: u64,
    /// Responses with status >= 400 other than 503.
    pub errors: u64,
    /// 503 backpressure rejections (an orderly answer, not an error).
    pub rejected: u64,
    /// Response count by HTTP status.
    pub statuses: BTreeMap<u16, u64>,
    /// Wall time for the whole run.
    pub elapsed: Duration,
    /// Latency percentiles over completed requests, in microseconds.
    pub p50_us: u64,
    /// 99th percentile latency (µs).
    pub p99_us: u64,
    /// 99.9th percentile latency (µs).
    pub p999_us: u64,
    /// Worst completed request (µs).
    pub max_us: u64,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
}

/// One in-flight client exchange.
struct Flight {
    stream: TcpStream,
    wbuf: Vec<u8>,
    wpos: usize,
    rbuf: Vec<u8>,
    started: Instant,
    deadline: Instant,
}

/// The sorted-sample percentile at quantile `q`: classical nearest-rank,
/// `ceil(q * n)` one-indexed.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The submission body for distinct-job index `i`: a generator-profile
/// trace, so the daemon needs no files and each distinct seed is a
/// distinct cache key.
fn job_body(i: usize, ops: u64) -> String {
    format!(r#"{{"trace": {{"profile": "hm_1", "seed": {i}, "ops": {ops}}}}}"#)
}

fn request_bytes(addr: SocketAddr, body: &str) -> Vec<u8> {
    format!(
        "POST /v1/jobs HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// Runs one load shape against a daemon and reports what came back.
///
/// # Errors
///
/// Only infrastructure failures (creating the poller) error out;
/// per-connection failures are accounted in the report instead.
pub fn run(config: &LoadConfig) -> std::io::Result<LoadReport> {
    let mut poller = Poller::new()?;
    let bodies: Vec<Vec<u8>> = (0..config.distinct.max(1))
        .map(|i| request_bytes(config.addr, &job_body(i, config.ops)))
        .collect();

    let started_run = Instant::now();
    let mut report = LoadReport {
        requests: config.requests as u64,
        ..LoadReport::default()
    };
    let mut samples: Vec<u64> = Vec::with_capacity(config.requests);
    let mut flights: Vec<Option<Flight>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut launched = 0usize;
    let mut settled = 0usize;
    let mut events: Vec<Event> = Vec::new();

    let finish = |flight: Flight, report: &mut LoadReport, samples: &mut Vec<u64>| {
        match http::parse_response(&flight.rbuf) {
            Ok((status, _body)) => {
                report.completed += 1;
                *report.statuses.entry(status).or_insert(0) += 1;
                if status == 503 {
                    report.rejected += 1;
                } else if status >= 400 {
                    report.errors += 1;
                }
                let us = u64::try_from(flight.started.elapsed().as_micros()).unwrap_or(u64::MAX);
                samples.push(us);
            }
            Err(_) => report.dropped += 1,
        }
    };

    while settled < config.requests {
        // Top up to the concurrency cap. Connect is the one blocking
        // step (loopback: the kernel completes it as soon as the SYN
        // lands in the daemon's accept backlog).
        while launched < config.requests && launched - settled < config.concurrency {
            let now = Instant::now();
            match TcpStream::connect_timeout(&config.addr, config.timeout) {
                Ok(stream) => {
                    stream.set_nonblocking(true)?;
                    let slot = free.pop().unwrap_or_else(|| {
                        flights.push(None);
                        flights.len() - 1
                    });
                    let flight = Flight {
                        stream,
                        wbuf: bodies[launched % bodies.len()].clone(),
                        wpos: 0,
                        rbuf: Vec::with_capacity(512),
                        started: now,
                        deadline: now + config.timeout,
                    };
                    poller.add(flight.stream.as_raw_fd(), slot as u64, Interest::WRITE)?;
                    flights[slot] = Some(flight);
                }
                Err(_) => {
                    // Could not even connect: that is a drop — the daemon
                    // (or its backlog) turned us away without an answer.
                    report.dropped += 1;
                    settled += 1;
                }
            }
            launched += 1;
        }
        if settled >= config.requests {
            break;
        }

        poller.wait(&mut events, Some(Duration::from_millis(50)))?;
        for ev in events.drain(..) {
            let slot = ev.token as usize;
            let Some(flight) = flights[slot].as_mut() else {
                continue;
            };
            let mut done = false;
            let mut died = false;
            if ev.writable && flight.wpos < flight.wbuf.len() {
                loop {
                    match flight.stream.write(&flight.wbuf[flight.wpos..]) {
                        Ok(0) => {
                            died = true;
                            break;
                        }
                        Ok(n) => {
                            flight.wpos += n;
                            if flight.wpos == flight.wbuf.len() {
                                let _ = poller.modify(
                                    flight.stream.as_raw_fd(),
                                    slot as u64,
                                    Interest::READ,
                                );
                                break;
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => {
                            died = true;
                            break;
                        }
                    }
                }
            }
            if !died && (ev.readable || ev.closed) {
                let mut chunk = [0u8; 4096];
                loop {
                    match flight.stream.read(&mut chunk) {
                        Ok(0) => {
                            done = true;
                            break;
                        }
                        Ok(n) => flight.rbuf.extend_from_slice(&chunk[..n]),
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => {
                            died = true;
                            break;
                        }
                    }
                }
            } else if ev.closed && flight.wpos < flight.wbuf.len() {
                died = true;
            }
            if done || died {
                let flight = flights[slot].take().expect("flight present");
                let _ = poller.delete(flight.stream.as_raw_fd());
                if done {
                    finish(flight, &mut report, &mut samples);
                } else {
                    report.dropped += 1;
                }
                free.push(slot);
                settled += 1;
            }
        }

        // Reap flights past their deadline: those are silent drops.
        let now = Instant::now();
        for (slot, entry) in flights.iter_mut().enumerate() {
            let expired = entry.as_ref().is_some_and(|f| now >= f.deadline);
            if expired {
                let flight = entry.take().expect("flight present");
                let _ = poller.delete(flight.stream.as_raw_fd());
                report.dropped += 1;
                free.push(slot);
                settled += 1;
            }
        }
    }

    samples.sort_unstable();
    report.p50_us = percentile(&samples, 0.50);
    report.p99_us = percentile(&samples, 0.99);
    report.p999_us = percentile(&samples, 0.999);
    report.max_us = samples.last().copied().unwrap_or(0);
    report.elapsed = started_run.elapsed();
    let secs = report.elapsed.as_secs_f64();
    report.throughput_rps = if secs > 0.0 {
        report.completed as f64 / secs
    } else {
        0.0
    };
    Ok(report)
}

impl LoadReport {
    /// Human-readable summary block, `key: value` per line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(out, "requests: {}", self.requests);
        let _ = writeln!(out, "completed: {}", self.completed);
        let _ = writeln!(out, "dropped: {}", self.dropped);
        let _ = writeln!(out, "rejected_503: {}", self.rejected);
        let _ = writeln!(out, "errors: {}", self.errors);
        for (status, count) in &self.statuses {
            let _ = writeln!(out, "status_{status}: {count}");
        }
        let _ = writeln!(out, "elapsed_s: {:.3}", self.elapsed.as_secs_f64());
        let _ = writeln!(out, "throughput_rps: {:.1}", self.throughput_rps);
        let _ = writeln!(out, "latency_p50_us: {}", self.p50_us);
        let _ = writeln!(out, "latency_p99_us: {}", self.p99_us);
        let _ = writeln!(out, "latency_p999_us: {}", self.p999_us);
        let _ = writeln!(out, "latency_max_us: {}", self.max_us);
        out
    }

    /// The report as a JSON object (the `daemon` section of
    /// `BENCH_*.json`).
    pub fn to_json(&self) -> serde::Value {
        use serde::{Number, Value};
        let statuses: Vec<(String, Value)> = self
            .statuses
            .iter()
            .map(|(&status, &count)| (status.to_string(), Value::Number(Number::U(count))))
            .collect();
        Value::Object(vec![
            (
                "requests".to_owned(),
                Value::Number(Number::U(self.requests)),
            ),
            (
                "completed".to_owned(),
                Value::Number(Number::U(self.completed)),
            ),
            ("dropped".to_owned(), Value::Number(Number::U(self.dropped))),
            (
                "rejected_503".to_owned(),
                Value::Number(Number::U(self.rejected)),
            ),
            ("errors".to_owned(), Value::Number(Number::U(self.errors))),
            ("statuses".to_owned(), Value::Object(statuses)),
            (
                "elapsed_s".to_owned(),
                Value::Number(Number::F(self.elapsed.as_secs_f64())),
            ),
            (
                "throughput_rps".to_owned(),
                Value::Number(Number::F(self.throughput_rps)),
            ),
            ("p50_us".to_owned(), Value::Number(Number::U(self.p50_us))),
            ("p99_us".to_owned(), Value::Number(Number::U(self.p99_us))),
            ("p999_us".to_owned(), Value::Number(Number::U(self.p999_us))),
            ("max_us".to_owned(), Value::Number(Number::U(self.max_us))),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=1000).collect();
        assert_eq!(percentile(&sorted, 0.50), 500);
        assert_eq!(percentile(&sorted, 0.99), 990);
        assert_eq!(percentile(&sorted, 0.999), 999);
        assert_eq!(percentile(&sorted, 1.0), 1000);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.999), 7);
    }

    #[test]
    fn report_serializes_both_ways() {
        let mut report = LoadReport {
            requests: 10,
            completed: 9,
            dropped: 1,
            rejected: 2,
            p50_us: 120,
            p99_us: 900,
            p999_us: 1500,
            max_us: 1600,
            throughput_rps: 123.4,
            elapsed: Duration::from_millis(73),
            ..LoadReport::default()
        };
        report.statuses.insert(202, 7);
        report.statuses.insert(503, 2);
        let text = report.render_text();
        assert!(text.contains("dropped: 1\n"), "{text}");
        assert!(text.contains("status_503: 2\n"), "{text}");
        assert!(text.contains("latency_p999_us: 1500\n"), "{text}");
        let json = serde_json::to_string(&report.to_json()).expect("serializes");
        assert!(json.contains("\"p999_us\":1500"), "{json}");
        assert!(json.contains("\"dropped\":1"), "{json}");
        assert!(json.contains("\"503\":2"), "{json}");
    }

    #[test]
    fn job_bodies_are_distinct_by_seed() {
        let a = job_body(0, 100);
        let b = job_body(1, 100);
        assert_ne!(a, b);
        assert!(a.contains("\"seed\": 0"), "{a}");
        crate::api::parse_job_request(a.as_bytes()).expect("body parses as a job request");
    }
}
