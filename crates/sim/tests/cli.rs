//! End-to-end tests of the `smrseek` binary: argument handling, figure
//! commands, JSON output, trace generation and ingestion.

use std::path::PathBuf;
use std::process::{Command, Output};

fn smrseek(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_smrseek"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("smrseek_cli_test_{}_{name}", std::process::id()));
    p
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = smrseek(&[]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn unknown_command_fails() {
    let out = smrseek(&["fig99"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn list_shows_all_profiles() {
    let out = smrseek(&["list"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for name in ["usr_1", "w91", "ts_0", "w106"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn fig11_runs_small() {
    let out = smrseek(&["fig11", "--ops", "1500", "--seed", "3"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("Fig 11a"));
    assert!(text.contains("Fig 11b"));
    assert!(text.contains("LS+cache"));
}

#[test]
fn fig8_json_output_is_valid() {
    let json_path = tmp("fig8.json");
    let out = smrseek(&[
        "fig8",
        "--ops",
        "1500",
        "--json",
        json_path.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let data = std::fs::read_to_string(&json_path).expect("json written");
    let value: serde_json::Value = serde_json::from_str(&data).expect("valid JSON");
    assert_eq!(value.as_array().expect("array of rows").len(), 21);
    std::fs::remove_file(&json_path).ok();
}

#[test]
fn gen_characterize_simulate_pipeline() {
    let csv_path = tmp("w95.csv");
    let out = smrseek(&[
        "gen",
        "w95",
        "--ops",
        "1200",
        "--out",
        csv_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = smrseek(&["characterize", csv_path.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("reads"));

    let out = smrseek(&["simulate", csv_path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("NoLS"));
    assert!(text.contains("LS+cache"));
    std::fs::remove_file(&csv_path).ok();
}

#[test]
fn gen_without_out_prints_csv() {
    let out = smrseek(&["gen", "hm_1", "--ops", "200"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.starts_with("timestamp_us,op,offset_bytes,length_bytes"));
    assert!(text.lines().count() > 100);
}

#[test]
fn gen_unknown_profile_fails() {
    let out = smrseek(&["gen", "bogus"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown profile"));
}

#[test]
fn simulate_blktrace_format() {
    let blk_path = tmp("t.blk");
    std::fs::write(
        &blk_path,
        "  8,0 1 1 0.000000000 1 Q W 0 + 64 [x]\n  8,0 1 2 0.100000000 1 Q R 0 + 64 [x]\n",
    )
    .expect("write temp");
    // Auto-sniffed.
    let out = smrseek(&["characterize", blk_path.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("1 reads / 1 writes"));
    // Explicit format flag.
    let out = smrseek(&[
        "characterize",
        blk_path.to_str().unwrap(),
        "--format",
        "blktrace",
    ]);
    assert!(out.status.success());
    std::fs::remove_file(&blk_path).ok();
}

#[test]
fn characterize_missing_file_fails_cleanly() {
    let out = smrseek(&["characterize", "/nonexistent/trace.csv"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
}

#[test]
fn bad_flag_values_rejected() {
    for args in [
        &["fig2", "--ops", "abc"][..],
        &["fig2", "--seed"][..],
        &["fig2", "--format", "weird"][..],
    ] {
        let out = smrseek(args);
        assert!(!out.status.success(), "{args:?} should fail");
    }
}

#[test]
fn extension_commands_run() {
    for command in ["timeamp", "hostcache", "clean"] {
        let out = smrseek(&[command, "--ops", "1000"]);
        assert!(
            out.status.success(),
            "{command}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(stdout(&out).contains("Extension"));
    }
}
