//! Host/drive request re-ordering (NCQ / elevator), an extension motivated
//! directly by §IV-B: *"the sequences of descending I/Os ... were
//! dispatched almost simultaneously ... and they actually completed in
//! ascending LBA order. In other words, the disk subsystem was able to
//! re-order the I/Os on the fly."*
//!
//! A conventional drive fixes mis-ordered bursts before they reach the
//! medium; a log-structured layer instead *freezes* dispatch order into
//! the physical layout. [`reorder`] models the queue: operations
//! that arrive within the queue window are sorted into ascending-LBA
//! (elevator) order before being applied, letting experiments ask how much
//! of the prefetching mechanism's benefit a smarter queue would capture
//! upstream.

use smrseek_trace::TraceRecord;
use std::num::NonZeroUsize;

/// Configuration of the NCQ-style elevator queue.
///
/// `Default` matches the §IV-B experiment: a 32-deep queue over the same
/// 10 ms dispatch window the paper uses to define mis-ordered writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueConfig {
    /// Maximum operations held in the queue at once (a `NonZeroUsize`:
    /// a zero-depth queue cannot dispatch anything, so the type rules it
    /// out instead of a runtime panic).
    pub depth: NonZeroUsize,
    /// Dispatch window: operations submitted within this many microseconds
    /// of the window's first operation may be re-ordered together.
    pub window_us: u64,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            depth: NonZeroUsize::new(32).expect("32 is nonzero"),
            window_us: 10_000,
        }
    }
}

/// Re-orders a trace the way an NCQ-style elevator queue would: operations
/// whose submission times fall within `queue.window_us` of the window's
/// first operation — capped at `queue.depth` entries — are sorted by
/// ascending LBA (ties keep arrival order), then dispatched.
///
/// Timestamps are preserved per operation (sorting models the *device*
/// choosing service order, not the host changing submission times), so the
/// output is no longer timestamp-sorted — exactly like a completion-order
/// trace of a queueing drive.
///
/// Input timestamps are assumed non-decreasing (submission order), which
/// every parser and generator in this workspace produces. If a record
/// arrives with a timestamp *earlier* than its window's first operation —
/// e.g. a hand-edited or pre-reordered trace — it deterministically closes
/// the current window and opens a new one at its own timestamp, rather
/// than being silently lumped into a window it did not arrive in.
///
/// # Example
///
/// ```
/// use smrseek_sim::scheduler::{reorder, QueueConfig};
/// use smrseek_trace::{Lba, TraceRecord};
///
/// // A descending burst dispatched within 100 us.
/// let trace = vec![
///     TraceRecord::write(0, Lba::new(16), 8),
///     TraceRecord::write(10, Lba::new(8), 8),
///     TraceRecord::write(20, Lba::new(0), 8),
/// ];
/// let sorted = reorder(&trace, QueueConfig::default());
/// let lbas: Vec<u64> = sorted.iter().map(|r| r.lba.sector()).collect();
/// assert_eq!(lbas, vec![0, 8, 16]);
/// ```
pub fn reorder(trace: &[TraceRecord], queue: QueueConfig) -> Vec<TraceRecord> {
    let mut out = Vec::with_capacity(trace.len());
    let mut i = 0;
    while i < trace.len() {
        let window_start = trace[i].timestamp_us;
        let mut j = i;
        while j < trace.len() && j - i < queue.depth.get() {
            // `checked_sub` (not `saturating_sub`): a non-monotonic record
            // must close the window, not masquerade as elapsed time 0.
            match trace[j].timestamp_us.checked_sub(window_start) {
                Some(elapsed) if elapsed <= queue.window_us => j += 1,
                _ => break,
            }
        }
        let mut batch: Vec<TraceRecord> = trace[i..j].to_vec();
        batch.sort_by_key(|r| r.lba);
        out.extend(batch);
        i = j;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use smrseek_trace::{Lba, OpKind};

    fn w(t: u64, lba: u64) -> TraceRecord {
        TraceRecord::write(t, Lba::new(lba), 8)
    }

    fn queue(depth: usize, window_us: u64) -> QueueConfig {
        QueueConfig {
            depth: NonZeroUsize::new(depth).expect("test depth is nonzero"),
            window_us,
        }
    }

    #[test]
    fn default_matches_section_iv_b() {
        let q = QueueConfig::default();
        assert_eq!(q.depth.get(), 32);
        assert_eq!(q.window_us, 10_000);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(reorder(&[], queue(8, 100)).is_empty());
        let one = vec![w(5, 42)];
        assert_eq!(reorder(&one, queue(8, 100)), one);
    }

    #[test]
    fn window_boundary_splits_batches() {
        // Ops at t=0,50,200: window 100 us groups the first two only.
        let trace = vec![w(0, 30), w(50, 10), w(200, 20)];
        let sorted = reorder(&trace, queue(8, 100));
        let lbas: Vec<u64> = sorted.iter().map(|r| r.lba.sector()).collect();
        assert_eq!(lbas, vec![10, 30, 20]);
    }

    #[test]
    fn queue_depth_limits_batch() {
        let trace = vec![w(0, 40), w(1, 30), w(2, 20), w(3, 10)];
        let sorted = reorder(&trace, queue(2, 1000));
        let lbas: Vec<u64> = sorted.iter().map(|r| r.lba.sector()).collect();
        // Two batches of two.
        assert_eq!(lbas, vec![30, 40, 10, 20]);
    }

    #[test]
    fn preserves_multiset_and_per_op_fields() {
        let trace = vec![
            TraceRecord::write(0, Lba::new(9), 16),
            TraceRecord::read(1, Lba::new(3), 8),
            TraceRecord::write(2, Lba::new(6), 24),
        ];
        let mut sorted = reorder(&trace, queue(8, 1000));
        assert_eq!(sorted.len(), 3);
        sorted.sort_by_key(|r| r.timestamp_us);
        assert_eq!(sorted, trace, "every record survives untouched");
    }

    #[test]
    fn stable_for_equal_lbas() {
        let a = TraceRecord::write(0, Lba::new(5), 8);
        let b = TraceRecord::read(1, Lba::new(5), 8);
        let sorted = reorder(&[a, b], queue(8, 1000));
        assert_eq!(sorted[0].op, OpKind::Write);
        assert_eq!(sorted[1].op, OpKind::Read);
    }

    #[test]
    fn non_monotonic_timestamp_closes_the_window() {
        // t=100 then t=0: the second record is older than the window
        // start. It must begin a new window, not be elevator-sorted into
        // the first one (which would reorder across a time discontinuity).
        let trace = vec![w(100, 50), w(0, 10), w(5, 30)];
        let sorted = reorder(&trace, queue(8, 1000));
        let lbas: Vec<u64> = sorted.iter().map(|r| r.lba.sector()).collect();
        assert_eq!(
            lbas,
            vec![50, 10, 30],
            "window splits at the backwards timestamp"
        );
        // Deterministic: repeated runs agree.
        assert_eq!(sorted, reorder(&trace, queue(8, 1000)));
    }

    #[test]
    fn fixes_misordered_writes() {
        use smrseek_stl::{count_misordered_writes, MISORDER_WINDOW_BYTES};
        // A descending chunk burst: heavily mis-ordered as dispatched.
        let trace: Vec<TraceRecord> = (0..16u64).map(|i| w(i * 10, (15 - i) * 8)).collect();
        let (before, _) = count_misordered_writes(&trace, MISORDER_WINDOW_BYTES);
        assert!(before > 10);
        let sorted = reorder(&trace, queue(32, 1_000));
        let (after, _) = count_misordered_writes(&sorted, MISORDER_WINDOW_BYTES);
        assert_eq!(after, 0, "the elevator removes all mis-ordering");
    }
}
