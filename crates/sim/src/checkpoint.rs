//! On-disk checkpoint store: engine snapshots keyed by (trace, config).
//!
//! Bridges the opaque [`smrseek_snapshot`] container format and the
//! engine's [`EngineSnapshot`]: the payload is the snapshot serialized as
//! JSON, the header binds it to the full-trace digest and the canonical
//! config key ([`SimConfig::cache_key`]). A [`CheckpointStore`] is a flat
//! directory of such files, one per (trace × canonical config) pair —
//! exactly the identity the daemon's result cache already uses, which is
//! what lets a queued job reuse the checkpointed prefix of any earlier run
//! of the same work.

use std::path::{Path, PathBuf};

use crate::engine::{EngineSnapshot, SimConfig};
use smrseek_snapshot::{fnv128, read_snapshot, write_snapshot, Snapshot, SnapshotError};

/// Builds the container for an engine snapshot: header identity from the
/// full-trace digest and canonical config key, payload from the snapshot's
/// JSON form. The record index is the snapshot's own
/// [`logical_ops`](EngineSnapshot::logical_ops).
pub fn encode_engine_snapshot(
    trace_digest: u128,
    config_key: &str,
    snap: &EngineSnapshot,
) -> Snapshot {
    let payload = serde_json::to_string(snap)
        .expect("EngineSnapshot always serializes")
        .into_bytes();
    Snapshot::new(
        trace_digest,
        snap.logical_ops,
        config_key.to_owned(),
        payload,
    )
}

/// Deserializes a container's payload back into engine state.
///
/// # Errors
///
/// [`SnapshotError::BadPayload`] when the payload is not a JSON
/// [`EngineSnapshot`], [`SnapshotError::Corrupt`] when the decoded state
/// disagrees with the header's record index.
pub fn decode_engine_snapshot(container: &Snapshot) -> Result<EngineSnapshot, SnapshotError> {
    let text = std::str::from_utf8(&container.payload)
        .map_err(|_| SnapshotError::BadPayload("payload is not UTF-8".into()))?;
    let snap: EngineSnapshot =
        serde_json::from_str(text).map_err(|e| SnapshotError::BadPayload(e.to_string()))?;
    if snap.logical_ops != container.record_index {
        return Err(SnapshotError::Corrupt(format!(
            "header says {} records consumed, state says {}",
            container.record_index, snap.logical_ops
        )));
    }
    Ok(snap)
}

/// A directory of checkpoint files addressed by (trace digest × canonical
/// config key).
///
/// File names are `{trace_digest:032x}-{fnv(config_key):016x}.smrs`; the
/// key hash only *locates* the file — the full key stored inside the
/// container is still verified on load, so a hash collision degrades to a
/// typed [`SnapshotError::ConfigMismatch`], never to wrong state.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// A store rooted at `dir` (created lazily on first save).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointStore { dir: dir.into() }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Where the checkpoint for (`trace_digest`, `config_key`) lives.
    pub fn path_for(&self, trace_digest: u128, config_key: &str) -> PathBuf {
        let key_hash = fnv128(config_key.as_bytes()) as u64;
        self.dir
            .join(format!("{trace_digest:032x}-{key_hash:016x}.smrs"))
    }

    /// Atomically writes `snap` as the checkpoint for
    /// (`trace_digest`, `config_key`), replacing any previous one, and
    /// returns the path written.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure.
    pub fn save(
        &self,
        trace_digest: u128,
        config_key: &str,
        snap: &EngineSnapshot,
    ) -> Result<PathBuf, SnapshotError> {
        let path = self.path_for(trace_digest, config_key);
        let container = encode_engine_snapshot(trace_digest, config_key, snap);
        write_snapshot(&path, &container)?;
        Ok(path)
    }

    /// Loads the checkpoint for (`trace_digest`, `config_key`). A missing
    /// file is `Ok(None)` — the normal cold-cache case — while a file that
    /// exists but fails to decode or belongs to different work is an error
    /// (callers that only want opportunistic reuse treat any `Err` as a
    /// miss).
    ///
    /// # Errors
    ///
    /// Every [`read_snapshot`] / [`decode_engine_snapshot`] error, plus
    /// [`SnapshotError::TraceMismatch`] / [`SnapshotError::ConfigMismatch`]
    /// when the file's header does not match the request.
    pub fn load(
        &self,
        trace_digest: u128,
        config_key: &str,
    ) -> Result<Option<EngineSnapshot>, SnapshotError> {
        let path = self.path_for(trace_digest, config_key);
        if !path.exists() {
            return Ok(None);
        }
        let container = read_snapshot(&path)?;
        container.verify_trace(trace_digest)?;
        container.verify_config(config_key)?;
        decode_engine_snapshot(&container).map(Some)
    }
}

/// The canonical config key a checkpoint is stored under: the config's
/// [`cache_key`](SimConfig::cache_key) resolved against the trace's bound
/// (`top` = one past its highest sector). Producer and consumer must use
/// the same function or keys would never match — this is it.
pub fn checkpoint_config_key(config: &SimConfig, top: u64) -> String {
    config.cache_key(Some(top))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;
    use smrseek_trace::{Lba, TraceRecord};

    fn trace() -> Vec<TraceRecord> {
        (0..60)
            .map(|i| {
                let lba = Lba::new((i * 53) % 2048);
                if i % 4 == 0 {
                    TraceRecord::read(i, lba, 8)
                } else {
                    TraceRecord::write(i, lba, 8)
                }
            })
            .collect()
    }

    fn tmp_store(tag: &str) -> CheckpointStore {
        CheckpointStore::new(
            std::env::temp_dir().join(format!("smrseek_ckpt_test_{tag}_{}", std::process::id())),
        )
    }

    #[test]
    fn save_load_resume_round_trip() {
        let store = tmp_store("roundtrip");
        let trace = trace();
        let digest = 0x1234_5678_9abc_def0_u128;
        let config = crate::SimConfig::ls_defrag()
            .with_frontier_hint(2048)
            .with_checkpoint_every(20);
        let key = checkpoint_config_key(&config, 2048);

        let whole = serde_json::to_string(
            &Simulation::new(&config)
                .checkpoint_sink(|snap: &EngineSnapshot| {
                    store.save(digest, &key, snap).expect("save");
                })
                .run(trace.iter().copied()),
        )
        .expect("report serializes");

        let snap = store.load(digest, &key).expect("load").expect("present");
        assert_eq!(snap.logical_ops, 60, "last emission wins");
        // Stale-by-one demo: re-save an earlier point, then resume from it.
        let mut mid = None;
        Simulation::new(&config)
            .checkpoint_sink(|s: &EngineSnapshot| {
                if s.logical_ops == 20 {
                    mid = Some(s.clone());
                }
            })
            .run(trace.iter().copied());
        let mid = mid.expect("checkpoint at 20 fired");
        store.save(digest, &key, &mid).expect("save");
        let loaded = store.load(digest, &key).expect("load").expect("present");
        assert_eq!(loaded, mid);
        let resumed = Simulation::new(&config)
            .resume_from(&loaded)
            .run(trace[20..].iter().copied());
        assert_eq!(
            serde_json::to_string(&resumed).expect("report serializes"),
            whole
        );
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn missing_checkpoint_is_none_but_damage_is_error() {
        let store = tmp_store("damage");
        let digest = 42u128;
        let key = "key";
        assert!(store.load(digest, key).expect("missing is Ok").is_none());

        let config = crate::SimConfig::no_ls();
        let report_snap = {
            let mut out = None;
            Simulation::new(&config)
                .checkpoint_every(30, |s: &EngineSnapshot| out = Some(s.clone()))
                .run(trace());
            out.expect("emitted")
        };
        let path = store.save(digest, key, &report_snap).expect("save");

        // Wrong identity on load → typed mismatch errors.
        assert!(matches!(store.load(digest, key), Ok(Some(_))));
        // (A different key hashes to a different path, so mismatches only
        // arise via collisions; simulate one by copying the file.)
        let other = store.path_for(digest, "other-key");
        std::fs::create_dir_all(other.parent().expect("parent")).expect("mkdir");
        std::fs::copy(&path, &other).expect("copy");
        assert!(matches!(
            store.load(digest, "other-key"),
            Err(SnapshotError::ConfigMismatch { .. })
        ));

        // Corrupt payload → typed error, not a panic.
        let mut bytes = std::fs::read(&path).expect("read");
        let mid = bytes.len() - 20;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).expect("write");
        assert!(matches!(
            store.load(digest, key),
            Err(SnapshotError::Corrupt(_))
        ));

        // Garbage JSON payload with a valid frame → BadPayload.
        let bad = encode_engine_snapshot(digest, key, &report_snap);
        let bad = Snapshot::new(digest, bad.record_index, key.into(), b"not json".to_vec());
        write_snapshot(&path, &bad).expect("write");
        assert!(matches!(
            store.load(digest, key),
            Err(SnapshotError::BadPayload(_))
        ));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn header_and_state_record_counts_must_agree() {
        let config = crate::SimConfig::no_ls().with_checkpoint_every(10);
        let mut snap = None;
        Simulation::new(&config)
            .checkpoint_sink(|s: &EngineSnapshot| snap = Some(s.clone()))
            .run(trace());
        let snap = snap.expect("emitted");
        let mut container = encode_engine_snapshot(7, "k", &snap);
        container.record_index += 1;
        assert!(matches!(
            decode_engine_snapshot(&container),
            Err(SnapshotError::Corrupt(_))
        ));
    }
}
