//! The seek amplification factor (SAF), the paper's evaluation metric.
//!
//! §II: *"Performance is expressed as seek amplification: the ratio of
//! seeks (read, write, or total) for the log-structured system to seeks
//! incurred on a conventional drive by the workload trace."*

use crate::runner::RunOutcome;
use serde::{Deserialize, Error, Number, Serialize, Value};
use smrseek_disk::SeekStats;
use std::fmt;

/// Seek amplification of one run relative to the NoLS baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Saf {
    /// Read-seek amplification.
    pub read: f64,
    /// Write-seek amplification.
    pub write: f64,
    /// Total-seek amplification (the bars of Fig 11).
    pub total: f64,
}

impl Saf {
    /// Computes SAF from the seek statistics of a translated run and its
    /// NoLS baseline. A zero-seek baseline component yields a ratio of 0
    /// when the translated count is also 0, `f64::INFINITY` otherwise.
    pub fn from_stats(translated: &SeekStats, baseline: &SeekStats) -> Self {
        Saf {
            read: ratio(translated.read_seeks, baseline.read_seeks),
            write: ratio(translated.write_seeks, baseline.write_seeks),
            total: ratio(translated.total(), baseline.total()),
        }
    }

    /// Improvement factor of `self` over `other` in total SAF
    /// (`other.total / self.total`) — how the paper reports mechanism wins
    /// ("up to 18x improvement").
    pub fn improvement_over(&self, other: &Saf) -> f64 {
        if self.total == 0.0 {
            if other.total == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            other.total / self.total
        }
    }
}

// JSON has no representation for non-finite floats, and the serializer
// rejects them outright — but a zero-seek baseline (e.g. a fully
// sequential trace) legitimately yields `f64::INFINITY` components. The
// manual impls below encode non-finite components as `null` instead, and
// decode `null` back to `f64::INFINITY` (the only non-finite value
// [`Saf::from_stats`] can produce).

impl Serialize for Saf {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("read".to_owned(), component_to_value(self.read)),
            ("write".to_owned(), component_to_value(self.write)),
            ("total".to_owned(), component_to_value(self.total)),
        ])
    }
}

impl Deserialize for Saf {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Saf {
            read: component_from_value(v.expect_field("read")?)?,
            write: component_from_value(v.expect_field("write")?)?,
            total: component_from_value(v.expect_field("total")?)?,
        })
    }
}

fn component_to_value(v: f64) -> Value {
    if v.is_finite() {
        Value::Number(Number::F(v))
    } else {
        Value::Null
    }
}

fn component_from_value(v: &Value) -> Result<f64, Error> {
    if v.is_null() {
        Ok(f64::INFINITY)
    } else {
        f64::from_value(v)
    }
}

impl fmt::Display for Saf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SAF total {:.2} (read {:.2}, write {:.2})",
            self.total, self.read, self.write
        )
    }
}

/// SAF of every outcome of a sweep relative to its *first* cell (the NoLS
/// baseline of [`SimConfig::standard_sweep`](crate::SimConfig::standard_sweep)),
/// labeled by layer name.
///
/// This is the exact document `smrseek simulate --json` writes and the
/// daemon serves for sweep jobs — sharing one implementation is what keeps
/// the two byte-identical.
///
/// # Panics
///
/// Panics when `outcomes` is empty (a sweep always has its baseline).
pub fn sweep_safs(outcomes: &[RunOutcome]) -> Vec<(String, Saf)> {
    let base = outcomes[0].report.seeks;
    outcomes
        .iter()
        .map(|o| {
            (
                o.report.layer_name.clone(),
                Saf::from_stats(&o.report.seeks, &base),
            )
        })
        .collect()
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        if a == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        a as f64 / b as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(read: u64, write: u64) -> SeekStats {
        SeekStats {
            read_seeks: read,
            write_seeks: write,
            ops: read + write,
            ..SeekStats::default()
        }
    }

    #[test]
    fn basic_ratios() {
        let saf = Saf::from_stats(&stats(20, 5), &stats(10, 50));
        assert!((saf.read - 2.0).abs() < 1e-12);
        assert!((saf.write - 0.1).abs() < 1e-12);
        assert!((saf.total - 25.0 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_handling() {
        let saf = Saf::from_stats(&stats(3, 0), &stats(0, 0));
        assert!(saf.read.is_infinite());
        assert_eq!(saf.write, 0.0);
        assert!(saf.total.is_infinite());
        let saf = Saf::from_stats(&stats(0, 0), &stats(0, 0));
        assert_eq!(saf.total, 0.0);
    }

    #[test]
    fn improvement_factor() {
        let ls = Saf {
            read: 3.7,
            write: 0.1,
            total: 3.7,
        };
        let cached = Saf {
            read: 0.2,
            write: 0.1,
            total: 0.2,
        };
        assert!((cached.improvement_over(&ls) - 18.5).abs() < 1e-9);
        assert!((ls.improvement_over(&ls) - 1.0).abs() < 1e-12);
        let zero = Saf {
            read: 0.0,
            write: 0.0,
            total: 0.0,
        };
        assert!(zero.improvement_over(&ls).is_infinite());
        assert_eq!(zero.improvement_over(&zero), 1.0);
    }

    #[test]
    fn infinite_components_serialize_as_null() {
        // Fully-sequential zero-baseline trace: every component infinite.
        let saf = Saf::from_stats(&stats(3, 2), &stats(0, 0));
        assert!(saf.total.is_infinite());
        let json = serde_json::to_string(&saf).expect("non-finite SAF must serialize");
        assert_eq!(json, r#"{"read":null,"write":null,"total":null}"#);
        let back: Saf = serde_json::from_str(&json).expect("roundtrip");
        assert!(back.read.is_infinite() && back.write.is_infinite() && back.total.is_infinite());
    }

    #[test]
    fn finite_components_roundtrip_unchanged() {
        let saf = Saf::from_stats(&stats(20, 5), &stats(10, 50));
        let json = serde_json::to_string(&saf).expect("finite SAF serializes");
        assert!(!json.contains("null"), "finite values stay numeric: {json}");
        let back: Saf = serde_json::from_str(&json).expect("roundtrip");
        assert_eq!(back, saf);
    }

    #[test]
    fn sweep_safs_uses_first_cell_as_baseline() {
        use crate::runner::{RunMatrix, TraceSource};
        use crate::SimConfig;
        use smrseek_trace::{Lba, TraceRecord};

        let trace: Vec<TraceRecord> = (0..200u64)
            .map(|i| {
                if i % 3 == 0 {
                    TraceRecord::read(i, Lba::new((i * 97) % 2048 * 8), 8)
                } else {
                    TraceRecord::write(i, Lba::new((i * 37) % 2048 * 8), 8)
                }
            })
            .collect();
        let source = TraceSource::from_records("t", trace);
        let matrix = RunMatrix::cross(&[source], &SimConfig::standard_sweep());
        let safs = sweep_safs(&matrix.execute(std::num::NonZeroUsize::MIN));
        assert_eq!(safs.len(), 5);
        assert_eq!(safs[0].0, "NoLS");
        assert!(
            (safs[0].1.total - 1.0).abs() < 1e-12,
            "baseline amplifies itself by exactly 1: {}",
            safs[0].1
        );
    }

    #[test]
    fn display() {
        let saf = Saf {
            read: 1.0,
            write: 2.0,
            total: 1.5,
        };
        assert_eq!(saf.to_string(), "SAF total 1.50 (read 1.00, write 2.00)");
    }
}
