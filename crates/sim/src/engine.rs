//! The simulation engine: trace × translation layer → seek statistics.
//!
//! The single entry point is the [`Simulation`] builder: configure with a
//! [`SimConfig`] (validated construction via [`SimConfig::builder`]), then
//! [`run`](Simulation::run) a record stream serially or
//! [`run_trace`](Simulation::run_trace) a random-access trace — the latter
//! can split the record stream across worker threads
//! ([`Simulation::shards`]) and merge the per-shard statistics into a
//! report byte-identical to the serial run.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use crate::checkpoint::CheckpointStore;

use serde::{Deserialize, Serialize};
use smrseek_cache::{RangeCache, TierStats};
use smrseek_disk::{Cdf, LongSeekSeries, SeekCounter, SeekCounterState, SeekStats};
use smrseek_extent::ExtentMapCheckpoint;
use smrseek_obs::{phase_accounting, Phase, PhaseTotals};
use smrseek_policy::{PolicyConfig, PolicyEngine, PolicyStats};
use smrseek_stl::{
    CacheConfig, DefragConfig, FragmentAccessTracker, LogStructured, LsConfig, LsSnapshot, LsStats,
    NoLs, PrefetchConfig, TranslationLayer,
};
use smrseek_trace::binary::{MmapTrace, DEFAULT_BLOCK_RECORDS};
use smrseek_trace::{stream, TraceRecord};

/// Which translation layer to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LayerChoice {
    /// Conventional update-in-place (the paper's NoLS baseline).
    NoLs,
    /// Log-structured translation with optional mechanisms.
    Ls {
        /// Opportunistic defragmentation (§IV-A).
        defrag: Option<DefragConfig>,
        /// Look-ahead-behind prefetching (§IV-B).
        prefetch: Option<PrefetchConfig>,
        /// Selective caching (§IV-C).
        cache: Option<CacheConfig>,
    },
}

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The translation layer under test.
    pub layer: LayerChoice,
    /// Record every seek's signed distance (needed for Fig 4 CDFs;
    /// memory-heavy on large traces).
    pub record_distances: bool,
    /// Long-seek series bucket width in logical operations
    /// (0 disables the Fig 3 series).
    pub longseek_bucket_ops: u64,
    /// Track per-fragment access statistics (Fig 5 / Fig 10).
    pub track_fragments: bool,
    /// Model a host buffer cache of this many bytes in front of the
    /// translation layer (extension; §IV-C's competition argument): reads
    /// fully covered by recently-touched LBA ranges never reach the
    /// device, writes are write-through and populate the cache.
    pub host_cache_bytes: Option<u64>,
    /// Back the log with ZBC-style zones of this many sectors (guard-band
    /// splits; extension) instead of the paper's continuous infinite
    /// frontier. Ignored for the NoLS baseline.
    pub zone_sectors: Option<u64>,
    /// Drive the layer's mechanisms through the adaptive policy engine
    /// (`smrseek-policy`): per-region online heat classification gates
    /// defrag rewrites, scales the prefetch window, and admits or denies
    /// cache fills, per record. Requires a log-structured layer with at
    /// least one mechanism to gate (validated by the builder).
    pub policy: Option<PolicyConfig>,
    /// Back the selective cache with a simulated flash tier of this many
    /// bytes (`smrseek_cache::TieredCache`): RAM evictions demote, flash
    /// hits promote. Requires the selective cache (validated by the
    /// builder); the per-tier counters surface as
    /// [`RunReport::cache_tiers`].
    pub flash_cache_bytes: Option<u64>,
    /// Logical-space bound for streaming runs: one past the highest sector
    /// the trace touches. Log-structured layers place their write frontier
    /// at the first 1 MiB boundary at or above this (§III). Required by
    /// [`Simulation::run`] for LS layers — an iterator cannot be scanned
    /// for its maximum LBA up front; [`Simulation::run_trace`] derives it
    /// from the trace when unset. Ignored for the NoLS baseline.
    pub frontier_hint: Option<u64>,
    /// Emit an engine checkpoint every this many records (fed to the
    /// sink set by [`Simulation::checkpoint_sink`]; `None` disables
    /// emission). Purely
    /// operational — it cannot change any report — so
    /// [`canonical`](Self::canonical) clears it and it never affects cache
    /// keys.
    pub checkpoint_every: Option<u64>,
}

impl SimConfig {
    /// The NoLS baseline.
    pub fn no_ls() -> Self {
        SimConfig {
            layer: LayerChoice::NoLs,
            record_distances: false,
            longseek_bucket_ops: 0,
            track_fragments: false,
            host_cache_bytes: None,
            zone_sectors: None,
            policy: None,
            flash_cache_bytes: None,
            frontier_hint: None,
            checkpoint_every: None,
        }
    }

    /// Plain log-structured translation.
    pub fn log_structured() -> Self {
        SimConfig {
            layer: LayerChoice::Ls {
                defrag: None,
                prefetch: None,
                cache: None,
            },
            record_distances: false,
            longseek_bucket_ops: 0,
            track_fragments: false,
            host_cache_bytes: None,
            zone_sectors: None,
            policy: None,
            flash_cache_bytes: None,
            frontier_hint: None,
            checkpoint_every: None,
        }
    }

    /// Log-structured + opportunistic defragmentation (paper defaults).
    pub fn ls_defrag() -> Self {
        Self::ls_with(Some(DefragConfig::default()), None, None)
    }

    /// Log-structured + look-ahead-behind prefetching (paper defaults).
    pub fn ls_prefetch() -> Self {
        Self::ls_with(None, Some(PrefetchConfig::default()), None)
    }

    /// Log-structured + 64 MB selective caching (paper defaults).
    pub fn ls_cache() -> Self {
        Self::ls_with(None, None, Some(CacheConfig::default()))
    }

    /// Log-structured with an arbitrary mechanism combination.
    pub fn ls_with(
        defrag: Option<DefragConfig>,
        prefetch: Option<PrefetchConfig>,
        cache: Option<CacheConfig>,
    ) -> Self {
        SimConfig {
            layer: LayerChoice::Ls {
                defrag,
                prefetch,
                cache,
            },
            record_distances: false,
            longseek_bucket_ops: 0,
            track_fragments: false,
            host_cache_bytes: None,
            zone_sectors: None,
            policy: None,
            flash_cache_bytes: None,
            frontier_hint: None,
            checkpoint_every: None,
        }
    }

    /// The adaptive configuration: all three mechanisms at paper defaults,
    /// gated per region by the policy engine, with a 256 MiB flash tier
    /// behind the 64 MB selective cache.
    pub fn ls_adaptive() -> Self {
        Self::ls_with(
            Some(DefragConfig::default()),
            Some(PrefetchConfig::default()),
            Some(CacheConfig::default()),
        )
        .with_policy(PolicyConfig::default())
        .with_flash_cache(256 * 1024 * 1024)
    }

    /// Drives the layer's mechanisms through the adaptive policy engine.
    pub fn with_policy(mut self, policy: PolicyConfig) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Backs the selective cache with a flash tier of `bytes` bytes.
    pub fn with_flash_cache(mut self, bytes: u64) -> Self {
        self.flash_cache_bytes = Some(bytes);
        self
    }

    /// Enables seek-distance recording.
    pub fn with_distances(mut self) -> Self {
        self.record_distances = true;
        self
    }

    /// Enables the long-seek series with the given bucket width.
    pub fn with_longseek_series(mut self, bucket_ops: u64) -> Self {
        self.longseek_bucket_ops = bucket_ops;
        self
    }

    /// Enables fragment tracking.
    pub fn with_fragment_tracking(mut self) -> Self {
        self.track_fragments = true;
        self
    }

    /// Interposes a host buffer cache of `bytes` bytes.
    pub fn with_host_cache(mut self, bytes: u64) -> Self {
        self.host_cache_bytes = Some(bytes);
        self
    }

    /// Backs the log with zones of `sectors` sectors.
    pub fn with_zones(mut self, sectors: u64) -> Self {
        self.zone_sectors = Some(sectors);
        self
    }

    /// Declares the logical-space bound (`top` = one past the highest
    /// sector the trace touches), letting [`Simulation::run`] place the
    /// write frontier without scanning the trace.
    pub fn with_frontier_hint(mut self, top: u64) -> Self {
        self.frontier_hint = Some(top);
        self
    }

    /// Emits an engine checkpoint every `n_records` records when the run
    /// has a [`Simulation::checkpoint_sink`]. Operational only:
    /// the emitted snapshots change no report and no cache key.
    pub fn with_checkpoint_every(mut self, n_records: u64) -> Self {
        self.checkpoint_every = Some(n_records);
        self
    }

    /// The standard five-layer sweep replayed by `smrseek simulate` and by
    /// daemon sweep jobs: the NoLS baseline first (so downstream SAF
    /// computation can divide by it), then plain LS and the three
    /// single-mechanism variants at paper defaults.
    pub fn standard_sweep() -> [SimConfig; 5] {
        [
            SimConfig::no_ls(),
            SimConfig::log_structured(),
            SimConfig::ls_defrag(),
            SimConfig::ls_prefetch(),
            SimConfig::ls_cache(),
        ]
    }

    /// Canonical form for result-cache keying: two configs that cannot
    /// produce different [`RunReport`]s on the same trace map to the same
    /// canonical value, and any canonical difference is observable in some
    /// report.
    ///
    /// * The NoLS baseline ignores every log-structured knob
    ///   (`zone_sectors`, `frontier_hint`, `track_fragments`), so they are
    ///   cleared.
    /// * For LS layers an unset frontier hint is resolved against `top`
    ///   (one past the trace's highest sector) when known: a run that
    ///   derives the hint from the trace equals one that passes the same
    ///   bound explicitly.
    ///
    /// Knobs that change report *content* (`record_distances`,
    /// `longseek_bucket_ops`, `host_cache_bytes`) are kept verbatim.
    pub fn canonical(mut self, top: Option<u64>) -> Self {
        match self.layer {
            LayerChoice::NoLs => {
                self.zone_sectors = None;
                self.frontier_hint = None;
                self.track_fragments = false;
                self.policy = None;
                self.flash_cache_bytes = None;
            }
            LayerChoice::Ls { .. } => {
                if self.frontier_hint.is_none() {
                    self.frontier_hint = top;
                }
            }
        }
        // Checkpoint cadence never changes a report: two runs differing only
        // in `checkpoint_every` are interchangeable, so they share a key.
        self.checkpoint_every = None;
        self
    }

    /// A stable cache-key fragment: the [`canonical`](Self::canonical)
    /// form serialized as compact JSON. Equal keys imply byte-identical
    /// reports on the same trace; differing keys imply an observable
    /// config difference.
    pub fn cache_key(&self, top: Option<u64>) -> String {
        serde_json::to_string(&self.canonical(top)).expect("SimConfig always serializes")
    }

    /// A validating builder over `layer`: the same knobs as the `with_*`
    /// methods, but degenerate values (zero-byte caches, a zero checkpoint
    /// cadence, zero-sector zones) surface as a typed [`ConfigError`] at
    /// [`build`](SimConfigBuilder::build) time instead of panicking or
    /// being silently clamped mid-run.
    pub fn builder(layer: LayerChoice) -> SimConfigBuilder {
        SimConfigBuilder {
            config: SimConfig {
                layer,
                ..SimConfig::no_ls()
            },
            longseek_bucket_ops: None,
        }
    }
}

/// Why a [`SimConfigBuilder`] refused to produce a [`SimConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A host buffer cache of zero bytes can never hold a range: every
    /// lookup would miss, which is the same as no cache — almost certainly
    /// a unit mistake (bytes vs KiB/MiB) at the call site.
    ZeroHostCache,
    /// The selective cache ([`CacheConfig`]) was given zero capacity.
    ZeroSelectiveCache,
    /// Zones of zero sectors cannot hold any write.
    ZeroZoneSectors,
    /// A checkpoint cadence of zero records would either checkpoint after
    /// every record or never, depending on interpretation; the engine used
    /// to silently disable it — now it is rejected up front.
    ZeroCheckpointCadence,
    /// A long-seek series with zero operations per bucket has no time
    /// axis ([`LongSeekSeries::new`] panics on it mid-run otherwise).
    ZeroLongseekBucket,
    /// Zoned logging was requested for the NoLS baseline, which keeps no
    /// log — the knob would be silently ignored.
    ZonesWithoutLs,
    /// The policy classifier was given zero-sector regions: every sector
    /// would be its own region boundary division by zero.
    ZeroPolicyRegion,
    /// An adaptive policy was requested for the NoLS baseline, which has
    /// no mechanisms to gate.
    PolicyWithoutLs,
    /// An adaptive policy was requested for a log-structured layer with no
    /// mechanisms enabled: every gate decision would be a no-op, silently.
    PolicyWithoutMechanisms,
    /// The flash tier was given zero capacity.
    ZeroFlashCache,
    /// A flash tier was requested without the selective cache it backs.
    FlashCacheWithoutSelectiveCache,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            ConfigError::ZeroHostCache => "host cache capacity must be at least one byte",
            ConfigError::ZeroSelectiveCache => "selective cache capacity must be at least one byte",
            ConfigError::ZeroZoneSectors => "zones must span at least one sector",
            ConfigError::ZeroCheckpointCadence => "checkpoint cadence must be at least one record",
            ConfigError::ZeroLongseekBucket => {
                "long-seek series buckets must span at least one operation"
            }
            ConfigError::ZonesWithoutLs => "the NoLS baseline keeps no log to zone",
            ConfigError::ZeroPolicyRegion => "policy regions must span at least one sector",
            ConfigError::PolicyWithoutLs => "the NoLS baseline has no mechanisms for a policy to gate",
            ConfigError::PolicyWithoutMechanisms => {
                "an adaptive policy needs at least one mechanism (defrag, prefetch, or cache) to gate"
            }
            ConfigError::ZeroFlashCache => "flash tier capacity must be at least one byte",
            ConfigError::FlashCacheWithoutSelectiveCache => {
                "a flash tier backs the selective cache; enable the cache too"
            }
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ConfigError {}

/// Typed construction of a [`SimConfig`] that validates at build time.
///
/// # Example
///
/// ```
/// use smrseek_sim::{ConfigError, LayerChoice, SimConfig};
///
/// let config = SimConfig::builder(LayerChoice::NoLs)
///     .distances()
///     .longseek_series(1000)
///     .build()
///     .unwrap();
/// assert!(config.record_distances);
///
/// let err = SimConfig::builder(LayerChoice::NoLs)
///     .host_cache(0)
///     .build()
///     .unwrap_err();
/// assert_eq!(err, ConfigError::ZeroHostCache);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
    /// Kept apart from the config because `longseek_bucket_ops: 0` is the
    /// *disabled* default there: only an explicit zero is an error.
    longseek_bucket_ops: Option<u64>,
}

impl SimConfigBuilder {
    /// Enables seek-distance recording.
    pub fn distances(mut self) -> Self {
        self.config.record_distances = true;
        self
    }

    /// Enables the long-seek series with the given bucket width.
    pub fn longseek_series(mut self, bucket_ops: u64) -> Self {
        self.longseek_bucket_ops = Some(bucket_ops);
        self
    }

    /// Enables fragment tracking.
    pub fn fragment_tracking(mut self) -> Self {
        self.config.track_fragments = true;
        self
    }

    /// Interposes a host buffer cache of `bytes` bytes.
    pub fn host_cache(mut self, bytes: u64) -> Self {
        self.config.host_cache_bytes = Some(bytes);
        self
    }

    /// Backs the log with zones of `sectors` sectors.
    pub fn zones(mut self, sectors: u64) -> Self {
        self.config.zone_sectors = Some(sectors);
        self
    }

    /// Declares the logical-space bound (see
    /// [`SimConfig::with_frontier_hint`]).
    pub fn frontier_hint(mut self, top: u64) -> Self {
        self.config.frontier_hint = Some(top);
        self
    }

    /// Emits an engine checkpoint every `n_records` records.
    pub fn checkpoint_every(mut self, n_records: u64) -> Self {
        self.config.checkpoint_every = Some(n_records);
        self
    }

    /// Drives the layer's mechanisms through the adaptive policy engine.
    pub fn policy(mut self, policy: PolicyConfig) -> Self {
        self.config.policy = Some(policy);
        self
    }

    /// Backs the selective cache with a flash tier of `bytes` bytes.
    pub fn flash_cache(mut self, bytes: u64) -> Self {
        self.config.flash_cache_bytes = Some(bytes);
        self
    }

    /// Validates the accumulated knobs and produces the config.
    ///
    /// # Errors
    ///
    /// A [`ConfigError`] naming the first degenerate knob found; see the
    /// variants for what each rejects.
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        let mut config = self.config;
        if config.host_cache_bytes == Some(0) {
            return Err(ConfigError::ZeroHostCache);
        }
        if config.zone_sectors == Some(0) {
            return Err(ConfigError::ZeroZoneSectors);
        }
        if config.checkpoint_every == Some(0) {
            return Err(ConfigError::ZeroCheckpointCadence);
        }
        if let Some(bucket_ops) = self.longseek_bucket_ops {
            if bucket_ops == 0 {
                return Err(ConfigError::ZeroLongseekBucket);
            }
            config.longseek_bucket_ops = bucket_ops;
        }
        if let LayerChoice::Ls { cache, .. } = config.layer {
            if cache.is_some_and(|cc| cc.capacity_bytes == 0) {
                return Err(ConfigError::ZeroSelectiveCache);
            }
        }
        if matches!(config.layer, LayerChoice::NoLs) && config.zone_sectors.is_some() {
            return Err(ConfigError::ZonesWithoutLs);
        }
        if config.flash_cache_bytes == Some(0) {
            return Err(ConfigError::ZeroFlashCache);
        }
        if let Some(policy) = config.policy {
            if policy.region_sectors == 0 {
                return Err(ConfigError::ZeroPolicyRegion);
            }
        }
        match config.layer {
            LayerChoice::NoLs => {
                if config.policy.is_some() {
                    return Err(ConfigError::PolicyWithoutLs);
                }
                if config.flash_cache_bytes.is_some() {
                    return Err(ConfigError::FlashCacheWithoutSelectiveCache);
                }
            }
            LayerChoice::Ls {
                defrag,
                prefetch,
                cache,
            } => {
                // Without a mechanism every gate decision is a no-op; worse,
                // a gated prepass could not mirror the full run's classifier
                // evidence exactly. Rejected rather than silently inert.
                if config.policy.is_some()
                    && defrag.is_none()
                    && prefetch.is_none()
                    && cache.is_none()
                {
                    return Err(ConfigError::PolicyWithoutMechanisms);
                }
                if config.flash_cache_bytes.is_some() && cache.is_none() {
                    return Err(ConfigError::FlashCacheWithoutSelectiveCache);
                }
            }
        }
        Ok(config)
    }
}

/// How a run was actually executed with respect to intra-trace sharding.
///
/// `--shards N` is a request, not a guarantee: a handful of shapes (a
/// one-record trace, an active checkpoint sink) still force serial
/// execution. When that happens the engine warns once per process and
/// records the reason here, so no sweep cell can degrade silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardOutcome {
    /// Serial execution; sharding was never requested.
    Serial,
    /// The record stream was split across shard workers.
    Sharded {
        /// Worker count actually used (the request clamped to the record
        /// count).
        shards: usize,
    },
    /// Sharding was requested but the run fell back to serial.
    SerialFallback {
        /// Why the run could not shard.
        reason: &'static str,
    },
}

impl ShardOutcome {
    /// The degradation reason, when sharding was requested but refused.
    pub fn fallback_reason(&self) -> Option<&'static str> {
        match self {
            ShardOutcome::SerialFallback { reason } => Some(reason),
            _ => None,
        }
    }
}

impl std::fmt::Display for ShardOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardOutcome::Serial => f.write_str("serial"),
            ShardOutcome::Sharded { shards } => write!(f, "sharded({shards})"),
            ShardOutcome::SerialFallback { reason } => write!(f, "serial ({reason})"),
        }
    }
}

/// One-shot (per process) stderr warning for a requested-but-refused
/// shard split; every affected report still records its own reason.
static FALLBACK_WARNED: AtomicBool = AtomicBool::new(false);

fn warn_serial_fallback(reason: &'static str) {
    if !FALLBACK_WARNED.swap(true, Ordering::Relaxed) {
        smrseek_obs::warn!("sharding requested but running serial: {reason} (warned once)");
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Layer name ("NoLS", "LS", "LS+cache", ...).
    pub layer_name: String,
    /// Logical operations replayed.
    pub logical_ops: u64,
    /// Seek statistics at the medium.
    pub seeks: SeekStats,
    /// Signed seek distances (when enabled).
    pub distances: Option<Vec<i64>>,
    /// Long-seek series (when enabled).
    pub longseek_series: Option<LongSeekSeries>,
    /// Total sectors moved by physical operations (for time weighting).
    pub phys_sectors: u64,
    /// Logical reads absorbed by the modeled host buffer cache.
    pub host_cache_hits: u64,
    /// Layer-internal counters (log-structured layers only).
    pub ls_stats: Option<LsStats>,
    /// Fragment statistics (when tracked; log-structured layers only).
    pub fragments: Option<FragmentAccessTracker>,
    /// Largest extent-map segment count observed during the run (0 for
    /// NoLS, which keeps no map) — the run's dominant memory term.
    pub peak_extent_segments: u64,
    /// Adaptive-policy decision and flip counters, when the run was driven
    /// by a [`SimConfig::with_policy`] engine.
    pub policy: Option<PolicyStats>,
    /// Per-tier cache hit/promotion/demotion counters, when the selective
    /// cache had a flash tier ([`SimConfig::with_flash_cache`]).
    pub cache_tiers: Option<TierStats>,
    /// Engine phase accounting (where simulation wall time went). All
    /// zeros unless [`smrseek_obs::set_phase_accounting`] was on when the
    /// run started. A timing side channel like `RunMetrics`: deliberately
    /// excluded from the hand-written [`Serialize`] impl below, because
    /// serialized reports must stay byte-deterministic across machines,
    /// thread counts, and resume points.
    pub phases: PhaseTotals,
    /// How the run actually executed ([`ShardOutcome`]). Execution shape,
    /// not simulation result: excluded from the hand-written [`Serialize`]
    /// impl below for the same reason as `phases` — serialized reports are
    /// byte-identical across shard counts by contract.
    pub sharding: ShardOutcome,
}

/// Hand-written (the vendored `serde_derive` has no `#[serde(skip)]`):
/// reproduces exactly what the derive emitted for every field except
/// `phases` and `sharding`, which are execution-shape noise and must not
/// reach serialized reports. The adaptive fields (`policy`, `cache_tiers`)
/// are appended only when present, so reports from policy-free runs stay
/// byte-identical to those from before the fields existed.
impl Serialize for RunReport {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            (String::from("layer_name"), self.layer_name.to_value()),
            (String::from("logical_ops"), self.logical_ops.to_value()),
            (String::from("seeks"), self.seeks.to_value()),
            (String::from("distances"), self.distances.to_value()),
            (
                String::from("longseek_series"),
                self.longseek_series.to_value(),
            ),
            (String::from("phys_sectors"), self.phys_sectors.to_value()),
            (
                String::from("host_cache_hits"),
                self.host_cache_hits.to_value(),
            ),
            (String::from("ls_stats"), self.ls_stats.to_value()),
            (String::from("fragments"), self.fragments.to_value()),
            (
                String::from("peak_extent_segments"),
                self.peak_extent_segments.to_value(),
            ),
        ];
        if self.policy.is_some() {
            fields.push((String::from("policy"), self.policy.to_value()));
        }
        if self.cache_tiers.is_some() {
            fields.push((String::from("cache_tiers"), self.cache_tiers.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl RunReport {
    /// Builds a distance CDF from the recorded distances, or `None` when
    /// the run was not configured with
    /// [`SimConfig::with_distances`](SimConfig::with_distances).
    pub fn distance_cdf(&self) -> Option<Cdf> {
        self.distances.as_deref().map(Cdf::from_slice)
    }
}

/// The concrete layers the engine can drive (static dispatch keeps the hot
/// loop monomorphic and lets the engine extract layer-specific results
/// after the run).
enum LayerImpl {
    NoLs(NoLs),
    Ls(Box<LogStructured>),
}

impl LayerImpl {
    fn apply(&mut self, rec: &TraceRecord) -> Vec<smrseek_disk::PhysIo> {
        match self {
            LayerImpl::NoLs(l) => l.apply(rec),
            LayerImpl::Ls(l) => l.apply(rec),
        }
    }

    fn name(&self) -> &str {
        match self {
            LayerImpl::NoLs(l) => l.name(),
            LayerImpl::Ls(l) => l.name(),
        }
    }
}

/// Serializable state of the translation layer inside an
/// [`EngineSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerSnapshot {
    /// The NoLS baseline carries no state.
    NoLs,
    /// Full log-structured layer state (boxed: it dwarfs the other
    /// variant).
    Ls(Box<LsSnapshot>),
}

/// Complete engine state after consuming some prefix of a trace: restoring
/// it and replaying the remaining records yields a [`RunReport`] identical
/// to the uninterrupted run. Produced by a [`Simulation::checkpoint_sink`],
/// consumed by [`Simulation::resume_from`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Translation-layer state (extent map, frontier, caches, counters).
    pub layer: LayerSnapshot,
    /// Seek-model state (head position, statistics, recorded distances).
    pub counter: SeekCounterState,
    /// Long-seek series accumulated so far (when enabled).
    pub longseek_series: Option<LongSeekSeries>,
    /// Host buffer-cache contents (when modeled).
    pub host_cache: Option<RangeCache>,
    /// Logical reads absorbed by the host cache so far.
    pub host_cache_hits: u64,
    /// Physical sectors moved so far.
    pub phys_sectors: u64,
    /// Records consumed so far — the resume index: replay continues with
    /// record `logical_ops` of the original trace.
    pub logical_ops: u64,
    /// Largest extent-map segment count observed so far.
    pub peak_extent_segments: u64,
    /// Adaptive policy engine state (region classifier + counters), when
    /// the run is policy-driven.
    pub policy: Option<PolicyEngine>,
}

/// Live engine state: the deconstructed body of the historical
/// `simulate_stream` loop, split so a run can be started fresh, started
/// from a snapshot, stepped, checkpointed mid-flight, and finished into a
/// [`RunReport`] — all through the same code path, which is what makes
/// resumed runs byte-identical to uninterrupted ones.
struct EngineState {
    config: SimConfig,
    layer: LayerImpl,
    counter: SeekCounter,
    series: Option<LongSeekSeries>,
    host_cache: Option<RangeCache>,
    host_cache_hits: u64,
    phys_sectors: u64,
    logical_ops: u64,
    peak_extent_segments: u64,
    /// The adaptive policy engine, when configured: consulted before every
    /// record that reaches the layer, fed fragmented-read evidence after.
    policy: Option<PolicyEngine>,
    /// Sampled from [`phase_accounting`] once at construction so a run's
    /// behavior cannot change mid-flight; when false, `step` pays a single
    /// branch and no clock reads.
    timing: bool,
    phases: PhaseTotals,
}

/// The [`LsConfig`] a fresh run of `config` builds its layer from.
///
/// # Panics
///
/// Panics when `config` is log-structured without a frontier hint (see the
/// message; [`Simulation::run_trace`] derives the hint before calling).
fn ls_config_for(config: &SimConfig) -> Option<LsConfig> {
    match config.layer {
        LayerChoice::NoLs => None,
        LayerChoice::Ls {
            defrag,
            prefetch,
            cache,
        } => {
            let top = config.frontier_hint.expect(
                "Simulation::run needs SimConfig::with_frontier_hint for log-structured \
                 layers: a stream cannot be pre-scanned for its highest LBA (use \
                 Simulation::run_trace for random-access traces, or pass the bound from a \
                 header or a first pass)",
            );
            let mut ls_config = LsConfig::above_sector(top);
            ls_config.defrag = defrag;
            ls_config.prefetch = prefetch;
            ls_config.cache = cache;
            ls_config.flash_cache_bytes = config.flash_cache_bytes;
            ls_config.track_fragments = config.track_fragments;
            ls_config.zone_sectors = config.zone_sectors;
            Some(ls_config)
        }
    }
}

impl EngineState {
    fn new(config: &SimConfig) -> Self {
        let layer = match ls_config_for(config) {
            None => LayerImpl::NoLs(NoLs::new()),
            Some(ls_config) => LayerImpl::Ls(Box::new(LogStructured::new(ls_config))),
        };
        let counter = if config.record_distances {
            SeekCounter::with_distances()
        } else {
            SeekCounter::new()
        };
        let series = (config.longseek_bucket_ops > 0)
            .then(|| LongSeekSeries::new(config.longseek_bucket_ops));
        // The host cache is indexed by *logical* sector; `RangeCache` is
        // address-space agnostic, so LBA sectors are passed as its keys.
        let host_cache = config
            .host_cache_bytes
            .map(smrseek_cache::RangeCache::with_capacity_bytes);
        // Policy without LS is rejected by the builder; tolerated here by
        // simply never constructing the engine.
        let policy = match config.layer {
            LayerChoice::Ls { .. } => config.policy.map(|p| fresh_policy(p, config)),
            LayerChoice::NoLs => None,
        };
        EngineState {
            config: *config,
            layer,
            counter,
            series,
            host_cache,
            host_cache_hits: 0,
            phys_sectors: 0,
            logical_ops: 0,
            peak_extent_segments: 0,
            policy,
            timing: phase_accounting(),
            phases: PhaseTotals::default(),
        }
    }

    fn resume(config: &SimConfig, snap: &EngineSnapshot) -> Self {
        let layer = match (&snap.layer, config.layer) {
            (LayerSnapshot::NoLs, LayerChoice::NoLs) => LayerImpl::NoLs(NoLs::new()),
            (LayerSnapshot::Ls(ls), LayerChoice::Ls { .. }) => {
                LayerImpl::Ls(Box::new(LogStructured::from_snapshot((**ls).clone())))
            }
            _ => panic!(
                "snapshot layer does not match the config's layer — validate the snapshot's \
                 config key against SimConfig::cache_key before resuming"
            ),
        };
        EngineState {
            config: *config,
            layer,
            counter: SeekCounter::from_state(snap.counter.clone()),
            series: snap.longseek_series.clone(),
            host_cache: snap.host_cache.clone(),
            host_cache_hits: snap.host_cache_hits,
            phys_sectors: snap.phys_sectors,
            logical_ops: snap.logical_ops,
            peak_extent_segments: snap.peak_extent_segments,
            policy: snap.policy.clone(),
            timing: phase_accounting(),
            // Snapshots carry no timing (it is wall-clock noise, not
            // simulation state): a resumed run accounts only for the
            // records it replays itself.
            phases: PhaseTotals::default(),
        }
    }

    /// Replays one record. Behaviorally identical with phase accounting on
    /// or off: timing wraps the same statements, it never reorders them.
    fn step(&mut self, rec: &TraceRecord) {
        #[cfg(feature = "fine-spans")]
        let _span = smrseek_obs::span("engine:step");
        let i = self.logical_ops;
        self.logical_ops += 1;
        let mut mark = self.timing.then(Instant::now);
        if let Some(cache) = &mut self.host_cache {
            let key = smrseek_trace::Pba::new(rec.lba.sector());
            let hit = rec.op.is_read() && cache.covers(key, u64::from(rec.sectors));
            if !hit {
                cache.insert(key, u64::from(rec.sectors));
            }
            if let Some(t) = &mut mark {
                self.phases.record(Phase::HostCache, t.elapsed());
                *t = Instant::now();
            }
            if hit {
                self.host_cache_hits += 1;
                return; // served from host RAM: nothing reaches the device
            }
        }
        let frag_before = match (&self.policy, &self.layer) {
            (Some(_), LayerImpl::Ls(ls)) => {
                let s = ls.stats();
                Some((s.fragmented_reads, s.phys_reads))
            }
            _ => None,
        };
        if let (Some(policy), LayerImpl::Ls(ls)) = (&mut self.policy, &mut self.layer) {
            let gates = policy.observe(rec.lba.sector(), rec.op.is_read());
            ls.set_gates(gates);
            if let Some(t) = &mut mark {
                self.phases.record(Phase::Classify, t.elapsed());
                *t = Instant::now();
            }
        }
        let ios = self.layer.apply(rec);
        if let Some(t) = &mut mark {
            self.phases.record(Phase::Lookup, t.elapsed());
            *t = Instant::now();
        }
        if let Some((frag, phys)) = frag_before {
            if let (Some(policy), LayerImpl::Ls(ls)) = (&mut self.policy, &self.layer) {
                let s = ls.stats();
                if s.fragmented_reads > frag {
                    // A fragmented read that paid disk I/O is hot evidence;
                    // one fully absorbed by the cache or prefetch buffer is
                    // evidence the cheaper mechanisms already cover this
                    // region, so defrag rewrites would be pure cost.
                    if s.phys_reads > phys {
                        policy.record_fragmented(rec.lba.sector());
                    } else {
                        policy.record_cache_absorbed(rec.lba.sector());
                    }
                }
            }
            if let Some(t) = &mut mark {
                self.phases.record(Phase::Classify, t.elapsed());
                *t = Instant::now();
            }
        }
        for io in ios {
            self.phys_sectors += io.sectors;
            if let Some(seek) = self.counter.observe(&io) {
                if let Some(series) = &mut self.series {
                    series.record(i, &seek);
                }
            }
        }
        if let LayerImpl::Ls(ls) = &self.layer {
            self.peak_extent_segments = self.peak_extent_segments.max(ls.map().len() as u64);
        }
        if let Some(t) = &mark {
            self.phases.record(Phase::Seek, t.elapsed());
        }
    }

    fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            layer: match &self.layer {
                LayerImpl::NoLs(_) => LayerSnapshot::NoLs,
                LayerImpl::Ls(ls) => LayerSnapshot::Ls(Box::new(ls.to_snapshot())),
            },
            counter: self.counter.to_state(),
            longseek_series: self.series.clone(),
            host_cache: self.host_cache.clone(),
            host_cache_hits: self.host_cache_hits,
            phys_sectors: self.phys_sectors,
            logical_ops: self.logical_ops,
            peak_extent_segments: self.peak_extent_segments,
            policy: self.policy.clone(),
        }
    }

    fn finish(self) -> RunReport {
        let layer_name = if self.policy.is_some() {
            // The mechanism mix is config-visible; what defines this run is
            // that the policy engine drove it.
            String::from("LS+adaptive")
        } else {
            self.layer.name().to_owned()
        };
        let (ls_stats, fragments, cache_tiers) = match self.layer {
            LayerImpl::NoLs(_) => (None, None, None),
            LayerImpl::Ls(ls) => (
                Some(ls.stats()),
                ls.fragment_tracker().cloned(),
                ls.tier_stats(),
            ),
        };
        RunReport {
            layer_name,
            logical_ops: self.logical_ops,
            phys_sectors: self.phys_sectors,
            host_cache_hits: self.host_cache_hits,
            seeks: self.counter.stats(),
            distances: self
                .config
                .record_distances
                .then(|| self.counter.into_distances()),
            longseek_series: self.series,
            ls_stats,
            fragments,
            peak_extent_segments: self.peak_extent_segments,
            policy: self.policy.map(|p| p.stats()),
            cache_tiers,
            phases: self.phases,
            sharding: ShardOutcome::Serial,
        }
    }
}

/// A trace the engine can replay with random access: sharded execution
/// needs the total record count (to split), any single record (to seed a
/// shard's head position from its overlap record), and batched sequential
/// access to an arbitrary record range. Implemented for in-memory slices
/// (zero-copy blocks) and for [`MmapTrace`] (block decode off the shared
/// mapping).
pub trait ShardableTrace: Sync {
    /// Number of records available to replay.
    fn num_records(&self) -> usize;

    /// Record `index` (random access; panics out of bounds).
    fn record(&self, index: usize) -> TraceRecord;

    /// The frontier bound derived from this trace — what an LS run uses
    /// when [`SimConfig::frontier_hint`] is unset. Each implementation
    /// preserves the derivation its pre-`Simulation` replay path used, so
    /// reports stay byte-identical across the API change.
    fn frontier_top(&self) -> u64;

    /// Streams records `[start, end)` to `f` as consecutive non-empty
    /// blocks whose concatenation is exactly that range.
    fn for_each_block(&self, start: usize, end: usize, f: &mut dyn FnMut(&[TraceRecord]));
}

impl ShardableTrace for [TraceRecord] {
    fn num_records(&self) -> usize {
        self.len()
    }

    fn record(&self, index: usize) -> TraceRecord {
        self[index]
    }

    /// Highest *starting* LBA plus one — the derivation the historical
    /// slice-based `simulate` used (via `stream::max_lba`), kept so
    /// derived frontiers land on the same sector.
    fn frontier_top(&self) -> u64 {
        stream::max_lba(self).map_or(0, |l| l.sector() + 1)
    }

    fn for_each_block(&self, start: usize, end: usize, f: &mut dyn FnMut(&[TraceRecord])) {
        for block in self[start..end].chunks(DEFAULT_BLOCK_RECORDS) {
            f(block);
        }
    }
}

impl ShardableTrace for Vec<TraceRecord> {
    fn num_records(&self) -> usize {
        self.len()
    }

    fn record(&self, index: usize) -> TraceRecord {
        self[index]
    }

    fn frontier_top(&self) -> u64 {
        self.as_slice().frontier_top()
    }

    fn for_each_block(&self, start: usize, end: usize, f: &mut dyn FnMut(&[TraceRecord])) {
        self.as_slice().for_each_block(start, end, f);
    }
}

impl ShardableTrace for MmapTrace {
    fn num_records(&self) -> usize {
        self.len()
    }

    fn record(&self, index: usize) -> TraceRecord {
        self.get(index)
    }

    /// One past the highest sector any record touches — from the v2
    /// header when present, exactly the hint mmap-backed replay always
    /// passed explicitly.
    fn frontier_top(&self) -> u64 {
        self.top_sector()
    }

    fn for_each_block(&self, start: usize, end: usize, f: &mut dyn FnMut(&[TraceRecord])) {
        let mut blocks = self.blocks_range(start, end, DEFAULT_BLOCK_RECORDS);
        while let Some(block) = blocks.next_block() {
            f(block);
        }
    }
}

/// One configured simulation run: the single entry point that replaces the
/// historical `simulate` / `simulate_stream` / `simulate_stream_from` /
/// `simulate_stream_checkpointed` family.
///
/// Build one with [`Simulation::new`], optionally chain
/// [`resume_from`](Self::resume_from) (replay continues from a snapshot),
/// [`checkpoint_every`](Self::checkpoint_every) (emit snapshots on a
/// cadence), and [`shards`](Self::shards) (split the record stream across
/// worker threads), then consume records with [`run`](Self::run) (any
/// iterator, strictly serial) or [`run_trace`](Self::run_trace)
/// (random-access traces, shardable). Whatever the combination, the
/// serialized [`RunReport`] is byte-identical to the plain serial run.
///
/// # Example
///
/// ```
/// use smrseek_sim::{SimConfig, Simulation};
/// use smrseek_workloads::profiles;
///
/// let trace = profiles::by_name("mds_0").unwrap().generate_scaled(1, 4000);
/// let nols = Simulation::new(&SimConfig::no_ls()).shards(4).run_trace(&trace);
/// let ls = Simulation::new(&SimConfig::log_structured()).run_trace(&trace);
/// // mds_0 is write-intensive: log-structuring removes most seeks.
/// assert!(ls.seeks.total() < nols.seeks.total());
/// ```
pub struct Simulation<'a> {
    config: SimConfig,
    resume_from: Option<&'a EngineSnapshot>,
    sink: Option<SnapshotSink<'a>>,
    shards: usize,
    prepass_store: Option<(&'a CheckpointStore, u128)>,
}

/// Boxed checkpoint consumer installed by [`Simulation::checkpoint_sink`].
type SnapshotSink<'a> = Box<dyn FnMut(&EngineSnapshot) + 'a>;

impl<'a> Simulation<'a> {
    /// A simulation of `config` (copied; later chained knobs act on the
    /// copy).
    pub fn new(config: &SimConfig) -> Simulation<'a> {
        Simulation {
            config: *config,
            resume_from: None,
            sink: None,
            shards: 1,
            prepass_store: None,
        }
    }

    /// Resumes from `snapshot`: the subsequent [`run`](Self::run) /
    /// [`run_trace`](Self::run_trace) must be given the *remaining*
    /// records — those from index [`EngineSnapshot::logical_ops`] onward
    /// of the original trace — and produces a [`RunReport`]
    /// byte-identical (as JSON) to the uninterrupted run over the whole
    /// trace.
    pub fn resume_from(mut self, snapshot: &'a EngineSnapshot) -> Self {
        self.resume_from = Some(snapshot);
        self
    }

    /// Emits an [`EngineSnapshot`] to `sink` after every `n_records`-th
    /// consumed record, at absolute record indices counted over the whole
    /// trace (a resumed run keeps the original cadence). Overrides any
    /// cadence already on the config. An active sink forces serial
    /// execution: snapshots capture total engine state at a record
    /// boundary, which a half-merged sharded run does not have.
    pub fn checkpoint_every(
        mut self,
        n_records: u64,
        sink: impl FnMut(&EngineSnapshot) + 'a,
    ) -> Self {
        self.config.checkpoint_every = Some(n_records);
        self.sink = Some(Box::new(sink));
        self
    }

    /// Like [`checkpoint_every`](Self::checkpoint_every), but keeps the
    /// cadence already configured via [`SimConfig::with_checkpoint_every`]
    /// (no emission when the config sets none).
    pub fn checkpoint_sink(mut self, sink: impl FnMut(&EngineSnapshot) + 'a) -> Self {
        self.sink = Some(Box::new(sink));
        self
    }

    /// Requests the record stream be split across `k` worker threads in
    /// [`run_trace`](Self::run_trace) (clamped to at least 1; ignored by
    /// the strictly-serial [`run`](Self::run)). Every sweep configuration
    /// shards exactly: history-free NoLS replay is seeded directly from
    /// its one-record overlap, and everything else (log-structured layers,
    /// host caches) replays from boundary state checkpoints captured by a
    /// transition-only prepass. The few shapes that still force serial
    /// execution (a one-record trace, an active checkpoint sink) warn once
    /// and record the reason in [`RunReport::sharding`] — a shard request
    /// is always safe, never silent.
    pub fn shards(mut self, k: usize) -> Self {
        self.shards = k.max(1);
        self
    }

    /// Persists (and reuses) the sharding prepass's boundary checkpoints
    /// in `store`, keyed by (`trace_digest` × canonical config key ×
    /// shard-split geometry). A later sharded run of the same work loads
    /// its seeds instead of serially replaying the prefix; a file that is
    /// missing, damaged, or from different work degrades to a fresh
    /// prepass — never to wrong state (the boundary cross-check still runs
    /// against every loaded seed). Ignored by resumed runs, whose seeds
    /// also depend on the resume snapshot.
    pub fn prepass_store(mut self, store: &'a CheckpointStore, trace_digest: u128) -> Self {
        self.prepass_store = Some((store, trace_digest));
        self
    }

    /// Whether this run would actually execute sharded on `trace`.
    pub fn is_sharded(&self, trace: &(impl ShardableTrace + ?Sized)) -> bool {
        self.shards > 1 && self.shard_refusal(trace.num_records()).is_none()
    }

    /// Why a requested shard split cannot run, or `None` when it can.
    /// Only two shapes refuse: a trace too short to split, and an active
    /// checkpoint sink (snapshots capture total engine state at a record
    /// boundary, which a half-merged sharded run does not have).
    fn shard_refusal(&self, records: usize) -> Option<&'static str> {
        if records < 2 {
            return Some("trace has fewer than two records");
        }
        if self.sink.is_some() && self.config.checkpoint_every.is_some_and(|n| n > 0) {
            return Some("an active checkpoint sink requires serial replay");
        }
        None
    }

    /// Replays a stream of records through the configured layer, feeding
    /// every physical operation to the seek model. Consumes the records
    /// one at a time and never materializes the trace, so memory stays
    /// bounded by the layer's own state regardless of trace length.
    /// Strictly serial — a bare iterator offers no random access to split
    /// on; use [`run_trace`](Self::run_trace) for sharded replay.
    ///
    /// # Panics
    ///
    /// Log-structured layers place their write frontier just above the
    /// trace's highest LBA (§III), which a stream cannot reveal up front:
    /// running an LS layer requires [`SimConfig::with_frontier_hint`] and
    /// panics without it ([`run_trace`](Self::run_trace) derives it).
    /// Also panics when resuming from a snapshot whose layer kind does
    /// not match the config's.
    pub fn run<I>(mut self, records: I) -> RunReport
    where
        I: IntoIterator<Item = TraceRecord>,
    {
        let outcome = if self.shards > 1 {
            let reason = "record streams have no random access to split across shards";
            warn_serial_fallback(reason);
            ShardOutcome::SerialFallback { reason }
        } else {
            ShardOutcome::Serial
        };
        let mut state = match self.resume_from {
            Some(snap) => EngineState::resume(&self.config, snap),
            None => EngineState::new(&self.config),
        };
        let every = self.config.checkpoint_every.filter(|&n| n > 0);
        let timing = state.timing;
        let mut records = records.into_iter();
        loop {
            // Pulling the next record is where trace parse / mmap-read
            // cost lives, so it is accounted as the ingest phase.
            let mark = timing.then(Instant::now);
            let Some(rec) = records.next() else { break };
            if let Some(t) = mark {
                state.phases.record(Phase::Ingest, t.elapsed());
            }
            state.step(&rec);
            if let Some(n) = every {
                if state.logical_ops % n == 0 {
                    let mark = timing.then(Instant::now);
                    let snap = state.snapshot();
                    if let Some(sink) = &mut self.sink {
                        sink(&snap);
                    }
                    if let Some(t) = mark {
                        state.phases.record(Phase::Checkpoint, t.elapsed());
                    }
                }
            }
        }
        let mut report = state.finish();
        report.sharding = outcome;
        report
    }

    /// Replays a random-access trace: derives the LS frontier hint from
    /// the trace when the config leaves it unset, ingests in decoded
    /// blocks rather than record-at-a-time, and — when
    /// [`shards`](Self::shards) requested it and the configuration is
    /// exactly shardable (see [`is_sharded`](Self::is_sharded)) — splits
    /// the record range across worker threads and merges the per-shard
    /// statistics. Serialized reports are byte-identical to
    /// [`run`](Self::run) over the same records in every case.
    pub fn run_trace<T>(mut self, trace: &T) -> RunReport
    where
        T: ShardableTrace + ?Sized,
    {
        if matches!(self.config.layer, LayerChoice::Ls { .. })
            && self.config.frontier_hint.is_none()
        {
            self.config.frontier_hint = Some(trace.frontier_top());
        }
        let outcome = if self.shards > 1 {
            match self.shard_refusal(trace.num_records()) {
                None => return self.run_sharded(trace),
                Some(reason) => {
                    warn_serial_fallback(reason);
                    ShardOutcome::SerialFallback { reason }
                }
            }
        } else {
            ShardOutcome::Serial
        };
        let mut state = match self.resume_from {
            Some(snap) => EngineState::resume(&self.config, snap),
            None => EngineState::new(&self.config),
        };
        let every = self.config.checkpoint_every.filter(|&n| n > 0);
        let mut sink = self.sink;
        let n = trace.num_records();
        run_range(&mut state, trace, 0, n, &mut |state| {
            if let Some(n) = every {
                if state.logical_ops % n == 0 {
                    let mark = state.timing.then(Instant::now);
                    let snap = state.snapshot();
                    if let Some(sink) = &mut sink {
                        sink(&snap);
                    }
                    if let Some(t) = mark {
                        state.phases.record(Phase::Checkpoint, t.elapsed());
                    }
                }
            }
        });
        let mut report = state.finish();
        report.sharding = outcome;
        report
    }

    /// The sharded executor. Preconditions (`is_sharded`): at least 2
    /// records, no active checkpoint sink.
    ///
    /// Each shard replays a contiguous record range `[s, e)` from exact
    /// boundary state:
    ///
    /// * **Direct seeding** — NoLS without a host cache translates 1:1 and
    ///   statelessly, so the only cross-record state is the head position,
    ///   which after record `s-1` is exactly that record's end sector.
    ///   Shard workers start their seek counter there with zeroed
    ///   statistics; no prepass is needed.
    /// * **Boundary checkpoints** (LFS-style checkpoint regions) — every
    ///   other configuration carries history (extent map, caches, defrag
    ///   queues). A serial transition-only prepass replays just the
    ///   behaviour-relevant state ([`LogStructured::apply_transition`]: no
    ///   seek accounting, no I/O materialization, fragment tracking off)
    ///   and captures a normalized [`EngineSnapshot`] plus an
    ///   [`ExtentMapCheckpoint`] fingerprint at each interior boundary;
    ///   shard `k` then resumes from boundary `k`'s snapshot.
    ///
    /// Per-shard reports merge associatively back into the serial result:
    /// counts add, distances and fragment records concatenate in shard
    /// order, and the long-seek series — bucketed by *absolute* logical
    /// index — sums bucket-wise. As a cross-check, each shard's end state
    /// must agree with the next boundary's prepass checkpoint (head
    /// position, map fingerprint, host-cache contents; full behavioural
    /// state in debug builds, where divergence asserts). A mismatch is
    /// expected never; if one is ever detected in release builds the run
    /// falls back to a full serial replay rather than returning a wrong
    /// report.
    fn run_sharded<T>(self, trace: &T) -> RunReport
    where
        T: ShardableTrace + ?Sized,
    {
        let n = trace.num_records();
        let shards = self.shards.min(n);
        // A resumed run replays the remaining records only; seed indices
        // stay absolute so series buckets and op indices line up.
        let base_logical = self.resume_from.map_or(0, |s| s.logical_ops);
        let base_head_ops = self.resume_from.map_or(0, |s| s.counter.head_ops_seen);
        let bounds: Vec<usize> = (0..=shards).map(|i| i * n / shards).collect();
        let config = self.config;
        let resume_from = self.resume_from;
        // NoLS without a host cache is history-free: seed directly.
        let direct = matches!(config.layer, LayerChoice::NoLs) && config.host_cache_bytes.is_none();
        let prepass_store = self.prepass_store.filter(|_| resume_from.is_none());
        let seeds: Vec<BoundarySeed> = if direct {
            Vec::new()
        } else if let Some(seeds) = prepass_store
            .and_then(|(store, digest)| load_prepass_seeds(store, digest, &config, &bounds))
        {
            seeds
        } else {
            let seeds = prepass_seeds(&config, resume_from, trace, &bounds);
            if let Some((store, digest)) = prepass_store {
                for (seed, &bound) in seeds.iter().zip(&bounds[1..]) {
                    // Save failures are non-fatal: a stored seed is an
                    // optimization, the fresh prepass's result stands.
                    store
                        .save(digest, &prepass_key(&config, shards, bound), &seed.snapshot)
                        .ok();
                }
            }
            seeds
        };
        let ranges: Vec<(usize, usize, usize)> = bounds
            .windows(2)
            .enumerate()
            .map(|(k, w)| (k, w[0], w[1]))
            .collect();
        let workers = NonZeroUsize::new(shards).expect("is_sharded implies shards >= 2");
        let results = crate::runner::parallel_map(&ranges, workers, |&(k, start, end)| {
            let mut state = if start == 0 {
                match resume_from {
                    Some(snap) => EngineState::resume(&config, snap),
                    None => EngineState::new(&config),
                }
            } else if direct {
                let mut state = EngineState::new(&config);
                let overlap = trace.record(start - 1);
                state.counter = SeekCounter::from_state(SeekCounterState {
                    head_position: overlap.end().sector(),
                    head_ops_seen: base_head_ops + start as u64,
                    stats: SeekStats::default(),
                    record_distances: config.record_distances,
                    distances: Vec::new(),
                });
                state.logical_ops = base_logical + start as u64;
                state
            } else {
                EngineState::resume(&config, &seeds[k - 1].snapshot)
            };
            run_range(&mut state, trace, start, end, &mut |_| {});
            let end_state = (!direct && end < n).then(|| ShardEnd::capture(&state));
            (state.finish(), end_state)
        });
        // Cross-check every interior boundary before trusting the merge:
        // shard k must have ended in exactly the state the prepass seeded
        // shard k+1 from.
        for (k, seed) in seeds.iter().enumerate() {
            let end = results[k]
                .1
                .as_ref()
                .expect("checkpoint-path shards capture their end state");
            if !end.matches_seed(seed, &config) {
                let reason = "shard boundary state diverged from the prepass";
                debug_assert!(false, "{reason}");
                warn_serial_fallback(reason);
                let mut state = match resume_from {
                    Some(snap) => EngineState::resume(&config, snap),
                    None => EngineState::new(&config),
                };
                run_range(&mut state, trace, 0, n, &mut |_| {});
                let mut report = state.finish();
                report.sharding = ShardOutcome::SerialFallback { reason };
                return report;
            }
        }
        let mut reports = results.into_iter().map(|(report, _)| report);
        let mut merged = reports.next().expect("at least one shard ran");
        for shard in reports {
            merged.seeks.merge(&shard.seeks);
            if let (Some(all), Some(part)) = (&mut merged.distances, &shard.distances) {
                all.extend_from_slice(part);
            }
            if let (Some(all), Some(part)) = (&mut merged.longseek_series, &shard.longseek_series) {
                all.merge(part);
            }
            if let (Some(all), Some(part)) = (&mut merged.ls_stats, &shard.ls_stats) {
                all.merge(part);
            }
            if let (Some(all), Some(part)) = (&mut merged.fragments, &shard.fragments) {
                all.merge(part);
            }
            if let (Some(all), Some(part)) = (&mut merged.policy, &shard.policy) {
                all.merge(part);
            }
            if let (Some(all), Some(part)) = (&mut merged.cache_tiers, &shard.cache_tiers) {
                all.merge(part);
            }
            merged.phys_sectors += shard.phys_sectors;
            merged.host_cache_hits += shard.host_cache_hits;
            merged.logical_ops = merged.logical_ops.max(shard.logical_ops);
            merged.peak_extent_segments =
                merged.peak_extent_segments.max(shard.peak_extent_segments);
            merged.phases.merge(&shard.phases);
        }
        merged.sharding = ShardOutcome::Sharded { shards };
        merged
    }
}

/// One interior shard boundary produced by the transition prepass: the
/// normalized engine state the next shard resumes from, plus the
/// extent-map fingerprint used to cross-check the previous shard's end
/// state.
///
/// Normalization is what makes checkpoint-seeded shards mergeable: the
/// *behavioural* state (map, frontier, caches, defrag bookkeeping, head
/// position, host-cache contents) is exact, while every *accounting*
/// accumulator (seek stats, distances, series, layer counters, fragment
/// records, hit/sector/peak totals) restarts from zero so the per-shard
/// partial sums concatenate back into the serial totals.
struct BoundarySeed {
    snapshot: EngineSnapshot,
    map_check: Option<ExtentMapCheckpoint>,
}

/// A shard worker's state at its final record boundary, captured for the
/// prepass cross-check.
struct ShardEnd {
    head_position: u64,
    layer: LayerSnapshot,
    host_cache: Option<RangeCache>,
    map_check: Option<ExtentMapCheckpoint>,
    /// Policy engine with stats normalized away (stats are per-shard
    /// accounting; the classifier state is what must agree).
    policy: Option<PolicyEngine>,
}

impl ShardEnd {
    fn capture(state: &EngineState) -> Self {
        let (layer, map_check) = match &state.layer {
            LayerImpl::NoLs(_) => (LayerSnapshot::NoLs, None),
            LayerImpl::Ls(ls) => (
                LayerSnapshot::Ls(Box::new(ls.to_snapshot())),
                Some(ExtentMapCheckpoint::capture(ls.map())),
            ),
        };
        let policy = state.policy.clone().map(|mut p| {
            p.reset_stats();
            p
        });
        ShardEnd {
            head_position: state.counter.to_state().head_position,
            layer,
            host_cache: state.host_cache.clone(),
            map_check,
            policy,
        }
    }

    /// Whether this shard's end state agrees with the seed the prepass
    /// captured for the next shard. Release builds compare the head
    /// position, the extent-map fingerprint, and the host-cache contents;
    /// debug builds additionally assert full behavioural-state equality.
    fn matches_seed(&self, seed: &BoundarySeed, config: &SimConfig) -> bool {
        debug_assert_eq!(
            normalize_layer(self.layer.clone(), config.track_fragments),
            seed.snapshot.layer,
            "prepass layer state diverged from full replay"
        );
        self.head_position == seed.snapshot.counter.head_position
            && self.map_check == seed.map_check
            && self.host_cache == seed.snapshot.host_cache
            // Classifier state steers future gating but need not show in
            // the map fingerprint (e.g. a denied cache fill), so it is
            // compared outright even in release builds.
            && self.policy == seed.snapshot.policy
    }
}

/// Strips the accounting fields a [`BoundarySeed`] normalizes away, so a
/// replayed layer state can be compared against a prepass-captured one.
fn normalize_layer(mut snap: LayerSnapshot, track_fragments: bool) -> LayerSnapshot {
    if let LayerSnapshot::Ls(ls) = &mut snap {
        ls.stats = LsStats::default();
        ls.tracker = track_fragments.then(FragmentAccessTracker::new);
        if let Some(cache) = &mut ls.cache {
            cache.reset_stats();
        }
    }
    snap
}

/// Trace records serially consumed by sharding prepasses, process-wide.
static PREPASS_RECORDS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread share of [`PREPASS_RECORDS`]. A prepass always runs on
    /// the thread that invoked `run_trace`, so this isolates one caller's
    /// prepass work from concurrent runs on other threads.
    static PREPASS_RECORDS_THREAD: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Total trace records serially replayed by sharding prepasses since
/// process start. Persisted boundary checkpoints
/// ([`Simulation::prepass_store`]) exist to keep this flat on repeat runs
/// of the same work.
pub fn prepass_records_total() -> u64 {
    PREPASS_RECORDS.load(Ordering::Relaxed)
}

/// Like [`prepass_records_total`], but counting only prepasses run by the
/// calling thread — hermetic under concurrent simulations, which is what
/// tests assert on.
pub fn prepass_records_on_thread() -> u64 {
    PREPASS_RECORDS_THREAD.with(|c| c.get())
}

/// Store key for the prepass boundary checkpoint at record `bound` of a
/// `shards`-way split: the canonical config key (the frontier hint was
/// already resolved by `run_trace`) extended with the split geometry so
/// different shard counts never collide.
/// Constructs a policy engine for a fresh (non-resumed) run, informing it
/// whether the layer carries a selective cache — with one downstream, the
/// policy reserves defrag rewrites entirely (cache fills mitigate the same
/// fragmented reads at zero media cost; see
/// [`PolicyEngine::set_cache_present`]).
fn fresh_policy(config: PolicyConfig, sim: &SimConfig) -> PolicyEngine {
    let mut engine = PolicyEngine::new(config);
    engine.set_cache_present(matches!(sim.layer, LayerChoice::Ls { cache: Some(_), .. }));
    engine
}

fn prepass_key(config: &SimConfig, shards: usize, bound: usize) -> String {
    format!("{}|prepass:{shards}:{bound}", config.cache_key(None))
}

/// Loads every interior boundary seed of a `bounds` split from `store`, or
/// `None` when any is missing or unusable — a damaged or foreign cache
/// degrades to a fresh prepass, never to wrong state. The extent-map
/// fingerprint is recomputed from the loaded layer state, so the
/// shard-end cross-check holds exactly as for a fresh prepass.
fn load_prepass_seeds(
    store: &CheckpointStore,
    trace_digest: u128,
    config: &SimConfig,
    bounds: &[usize],
) -> Option<Vec<BoundarySeed>> {
    let shards = bounds.len() - 1;
    let interior = &bounds[1..bounds.len() - 1];
    let mut seeds = Vec::with_capacity(interior.len());
    for &bound in interior {
        let snap = store
            .load(trace_digest, &prepass_key(config, shards, bound))
            .ok()
            .flatten()?;
        if snap.logical_ops != bound as u64 {
            return None;
        }
        let map_check = match &snap.layer {
            LayerSnapshot::NoLs => None,
            LayerSnapshot::Ls(ls) => Some(ExtentMapCheckpoint::capture(&ls.map)),
        };
        seeds.push(BoundarySeed {
            snapshot: snap,
            map_check,
        });
    }
    Some(seeds)
}

/// The serial transition-only prepass behind checkpoint-seeded sharding:
/// replays records `[0, bounds[shards-1])` through the behaviour-relevant
/// state only — extent-map transitions via
/// [`LogStructured::apply_transition`], the host-cache covers/insert
/// mirror of [`EngineState::step`], and the head position — and captures a
/// [`BoundarySeed`] at each interior boundary `bounds[1..shards]`.
///
/// Fragment tracking is disabled on the prepass layer (its records would
/// grow without bound and are normalized away at every boundary anyway);
/// captured snapshots reinstate the run's `track_fragments` flag with a
/// fresh tracker so shard layers restore correctly.
fn prepass_seeds<T>(
    config: &SimConfig,
    resume_from: Option<&EngineSnapshot>,
    trace: &T,
    bounds: &[usize],
) -> Vec<BoundarySeed>
where
    T: ShardableTrace + ?Sized,
{
    let base_logical = resume_from.map_or(0, |s| s.logical_ops);
    let mut layer: Option<Box<LogStructured>> = match resume_from {
        Some(snap) => match &snap.layer {
            LayerSnapshot::NoLs => None,
            LayerSnapshot::Ls(ls) => {
                let mut s = (**ls).clone();
                s.tracker = None;
                s.config.track_fragments = false;
                Some(Box::new(LogStructured::from_snapshot(s)))
            }
        },
        None => ls_config_for(config).map(|mut ls_config| {
            ls_config.track_fragments = false;
            Box::new(LogStructured::new(ls_config))
        }),
    };
    let mut host_cache = match resume_from {
        Some(snap) => snap.host_cache.clone(),
        None => config.host_cache_bytes.map(RangeCache::with_capacity_bytes),
    };
    // The gates steer layer behaviour, so the prepass must run the same
    // classifier over the same evidence. Policy configs always carry a
    // mechanism (builder-validated), which keeps `apply_transition` on its
    // full `apply_into` path — `fragmented_reads` advances exactly as in
    // the real run, so the classifier sees identical evidence.
    let mut policy: Option<PolicyEngine> = match resume_from {
        Some(snap) => snap.policy.clone(),
        None => match config.layer {
            LayerChoice::Ls { .. } => config.policy.map(|p| fresh_policy(p, config)),
            LayerChoice::NoLs => None,
        },
    };
    let mut head = match resume_from {
        Some(snap) => snap.counter.head_position,
        None => SeekCounter::new().to_state().head_position,
    };
    let interior = &bounds[1..bounds.len() - 1];
    let mut seeds = Vec::with_capacity(interior.len());
    let mut prev = bounds[0];
    for &bound in interior {
        trace.for_each_block(prev, bound, &mut |block| {
            for rec in block {
                if let Some(cache) = &mut host_cache {
                    let key = smrseek_trace::Pba::new(rec.lba.sector());
                    let hit = rec.op.is_read() && cache.covers(key, u64::from(rec.sectors));
                    if !hit {
                        cache.insert(key, u64::from(rec.sectors));
                    }
                    if hit {
                        // Served from host RAM: nothing reaches the layer
                        // or the disk head.
                        continue;
                    }
                }
                match &mut layer {
                    // NoLS emits exactly one identity I/O per record.
                    None => head = rec.lba.sector() + u64::from(rec.sectors),
                    Some(ls) => {
                        let frag_before = policy.as_ref().map(|_| {
                            let s = ls.stats();
                            (s.fragmented_reads, s.phys_reads)
                        });
                        if let Some(policy) = &mut policy {
                            ls.set_gates(policy.observe(rec.lba.sector(), rec.op.is_read()));
                        }
                        if let Some(end) = ls.apply_transition(rec) {
                            head = end;
                        }
                        if let (Some(policy), Some((frag, phys))) = (&mut policy, frag_before) {
                            // Mirrors `step`'s feedback exactly: disk-paying
                            // fragmented reads are hot evidence, absorbed
                            // ones count against defrag.
                            let s = ls.stats();
                            if s.fragmented_reads > frag {
                                if s.phys_reads > phys {
                                    policy.record_fragmented(rec.lba.sector());
                                } else {
                                    policy.record_cache_absorbed(rec.lba.sector());
                                }
                            }
                        }
                    }
                }
            }
        });
        prev = bound;
        seeds.push(capture_seed(
            config,
            layer.as_deref(),
            &host_cache,
            policy.as_ref(),
            head,
            base_logical + bound as u64,
        ));
    }
    let consumed = (prev - bounds[0]) as u64;
    PREPASS_RECORDS.fetch_add(consumed, Ordering::Relaxed);
    PREPASS_RECORDS_THREAD.with(|c| c.set(c.get() + consumed));
    seeds
}

/// Freezes the prepass state at one boundary into a [`BoundarySeed`] (see
/// there for the normalization contract).
fn capture_seed(
    config: &SimConfig,
    layer: Option<&LogStructured>,
    host_cache: &Option<RangeCache>,
    policy: Option<&PolicyEngine>,
    head: u64,
    logical_ops: u64,
) -> BoundarySeed {
    let (layer_snap, map_check) = match layer {
        None => (LayerSnapshot::NoLs, None),
        Some(ls) => {
            let mut snap = ls.to_snapshot();
            snap.stats = LsStats::default();
            snap.config.track_fragments = config.track_fragments;
            snap.tracker = config.track_fragments.then(FragmentAccessTracker::new);
            if let Some(cache) = &mut snap.cache {
                // Tier counters are per-shard accounting, like `LsStats`:
                // contents carry across the boundary, counts restart.
                cache.reset_stats();
            }
            (
                LayerSnapshot::Ls(Box::new(snap)),
                Some(ExtentMapCheckpoint::capture(ls.map())),
            )
        }
    };
    BoundarySeed {
        snapshot: EngineSnapshot {
            layer: layer_snap,
            counter: SeekCounterState {
                head_position: head,
                // `Seek::op_index` never reaches a RunReport, so shard
                // counters restart their op numbering — the absolute
                // numbering lives in `logical_ops`.
                head_ops_seen: 0,
                stats: SeekStats::default(),
                record_distances: config.record_distances,
                distances: Vec::new(),
            },
            longseek_series: (config.longseek_bucket_ops > 0)
                .then(|| LongSeekSeries::new(config.longseek_bucket_ops)),
            host_cache: host_cache.clone(),
            host_cache_hits: 0,
            phys_sectors: 0,
            logical_ops,
            peak_extent_segments: 0,
            // Same normalization as the tier counters: classifier state is
            // behavioural and carries over, decision counts restart.
            policy: policy.cloned().map(|mut p| {
                p.reset_stats();
                p
            }),
        },
        map_check,
    }
}

/// Replays records `[start, end)` of `trace` through `state` block by
/// block, calling `after_step` after every record (checkpoint cadence
/// hook; a no-op closure for shard workers). Block decode time is
/// accounted to the ingest phase — once per block, which is the point of
/// batching.
fn run_range<T>(
    state: &mut EngineState,
    trace: &T,
    start: usize,
    end: usize,
    after_step: &mut dyn FnMut(&mut EngineState),
) where
    T: ShardableTrace + ?Sized,
{
    let timing = state.timing;
    let mut last = timing.then(Instant::now);
    trace.for_each_block(start, end, &mut |block| {
        if let Some(t) = &mut last {
            state.phases.record(Phase::Ingest, t.elapsed());
        }
        for rec in block {
            state.step(rec);
            after_step(state);
        }
        if let Some(t) = &mut last {
            *t = Instant::now();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use smrseek_trace::Lba;

    fn toy_trace() -> Vec<TraceRecord> {
        vec![
            TraceRecord::write(0, Lba::new(0), 8),
            TraceRecord::write(1, Lba::new(1000), 8),
            TraceRecord::read(2, Lba::new(0), 8),
        ]
    }

    #[test]
    fn nols_counts_trace_seeks() {
        let report = Simulation::new(&SimConfig::no_ls()).run_trace(&toy_trace());
        assert_eq!(report.layer_name, "NoLS");
        assert_eq!(report.logical_ops, 3);
        // write@0 (no seek from rest at 0), write@1000 (seek), read@0 (seek)
        assert_eq!(report.seeks.write_seeks, 1);
        assert_eq!(report.seeks.read_seeks, 1);
    }

    #[test]
    fn ls_removes_write_seeks() {
        let report = Simulation::new(&SimConfig::log_structured()).run_trace(&toy_trace());
        // Both writes land contiguously at the frontier: one frontier seek.
        assert_eq!(report.seeks.write_seeks, 1);
    }

    #[test]
    fn distances_recorded_when_enabled() {
        let report = Simulation::new(&SimConfig::no_ls().with_distances()).run_trace(&toy_trace());
        let cdf = report.distance_cdf().expect("distances were recorded");
        assert_eq!(cdf.len() as u64, report.seeks.total());
        assert!(
            report.distances.is_some(),
            "building the CDF must not consume the recorded samples"
        );
        let report = Simulation::new(&SimConfig::no_ls()).run_trace(&toy_trace());
        assert!(report.distances.is_none());
    }

    #[test]
    fn distance_cdf_is_none_without_recording() {
        assert!(Simulation::new(&SimConfig::no_ls())
            .run_trace(&toy_trace())
            .distance_cdf()
            .is_none());
    }

    #[test]
    fn stream_matches_slice_for_every_layer() {
        let trace = toy_trace();
        let top = smrseek_trace::stream::max_lba(&trace).map_or(0, |l| l.sector() + 1);
        for config in [
            SimConfig::no_ls(),
            SimConfig::log_structured(),
            SimConfig::ls_defrag(),
            SimConfig::ls_prefetch(),
            SimConfig::ls_cache(),
        ] {
            let slice = Simulation::new(&config.with_distances()).run_trace(&trace);
            let stream = Simulation::new(&config.with_distances().with_frontier_hint(top))
                .run(trace.iter().copied());
            assert_eq!(slice.layer_name, stream.layer_name);
            assert_eq!(slice.seeks, stream.seeks);
            assert_eq!(slice.distances, stream.distances);
            assert_eq!(slice.phys_sectors, stream.phys_sectors);
            assert_eq!(slice.logical_ops, stream.logical_ops);
            assert_eq!(slice.peak_extent_segments, stream.peak_extent_segments);
        }
    }

    #[test]
    fn stream_replays_generated_records_without_materializing() {
        // A generator-backed iterator: no Vec of records ever exists.
        let n: u64 = if cfg!(debug_assertions) {
            200_000
        } else {
            10_000_000
        };
        let records = (0..n).map(|i| TraceRecord::write(i, Lba::new((i % 1024) * 8), 8));
        let report = Simulation::new(&SimConfig::no_ls()).run(records);
        assert_eq!(report.logical_ops, n);
        assert_eq!(report.peak_extent_segments, 0);
    }

    #[test]
    fn streaming_ls_tracks_peak_extent_size() {
        let report = Simulation::new(&SimConfig::log_structured()).run_trace(&toy_trace());
        assert!(report.peak_extent_segments > 0);
    }

    #[test]
    #[should_panic(expected = "frontier_hint")]
    fn streaming_ls_requires_frontier_hint() {
        Simulation::new(&SimConfig::log_structured()).run(toy_trace());
    }

    #[test]
    fn longseek_series_when_enabled() {
        let trace = vec![
            TraceRecord::write(0, Lba::new(0), 8),
            TraceRecord::read(1, Lba::new(10_000_000), 8),
        ];
        let report = Simulation::new(&SimConfig::no_ls().with_longseek_series(1)).run_trace(&trace);
        let series = report.longseek_series.unwrap();
        assert_eq!(series.total(), 1);
        assert_eq!(series.buckets(), &[0, 1]);
    }

    #[test]
    fn canonical_clears_unobservable_knobs() {
        // NoLS: every LS-only knob is cleared, whatever its value.
        let noisy = SimConfig {
            zone_sectors: Some(1 << 20),
            frontier_hint: Some(999),
            track_fragments: true,
            ..SimConfig::no_ls()
        };
        assert_eq!(noisy.canonical(Some(42)), SimConfig::no_ls());
        assert_eq!(
            noisy.cache_key(Some(42)),
            SimConfig::no_ls().cache_key(None),
            "derived-vs-explicit NoLS configs share a cache key"
        );

        // LS: an unset hint resolves to the trace bound, so deriving the
        // frontier equals passing it explicitly.
        let derived = SimConfig::log_structured();
        let explicit = SimConfig::log_structured().with_frontier_hint(1008);
        assert_eq!(
            derived.canonical(Some(1008)),
            explicit.canonical(Some(1008))
        );
        assert_eq!(derived.cache_key(Some(1008)), explicit.cache_key(None));
        // ...but a *different* explicit hint stays a different key.
        let other = SimConfig::log_structured().with_frontier_hint(2048);
        assert_ne!(derived.cache_key(Some(1008)), other.cache_key(Some(1008)));
    }

    #[test]
    fn canonical_keeps_report_shaping_knobs() {
        let config = SimConfig::ls_cache()
            .with_distances()
            .with_longseek_series(64)
            .with_host_cache(1 << 20);
        let canon = config.canonical(Some(100));
        assert!(canon.record_distances);
        assert_eq!(canon.longseek_bucket_ops, 64);
        assert_eq!(canon.host_cache_bytes, Some(1 << 20));
        assert_ne!(
            config.cache_key(Some(100)),
            SimConfig::ls_cache().cache_key(Some(100))
        );
    }

    #[test]
    fn standard_sweep_leads_with_baseline() {
        let sweep = SimConfig::standard_sweep();
        assert_eq!(sweep.len(), 5);
        assert!(matches!(sweep[0].layer, LayerChoice::NoLs));
        for config in &sweep[1..] {
            assert!(matches!(config.layer, LayerChoice::Ls { .. }));
        }
    }

    #[test]
    fn config_constructors() {
        assert!(matches!(SimConfig::no_ls().layer, LayerChoice::NoLs));
        for (config, has_defrag, has_prefetch, has_cache) in [
            (SimConfig::log_structured(), false, false, false),
            (SimConfig::ls_defrag(), true, false, false),
            (SimConfig::ls_prefetch(), false, true, false),
            (SimConfig::ls_cache(), false, false, true),
        ] {
            match config.layer {
                LayerChoice::Ls {
                    defrag,
                    prefetch,
                    cache,
                } => {
                    assert_eq!(defrag.is_some(), has_defrag);
                    assert_eq!(prefetch.is_some(), has_prefetch);
                    assert_eq!(cache.is_some(), has_cache);
                }
                LayerChoice::NoLs => panic!("expected LS"),
            }
        }
    }

    #[test]
    fn builder_matches_with_chain() {
        let built = SimConfig::builder(LayerChoice::NoLs)
            .distances()
            .longseek_series(64)
            .host_cache(1 << 20)
            .checkpoint_every(50)
            .build()
            .expect("valid config");
        let chained = SimConfig::no_ls()
            .with_distances()
            .with_longseek_series(64)
            .with_host_cache(1 << 20)
            .with_checkpoint_every(50);
        assert_eq!(built, chained);

        let built = SimConfig::builder(SimConfig::ls_cache().layer)
            .fragment_tracking()
            .zones(512)
            .frontier_hint(4096)
            .build()
            .expect("valid config");
        let chained = SimConfig::ls_cache()
            .with_fragment_tracking()
            .with_zones(512)
            .with_frontier_hint(4096);
        assert_eq!(built, chained);
    }

    #[test]
    fn builder_rejects_degenerate_knobs() {
        let nols = || SimConfig::builder(LayerChoice::NoLs);
        assert_eq!(
            nols().host_cache(0).build(),
            Err(ConfigError::ZeroHostCache)
        );
        assert_eq!(
            nols().checkpoint_every(0).build(),
            Err(ConfigError::ZeroCheckpointCadence)
        );
        assert_eq!(
            nols().longseek_series(0).build(),
            Err(ConfigError::ZeroLongseekBucket)
        );
        assert_eq!(nols().zones(512).build(), Err(ConfigError::ZonesWithoutLs));
        assert_eq!(
            SimConfig::builder(SimConfig::log_structured().layer)
                .zones(0)
                .build(),
            Err(ConfigError::ZeroZoneSectors)
        );
        let empty_cache = CacheConfig {
            capacity_bytes: 0,
            ..CacheConfig::default()
        };
        assert_eq!(
            SimConfig::builder(SimConfig::ls_with(None, None, Some(empty_cache)).layer).build(),
            Err(ConfigError::ZeroSelectiveCache)
        );
        assert_eq!(
            SimConfig::builder(SimConfig::ls_cache().layer)
                .flash_cache(0)
                .build(),
            Err(ConfigError::ZeroFlashCache)
        );
        assert_eq!(
            SimConfig::builder(SimConfig::ls_cache().layer)
                .policy(PolicyConfig {
                    region_sectors: 0,
                    ..PolicyConfig::default()
                })
                .build(),
            Err(ConfigError::ZeroPolicyRegion)
        );
        assert_eq!(
            nols().policy(PolicyConfig::default()).build(),
            Err(ConfigError::PolicyWithoutLs)
        );
        assert_eq!(
            nols().flash_cache(1 << 20).build(),
            Err(ConfigError::FlashCacheWithoutSelectiveCache)
        );
        // A policy over a bare log has nothing to gate.
        assert_eq!(
            SimConfig::builder(SimConfig::log_structured().layer)
                .policy(PolicyConfig::default())
                .build(),
            Err(ConfigError::PolicyWithoutMechanisms)
        );
        // A flash tier needs the selective cache in front of it.
        assert_eq!(
            SimConfig::builder(SimConfig::ls_defrag().layer)
                .flash_cache(1 << 20)
                .build(),
            Err(ConfigError::FlashCacheWithoutSelectiveCache)
        );
        // Errors render as actionable prose.
        assert!(ConfigError::ZeroHostCache
            .to_string()
            .contains("host cache"));
        assert!(ConfigError::PolicyWithoutMechanisms
            .to_string()
            .contains("mechanism"));
    }

    #[test]
    fn policy_off_report_bytes_are_pinned() {
        // Reports without a policy must keep exactly the pre-policy key
        // set, in order — downstream caches key on these bytes.
        let trace = busy_trace(120);
        let report = Simulation::new(&SimConfig::ls_cache()).run_trace(&trace);
        let json = serde_json::to_string(&report).expect("report serializes");
        assert!(!json.contains("\"policy\""));
        assert!(!json.contains("\"cache_tiers\""));
        let keys: Vec<&str> = json
            .match_indices('\"')
            .map(|(i, _)| i)
            .collect::<Vec<_>>()
            .chunks(2)
            .filter_map(|c| json.get(c[0] + 1..c[1]))
            .collect();
        for key in [
            "layer_name",
            "logical_ops",
            "seeks",
            "distances",
            "longseek_series",
            "phys_sectors",
            "host_cache_hits",
            "ls_stats",
            "fragments",
            "peak_extent_segments",
        ] {
            assert!(keys.contains(&key), "missing report key {key}");
        }
    }

    #[test]
    fn adaptive_report_carries_policy_and_tier_stats() {
        let trace = busy_trace(400);
        let report = Simulation::new(&adaptive_config()).run_trace(&trace);
        assert_eq!(report.layer_name, "LS+adaptive");
        let policy = report.policy.expect("adaptive run reports policy stats");
        assert_eq!(policy.records_observed, report.logical_ops);
        let tiers = report
            .cache_tiers
            .expect("flash-tier run reports tier stats");
        let json = serde_json::to_string(&report).expect("report serializes");
        assert!(json.contains("\"policy\""));
        assert!(json.contains("\"cache_tiers\""));
        // Both tiers are accounted: every lookup lands in exactly one bin.
        let lookups = tiers.ram_hits + tiers.flash_hits + tiers.misses;
        assert!(lookups > 0, "cache saw no traffic");
    }

    /// A mixed read/write workload long enough to exercise defrag,
    /// prefetch, caching, zones, and the host cache.
    fn busy_trace(n: u64) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| {
                let lba = Lba::new((i * 37) % 4096);
                if i % 3 == 0 {
                    TraceRecord::read(i, lba, 8)
                } else {
                    TraceRecord::write(i, lba, 16)
                }
            })
            .collect()
    }

    /// Adaptive config sized so `busy_trace` (LBAs 0..4096) spans several
    /// classifier regions and flips gates mid-run.
    fn adaptive_config() -> SimConfig {
        SimConfig::ls_adaptive().with_policy(PolicyConfig {
            region_sectors: 512,
            ..PolicyConfig::default()
        })
    }

    fn resume_configs() -> Vec<SimConfig> {
        let mut configs = SimConfig::standard_sweep().to_vec();
        configs.push(
            SimConfig::ls_defrag()
                .with_distances()
                .with_longseek_series(16)
                .with_fragment_tracking()
                .with_zones(512),
        );
        configs.push(SimConfig::log_structured().with_host_cache(64 * 512));
        configs.push(SimConfig::no_ls().with_distances().with_host_cache(8 * 512));
        configs.push(adaptive_config().with_fragment_tracking());
        configs
    }

    #[test]
    fn resume_is_byte_identical_to_uninterrupted_run() {
        let trace = busy_trace(240);
        let top = smrseek_trace::stream::max_lba(&trace).map_or(0, |l| l.sector() + 1);
        for config in resume_configs() {
            let config = config.with_frontier_hint(top);
            let whole = serde_json::to_string(&Simulation::new(&config).run(trace.iter().copied()))
                .expect("report serializes");
            for split in [0usize, 1, 100, 239, 240] {
                let mut state = EngineState::new(&config);
                for rec in &trace[..split] {
                    state.step(rec);
                }
                let snap = state.snapshot();
                assert_eq!(snap.logical_ops as usize, split);
                let resumed = Simulation::new(&config)
                    .resume_from(&snap)
                    .run(trace[split..].iter().copied());
                assert_eq!(
                    serde_json::to_string(&resumed).expect("report serializes"),
                    whole,
                    "resume at {split} diverged for {config:?}"
                );
            }
        }
    }

    #[test]
    fn snapshot_survives_serde_round_trip() {
        let trace = busy_trace(150);
        let top = smrseek_trace::stream::max_lba(&trace).map_or(0, |l| l.sector() + 1);
        for config in resume_configs() {
            let config = config.with_frontier_hint(top);
            let whole = serde_json::to_string(&Simulation::new(&config).run(trace.iter().copied()))
                .expect("report serializes");
            let mut state = EngineState::new(&config);
            for rec in &trace[..75] {
                state.step(rec);
            }
            let json = serde_json::to_string(&state.snapshot()).expect("snapshot serializes");
            let snap: EngineSnapshot = serde_json::from_str(&json).expect("snapshot deserializes");
            let resumed = Simulation::new(&config)
                .resume_from(&snap)
                .run(trace[75..].iter().copied());
            assert_eq!(
                serde_json::to_string(&resumed).expect("report serializes"),
                whole,
                "serde round-trip broke resume for {config:?}"
            );
        }
    }

    #[test]
    fn checkpoints_emitted_on_cadence() {
        let trace = busy_trace(35);
        let config = SimConfig::no_ls();
        let mut emitted = Vec::new();
        let report = Simulation::new(&config)
            .checkpoint_every(10, |snap: &EngineSnapshot| emitted.push(snap.logical_ops))
            .run(trace.iter().copied());
        assert_eq!(report.logical_ops, 35);
        assert_eq!(emitted, vec![10, 20, 30]);
    }

    #[test]
    fn run_trace_honors_checkpoint_cadence() {
        // The random-access path checkpoints on the same cadence as the
        // streaming path, and an active sink forces serial execution.
        let trace = busy_trace(35);
        let mut emitted = Vec::new();
        let report = Simulation::new(&SimConfig::no_ls())
            .checkpoint_every(10, |snap: &EngineSnapshot| emitted.push(snap.logical_ops))
            .shards(4)
            .run_trace(&trace);
        assert_eq!(report.logical_ops, 35);
        assert_eq!(emitted, vec![10, 20, 30]);
    }

    #[test]
    fn resumed_run_keeps_checkpoint_cadence() {
        // Resuming at 15 with every(10) must fire at absolute records
        // 20 and 30, not 25 and 35.
        let trace = busy_trace(35);
        let config = SimConfig::no_ls().with_checkpoint_every(10);
        let mut state = EngineState::new(&config);
        for rec in &trace[..15] {
            state.step(rec);
        }
        let snap = state.snapshot();
        let mut emitted = Vec::new();
        Simulation::new(&config)
            .resume_from(&snap)
            .checkpoint_sink(|s: &EngineSnapshot| emitted.push(s.logical_ops))
            .run(trace[15..].iter().copied());
        assert_eq!(emitted, vec![20, 30]);
    }

    #[test]
    #[should_panic(expected = "config key")]
    fn resume_with_mismatched_layer_panics() {
        let config = SimConfig::no_ls();
        let snap = EngineState::new(&config).snapshot();
        Simulation::new(&SimConfig::log_structured())
            .resume_from(&snap)
            .run(toy_trace());
    }

    #[test]
    fn canonical_clears_checkpoint_cadence() {
        let a = SimConfig::ls_cache().with_checkpoint_every(1000);
        let b = SimConfig::ls_cache();
        assert_eq!(a.canonical(Some(42)), b.canonical(Some(42)));
        assert_eq!(a.cache_key(Some(42)), b.cache_key(Some(42)));
    }

    #[test]
    fn sharding_predicate_accepts_every_sweep_config() {
        let trace = busy_trace(100);
        let sharded = |config: &SimConfig| Simulation::new(config).shards(4).is_sharded(&trace);
        for config in SimConfig::standard_sweep() {
            assert!(sharded(&config), "{config:?} must shard");
        }
        // History-dependent state now shards via boundary checkpoints.
        assert!(sharded(&SimConfig::log_structured()));
        assert!(sharded(&SimConfig::no_ls().with_host_cache(1 << 20)));
        assert!(sharded(
            &SimConfig::ls_defrag()
                .with_fragment_tracking()
                .with_zones(1 << 16)
        ));
        // An active checkpoint sink still forces serial replay...
        let sim = Simulation::new(&SimConfig::no_ls())
            .checkpoint_every(10, |_: &EngineSnapshot| {})
            .shards(4);
        assert!(!sim.is_sharded(&trace));
        // ...but a cadence with no sink shards fine (nobody observes it).
        let sim = Simulation::new(&SimConfig::no_ls().with_checkpoint_every(10)).shards(4);
        assert!(sim.is_sharded(&trace));
        // Degenerate shapes stay serial.
        assert!(!Simulation::new(&SimConfig::no_ls()).is_sharded(&trace));
        let single = busy_trace(1);
        assert!(!Simulation::new(&SimConfig::no_ls())
            .shards(4)
            .is_sharded(&single));
    }

    #[test]
    fn sharded_run_is_byte_identical_to_serial() {
        let trace = busy_trace(500);
        let configs = [
            SimConfig::no_ls(),
            SimConfig::no_ls().with_distances().with_longseek_series(64),
            SimConfig::log_structured().with_distances(),
            SimConfig::no_ls().with_host_cache(8 * 512),
            // The checkpoint-seeded paths, covering every layer mechanism.
            SimConfig::log_structured()
                .with_longseek_series(64)
                .with_host_cache(8 * 512),
            SimConfig::ls_defrag().with_fragment_tracking(),
            SimConfig::ls_prefetch().with_distances(),
            SimConfig::ls_cache()
                .with_fragment_tracking()
                .with_zones(1 << 12),
            adaptive_config(),
            adaptive_config()
                .with_fragment_tracking()
                .with_zones(1 << 12),
        ];
        for config in configs {
            let serial = serde_json::to_string(&Simulation::new(&config).run_trace(&trace))
                .expect("report serializes");
            for shards in [1usize, 2, 3, 7, 16, 500] {
                let sharded = serde_json::to_string(
                    &Simulation::new(&config).shards(shards).run_trace(&trace),
                )
                .expect("report serializes");
                assert_eq!(sharded, serial, "shards={shards} diverged for {config:?}");
            }
        }
    }

    #[test]
    fn persisted_prepass_seeds_skip_repeat_prepasses() {
        let trace = busy_trace(400);
        let dir =
            std::env::temp_dir().join(format!("smrseek_prepass_store_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = CheckpointStore::new(&dir);
        let digest = 0x5eed_u128;
        for config in [
            SimConfig::ls_defrag().with_host_cache(8 * 512),
            adaptive_config(),
        ] {
            let serial = serde_json::to_string(&Simulation::new(&config).run_trace(&trace))
                .expect("report serializes");
            let run = || {
                let before = prepass_records_on_thread();
                let report = Simulation::new(&config)
                    .shards(4)
                    .prepass_store(&store, digest)
                    .run_trace(&trace);
                (
                    serde_json::to_string(&report).expect("report serializes"),
                    prepass_records_on_thread() - before,
                )
            };
            let (cold, cold_records) = run();
            assert_eq!(cold_records, 300, "cold run replays up to the last bound");
            assert_eq!(cold, serial, "cold sharded run diverged for {config:?}");
            // Second run: every boundary seed loads, zero prepass records.
            let (warm, warm_records) = run();
            assert_eq!(warm_records, 0, "warm run must load every seed");
            assert_eq!(warm, serial, "warm sharded run diverged for {config:?}");
            // A different trace digest is different work: full prepass.
            let before = prepass_records_on_thread();
            Simulation::new(&config)
                .shards(4)
                .prepass_store(&store, digest + 1)
                .run_trace(&trace);
            assert_eq!(prepass_records_on_thread() - before, 300);
            // A different shard count keys differently: full prepass.
            let before = prepass_records_on_thread();
            Simulation::new(&config)
                .shards(5)
                .prepass_store(&store, digest)
                .run_trace(&trace);
            assert_eq!(prepass_records_on_thread() - before, 320);
        }
        // Damage degrades to a fresh prepass, never to wrong state.
        let config = SimConfig::ls_defrag().with_host_cache(8 * 512);
        for entry in std::fs::read_dir(&dir).expect("store dir exists") {
            let path = entry.expect("dir entry").path();
            let mut bytes = std::fs::read(&path).expect("read seed");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
            std::fs::write(&path, &bytes).expect("write seed");
        }
        let before = prepass_records_on_thread();
        let report = Simulation::new(&config)
            .shards(4)
            .prepass_store(&store, digest)
            .run_trace(&trace);
        assert_eq!(prepass_records_on_thread() - before, 300);
        assert_eq!(
            serde_json::to_string(&report).expect("report serializes"),
            serde_json::to_string(&Simulation::new(&config).run_trace(&trace))
                .expect("report serializes"),
        );
        assert!(prepass_records_total() >= prepass_records_on_thread());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_resume_is_byte_identical_to_serial_resume() {
        let trace = busy_trace(300);
        let configs = [
            SimConfig::no_ls().with_distances().with_longseek_series(32),
            SimConfig::ls_defrag()
                .with_longseek_series(32)
                .with_fragment_tracking(),
            adaptive_config().with_longseek_series(32),
        ];
        for config in configs {
            let whole = serde_json::to_string(&Simulation::new(&config).run_trace(&trace))
                .expect("report serializes");
            for split in [1usize, 77, 299] {
                let mut state =
                    EngineState::new(&config.clone().with_frontier_hint(trace.frontier_top()));
                for rec in &trace[..split] {
                    state.step(rec);
                }
                let snap = state.snapshot();
                let resumed = Simulation::new(&config)
                    .resume_from(&snap)
                    .shards(5)
                    .run_trace(&trace[split..]);
                assert_eq!(
                    serde_json::to_string(&resumed).expect("report serializes"),
                    whole,
                    "sharded resume at {split} diverged for {config:?}"
                );
            }
        }
    }

    #[test]
    fn prepass_checkpoints_match_serial_map_state() {
        // The transition-only prepass must land on exactly the map (and
        // head, and host-cache) state a full serial replay reaches at each
        // shard boundary.
        let trace = busy_trace(240);
        let configs = [
            SimConfig::log_structured(),
            SimConfig::ls_defrag().with_host_cache(8 * 512),
            SimConfig::ls_prefetch(),
            SimConfig::ls_cache().with_fragment_tracking(),
            adaptive_config(),
        ];
        for config in configs {
            let config = config.with_frontier_hint(trace.frontier_top());
            let bounds: Vec<usize> = (0..=4).map(|i| i * trace.len() / 4).collect();
            let seeds = prepass_seeds(&config, None, trace.as_slice(), &bounds);
            assert_eq!(seeds.len(), 3);
            let mut state = EngineState::new(&config);
            let mut prev = 0;
            for (seed, &bound) in seeds.iter().zip(&bounds[1..]) {
                for rec in &trace[prev..bound] {
                    state.step(rec);
                }
                prev = bound;
                let check = seed.map_check.expect("LS configs carry a fingerprint");
                match &state.layer {
                    LayerImpl::Ls(ls) => {
                        assert!(check.matches(ls.map()), "digest diverged at {bound}")
                    }
                    LayerImpl::NoLs(_) => unreachable!("LS configs only"),
                }
                assert_eq!(
                    seed.snapshot.counter.head_position,
                    state.counter.to_state().head_position,
                    "head diverged at {bound} for {config:?}"
                );
                assert_eq!(
                    seed.snapshot.host_cache, state.host_cache,
                    "host cache diverged at {bound}"
                );
                assert_eq!(seed.snapshot.logical_ops, bound as u64);
            }
        }
    }

    #[test]
    fn run_report_records_the_execution_shape() {
        let trace = busy_trace(100);
        let config = SimConfig::log_structured();
        let serial = Simulation::new(&config).run_trace(&trace);
        assert_eq!(serial.sharding, ShardOutcome::Serial);
        let sharded = Simulation::new(&config).shards(4).run_trace(&trace);
        assert_eq!(sharded.sharding, ShardOutcome::Sharded { shards: 4 });
        assert_eq!(sharded.sharding.to_string(), "sharded(4)");
        // A refused request records why it fell back.
        let single = busy_trace(1);
        let refused = Simulation::new(&config).shards(4).run_trace(&single);
        assert_eq!(
            refused.sharding.fallback_reason(),
            Some("trace has fewer than two records")
        );
        let mut sink_hits = 0usize;
        let report = Simulation::new(&SimConfig::no_ls().with_checkpoint_every(10))
            .checkpoint_every(10, |_: &EngineSnapshot| sink_hits += 1)
            .shards(4)
            .run_trace(&trace);
        assert_eq!(
            report.sharding.fallback_reason(),
            Some("an active checkpoint sink requires serial replay")
        );
        assert_eq!(sink_hits, 10);
        // Streaming runs cannot shard and say so.
        let report = Simulation::new(&config.with_frontier_hint(trace.frontier_top()))
            .shards(4)
            .run(trace.iter().copied());
        assert_eq!(
            report.sharding.fallback_reason(),
            Some("record streams have no random access to split across shards")
        );
        // The outcome is an execution detail: serialized reports stay
        // identical across shapes.
        assert_eq!(
            serde_json::to_string(&serial).expect("report serializes"),
            serde_json::to_string(&sharded).expect("report serializes"),
        );
    }
}
