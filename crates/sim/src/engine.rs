//! The simulation engine: trace × translation layer → seek statistics.

use std::time::Instant;

use serde::{Deserialize, Serialize};
use smrseek_cache::RangeCache;
use smrseek_disk::{Cdf, LongSeekSeries, SeekCounter, SeekCounterState, SeekStats};
use smrseek_obs::{phase_accounting, Phase, PhaseTotals};
use smrseek_stl::{
    CacheConfig, DefragConfig, FragmentAccessTracker, LogStructured, LsConfig, LsSnapshot, LsStats,
    NoLs, PrefetchConfig, TranslationLayer,
};
use smrseek_trace::{stream, TraceRecord};

/// Which translation layer to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LayerChoice {
    /// Conventional update-in-place (the paper's NoLS baseline).
    NoLs,
    /// Log-structured translation with optional mechanisms.
    Ls {
        /// Opportunistic defragmentation (§IV-A).
        defrag: Option<DefragConfig>,
        /// Look-ahead-behind prefetching (§IV-B).
        prefetch: Option<PrefetchConfig>,
        /// Selective caching (§IV-C).
        cache: Option<CacheConfig>,
    },
}

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The translation layer under test.
    pub layer: LayerChoice,
    /// Record every seek's signed distance (needed for Fig 4 CDFs;
    /// memory-heavy on large traces).
    pub record_distances: bool,
    /// Long-seek series bucket width in logical operations
    /// (0 disables the Fig 3 series).
    pub longseek_bucket_ops: u64,
    /// Track per-fragment access statistics (Fig 5 / Fig 10).
    pub track_fragments: bool,
    /// Model a host buffer cache of this many bytes in front of the
    /// translation layer (extension; §IV-C's competition argument): reads
    /// fully covered by recently-touched LBA ranges never reach the
    /// device, writes are write-through and populate the cache.
    pub host_cache_bytes: Option<u64>,
    /// Back the log with ZBC-style zones of this many sectors (guard-band
    /// splits; extension) instead of the paper's continuous infinite
    /// frontier. Ignored for the NoLS baseline.
    pub zone_sectors: Option<u64>,
    /// Logical-space bound for streaming runs: one past the highest sector
    /// the trace touches. Log-structured layers place their write frontier
    /// at the first 1 MiB boundary at or above this (§III). Required by
    /// [`simulate_stream`] for LS layers — an iterator cannot be scanned
    /// for its maximum LBA up front; [`simulate`] derives it from the slice
    /// when unset. Ignored for the NoLS baseline.
    pub frontier_hint: Option<u64>,
    /// Emit an engine checkpoint every this many records (consumed by
    /// [`simulate_stream_checkpointed`]; `None` disables emission). Purely
    /// operational — it cannot change any report — so
    /// [`canonical`](Self::canonical) clears it and it never affects cache
    /// keys.
    pub checkpoint_every: Option<u64>,
}

impl SimConfig {
    /// The NoLS baseline.
    pub fn no_ls() -> Self {
        SimConfig {
            layer: LayerChoice::NoLs,
            record_distances: false,
            longseek_bucket_ops: 0,
            track_fragments: false,
            host_cache_bytes: None,
            zone_sectors: None,
            frontier_hint: None,
            checkpoint_every: None,
        }
    }

    /// Plain log-structured translation.
    pub fn log_structured() -> Self {
        SimConfig {
            layer: LayerChoice::Ls {
                defrag: None,
                prefetch: None,
                cache: None,
            },
            record_distances: false,
            longseek_bucket_ops: 0,
            track_fragments: false,
            host_cache_bytes: None,
            zone_sectors: None,
            frontier_hint: None,
            checkpoint_every: None,
        }
    }

    /// Log-structured + opportunistic defragmentation (paper defaults).
    pub fn ls_defrag() -> Self {
        Self::ls_with(Some(DefragConfig::default()), None, None)
    }

    /// Log-structured + look-ahead-behind prefetching (paper defaults).
    pub fn ls_prefetch() -> Self {
        Self::ls_with(None, Some(PrefetchConfig::default()), None)
    }

    /// Log-structured + 64 MB selective caching (paper defaults).
    pub fn ls_cache() -> Self {
        Self::ls_with(None, None, Some(CacheConfig::default()))
    }

    /// Log-structured with an arbitrary mechanism combination.
    pub fn ls_with(
        defrag: Option<DefragConfig>,
        prefetch: Option<PrefetchConfig>,
        cache: Option<CacheConfig>,
    ) -> Self {
        SimConfig {
            layer: LayerChoice::Ls {
                defrag,
                prefetch,
                cache,
            },
            record_distances: false,
            longseek_bucket_ops: 0,
            track_fragments: false,
            host_cache_bytes: None,
            zone_sectors: None,
            frontier_hint: None,
            checkpoint_every: None,
        }
    }

    /// Enables seek-distance recording.
    pub fn with_distances(mut self) -> Self {
        self.record_distances = true;
        self
    }

    /// Enables the long-seek series with the given bucket width.
    pub fn with_longseek_series(mut self, bucket_ops: u64) -> Self {
        self.longseek_bucket_ops = bucket_ops;
        self
    }

    /// Enables fragment tracking.
    pub fn with_fragment_tracking(mut self) -> Self {
        self.track_fragments = true;
        self
    }

    /// Interposes a host buffer cache of `bytes` bytes.
    pub fn with_host_cache(mut self, bytes: u64) -> Self {
        self.host_cache_bytes = Some(bytes);
        self
    }

    /// Backs the log with zones of `sectors` sectors.
    pub fn with_zones(mut self, sectors: u64) -> Self {
        self.zone_sectors = Some(sectors);
        self
    }

    /// Declares the logical-space bound (`top` = one past the highest
    /// sector the trace touches), letting [`simulate_stream`] place the
    /// write frontier without scanning the trace.
    pub fn with_frontier_hint(mut self, top: u64) -> Self {
        self.frontier_hint = Some(top);
        self
    }

    /// Emits an engine checkpoint every `n_records` records when the run is
    /// driven through [`simulate_stream_checkpointed`]. Operational only:
    /// the emitted snapshots change no report and no cache key.
    pub fn with_checkpoint_every(mut self, n_records: u64) -> Self {
        self.checkpoint_every = Some(n_records);
        self
    }

    /// The standard five-layer sweep replayed by `smrseek simulate` and by
    /// daemon sweep jobs: the NoLS baseline first (so downstream SAF
    /// computation can divide by it), then plain LS and the three
    /// single-mechanism variants at paper defaults.
    pub fn standard_sweep() -> [SimConfig; 5] {
        [
            SimConfig::no_ls(),
            SimConfig::log_structured(),
            SimConfig::ls_defrag(),
            SimConfig::ls_prefetch(),
            SimConfig::ls_cache(),
        ]
    }

    /// Canonical form for result-cache keying: two configs that cannot
    /// produce different [`RunReport`]s on the same trace map to the same
    /// canonical value, and any canonical difference is observable in some
    /// report.
    ///
    /// * The NoLS baseline ignores every log-structured knob
    ///   (`zone_sectors`, `frontier_hint`, `track_fragments`), so they are
    ///   cleared.
    /// * For LS layers an unset frontier hint is resolved against `top`
    ///   (one past the trace's highest sector) when known: a run that
    ///   derives the hint from the trace equals one that passes the same
    ///   bound explicitly.
    ///
    /// Knobs that change report *content* (`record_distances`,
    /// `longseek_bucket_ops`, `host_cache_bytes`) are kept verbatim.
    pub fn canonical(mut self, top: Option<u64>) -> Self {
        match self.layer {
            LayerChoice::NoLs => {
                self.zone_sectors = None;
                self.frontier_hint = None;
                self.track_fragments = false;
            }
            LayerChoice::Ls { .. } => {
                if self.frontier_hint.is_none() {
                    self.frontier_hint = top;
                }
            }
        }
        // Checkpoint cadence never changes a report: two runs differing only
        // in `checkpoint_every` are interchangeable, so they share a key.
        self.checkpoint_every = None;
        self
    }

    /// A stable cache-key fragment: the [`canonical`](Self::canonical)
    /// form serialized as compact JSON. Equal keys imply byte-identical
    /// reports on the same trace; differing keys imply an observable
    /// config difference.
    pub fn cache_key(&self, top: Option<u64>) -> String {
        serde_json::to_string(&self.canonical(top)).expect("SimConfig always serializes")
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Layer name ("NoLS", "LS", "LS+cache", ...).
    pub layer_name: String,
    /// Logical operations replayed.
    pub logical_ops: u64,
    /// Seek statistics at the medium.
    pub seeks: SeekStats,
    /// Signed seek distances (when enabled).
    pub distances: Option<Vec<i64>>,
    /// Long-seek series (when enabled).
    pub longseek_series: Option<LongSeekSeries>,
    /// Total sectors moved by physical operations (for time weighting).
    pub phys_sectors: u64,
    /// Logical reads absorbed by the modeled host buffer cache.
    pub host_cache_hits: u64,
    /// Layer-internal counters (log-structured layers only).
    pub ls_stats: Option<LsStats>,
    /// Fragment statistics (when tracked; log-structured layers only).
    pub fragments: Option<FragmentAccessTracker>,
    /// Largest extent-map segment count observed during the run (0 for
    /// NoLS, which keeps no map) — the run's dominant memory term.
    pub peak_extent_segments: u64,
    /// Engine phase accounting (where simulation wall time went). All
    /// zeros unless [`smrseek_obs::set_phase_accounting`] was on when the
    /// run started. A timing side channel like `RunMetrics`: deliberately
    /// excluded from the hand-written [`Serialize`] impl below, because
    /// serialized reports must stay byte-deterministic across machines,
    /// thread counts, and resume points.
    pub phases: PhaseTotals,
}

/// Hand-written (the vendored `serde_derive` has no `#[serde(skip)]`):
/// reproduces exactly what the derive emitted for every field except
/// `phases`, which is wall-time noise and must not reach serialized
/// reports.
impl Serialize for RunReport {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            (String::from("layer_name"), self.layer_name.to_value()),
            (String::from("logical_ops"), self.logical_ops.to_value()),
            (String::from("seeks"), self.seeks.to_value()),
            (String::from("distances"), self.distances.to_value()),
            (
                String::from("longseek_series"),
                self.longseek_series.to_value(),
            ),
            (String::from("phys_sectors"), self.phys_sectors.to_value()),
            (
                String::from("host_cache_hits"),
                self.host_cache_hits.to_value(),
            ),
            (String::from("ls_stats"), self.ls_stats.to_value()),
            (String::from("fragments"), self.fragments.to_value()),
            (
                String::from("peak_extent_segments"),
                self.peak_extent_segments.to_value(),
            ),
        ])
    }
}

impl RunReport {
    /// Builds a distance CDF from the recorded distances, or `None` when
    /// the run was not configured with
    /// [`SimConfig::with_distances`](SimConfig::with_distances).
    pub fn distance_cdf(&self) -> Option<Cdf> {
        self.distances.as_deref().map(Cdf::from_slice)
    }
}

/// The concrete layers the engine can drive (static dispatch keeps the hot
/// loop monomorphic and lets the engine extract layer-specific results
/// after the run).
enum LayerImpl {
    NoLs(NoLs),
    Ls(Box<LogStructured>),
}

impl LayerImpl {
    fn apply(&mut self, rec: &TraceRecord) -> Vec<smrseek_disk::PhysIo> {
        match self {
            LayerImpl::NoLs(l) => l.apply(rec),
            LayerImpl::Ls(l) => l.apply(rec),
        }
    }

    fn name(&self) -> &str {
        match self {
            LayerImpl::NoLs(l) => l.name(),
            LayerImpl::Ls(l) => l.name(),
        }
    }
}

/// Serializable state of the translation layer inside an
/// [`EngineSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerSnapshot {
    /// The NoLS baseline carries no state.
    NoLs,
    /// Full log-structured layer state (boxed: it dwarfs the other
    /// variant).
    Ls(Box<LsSnapshot>),
}

/// Complete engine state after consuming some prefix of a trace: restoring
/// it and replaying the remaining records yields a [`RunReport`] identical
/// to the uninterrupted run. Produced by [`simulate_stream_checkpointed`],
/// consumed by [`simulate_stream_from`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Translation-layer state (extent map, frontier, caches, counters).
    pub layer: LayerSnapshot,
    /// Seek-model state (head position, statistics, recorded distances).
    pub counter: SeekCounterState,
    /// Long-seek series accumulated so far (when enabled).
    pub longseek_series: Option<LongSeekSeries>,
    /// Host buffer-cache contents (when modeled).
    pub host_cache: Option<RangeCache>,
    /// Logical reads absorbed by the host cache so far.
    pub host_cache_hits: u64,
    /// Physical sectors moved so far.
    pub phys_sectors: u64,
    /// Records consumed so far — the resume index: replay continues with
    /// record `logical_ops` of the original trace.
    pub logical_ops: u64,
    /// Largest extent-map segment count observed so far.
    pub peak_extent_segments: u64,
}

/// Live engine state: the deconstructed body of the historical
/// `simulate_stream` loop, split so a run can be started fresh, started
/// from a snapshot, stepped, checkpointed mid-flight, and finished into a
/// [`RunReport`] — all through the same code path, which is what makes
/// resumed runs byte-identical to uninterrupted ones.
struct EngineState {
    config: SimConfig,
    layer: LayerImpl,
    counter: SeekCounter,
    series: Option<LongSeekSeries>,
    host_cache: Option<RangeCache>,
    host_cache_hits: u64,
    phys_sectors: u64,
    logical_ops: u64,
    peak_extent_segments: u64,
    /// Sampled from [`phase_accounting`] once at construction so a run's
    /// behavior cannot change mid-flight; when false, `step` pays a single
    /// branch and no clock reads.
    timing: bool,
    phases: PhaseTotals,
}

impl EngineState {
    fn new(config: &SimConfig) -> Self {
        let layer = match config.layer {
            LayerChoice::NoLs => LayerImpl::NoLs(NoLs::new()),
            LayerChoice::Ls {
                defrag,
                prefetch,
                cache,
            } => {
                let top = config.frontier_hint.expect(
                    "simulate_stream needs SimConfig::with_frontier_hint for log-structured \
                     layers: a stream cannot be pre-scanned for its highest LBA (use simulate() \
                     for in-memory slices, or pass the bound from a header or a first pass)",
                );
                let mut ls_config = LsConfig::above_sector(top);
                ls_config.defrag = defrag;
                ls_config.prefetch = prefetch;
                ls_config.cache = cache;
                ls_config.track_fragments = config.track_fragments;
                ls_config.zone_sectors = config.zone_sectors;
                LayerImpl::Ls(Box::new(LogStructured::new(ls_config)))
            }
        };
        let counter = if config.record_distances {
            SeekCounter::with_distances()
        } else {
            SeekCounter::new()
        };
        let series = (config.longseek_bucket_ops > 0)
            .then(|| LongSeekSeries::new(config.longseek_bucket_ops));
        // The host cache is indexed by *logical* sector; `RangeCache` is
        // address-space agnostic, so LBA sectors are passed as its keys.
        let host_cache = config
            .host_cache_bytes
            .map(smrseek_cache::RangeCache::with_capacity_bytes);
        EngineState {
            config: *config,
            layer,
            counter,
            series,
            host_cache,
            host_cache_hits: 0,
            phys_sectors: 0,
            logical_ops: 0,
            peak_extent_segments: 0,
            timing: phase_accounting(),
            phases: PhaseTotals::default(),
        }
    }

    fn resume(config: &SimConfig, snap: &EngineSnapshot) -> Self {
        let layer = match (&snap.layer, config.layer) {
            (LayerSnapshot::NoLs, LayerChoice::NoLs) => LayerImpl::NoLs(NoLs::new()),
            (LayerSnapshot::Ls(ls), LayerChoice::Ls { .. }) => {
                LayerImpl::Ls(Box::new(LogStructured::from_snapshot((**ls).clone())))
            }
            _ => panic!(
                "snapshot layer does not match the config's layer — validate the snapshot's \
                 config key against SimConfig::cache_key before resuming"
            ),
        };
        EngineState {
            config: *config,
            layer,
            counter: SeekCounter::from_state(snap.counter.clone()),
            series: snap.longseek_series.clone(),
            host_cache: snap.host_cache.clone(),
            host_cache_hits: snap.host_cache_hits,
            phys_sectors: snap.phys_sectors,
            logical_ops: snap.logical_ops,
            peak_extent_segments: snap.peak_extent_segments,
            timing: phase_accounting(),
            // Snapshots carry no timing (it is wall-clock noise, not
            // simulation state): a resumed run accounts only for the
            // records it replays itself.
            phases: PhaseTotals::default(),
        }
    }

    /// Replays one record. Behaviorally identical with phase accounting on
    /// or off: timing wraps the same statements, it never reorders them.
    fn step(&mut self, rec: &TraceRecord) {
        #[cfg(feature = "fine-spans")]
        let _span = smrseek_obs::span("engine:step");
        let i = self.logical_ops;
        self.logical_ops += 1;
        let mut mark = self.timing.then(Instant::now);
        if let Some(cache) = &mut self.host_cache {
            let key = smrseek_trace::Pba::new(rec.lba.sector());
            let hit = rec.op.is_read() && cache.covers(key, u64::from(rec.sectors));
            if !hit {
                cache.insert(key, u64::from(rec.sectors));
            }
            if let Some(t) = &mut mark {
                self.phases.record(Phase::HostCache, t.elapsed());
                *t = Instant::now();
            }
            if hit {
                self.host_cache_hits += 1;
                return; // served from host RAM: nothing reaches the device
            }
        }
        let ios = self.layer.apply(rec);
        if let Some(t) = &mut mark {
            self.phases.record(Phase::Lookup, t.elapsed());
            *t = Instant::now();
        }
        for io in ios {
            self.phys_sectors += io.sectors;
            if let Some(seek) = self.counter.observe(&io) {
                if let Some(series) = &mut self.series {
                    series.record(i, &seek);
                }
            }
        }
        if let LayerImpl::Ls(ls) = &self.layer {
            self.peak_extent_segments = self.peak_extent_segments.max(ls.map().len() as u64);
        }
        if let Some(t) = &mark {
            self.phases.record(Phase::Seek, t.elapsed());
        }
    }

    fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            layer: match &self.layer {
                LayerImpl::NoLs(_) => LayerSnapshot::NoLs,
                LayerImpl::Ls(ls) => LayerSnapshot::Ls(Box::new(ls.to_snapshot())),
            },
            counter: self.counter.to_state(),
            longseek_series: self.series.clone(),
            host_cache: self.host_cache.clone(),
            host_cache_hits: self.host_cache_hits,
            phys_sectors: self.phys_sectors,
            logical_ops: self.logical_ops,
            peak_extent_segments: self.peak_extent_segments,
        }
    }

    fn finish(self) -> RunReport {
        let layer_name = self.layer.name().to_owned();
        let (ls_stats, fragments) = match self.layer {
            LayerImpl::NoLs(_) => (None, None),
            LayerImpl::Ls(ls) => (Some(ls.stats()), ls.fragment_tracker().cloned()),
        };
        RunReport {
            layer_name,
            logical_ops: self.logical_ops,
            phys_sectors: self.phys_sectors,
            host_cache_hits: self.host_cache_hits,
            seeks: self.counter.stats(),
            distances: self
                .config
                .record_distances
                .then(|| self.counter.into_distances()),
            longseek_series: self.series,
            ls_stats,
            fragments,
            peak_extent_segments: self.peak_extent_segments,
            phases: self.phases,
        }
    }
}

/// Replays a stream of records through the configured layer, feeding every
/// physical operation to the seek model. This is the engine's core: it
/// consumes the records one at a time and never materializes the trace, so
/// memory stays bounded by the layer's own state (extent map, caches)
/// regardless of trace length.
///
/// # Panics
///
/// Log-structured layers place their write frontier just above the trace's
/// highest LBA (§III), which a stream cannot reveal up front: running an
/// LS layer requires [`SimConfig::with_frontier_hint`] and panics without
/// it. (The [`simulate`] slice wrapper derives the hint automatically.)
pub fn simulate_stream<I>(records: I, config: &SimConfig) -> RunReport
where
    I: IntoIterator<Item = TraceRecord>,
{
    simulate_stream_checkpointed(None, records, config, |_| {})
}

/// Resumes a run from `snapshot` and replays the *remaining* records —
/// those from index [`EngineSnapshot::logical_ops`] onward of the original
/// trace — producing a [`RunReport`] byte-identical (as JSON) to the
/// uninterrupted run over the whole trace.
///
/// # Panics
///
/// Panics when the snapshot's layer kind does not match `config.layer`;
/// callers should validate the snapshot's stored config key against
/// [`SimConfig::cache_key`] first (the container in `smrseek-snapshot`
/// carries it for exactly this purpose).
pub fn simulate_stream_from<I>(
    snapshot: &EngineSnapshot,
    remaining: I,
    config: &SimConfig,
) -> RunReport
where
    I: IntoIterator<Item = TraceRecord>,
{
    simulate_stream_checkpointed(Some(snapshot), remaining, config, |_| {})
}

/// The general engine entry point: optionally resumes from a snapshot,
/// replays `records`, and — when [`SimConfig::with_checkpoint_every`] is
/// set — calls `emit` with a fresh [`EngineSnapshot`] after every
/// `n`-th consumed record (at absolute record indices `n`, `2n`, ...,
/// counted over the whole trace, so a resumed run keeps the original
/// cadence). [`simulate_stream`] and [`simulate_stream_from`] are thin
/// wrappers over this with a no-op `emit`.
pub fn simulate_stream_checkpointed<I, F>(
    resume_from: Option<&EngineSnapshot>,
    records: I,
    config: &SimConfig,
    mut emit: F,
) -> RunReport
where
    I: IntoIterator<Item = TraceRecord>,
    F: FnMut(&EngineSnapshot),
{
    let mut state = match resume_from {
        Some(snap) => EngineState::resume(config, snap),
        None => EngineState::new(config),
    };
    let every = config.checkpoint_every.filter(|&n| n > 0);
    let timing = state.timing;
    let mut records = records.into_iter();
    loop {
        // Pulling the next record is where trace parse / mmap-read cost
        // lives, so it is accounted as the ingest phase.
        let mark = timing.then(Instant::now);
        let Some(rec) = records.next() else { break };
        if let Some(t) = mark {
            state.phases.record(Phase::Ingest, t.elapsed());
        }
        state.step(&rec);
        if let Some(n) = every {
            if state.logical_ops % n == 0 {
                let mark = timing.then(Instant::now);
                emit(&state.snapshot());
                if let Some(t) = mark {
                    state.phases.record(Phase::Checkpoint, t.elapsed());
                }
            }
        }
    }
    state.finish()
}

/// Replays an in-memory `trace` through the configured layer.
///
/// Thin wrapper over [`simulate_stream`]: for log-structured layers it
/// scans the slice for its highest LBA first (exactly what
/// `LsConfig::for_trace` did) so the frontier lands on the same sector and
/// reports stay identical to the historical slice-based engine.
pub fn simulate(trace: &[TraceRecord], config: &SimConfig) -> RunReport {
    let config = match config.layer {
        LayerChoice::Ls { .. } if config.frontier_hint.is_none() => {
            config.with_frontier_hint(stream::max_lba(trace).map_or(0, |l| l.sector() + 1))
        }
        _ => *config,
    };
    simulate_stream(trace.iter().copied(), &config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smrseek_trace::Lba;

    fn toy_trace() -> Vec<TraceRecord> {
        vec![
            TraceRecord::write(0, Lba::new(0), 8),
            TraceRecord::write(1, Lba::new(1000), 8),
            TraceRecord::read(2, Lba::new(0), 8),
        ]
    }

    #[test]
    fn nols_counts_trace_seeks() {
        let report = simulate(&toy_trace(), &SimConfig::no_ls());
        assert_eq!(report.layer_name, "NoLS");
        assert_eq!(report.logical_ops, 3);
        // write@0 (no seek from rest at 0), write@1000 (seek), read@0 (seek)
        assert_eq!(report.seeks.write_seeks, 1);
        assert_eq!(report.seeks.read_seeks, 1);
    }

    #[test]
    fn ls_removes_write_seeks() {
        let report = simulate(&toy_trace(), &SimConfig::log_structured());
        // Both writes land contiguously at the frontier: one frontier seek.
        assert_eq!(report.seeks.write_seeks, 1);
    }

    #[test]
    fn distances_recorded_when_enabled() {
        let report = simulate(&toy_trace(), &SimConfig::no_ls().with_distances());
        let cdf = report.distance_cdf().expect("distances were recorded");
        assert_eq!(cdf.len() as u64, report.seeks.total());
        assert!(
            report.distances.is_some(),
            "building the CDF must not consume the recorded samples"
        );
        let report = simulate(&toy_trace(), &SimConfig::no_ls());
        assert!(report.distances.is_none());
    }

    #[test]
    fn distance_cdf_is_none_without_recording() {
        assert!(simulate(&toy_trace(), &SimConfig::no_ls())
            .distance_cdf()
            .is_none());
    }

    #[test]
    fn stream_matches_slice_for_every_layer() {
        let trace = toy_trace();
        let top = smrseek_trace::stream::max_lba(&trace).map_or(0, |l| l.sector() + 1);
        for config in [
            SimConfig::no_ls(),
            SimConfig::log_structured(),
            SimConfig::ls_defrag(),
            SimConfig::ls_prefetch(),
            SimConfig::ls_cache(),
        ] {
            let slice = simulate(&trace, &config.with_distances());
            let stream = simulate_stream(
                trace.iter().copied(),
                &config.with_distances().with_frontier_hint(top),
            );
            assert_eq!(slice.layer_name, stream.layer_name);
            assert_eq!(slice.seeks, stream.seeks);
            assert_eq!(slice.distances, stream.distances);
            assert_eq!(slice.phys_sectors, stream.phys_sectors);
            assert_eq!(slice.logical_ops, stream.logical_ops);
            assert_eq!(slice.peak_extent_segments, stream.peak_extent_segments);
        }
    }

    #[test]
    fn stream_replays_generated_records_without_materializing() {
        // A generator-backed iterator: no Vec of records ever exists.
        let n: u64 = if cfg!(debug_assertions) {
            200_000
        } else {
            10_000_000
        };
        let records = (0..n).map(|i| TraceRecord::write(i, Lba::new((i % 1024) * 8), 8));
        let report = simulate_stream(records, &SimConfig::no_ls());
        assert_eq!(report.logical_ops, n);
        assert_eq!(report.peak_extent_segments, 0);
    }

    #[test]
    fn streaming_ls_tracks_peak_extent_size() {
        let report = simulate(&toy_trace(), &SimConfig::log_structured());
        assert!(report.peak_extent_segments > 0);
    }

    #[test]
    #[should_panic(expected = "frontier_hint")]
    fn streaming_ls_requires_frontier_hint() {
        simulate_stream(toy_trace(), &SimConfig::log_structured());
    }

    #[test]
    fn longseek_series_when_enabled() {
        let trace = vec![
            TraceRecord::write(0, Lba::new(0), 8),
            TraceRecord::read(1, Lba::new(10_000_000), 8),
        ];
        let report = simulate(&trace, &SimConfig::no_ls().with_longseek_series(1));
        let series = report.longseek_series.unwrap();
        assert_eq!(series.total(), 1);
        assert_eq!(series.buckets(), &[0, 1]);
    }

    #[test]
    fn canonical_clears_unobservable_knobs() {
        // NoLS: every LS-only knob is cleared, whatever its value.
        let noisy = SimConfig {
            zone_sectors: Some(1 << 20),
            frontier_hint: Some(999),
            track_fragments: true,
            ..SimConfig::no_ls()
        };
        assert_eq!(noisy.canonical(Some(42)), SimConfig::no_ls());
        assert_eq!(
            noisy.cache_key(Some(42)),
            SimConfig::no_ls().cache_key(None),
            "derived-vs-explicit NoLS configs share a cache key"
        );

        // LS: an unset hint resolves to the trace bound, so deriving the
        // frontier equals passing it explicitly.
        let derived = SimConfig::log_structured();
        let explicit = SimConfig::log_structured().with_frontier_hint(1008);
        assert_eq!(
            derived.canonical(Some(1008)),
            explicit.canonical(Some(1008))
        );
        assert_eq!(derived.cache_key(Some(1008)), explicit.cache_key(None));
        // ...but a *different* explicit hint stays a different key.
        let other = SimConfig::log_structured().with_frontier_hint(2048);
        assert_ne!(derived.cache_key(Some(1008)), other.cache_key(Some(1008)));
    }

    #[test]
    fn canonical_keeps_report_shaping_knobs() {
        let config = SimConfig::ls_cache()
            .with_distances()
            .with_longseek_series(64)
            .with_host_cache(1 << 20);
        let canon = config.canonical(Some(100));
        assert!(canon.record_distances);
        assert_eq!(canon.longseek_bucket_ops, 64);
        assert_eq!(canon.host_cache_bytes, Some(1 << 20));
        assert_ne!(
            config.cache_key(Some(100)),
            SimConfig::ls_cache().cache_key(Some(100))
        );
    }

    #[test]
    fn standard_sweep_leads_with_baseline() {
        let sweep = SimConfig::standard_sweep();
        assert_eq!(sweep.len(), 5);
        assert!(matches!(sweep[0].layer, LayerChoice::NoLs));
        for config in &sweep[1..] {
            assert!(matches!(config.layer, LayerChoice::Ls { .. }));
        }
    }

    #[test]
    fn config_constructors() {
        assert!(matches!(SimConfig::no_ls().layer, LayerChoice::NoLs));
        for (config, has_defrag, has_prefetch, has_cache) in [
            (SimConfig::log_structured(), false, false, false),
            (SimConfig::ls_defrag(), true, false, false),
            (SimConfig::ls_prefetch(), false, true, false),
            (SimConfig::ls_cache(), false, false, true),
        ] {
            match config.layer {
                LayerChoice::Ls {
                    defrag,
                    prefetch,
                    cache,
                } => {
                    assert_eq!(defrag.is_some(), has_defrag);
                    assert_eq!(prefetch.is_some(), has_prefetch);
                    assert_eq!(cache.is_some(), has_cache);
                }
                LayerChoice::NoLs => panic!("expected LS"),
            }
        }
    }

    /// A mixed read/write workload long enough to exercise defrag,
    /// prefetch, caching, zones, and the host cache.
    fn busy_trace(n: u64) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| {
                let lba = Lba::new((i * 37) % 4096);
                if i % 3 == 0 {
                    TraceRecord::read(i, lba, 8)
                } else {
                    TraceRecord::write(i, lba, 16)
                }
            })
            .collect()
    }

    fn resume_configs() -> Vec<SimConfig> {
        let mut configs = SimConfig::standard_sweep().to_vec();
        configs.push(
            SimConfig::ls_defrag()
                .with_distances()
                .with_longseek_series(16)
                .with_fragment_tracking()
                .with_zones(512),
        );
        configs.push(SimConfig::log_structured().with_host_cache(64 * 512));
        configs.push(SimConfig::no_ls().with_distances().with_host_cache(8 * 512));
        configs
    }

    #[test]
    fn resume_is_byte_identical_to_uninterrupted_run() {
        let trace = busy_trace(240);
        let top = smrseek_trace::stream::max_lba(&trace).map_or(0, |l| l.sector() + 1);
        for config in resume_configs() {
            let config = config.with_frontier_hint(top);
            let whole = serde_json::to_string(&simulate_stream(trace.iter().copied(), &config))
                .expect("report serializes");
            for split in [0usize, 1, 100, 239, 240] {
                let mut state = EngineState::new(&config);
                for rec in &trace[..split] {
                    state.step(rec);
                }
                let snap = state.snapshot();
                assert_eq!(snap.logical_ops as usize, split);
                let resumed = simulate_stream_from(&snap, trace[split..].iter().copied(), &config);
                assert_eq!(
                    serde_json::to_string(&resumed).expect("report serializes"),
                    whole,
                    "resume at {split} diverged for {config:?}"
                );
            }
        }
    }

    #[test]
    fn snapshot_survives_serde_round_trip() {
        let trace = busy_trace(150);
        let top = smrseek_trace::stream::max_lba(&trace).map_or(0, |l| l.sector() + 1);
        for config in resume_configs() {
            let config = config.with_frontier_hint(top);
            let whole = serde_json::to_string(&simulate_stream(trace.iter().copied(), &config))
                .expect("report serializes");
            let mut state = EngineState::new(&config);
            for rec in &trace[..75] {
                state.step(rec);
            }
            let json = serde_json::to_string(&state.snapshot()).expect("snapshot serializes");
            let snap: EngineSnapshot = serde_json::from_str(&json).expect("snapshot deserializes");
            let resumed = simulate_stream_from(&snap, trace[75..].iter().copied(), &config);
            assert_eq!(
                serde_json::to_string(&resumed).expect("report serializes"),
                whole,
                "serde round-trip broke resume for {config:?}"
            );
        }
    }

    #[test]
    fn checkpoints_emitted_on_cadence() {
        let trace = busy_trace(35);
        let config = SimConfig::no_ls().with_checkpoint_every(10);
        let mut emitted = Vec::new();
        let report = simulate_stream_checkpointed(None, trace.iter().copied(), &config, |snap| {
            emitted.push(snap.logical_ops)
        });
        assert_eq!(report.logical_ops, 35);
        assert_eq!(emitted, vec![10, 20, 30]);
    }

    #[test]
    fn resumed_run_keeps_checkpoint_cadence() {
        // Resuming at 15 with every(10) must fire at absolute records
        // 20 and 30, not 25 and 35.
        let trace = busy_trace(35);
        let config = SimConfig::no_ls().with_checkpoint_every(10);
        let mut state = EngineState::new(&config);
        for rec in &trace[..15] {
            state.step(rec);
        }
        let snap = state.snapshot();
        let mut emitted = Vec::new();
        simulate_stream_checkpointed(Some(&snap), trace[15..].iter().copied(), &config, |s| {
            emitted.push(s.logical_ops)
        });
        assert_eq!(emitted, vec![20, 30]);
    }

    #[test]
    #[should_panic(expected = "config key")]
    fn resume_with_mismatched_layer_panics() {
        let config = SimConfig::no_ls();
        let snap = EngineState::new(&config).snapshot();
        simulate_stream_from(&snap, toy_trace(), &SimConfig::log_structured());
    }

    #[test]
    fn canonical_clears_checkpoint_cadence() {
        let a = SimConfig::ls_cache().with_checkpoint_every(1000);
        let b = SimConfig::ls_cache();
        assert_eq!(a.canonical(Some(42)), b.canonical(Some(42)));
        assert_eq!(a.cache_key(Some(42)), b.cache_key(Some(42)));
    }
}
