//! On-disk binary trace cache (`.smrt` sidecars).
//!
//! The paper's evaluation replays multi-million-operation traces; parsing
//! CSV (or regenerating a synthetic workload) on every run dominates small
//! experiments. This module stages traces through the compact v2 binary
//! format of [`smrseek_trace::binary`] so repeat runs mmap the records
//! read-only and replay with zero parse cost:
//!
//! * [`write_sidecar`] — atomically writes a `.smrt` file next to (or in a
//!   cache directory for) the trace it caches.
//! * [`sidecar_path`] / [`profile_sidecar`] — naming conventions for
//!   external-trace and synthetic-profile caches.
//! * [`profile_source`] — a cache-aware [`TraceSource`] for the run
//!   matrix: mmaps the sidecar when present, generates (and populates the
//!   cache) otherwise.
//!
//! Caching is best-effort: any cache I/O failure falls back to the
//! uncached path with a note on stderr, never failing the experiment.

use crate::experiments::ExpOptions;
use crate::runner::TraceSource;
use smrseek_trace::binary::{top_sector, write_binary_v2, MmapTrace};
use smrseek_trace::digest::{digest_iter, digest_records};
use smrseek_trace::parse::{parse_path, sniff_path, DetectedFormat};
use smrseek_trace::{TraceDigest, TraceRecord};
use smrseek_workloads::profiles::Profile;
use std::collections::HashMap;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Default cache directory for synthetic-profile sidecars, relative to the
/// working directory.
pub const DEFAULT_CACHE_DIR: &str = ".smrseek-cache";

/// The `.smrt` sidecar path for an external trace file: the trace path
/// with `.smrt` appended (`trace.csv` → `trace.csv.smrt`), so one CSV maps
/// to exactly one cache file regardless of its extension.
pub fn sidecar_path(trace: &Path) -> PathBuf {
    let mut name = trace.file_name().unwrap_or_default().to_os_string();
    name.push(".smrt");
    trace.with_file_name(name)
}

/// The sidecar path for a synthetic profile trace: keyed by profile name,
/// seed and operation count, since all three determine the records.
pub fn profile_sidecar(dir: &Path, profile: &Profile, opts: &ExpOptions) -> PathBuf {
    dir.join(format!(
        "{}-s{}-o{}.smrt",
        profile.name, opts.seed, opts.ops
    ))
}

/// Writes `records` to `path` in the v2 binary format, atomically: the
/// bytes land in a same-directory temp file first and are renamed into
/// place, so a concurrent reader never sees a torn sidecar.
///
/// # Errors
///
/// Returns the underlying I/O error message on failure (the temp file is
/// cleaned up best-effort).
pub fn write_sidecar(path: &Path, records: &[TraceRecord]) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    let tmp = path.with_extension(format!("smrt.tmp.{}", std::process::id()));
    let result = (|| {
        let file = std::fs::File::create(&tmp)
            .map_err(|e| format!("cannot create {}: {e}", tmp.display()))?;
        let mut writer = BufWriter::new(file);
        write_binary_v2(&mut writer, records)
            .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        writer
            .flush()
            .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| format!("cannot rename into {}: {e}", path.display()))
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

/// A cache-aware [`TraceSource`] for a synthetic profile.
///
/// With `cache_dir == None` this is exactly
/// [`TraceSource::from_profile`]. With a directory, the sidecar is mmapped
/// when present (zero-parse replay, one mapping shared by every matrix
/// cell); otherwise the trace is generated once, written to the cache, and
/// the fresh sidecar mmapped. Cache failures degrade to generation with a
/// stderr note.
pub fn profile_source(
    profile: &Profile,
    opts: &ExpOptions,
    cache_dir: Option<&Path>,
) -> TraceSource {
    let Some(dir) = cache_dir else {
        return TraceSource::from_profile(profile, opts);
    };
    let path = profile_sidecar(dir, profile, opts);
    if !path.exists() {
        let records = profile.generate_scaled(opts.seed, opts.ops);
        if let Err(e) = write_sidecar(&path, &records) {
            smrseek_obs::warn!("cache: {e}; running uncached");
            return TraceSource::from_records(profile.name, records);
        }
    }
    match MmapTrace::open(&path) {
        Ok(map) => TraceSource::from_mmap(profile.name, Arc::new(map)),
        Err(e) => {
            smrseek_obs::warn!("cache: ignoring {}: {e}; running uncached", path.display());
            TraceSource::from_profile(profile, opts)
        }
    }
}

/// One trace held open by a [`TraceRegistry`]: the replayable source plus
/// its identity, computed once at load time so no job ever re-digests or
/// re-scans the records.
#[derive(Debug, Clone)]
pub struct RegisteredTrace {
    /// The replayable source (one shared mapping for binary traces).
    pub source: TraceSource,
    /// Stable content digest — the daemon's result-cache identity.
    pub digest: TraceDigest,
    /// One past the highest sector touched (the LS frontier hint).
    pub top_sector: u64,
    /// Number of records in the trace.
    pub records: u64,
}

/// A shared registry of open traces for long-lived processes: each path is
/// sniffed, loaded (mmapped for binary traces, parsed otherwise) and
/// digested exactly once, and every job replaying it thereafter shares the
/// same [`TraceSource`] — for mmap-backed traces that means one read-only
/// mapping serving every concurrent worker.
#[derive(Debug, Default)]
pub struct TraceRegistry {
    entries: Mutex<HashMap<PathBuf, Arc<RegisteredTrace>>>,
}

impl TraceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        TraceRegistry::default()
    }

    /// Loads the trace at `path`, or returns the already-loaded entry.
    /// Paths are keyed by their canonicalized form, so `./t.csv` and an
    /// absolute path to the same file share one entry.
    ///
    /// The registry lock is deliberately held across a cold load: when
    /// many jobs name the same cold trace at once, one loads and digests
    /// it while the rest wait for the entry, instead of N workers parsing
    /// the same file in parallel.
    ///
    /// # Errors
    ///
    /// Propagates open/sniff/parse/mmap failures from [`smrseek_trace`].
    pub fn load(&self, path: &Path) -> smrseek_trace::Result<Arc<RegisteredTrace>> {
        let key = std::fs::canonicalize(path).unwrap_or_else(|_| path.to_path_buf());
        let mut entries = self.entries.lock().expect("registry lock poisoned");
        if let Some(entry) = entries.get(&key) {
            return Ok(Arc::clone(entry));
        }
        let name = path.display().to_string();
        let entry = Arc::new(match sniff_path(path)? {
            DetectedFormat::Binary => {
                let map = Arc::new(MmapTrace::open(path)?);
                RegisteredTrace {
                    digest: digest_iter(map.iter()),
                    top_sector: map.top_sector(),
                    records: map.len() as u64,
                    source: TraceSource::from_mmap(name, map),
                }
            }
            format => {
                let records = parse_path(path, format)?;
                RegisteredTrace {
                    digest: digest_records(&records),
                    top_sector: top_sector(&records),
                    records: records.len() as u64,
                    source: TraceSource::from_records(name, records),
                }
            }
        });
        entries.insert(key, Arc::clone(&entry));
        Ok(entry)
    }

    /// Number of traces currently registered.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("registry lock poisoned").len()
    }

    /// Whether no trace has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smrseek_workloads::profiles;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("smrseek_tracecache_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn sidecar_naming() {
        assert_eq!(
            sidecar_path(Path::new("/tmp/trace.csv")),
            Path::new("/tmp/trace.csv.smrt")
        );
        assert_eq!(sidecar_path(Path::new("bare")), Path::new("bare.smrt"));
        let p = profiles::by_name("w91").expect("profile exists");
        let o = ExpOptions { seed: 7, ops: 123 };
        assert_eq!(
            profile_sidecar(Path::new("cache"), &p, &o),
            Path::new("cache/w91-s7-o123.smrt")
        );
    }

    #[test]
    fn write_sidecar_roundtrips_atomically() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("t.smrt");
        let records = profiles::by_name("hm_1")
            .expect("profile exists")
            .generate_scaled(3, 500);
        write_sidecar(&path, &records).expect("sidecar written");
        let map = MmapTrace::open(&path).expect("sidecar maps");
        assert_eq!(map.iter().collect::<Vec<_>>(), records);
        assert_eq!(
            map.header().top_sector,
            Some(smrseek_trace::binary::top_sector(&records))
        );
        assert!(
            std::fs::read_dir(&dir).expect("dir listed").all(|e| !e
                .expect("entry")
                .file_name()
                .to_string_lossy()
                .contains("tmp")),
            "no temp files left behind"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn registry_loads_each_path_once_and_keys_canonically() {
        use smrseek_trace::writer::write_cp_csv;

        let dir = tmp_dir("registry");
        std::fs::create_dir_all(&dir).expect("cache dir");
        let records = profiles::by_name("hm_1")
            .expect("profile exists")
            .generate_scaled(5, 300);

        // One CSV and one binary copy of the same records.
        let csv = dir.join("t.csv");
        let mut f = std::fs::File::create(&csv).expect("csv created");
        write_cp_csv(&mut f, &records).expect("csv written");
        let smrt = dir.join("t.smrt");
        write_sidecar(&smrt, &records).expect("sidecar written");

        let registry = TraceRegistry::new();
        assert!(registry.is_empty());
        let via_csv = registry.load(&csv).expect("csv loads");
        let via_smrt = registry.load(&smrt).expect("binary loads");
        assert_eq!(registry.len(), 2);
        assert_eq!(
            via_csv.digest, via_smrt.digest,
            "digest is content-addressed, not format-addressed"
        );
        assert_eq!(via_csv.top_sector, via_smrt.top_sector);
        assert_eq!(via_csv.records, records.len() as u64);

        // A second load of the same file (via a relative-ish alias) hits
        // the existing entry instead of re-parsing.
        let again = registry.load(&csv).expect("cached load");
        assert!(Arc::ptr_eq(&again, &via_csv));
        assert_eq!(registry.len(), 2);

        assert!(registry.load(&dir.join("missing.csv")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn profile_source_populates_then_replays_cache() {
        let dir = tmp_dir("profile_source");
        let profile = profiles::by_name("w95").expect("profile exists");
        let opts = ExpOptions { seed: 11, ops: 400 };
        let fresh = profile_source(&profile, &opts, Some(&dir));
        let sidecar = profile_sidecar(&dir, &profile, &opts);
        assert!(sidecar.exists(), "first use populates the cache");
        let cached = profile_source(&profile, &opts, Some(&dir));
        let uncached = profile_source(&profile, &opts, None);
        assert_eq!(*fresh.records(), *uncached.records());
        assert_eq!(*cached.records(), *uncached.records());
        std::fs::remove_dir_all(&dir).ok();
    }
}
