//! On-disk binary trace cache (`.smrt` sidecars).
//!
//! The paper's evaluation replays multi-million-operation traces; parsing
//! CSV (or regenerating a synthetic workload) on every run dominates small
//! experiments. This module stages traces through the compact v2 binary
//! format of [`smrseek_trace::binary`] so repeat runs mmap the records
//! read-only and replay with zero parse cost:
//!
//! * [`write_sidecar`] — atomically writes a `.smrt` file next to (or in a
//!   cache directory for) the trace it caches.
//! * [`sidecar_path`] / [`profile_sidecar`] — naming conventions for
//!   external-trace and synthetic-profile caches.
//! * [`profile_source`] — a cache-aware [`TraceSource`] for the run
//!   matrix: mmaps the sidecar when present, generates (and populates the
//!   cache) otherwise.
//!
//! Caching is best-effort: any cache I/O failure falls back to the
//! uncached path with a note on stderr, never failing the experiment.

use crate::experiments::ExpOptions;
use crate::runner::TraceSource;
use smrseek_trace::binary::{write_binary_v2, MmapTrace};
use smrseek_trace::TraceRecord;
use smrseek_workloads::profiles::Profile;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Default cache directory for synthetic-profile sidecars, relative to the
/// working directory.
pub const DEFAULT_CACHE_DIR: &str = ".smrseek-cache";

/// The `.smrt` sidecar path for an external trace file: the trace path
/// with `.smrt` appended (`trace.csv` → `trace.csv.smrt`), so one CSV maps
/// to exactly one cache file regardless of its extension.
pub fn sidecar_path(trace: &Path) -> PathBuf {
    let mut name = trace.file_name().unwrap_or_default().to_os_string();
    name.push(".smrt");
    trace.with_file_name(name)
}

/// The sidecar path for a synthetic profile trace: keyed by profile name,
/// seed and operation count, since all three determine the records.
pub fn profile_sidecar(dir: &Path, profile: &Profile, opts: &ExpOptions) -> PathBuf {
    dir.join(format!(
        "{}-s{}-o{}.smrt",
        profile.name, opts.seed, opts.ops
    ))
}

/// Writes `records` to `path` in the v2 binary format, atomically: the
/// bytes land in a same-directory temp file first and are renamed into
/// place, so a concurrent reader never sees a torn sidecar.
///
/// # Errors
///
/// Returns the underlying I/O error message on failure (the temp file is
/// cleaned up best-effort).
pub fn write_sidecar(path: &Path, records: &[TraceRecord]) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    let tmp = path.with_extension(format!("smrt.tmp.{}", std::process::id()));
    let result = (|| {
        let file = std::fs::File::create(&tmp)
            .map_err(|e| format!("cannot create {}: {e}", tmp.display()))?;
        let mut writer = BufWriter::new(file);
        write_binary_v2(&mut writer, records)
            .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        writer
            .flush()
            .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| format!("cannot rename into {}: {e}", path.display()))
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

/// A cache-aware [`TraceSource`] for a synthetic profile.
///
/// With `cache_dir == None` this is exactly
/// [`TraceSource::from_profile`]. With a directory, the sidecar is mmapped
/// when present (zero-parse replay, one mapping shared by every matrix
/// cell); otherwise the trace is generated once, written to the cache, and
/// the fresh sidecar mmapped. Cache failures degrade to generation with a
/// stderr note.
pub fn profile_source(
    profile: &Profile,
    opts: &ExpOptions,
    cache_dir: Option<&Path>,
) -> TraceSource {
    let Some(dir) = cache_dir else {
        return TraceSource::from_profile(profile, opts);
    };
    let path = profile_sidecar(dir, profile, opts);
    if !path.exists() {
        let records = profile.generate_scaled(opts.seed, opts.ops);
        if let Err(e) = write_sidecar(&path, &records) {
            eprintln!("cache: {e}; running uncached");
            return TraceSource::from_records(profile.name, records);
        }
    }
    match MmapTrace::open(&path) {
        Ok(map) => TraceSource::from_mmap(profile.name, Arc::new(map)),
        Err(e) => {
            eprintln!("cache: ignoring {}: {e}; running uncached", path.display());
            TraceSource::from_profile(profile, opts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smrseek_workloads::profiles;

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("smrseek_tracecache_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn sidecar_naming() {
        assert_eq!(
            sidecar_path(Path::new("/tmp/trace.csv")),
            Path::new("/tmp/trace.csv.smrt")
        );
        assert_eq!(sidecar_path(Path::new("bare")), Path::new("bare.smrt"));
        let p = profiles::by_name("w91").expect("profile exists");
        let o = ExpOptions { seed: 7, ops: 123 };
        assert_eq!(
            profile_sidecar(Path::new("cache"), &p, &o),
            Path::new("cache/w91-s7-o123.smrt")
        );
    }

    #[test]
    fn write_sidecar_roundtrips_atomically() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("t.smrt");
        let records = profiles::by_name("hm_1")
            .expect("profile exists")
            .generate_scaled(3, 500);
        write_sidecar(&path, &records).expect("sidecar written");
        let map = MmapTrace::open(&path).expect("sidecar maps");
        assert_eq!(map.iter().collect::<Vec<_>>(), records);
        assert_eq!(
            map.header().top_sector,
            Some(smrseek_trace::binary::top_sector(&records))
        );
        assert!(
            std::fs::read_dir(&dir)
                .expect("dir listed")
                .all(|e| !e
                    .expect("entry")
                    .file_name()
                    .to_string_lossy()
                    .contains("tmp")),
            "no temp files left behind"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn profile_source_populates_then_replays_cache() {
        let dir = tmp_dir("profile_source");
        let profile = profiles::by_name("w95").expect("profile exists");
        let opts = ExpOptions { seed: 11, ops: 400 };
        let fresh = profile_source(&profile, &opts, Some(&dir));
        let sidecar = profile_sidecar(&dir, &profile, &opts);
        assert!(sidecar.exists(), "first use populates the cache");
        let cached = profile_source(&profile, &opts, Some(&dir));
        let uncached = profile_source(&profile, &opts, None);
        assert_eq!(*fresh.records(), *uncached.records());
        assert_eq!(*cached.records(), *uncached.records());
        std::fs::remove_dir_all(&dir).ok();
    }
}
