//! Parallel run-matrix executor.
//!
//! Every figure and table of the paper is a *matrix* of independent
//! simulation runs — workloads × translation-layer configurations — and
//! each cell is deterministic given its trace and [`SimConfig`]. This
//! module enumerates those cells as a [`RunMatrix`] and executes them
//! concurrently on [`std::thread::scope`] workers, collecting per-cell
//! [`RunMetrics`] (wall time, replay rate, peak extent-map size) alongside
//! each [`RunReport`].
//!
//! Determinism: results come back in cell order regardless of the thread
//! count, and every cell regenerates its trace from a named, repeatable
//! [`TraceSource`] — so reports (and any JSON derived from them) are
//! byte-identical whether the matrix runs on one worker or sixteen. Only
//! the timing side-channel ([`RunMetrics`]) varies between runs, which is
//! why it lives next to, never inside, the serialized reports.

#![deny(clippy::unwrap_used)]

use crate::checkpoint::{checkpoint_config_key, CheckpointStore};
use crate::engine::{
    EngineSnapshot, LayerChoice, RunReport, ShardOutcome, ShardableTrace, SimConfig, Simulation,
};
use crate::experiments::ExpOptions;
use smrseek_obs::{span_with, PhaseTotals};
use smrseek_trace::binary::{MmapTrace, DEFAULT_BLOCK_RECORDS};
use smrseek_trace::TraceRecord;
use smrseek_workloads::profiles::Profile;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How a [`TraceSource`] produces its records.
#[derive(Clone)]
enum Supply {
    /// A repeatable generator; each cell regenerates (or clones an Arc of)
    /// the trace on the worker that runs it.
    Generate(Arc<dyn Fn() -> Arc<Vec<TraceRecord>> + Send + Sync>),
    /// One shared read-only mapping of a binary trace file; every cell
    /// replays straight off the mapped pages with zero parse cost.
    /// `top` caches the frontier hint (from the v2 header when present).
    Mapped { map: Arc<MmapTrace>, top: u64 },
}

/// A named, repeatable source of trace records.
///
/// Generator-backed cells regenerate their trace on the worker that runs
/// them (sharing one materialized trace across threads would serialize on
/// it and pin the whole matrix's memory high-water mark at once);
/// repeatability is what keeps the matrix deterministic under any
/// scheduling. Mmap-backed sources ([`TraceSource::from_mmap`]) instead
/// share a single read-only mapping across every cell: the kernel page
/// cache holds one copy of the trace no matter how many workers replay it.
#[derive(Clone)]
pub struct TraceSource {
    name: String,
    supply: Supply,
}

impl std::fmt::Debug for TraceSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceSource")
            .field("name", &self.name)
            .finish()
    }
}

impl TraceSource {
    /// Wraps an arbitrary trace supplier. `supply` must be repeatable:
    /// every call returns the same records in the same order.
    pub fn new(
        name: impl Into<String>,
        supply: impl Fn() -> Arc<Vec<TraceRecord>> + Send + Sync + 'static,
    ) -> Self {
        TraceSource {
            name: name.into(),
            supply: Supply::Generate(Arc::new(supply)),
        }
    }

    /// A source backed by one shared read-only mapping of a binary trace:
    /// every cell replaying it decodes records zero-copy from the same
    /// pages, so a huge trace replays N times with zero parse cost. The
    /// frontier hint comes from the v2 header when present (one scan of
    /// the mapping otherwise, paid once here).
    pub fn from_mmap(name: impl Into<String>, map: Arc<MmapTrace>) -> Self {
        let top = map.top_sector();
        TraceSource {
            name: name.into(),
            supply: Supply::Mapped { map, top },
        }
    }

    /// A synthetic Table-I workload generated with the run's seed and
    /// operation count.
    pub fn from_profile(profile: &Profile, opts: &ExpOptions) -> Self {
        let profile = profile.clone();
        let (seed, ops) = (opts.seed, opts.ops);
        TraceSource::new(profile.name, move || {
            Arc::new(profile.generate_scaled(seed, ops))
        })
    }

    /// An already-materialized trace (shared, never copied per cell).
    pub fn from_records(name: impl Into<String>, records: Vec<TraceRecord>) -> Self {
        let records = Arc::new(records);
        TraceSource::new(name, move || Arc::clone(&records))
    }

    /// The source's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stable content digest of this source's records — the identity
    /// the daemon's result cache keys on. Mmap-backed sources stream off
    /// the mapping; generator-backed sources materialize once here, so
    /// callers should cache the digest (see
    /// [`tracecache::TraceRegistry`](crate::tracecache::TraceRegistry)).
    pub fn digest(&self) -> smrseek_trace::TraceDigest {
        match &self.supply {
            Supply::Generate(f) => smrseek_trace::digest::digest_records(&f()),
            Supply::Mapped { map, .. } => smrseek_trace::digest::digest_iter(map.iter()),
        }
    }

    /// One past the highest sector the records touch — the LS frontier
    /// hint. Cached from the v2 header for mmap-backed sources; computed
    /// from a materialized pass for generator-backed ones.
    pub fn top_sector(&self) -> u64 {
        match &self.supply {
            Supply::Generate(f) => smrseek_trace::binary::top_sector(&f()),
            Supply::Mapped { top, .. } => *top,
        }
    }

    /// Produces the records. Mmap-backed sources materialize a fresh
    /// `Vec` here — replay paths that can stream should go through
    /// [`RunMatrix::execute`], which decodes straight off the mapping.
    pub fn records(&self) -> Arc<Vec<TraceRecord>> {
        match &self.supply {
            Supply::Generate(f) => f(),
            Supply::Mapped { map, .. } => Arc::new(map.iter().collect()),
        }
    }

    /// Replays this source through `config`, decoding in blocks straight
    /// off the mapping for mmap-backed sources (the frontier hint filled
    /// from the cached `top_sector`) and materializing for
    /// generator-backed ones. `shards` asks [`Simulation`] to split the
    /// record stream across that many worker threads — exact for every
    /// sweep configuration (history-carrying layers shard via boundary
    /// checkpoints); the rare refusals warn once and record their reason
    /// in the report's [`ShardOutcome`].
    fn replay(&self, config: &SimConfig, shards: usize) -> (RunReport, Duration) {
        match &self.supply {
            Supply::Generate(f) => {
                let records = f();
                let start = Instant::now();
                let report = Simulation::new(config).shards(shards).run_trace(&**records);
                (report, start.elapsed())
            }
            Supply::Mapped { map, top } => {
                let config = match config.layer {
                    LayerChoice::Ls { .. } if config.frontier_hint.is_none() => {
                        config.with_frontier_hint(*top)
                    }
                    _ => *config,
                };
                let start = Instant::now();
                let report = Simulation::new(&config).shards(shards).run_trace(&**map);
                (report, start.elapsed())
            }
        }
    }

    /// Like `replay`, but resumable: when `resume_from` is set the
    /// already-consumed prefix (`resume_from.logical_ops` records) is
    /// skipped and the engine restored from the snapshot, and checkpoints
    /// are emitted through `emit` on the config's
    /// [`SimConfig::with_checkpoint_every`] cadence. The returned report
    /// is byte-identical to a cold `replay` of the same cell. `shards`
    /// splits the remaining records across worker threads; sharding is
    /// exact for every sweep configuration, but a config that actively
    /// emits checkpoints always replays serially (recorded and warned, not
    /// silent).
    ///
    /// Mmap-backed sources skip by seeking the mapping (no prefix decode);
    /// generator-backed sources regenerate and slice.
    /// `prepass` additionally persists (and reuses) the sharding
    /// prepass's boundary checkpoints in the given store under the given
    /// full-trace digest, so repeat sharded runs of the same cell skip the
    /// serial prefix replay entirely (see [`Simulation::prepass_store`]).
    pub fn replay_checkpointed(
        &self,
        config: &SimConfig,
        resume_from: Option<&EngineSnapshot>,
        emit: impl FnMut(&EngineSnapshot),
        shards: usize,
        prepass: Option<(&CheckpointStore, u128)>,
    ) -> (RunReport, Duration) {
        let skip = resume_from.map_or(0, |s| s.logical_ops) as usize;
        let simulation = |config: &SimConfig| {
            let mut sim = Simulation::new(config).shards(shards).checkpoint_sink(emit);
            if let Some(snap) = resume_from {
                sim = sim.resume_from(snap);
            }
            if let Some((store, digest)) = prepass {
                sim = sim.prepass_store(store, digest);
            }
            sim
        };
        match &self.supply {
            Supply::Generate(f) => {
                let records = f();
                let config = match config.layer {
                    LayerChoice::Ls { .. } if config.frontier_hint.is_none() => {
                        config.with_frontier_hint(smrseek_trace::binary::top_sector(&records))
                    }
                    _ => *config,
                };
                let remaining = &records[skip.min(records.len())..];
                let start = Instant::now();
                let report = simulation(&config).run_trace(remaining);
                (report, start.elapsed())
            }
            Supply::Mapped { map, top } => {
                let config = match config.layer {
                    LayerChoice::Ls { .. } if config.frontier_hint.is_none() => {
                        config.with_frontier_hint(*top)
                    }
                    _ => *config,
                };
                let suffix = MappedSuffix {
                    map,
                    skip: skip.min(map.len()),
                };
                let start = Instant::now();
                let report = simulation(&config).run_trace(&suffix);
                (report, start.elapsed())
            }
        }
    }
}

/// The records of a mapping from `skip` onward, as a [`ShardableTrace`]:
/// what a resumed mmap-backed replay hands the engine — record `i` of the
/// suffix is record `skip + i` of the file, read without decoding the
/// consumed prefix.
struct MappedSuffix<'a> {
    map: &'a MmapTrace,
    skip: usize,
}

impl ShardableTrace for MappedSuffix<'_> {
    fn num_records(&self) -> usize {
        self.map.len() - self.skip
    }

    fn record(&self, index: usize) -> TraceRecord {
        self.map.get(self.skip + index)
    }

    fn frontier_top(&self) -> u64 {
        self.map.top_sector()
    }

    fn for_each_block(&self, start: usize, end: usize, f: &mut dyn FnMut(&[TraceRecord])) {
        let mut blocks =
            self.map
                .blocks_range(self.skip + start, self.skip + end, DEFAULT_BLOCK_RECORDS);
        while let Some(block) = blocks.next_block() {
            f(block);
        }
    }
}

/// One cell of the matrix: a trace source replayed under one configuration.
#[derive(Debug, Clone)]
pub struct RunCell {
    /// The trace to replay.
    pub source: TraceSource,
    /// The configuration to replay it under.
    pub config: SimConfig,
    /// Display label (defaults to the source name).
    pub label: String,
}

impl RunCell {
    /// A cell labeled after its source.
    pub fn new(source: TraceSource, config: SimConfig) -> Self {
        let label = source.name().to_owned();
        RunCell {
            source,
            config,
            label,
        }
    }

    /// Overrides the display label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

/// Timing and footprint of one executed cell.
///
/// These are observations about the *execution*, not the simulation:
/// they vary run to run and must never leak into serialized reports
/// (which stay byte-deterministic across thread counts).
#[derive(Debug, Clone, Copy)]
pub struct RunMetrics {
    /// Wall time of the replay (excluding trace generation).
    pub wall: Duration,
    /// Logical records replayed.
    pub records: u64,
    /// Largest extent-map segment count the run reached (0 for NoLS).
    pub peak_extent_segments: u64,
    /// Engine phase accounting for the cell (all zeros unless
    /// [`smrseek_obs::set_phase_accounting`] was on).
    pub phases: PhaseTotals,
    /// How the replay executed: serial, sharded, or — when sharding was
    /// requested but refused — serial with the recorded reason. Surfaced
    /// in the stderr matrix summary so no cell degrades silently.
    pub sharding: ShardOutcome,
}

impl RunMetrics {
    /// Replay throughput in records per second.
    pub fn records_per_sec(&self) -> f64 {
        self.records as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// The result of one executed cell: the deterministic report plus the
/// execution's metrics.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The cell's display label.
    pub label: String,
    /// The simulation report (deterministic).
    pub report: RunReport,
    /// Execution timing/footprint (non-deterministic side channel).
    pub metrics: RunMetrics,
}

/// An ordered collection of (trace source × configuration) cells.
#[derive(Debug, Clone, Default)]
pub struct RunMatrix {
    cells: Vec<RunCell>,
}

impl RunMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        RunMatrix::default()
    }

    /// Appends one cell.
    pub fn push(&mut self, cell: RunCell) {
        self.cells.push(cell);
    }

    /// The full cross product: every source replayed under every
    /// configuration, in source-major order.
    pub fn cross(sources: &[TraceSource], configs: &[SimConfig]) -> Self {
        let mut matrix = RunMatrix::new();
        for source in sources {
            for config in configs {
                matrix.push(RunCell::new(source.clone(), *config));
            }
        }
        matrix
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the matrix has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cells, in execution-result order.
    pub fn cells(&self) -> &[RunCell] {
        &self.cells
    }

    /// Executes every cell on up to `threads` scoped workers and returns
    /// the outcomes *in cell order* — the thread count changes wall time,
    /// never results. Threads left idle by cell-parallelism are spent on
    /// intra-trace shards ([`ShardPolicy::Auto`]); use
    /// [`execute_with`](Self::execute_with) to control the split.
    pub fn execute(&self, threads: NonZeroUsize) -> Vec<RunOutcome> {
        self.execute_with(threads, ShardPolicy::Auto)
    }

    /// [`execute`](Self::execute) with an explicit split of `threads`
    /// between matrix cells and intra-trace shards. Reports are
    /// byte-identical under every policy; only wall time changes.
    pub fn execute_with(&self, threads: NonZeroUsize, policy: ShardPolicy) -> Vec<RunOutcome> {
        let shards = policy.shards_per_cell(threads, self.cells.len());
        parallel_map(&self.cells, threads, |cell| {
            let _span = span_with(|| format!("cell:{}", cell.label));
            let (report, wall) = cell.source.replay(&cell.config, shards);
            let metrics = RunMetrics {
                wall,
                records: report.logical_ops,
                peak_extent_segments: report.peak_extent_segments,
                phases: report.phases,
                sharding: report.sharding,
            };
            RunOutcome {
                label: cell.label.clone(),
                report,
                metrics,
            }
        })
    }

    /// Like [`execute`](Self::execute), but checkpoint-aware: each cell
    /// first probes `store` for a checkpoint of (`trace_digest` × its
    /// canonical config key) and resumes from it on a hit, and — when its
    /// config sets [`SimConfig::with_checkpoint_every`] — saves fresh
    /// checkpoints back as the replay advances. Reports stay byte-identical
    /// to [`execute`](Self::execute); only wall time changes. A store file
    /// that fails to load (corrupt, foreign, torn) is treated as a miss —
    /// cache damage degrades performance, never results.
    ///
    /// `trace_digest` must be the full-trace digest of every cell's source
    /// (callers run matrices over a single source; pass
    /// `source.digest().as_u128()`).
    pub fn execute_checkpointed(
        &self,
        threads: NonZeroUsize,
        store: &CheckpointStore,
        trace_digest: u128,
    ) -> (Vec<RunOutcome>, CheckpointUsage) {
        let hits = AtomicU64::new(0);
        let misses = AtomicU64::new(0);
        let skipped = AtomicU64::new(0);
        let shards = ShardPolicy::Auto.shards_per_cell(threads, self.cells.len());
        let outcomes = parallel_map(&self.cells, threads, |cell| {
            let _span = span_with(|| format!("cell:{}", cell.label));
            let key = checkpoint_config_key(&cell.config, cell.source.top_sector());
            let snap = match store.load(trace_digest, &key) {
                Ok(Some(snap)) => {
                    hits.fetch_add(1, Ordering::Relaxed);
                    skipped.fetch_add(snap.logical_ops, Ordering::Relaxed);
                    Some(snap)
                }
                Ok(None) | Err(_) => {
                    misses.fetch_add(1, Ordering::Relaxed);
                    None
                }
            };
            let (report, wall) = cell.source.replay_checkpointed(
                &cell.config,
                snap.as_ref(),
                |snapshot| {
                    // Save failures are non-fatal: a checkpoint is an
                    // optimization, the replay's own result stands.
                    store.save(trace_digest, &key, snapshot).ok();
                },
                shards,
                Some((store, trace_digest)),
            );
            let metrics = RunMetrics {
                wall,
                records: report.logical_ops,
                peak_extent_segments: report.peak_extent_segments,
                phases: report.phases,
                sharding: report.sharding,
            };
            RunOutcome {
                label: cell.label.clone(),
                report,
                metrics,
            }
        });
        (
            outcomes,
            CheckpointUsage {
                hits: hits.into_inner(),
                misses: misses.into_inner(),
                records_skipped: skipped.into_inner(),
            },
        )
    }
}

/// How much work the checkpoint store saved during one
/// [`RunMatrix::execute_checkpointed`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointUsage {
    /// Cells that resumed from a stored checkpoint.
    pub hits: u64,
    /// Cells that replayed from record zero.
    pub misses: u64,
    /// Records skipped by resuming (summed over hit cells).
    pub records_skipped: u64,
}

/// Applies `f` to every item on up to `threads` scoped workers, returning
/// results in item order. Work is claimed from a shared index queue, so an
/// expensive item never strands idle workers behind a static partition.
pub fn parallel_map<T, R, F>(items: &[T], threads: NonZeroUsize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.get().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed index stored a result")
        })
        .collect()
}

/// How [`RunMatrix::execute_with`] splits its thread budget between matrix
/// cells and intra-trace shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// One thread per cell, no intra-trace splitting (the historical
    /// behavior).
    Serial,
    /// Spend threads on cells first, then split each cell's trace across
    /// the threads that cell-parallelism would leave idle:
    /// `ceil(threads / cells)` shards per cell. A single-cell run on an
    /// 8-thread budget replays its one trace 8-way sharded; an 8-cell
    /// matrix on the same budget runs serial cells 8-wide.
    Auto,
    /// Exactly this many shards per cell, regardless of cell count.
    Fixed(NonZeroUsize),
}

impl ShardPolicy {
    /// Intra-trace shards each cell's replay should use under this policy
    /// with `threads` total workers over `cells` cells.
    pub fn shards_per_cell(self, threads: NonZeroUsize, cells: usize) -> usize {
        match self {
            ShardPolicy::Serial => 1,
            ShardPolicy::Auto => threads.get().div_ceil(cells.max(1)),
            ShardPolicy::Fixed(k) => k.get(),
        }
    }
}

/// The thread budget: the `SMRSEEK_THREADS` environment variable when set
/// to a positive integer, otherwise the machine's available parallelism
/// (falling back to one worker where it cannot be queried). An unset,
/// empty, zero, or unparsable variable is ignored rather than an error —
/// an operator typo degrades to the default, never to a refusal to run.
pub fn default_threads() -> NonZeroUsize {
    std::env::var("SMRSEEK_THREADS")
        .ok()
        .as_deref()
        .and_then(parse_thread_override)
        .unwrap_or_else(|| std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN))
}

/// Parses an `SMRSEEK_THREADS` value; `None` for anything but a positive
/// integer.
fn parse_thread_override(value: &str) -> Option<NonZeroUsize> {
    value
        .trim()
        .parse::<usize>()
        .ok()
        .and_then(NonZeroUsize::new)
}

/// Per-cell metrics retained after the reports have been consumed into
/// figure rows, so the CLI can print a timing summary without holding the
/// full outcomes.
#[derive(Debug, Clone, Default)]
pub struct MatrixStats {
    /// `(label, metrics)` per executed cell, in cell order.
    pub cells: Vec<(String, RunMetrics)>,
}

impl MatrixStats {
    /// Captures the metrics of a slice of outcomes.
    pub fn from_outcomes(outcomes: &[RunOutcome]) -> Self {
        MatrixStats {
            cells: outcomes
                .iter()
                .map(|o| (o.label.clone(), o.metrics))
                .collect(),
        }
    }

    /// Sum of per-cell replay wall times (≈ CPU time spent simulating).
    pub fn total_wall(&self) -> Duration {
        self.cells.iter().map(|(_, m)| m.wall).sum()
    }

    /// Total logical records replayed across all cells.
    pub fn total_records(&self) -> u64 {
        self.cells.iter().map(|(_, m)| m.records).sum()
    }

    /// Largest extent map any cell reached, in segments.
    pub fn peak_extent_segments(&self) -> u64 {
        self.cells
            .iter()
            .map(|(_, m)| m.peak_extent_segments)
            .max()
            .unwrap_or(0)
    }

    /// Engine phase totals merged across every cell (all zeros unless
    /// [`smrseek_obs::set_phase_accounting`] was on during execution).
    pub fn phase_totals(&self) -> PhaseTotals {
        let mut totals = PhaseTotals::default();
        for (_, m) in &self.cells {
            totals.merge(&m.phases);
        }
        totals
    }

    /// Replay rate over *simulation* time: total records divided by the
    /// summed per-cell wall times. This is an aggregate rate per second
    /// of sim compute — not a per-worker figure (cells may have run on
    /// any number of workers) and not wall-clock throughput (workers
    /// overlap, so real elapsed time is lower than the sum).
    pub fn records_per_sim_sec(&self) -> f64 {
        self.total_records() as f64 / self.total_wall().as_secs_f64().max(1e-9)
    }

    /// One-line summary for the CLI's stderr timing report. When any cell
    /// fell back to serial replay after sharding was requested, the
    /// summary names how many and why — a degraded run must never look
    /// like a sharded one.
    pub fn summary(&self, command: &str) -> String {
        let mut line = format!(
            "{command}: {} runs, {} records in {:.2}s sim time \
             ({:.0} records/s of sim time, peak extent map {} segments)",
            self.cells.len(),
            self.total_records(),
            self.total_wall().as_secs_f64(),
            self.records_per_sim_sec(),
            self.peak_extent_segments(),
        );
        let mut reasons: Vec<&str> = Vec::new();
        let mut fallbacks = 0usize;
        for (_, m) in &self.cells {
            if let Some(reason) = m.sharding.fallback_reason() {
                fallbacks += 1;
                if !reasons.contains(&reason) {
                    reasons.push(reason);
                }
            }
        }
        if fallbacks > 0 {
            line.push_str(&format!(
                "; {fallbacks} of {} cells fell back to serial replay: {}",
                self.cells.len(),
                reasons.join("; "),
            ));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smrseek_trace::Lba;

    fn burst(n: u64) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| TraceRecord::write(i, Lba::new((i * 37) % 4096 * 8), 8))
            .collect()
    }

    fn two() -> NonZeroUsize {
        NonZeroUsize::new(2).expect("nonzero")
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1usize, 2, 8] {
            let threads = NonZeroUsize::new(threads).expect("nonzero");
            let doubled = parallel_map(&items, threads, |&x| x * 2);
            assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_excess_threads() {
        let none: Vec<u32> = vec![];
        assert!(parallel_map(&none, two(), |&x| x).is_empty());
        let one = [7u32];
        assert_eq!(parallel_map(&one, default_threads(), |&x| x + 1), vec![8]);
    }

    #[test]
    fn matrix_results_are_thread_count_invariant() {
        let source = TraceSource::from_records("burst", burst(2000));
        let configs = [
            SimConfig::no_ls(),
            SimConfig::log_structured(),
            SimConfig::ls_cache(),
        ];
        let matrix = RunMatrix::cross(&[source], &configs);
        assert_eq!(matrix.len(), 3);
        let serial = matrix.execute(NonZeroUsize::MIN);
        let parallel = matrix.execute(two());
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.report.layer_name, b.report.layer_name);
            assert_eq!(a.report.seeks, b.report.seeks);
            assert_eq!(a.report.phys_sectors, b.report.phys_sectors);
            assert_eq!(a.report.peak_extent_segments, b.report.peak_extent_segments);
        }
    }

    #[test]
    fn metrics_capture_replay_size() {
        let source = TraceSource::from_records("burst", burst(500));
        let matrix = RunMatrix::cross(&[source], &[SimConfig::log_structured()]);
        let outcomes = matrix.execute(NonZeroUsize::MIN);
        let m = outcomes[0].metrics;
        assert_eq!(m.records, 500);
        assert!(m.peak_extent_segments > 0);
        assert!(m.records_per_sec() > 0.0);
        let stats = MatrixStats::from_outcomes(&outcomes);
        assert_eq!(stats.total_records(), 500);
        assert!(stats.summary("test").contains("1 runs"));
    }

    #[test]
    fn summary_reports_aggregate_sim_time_rate() {
        let stats = MatrixStats {
            cells: vec![
                (
                    "a".into(),
                    RunMetrics {
                        wall: Duration::from_secs(2),
                        records: 600,
                        peak_extent_segments: 3,
                        phases: PhaseTotals::default(),
                        sharding: ShardOutcome::Serial,
                    },
                ),
                (
                    "b".into(),
                    RunMetrics {
                        wall: Duration::from_secs(1),
                        records: 300,
                        peak_extent_segments: 7,
                        phases: PhaseTotals::default(),
                        sharding: ShardOutcome::Sharded { shards: 2 },
                    },
                ),
            ],
        };
        // 900 records over 3 summed sim seconds: 300 records/s of sim
        // time, regardless of how many workers the cells ran on.
        assert!((stats.records_per_sim_sec() - 300.0).abs() < 1e-9);
        let line = stats.summary("x");
        assert!(line.contains("300 records/s of sim time"), "{line}");
        assert!(
            !line.contains("/worker"),
            "summed sim time is not a per-worker rate: {line}"
        );
    }

    #[test]
    fn mmap_source_matches_generated_source() {
        use smrseek_trace::binary::{write_binary_v2, MmapTrace};

        let records = burst(1500);
        let mut buf = Vec::new();
        write_binary_v2(&mut buf, &records).expect("vec write");
        let map = Arc::new(MmapTrace::from_bytes(buf).expect("own output maps"));
        let mapped = TraceSource::from_mmap("burst", Arc::clone(&map));
        let generated = TraceSource::from_records("burst", records.clone());
        assert_eq!(*mapped.records(), records, "records() materializes");

        let configs = [
            SimConfig::no_ls(),
            SimConfig::log_structured(),
            SimConfig::ls_cache(),
        ];
        let via_map = RunMatrix::cross(&[mapped], &configs).execute(two());
        let via_gen = RunMatrix::cross(&[generated], &configs).execute(two());
        for (a, b) in via_map.iter().zip(&via_gen) {
            assert_eq!(a.report.layer_name, b.report.layer_name);
            assert_eq!(a.report.seeks, b.report.seeks);
            assert_eq!(a.report.phys_sectors, b.report.phys_sectors);
            assert_eq!(a.report.logical_ops, b.report.logical_ops);
            assert_eq!(a.report.peak_extent_segments, b.report.peak_extent_segments);
        }
    }

    #[test]
    fn digest_and_top_are_supply_invariant() {
        use smrseek_trace::binary::{top_sector, write_binary_v2, MmapTrace};

        let records = burst(300);
        let mut buf = Vec::new();
        write_binary_v2(&mut buf, &records).expect("vec write");
        let map = Arc::new(MmapTrace::from_bytes(buf).expect("own output maps"));
        let mapped = TraceSource::from_mmap("burst", map);
        let generated = TraceSource::from_records("burst", records.clone());
        assert_eq!(mapped.digest(), generated.digest());
        assert_eq!(mapped.top_sector(), generated.top_sector());
        assert_eq!(generated.top_sector(), top_sector(&records));

        let other = TraceSource::from_records("other", burst(301));
        assert_ne!(other.digest(), generated.digest());
    }

    #[test]
    fn checkpointed_execution_is_result_invariant() {
        use smrseek_trace::binary::{write_binary_v2, MmapTrace};

        let records = burst(1200);
        let mut buf = Vec::new();
        write_binary_v2(&mut buf, &records).expect("vec write");
        let map = Arc::new(MmapTrace::from_bytes(buf).expect("own output maps"));
        let digest = smrseek_trace::digest::digest_records(&records).as_u128();

        let dir =
            std::env::temp_dir().join(format!("smrseek_runner_ckpt_test_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = CheckpointStore::new(&dir);

        for source in [
            TraceSource::from_mmap("burst", Arc::clone(&map)),
            TraceSource::from_records("burst", records.clone()),
        ] {
            std::fs::remove_dir_all(&dir).ok();
            let configs: Vec<SimConfig> = SimConfig::standard_sweep()
                .iter()
                .map(|c| c.with_checkpoint_every(500))
                .collect();
            let matrix = RunMatrix::cross(&[source], &configs);
            let cold_plain = matrix.execute(NonZeroUsize::MIN);
            let (cold, usage) = matrix.execute_checkpointed(two(), &store, digest);
            assert_eq!(usage.hits, 0);
            assert_eq!(usage.misses, 5);
            assert_eq!(usage.records_skipped, 0);
            // Warm pass: every cell resumes from the final checkpoint
            // (record 1000, the last multiple of 500 within 1200 records).
            let (warm, usage) = matrix.execute_checkpointed(two(), &store, digest);
            assert_eq!(usage.hits, 5);
            assert_eq!(usage.misses, 0);
            assert_eq!(usage.records_skipped, 5 * 1000);
            for ((a, b), c) in cold.iter().zip(&warm).zip(&cold_plain) {
                for report in [&b.report, &c.report] {
                    assert_eq!(a.report.layer_name, report.layer_name);
                    assert_eq!(a.report.seeks, report.seeks);
                    assert_eq!(a.report.phys_sectors, report.phys_sectors);
                    assert_eq!(a.report.logical_ops, report.logical_ops);
                    assert_eq!(a.report.peak_extent_segments, report.peak_extent_segments);
                }
                assert_eq!(a.metrics.records, 1200, "records stays the full count");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn matrix_stats_agree_with_per_cell_durations() {
        // The stderr summary and records_per_sim_sec must be derived from
        // exactly the per-cell durations the runner recorded.
        let source = TraceSource::from_records("burst", burst(800));
        let configs = [SimConfig::no_ls(), SimConfig::log_structured()];
        let outcomes = RunMatrix::cross(&[source], &configs).execute(two());
        let stats = MatrixStats::from_outcomes(&outcomes);

        let wall_sum: Duration = outcomes.iter().map(|o| o.metrics.wall).sum();
        let record_sum: u64 = outcomes.iter().map(|o| o.metrics.records).sum();
        assert_eq!(stats.total_wall(), wall_sum);
        assert_eq!(stats.total_records(), record_sum);
        assert_eq!(record_sum, 2 * 800);
        let expected_rate = record_sum as f64 / wall_sum.as_secs_f64().max(1e-9);
        assert!((stats.records_per_sim_sec() - expected_rate).abs() < 1e-6);

        let line = stats.summary("agree");
        assert!(line.starts_with("agree: 2 runs, 1600 records"), "{line}");
        assert!(
            line.contains(&format!("in {:.2}s sim time", wall_sum.as_secs_f64())),
            "summary must print the summed per-cell wall time: {line}"
        );
        assert!(
            line.contains(&format!("({expected_rate:.0} records/s of sim time")),
            "summary rate must match the per-cell durations: {line}"
        );
        assert!(
            line.contains(&format!(
                "peak extent map {} segments",
                stats.peak_extent_segments()
            )),
            "{line}"
        );
    }

    #[test]
    fn execute_merges_phase_totals_when_accounting_is_on() {
        // Phase accounting must surface per-cell totals through RunMetrics
        // and merge across the matrix. Serialized reports stay unaffected
        // (asserted separately in the engine's byte-identity tests).
        smrseek_obs::set_phase_accounting(true);
        let source = TraceSource::from_records("burst", burst(400));
        let outcomes = RunMatrix::cross(&[source], &[SimConfig::no_ls(), SimConfig::ls_cache()])
            .execute(two());
        smrseek_obs::set_phase_accounting(false);
        let stats = MatrixStats::from_outcomes(&outcomes);
        let totals = stats.phase_totals();
        for o in &outcomes {
            assert!(
                !o.metrics.phases.is_zero(),
                "cell {} recorded no phases",
                o.label
            );
            // Ingest is timed per decoded *block* since batched ingest
            // (400 records fit one block), not per record.
            assert_eq!(
                o.metrics.phases.calls(smrseek_obs::Phase::Ingest),
                1,
                "ingest is timed once per block"
            );
        }
        assert!(totals.nanos(smrseek_obs::Phase::Lookup) > 0);
        assert!(totals.nanos(smrseek_obs::Phase::Seek) > 0);
        assert_eq!(totals.calls(smrseek_obs::Phase::Ingest), 2);
        // Untimed runs stay all-zero so merged totals are not polluted.
        let cold = RunMatrix::cross(
            &[TraceSource::from_records("burst", burst(50))],
            &[SimConfig::no_ls()],
        )
        .execute(NonZeroUsize::MIN);
        assert!(cold[0].metrics.phases.is_zero());
    }

    #[test]
    fn summary_names_serial_fallbacks() {
        let metric = |sharding| RunMetrics {
            wall: Duration::from_secs(1),
            records: 100,
            peak_extent_segments: 0,
            phases: PhaseTotals::default(),
            sharding,
        };
        let clean = MatrixStats {
            cells: vec![
                ("a".into(), metric(ShardOutcome::Serial)),
                ("b".into(), metric(ShardOutcome::Sharded { shards: 4 })),
            ],
        };
        assert!(
            !clean.summary("x").contains("fell back"),
            "no fallback, no note"
        );
        let degraded = MatrixStats {
            cells: vec![
                ("a".into(), metric(ShardOutcome::Sharded { shards: 4 })),
                (
                    "b".into(),
                    metric(ShardOutcome::SerialFallback {
                        reason: "trace has fewer than two records",
                    }),
                ),
                (
                    "c".into(),
                    metric(ShardOutcome::SerialFallback {
                        reason: "trace has fewer than two records",
                    }),
                ),
            ],
        };
        let line = degraded.summary("x");
        assert!(
            line.contains(
                "2 of 3 cells fell back to serial replay: trace has fewer than two records"
            ),
            "{line}"
        );
    }

    #[test]
    fn executed_metrics_record_the_execution_shape() {
        let source = TraceSource::from_records("burst", burst(600));
        let matrix = RunMatrix::cross(&[source], &[SimConfig::log_structured()]);
        let serial = matrix.execute_with(two(), ShardPolicy::Serial);
        assert_eq!(serial[0].metrics.sharding, ShardOutcome::Serial);
        let fixed = matrix.execute_with(
            NonZeroUsize::MIN,
            ShardPolicy::Fixed(NonZeroUsize::new(4).expect("nonzero")),
        );
        assert_eq!(
            fixed[0].metrics.sharding,
            ShardOutcome::Sharded { shards: 4 }
        );
    }

    #[test]
    fn cells_can_be_labeled() {
        let source = TraceSource::from_records("t", burst(10));
        let cell = RunCell::new(source, SimConfig::no_ls()).with_label("t/NoLS");
        assert_eq!(cell.label, "t/NoLS");
    }

    #[test]
    fn shard_policy_splits_thread_budget() {
        let t = |n: usize| NonZeroUsize::new(n).expect("nonzero");
        assert_eq!(ShardPolicy::Serial.shards_per_cell(t(8), 1), 1);
        assert_eq!(ShardPolicy::Auto.shards_per_cell(t(8), 1), 8);
        assert_eq!(ShardPolicy::Auto.shards_per_cell(t(8), 3), 3);
        assert_eq!(ShardPolicy::Auto.shards_per_cell(t(8), 8), 1);
        assert_eq!(ShardPolicy::Auto.shards_per_cell(t(8), 20), 1);
        assert_eq!(ShardPolicy::Auto.shards_per_cell(t(2), 0), 2);
        assert_eq!(ShardPolicy::Fixed(t(4)).shards_per_cell(t(1), 9), 4);
    }

    #[test]
    fn thread_override_parses_positive_integers_only() {
        assert_eq!(parse_thread_override("3"), NonZeroUsize::new(3));
        assert_eq!(parse_thread_override(" 16 "), NonZeroUsize::new(16));
        assert_eq!(parse_thread_override("0"), None);
        assert_eq!(parse_thread_override(""), None);
        assert_eq!(parse_thread_override("-2"), None);
        assert_eq!(parse_thread_override("many"), None);
    }

    #[test]
    fn env_override_steers_default_threads() {
        std::env::set_var("SMRSEEK_THREADS", "3");
        assert_eq!(default_threads(), NonZeroUsize::new(3).expect("nonzero"));
        std::env::set_var("SMRSEEK_THREADS", "not-a-number");
        let fallback = std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN);
        assert_eq!(default_threads(), fallback);
        std::env::remove_var("SMRSEEK_THREADS");
        assert_eq!(default_threads(), fallback);
    }

    #[test]
    fn sharded_policies_are_report_invariant() {
        use smrseek_trace::binary::{write_binary_v2, MmapTrace};

        let records = burst(5000);
        let mut buf = Vec::new();
        write_binary_v2(&mut buf, &records).expect("vec write");
        let map = Arc::new(MmapTrace::from_bytes(buf).expect("own output maps"));
        let configs = [
            SimConfig::no_ls()
                .with_distances()
                .with_longseek_series(256),
            SimConfig::log_structured(),
        ];
        for source in [
            TraceSource::from_mmap("burst", map),
            TraceSource::from_records("burst", records),
        ] {
            let matrix = RunMatrix::cross(&[source], &configs);
            let serial = matrix.execute_with(two(), ShardPolicy::Serial);
            let auto = matrix.execute_with(two(), ShardPolicy::Auto);
            let fixed = matrix.execute_with(
                NonZeroUsize::MIN,
                ShardPolicy::Fixed(NonZeroUsize::new(7).expect("nonzero")),
            );
            for outcomes in [&auto, &fixed] {
                for (a, b) in serial.iter().zip(outcomes.iter()) {
                    assert_eq!(
                        serde_json::to_string(&a.report).expect("report serializes"),
                        serde_json::to_string(&b.report).expect("report serializes"),
                        "policy changed the report for {}",
                        a.label
                    );
                }
            }
        }
    }
}
