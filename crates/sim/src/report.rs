//! Plain-text table rendering for experiment output.

use std::fmt;

/// A simple aligned text table: header row plus data rows, columns padded
/// to the widest cell, numeric-looking cells right-aligned.
///
/// # Example
///
/// ```
/// use smrseek_sim::TextTable;
///
/// let mut t = TextTable::new(vec!["workload", "SAF"]);
/// t.row(vec!["w91".into(), "3.70".into()]);
/// let s = t.to_string();
/// assert!(s.contains("workload"));
/// assert!(s.contains("3.70"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row; missing cells render empty, extra cells are
    /// kept (the table widens).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn column_count(&self) -> usize {
        self.rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0)
    }
}

fn is_numeric(cell: &str) -> bool {
    !cell.is_empty()
        && cell.chars().all(|c| {
            c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'x' | '%' | 'i' | 'n' | 'f')
        })
        && cell.chars().any(|c| c.is_ascii_digit() || c == 'i')
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.column_count();
        let mut widths = vec![0usize; cols];
        for (w, h) in widths.iter_mut().zip(&self.headers) {
            *w = (*w).max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, &width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    f.write_str("  ")?;
                }
                if is_numeric(cell) {
                    write!(f, "{cell:>width$}")?;
                } else {
                    write!(f, "{cell:<width$}")?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["alpha".into(), "1.25".into()]);
        t.row(vec!["b".into(), "100.00".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // numeric right-aligned: widths equal
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[2].ends_with("1.25"));
    }

    #[test]
    fn tolerates_ragged_rows() {
        let mut t = TextTable::new(vec!["a"]);
        t.row(vec!["x".into(), "extra".into()]);
        t.row(vec![]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let s = t.to_string();
        assert!(s.contains("extra"));
    }

    #[test]
    fn numeric_detection() {
        assert!(is_numeric("3.14"));
        assert!(is_numeric("-42"));
        assert!(is_numeric("2.8x"));
        assert!(is_numeric("inf"));
        assert!(is_numeric("95%"));
        assert!(!is_numeric("w91"));
        assert!(!is_numeric(""));
        assert!(!is_numeric("name"));
    }
}
