//! Trace-driven simulation engine and experiment harnesses.
//!
//! This crate drives traces through translation layers
//! ([`smrseek_stl`]) and the seek model ([`smrseek_disk`]), producing
//! [`RunReport`]s; computes the paper's **seek amplification factor**
//! ([`Saf`]); and regenerates every table and figure of the evaluation via
//! [`experiments`].
//!
//! # Example
//!
//! ```
//! use smrseek_sim::{SimConfig, Simulation};
//! use smrseek_workloads::profiles;
//!
//! let trace = profiles::by_name("mds_0").unwrap().generate_scaled(1, 4000);
//! let nols = Simulation::new(&SimConfig::no_ls()).run_trace(&trace);
//! let ls = Simulation::new(&SimConfig::log_structured()).run_trace(&trace);
//! // mds_0 is write-intensive: log-structuring removes most seeks.
//! assert!(ls.seeks.total() < nols.seeks.total());
//! ```

#![warn(missing_docs)]
pub mod checkpoint;
pub mod engine;
pub mod experiments;
pub mod plotdata;
pub mod report;
pub mod runner;
pub mod saf;
pub mod scheduler;
pub mod tracecache;

pub use checkpoint::CheckpointStore;
pub use engine::{
    prepass_records_total, ConfigError, EngineSnapshot, LayerChoice, LayerSnapshot, RunReport,
    ShardOutcome, ShardableTrace, SimConfig, SimConfigBuilder, Simulation,
};
pub use report::TextTable;
pub use runner::{CheckpointUsage, RunMatrix, RunMetrics, RunOutcome, ShardPolicy, TraceSource};
pub use saf::Saf;
