//! Plot-ready CSV series for every figure.
//!
//! The experiment modules return structured results and render text
//! tables; this module flattens them into the long-format CSV series a
//! plotting tool (gnuplot, matplotlib, vega) consumes to redraw the
//! paper's figures. `smrseek plotdata --out DIR` writes one file per
//! figure.

use crate::experiments::{fig10, fig11, fig2, fig3, fig4, fig5, fig7, fig8, ExpOptions};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// CSV for Fig 2: one row per workload with the four seek counts.
pub fn fig2_csv(rows: &[fig2::Fig2Row]) -> String {
    let mut out = String::from("workload,family,nols_read,nols_write,ls_read,ls_write\n");
    for r in rows {
        writeln!(
            out,
            "{},{},{},{},{},{}",
            r.workload,
            r.family,
            r.nols.read_seeks,
            r.nols.write_seeks,
            r.ls.read_seeks,
            r.ls.write_seeks
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// CSV for Fig 3: long format, one row per (workload, bucket).
pub fn fig3_csv(series: &[fig3::Fig3Series]) -> String {
    let mut out = String::from("workload,bucket,op_index,ls_minus_nols_long_seeks\n");
    for s in series {
        for (i, &d) in s.diff.iter().enumerate() {
            writeln!(
                out,
                "{},{},{},{}",
                s.workload,
                i,
                i as u64 * s.bucket_ops,
                d
            )
            .expect("writing to String cannot fail");
        }
    }
    out
}

/// CSV for Fig 4: sampled CDF curves, one row per (workload, series, x).
pub fn fig4_csv(cdfs: &[fig4::Fig4Cdfs], points: usize) -> String {
    let mut out = String::from("workload,series,distance_sectors,fraction\n");
    for c in cdfs {
        let (nols, ls) = c.curves(points);
        for (x, f) in nols {
            writeln!(out, "{},NoLS,{x},{f:.6}", c.workload).expect("writing to String cannot fail");
        }
        for (x, f) in ls {
            writeln!(out, "{},LS,{x},{f:.6}", c.workload).expect("writing to String cannot fail");
        }
    }
    out
}

/// CSV for Fig 5: per-workload fragment-count CDF points.
pub fn fig5_csv(dists: &[fig5::Fig5Dist]) -> String {
    let mut out = String::from("workload,fragments_per_read,cdf\n");
    for d in dists {
        for (count, f) in d.cdf_points() {
            writeln!(out, "{},{count},{f:.6}", d.workload).expect("writing to String cannot fail");
        }
    }
    out
}

/// CSV for Fig 7: the write-pattern scatter.
pub fn fig7_csv(patterns: &[fig7::Fig7Pattern]) -> String {
    let mut out = String::from("workload,write_index,lba_sector\n");
    for p in patterns {
        for &(i, lba) in &p.points {
            writeln!(out, "{},{i},{lba}", p.workload).expect("writing to String cannot fail");
        }
    }
    out
}

/// CSV for Fig 8: mis-ordered write fractions.
pub fn fig8_csv(rows: &[fig8::Fig8Row]) -> String {
    let mut out = String::from("workload,misordered,total_writes,fraction\n");
    for r in rows {
        writeln!(
            out,
            "{},{},{},{:.6}",
            r.workload,
            r.misordered,
            r.total_writes,
            r.fraction()
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// CSV for Fig 10: popularity curve + cumulative cache size per fragment
/// rank.
pub fn fig10_csv(stats: &[fig10::Fig10Stats]) -> String {
    let mut out = String::from("workload,rank,access_count,fragment_bytes,cumulative_bytes\n");
    for s in stats {
        let mut cum = 0u64;
        for (rank, f) in s.tracker.popularity().iter().enumerate() {
            cum += f.bytes;
            writeln!(
                out,
                "{},{rank},{},{},{cum}",
                s.workload, f.access_count, f.bytes
            )
            .expect("writing to String cannot fail");
        }
    }
    out
}

/// CSV for Fig 11: one row per workload with the SAF of each bar.
pub fn fig11_csv(rows: &[fig11::Fig11Row]) -> String {
    let mut out = String::from("workload,family,ls,ls_defrag,ls_prefetch,ls_cache\n");
    for r in rows {
        writeln!(
            out,
            "{},{},{:.4},{:.4},{:.4},{:.4}",
            r.workload, r.family, r.ls.total, r.defrag.total, r.prefetch.total, r.cache.total
        )
        .expect("writing to String cannot fail");
    }
    out
}

/// Runs every figure experiment and writes its CSV into `dir` (created if
/// needed). Returns the written paths.
///
/// # Errors
///
/// Returns a message if the directory or any file cannot be written.
pub fn export_all(opts: &ExpOptions, dir: &Path) -> Result<Vec<PathBuf>, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let files: [(&str, String); 8] = [
        ("fig2.csv", fig2_csv(&fig2::run(opts))),
        ("fig3.csv", fig3_csv(&fig3::run(opts))),
        ("fig4.csv", fig4_csv(&fig4::run(opts), 65)),
        ("fig5.csv", fig5_csv(&fig5::run(opts))),
        ("fig7.csv", fig7_csv(&fig7::run(opts))),
        ("fig8.csv", fig8_csv(&fig8::run(opts))),
        ("fig10.csv", fig10_csv(&fig10::run(opts))),
        ("fig11.csv", fig11_csv(&fig11::run(opts))),
    ];
    let mut written = Vec::with_capacity(files.len());
    for (name, contents) in files {
        let path = dir.join(name);
        std::fs::write(&path, contents)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ExpOptions {
        ExpOptions { seed: 2, ops: 1500 }
    }

    fn parse_csv(s: &str) -> (Vec<String>, Vec<Vec<String>>) {
        let mut lines = s.lines();
        let header: Vec<String> = lines
            .next()
            .expect("has header")
            .split(',')
            .map(str::to_owned)
            .collect();
        let rows = lines
            .map(|l| l.split(',').map(str::to_owned).collect())
            .collect();
        (header, rows)
    }

    #[test]
    fn fig11_csv_has_21_rows_and_numeric_cells() {
        let csv = fig11_csv(&fig11::run(&opts()));
        let (header, rows) = parse_csv(&csv);
        assert_eq!(header.len(), 6);
        assert_eq!(rows.len(), 21);
        for row in &rows {
            assert_eq!(row.len(), 6);
            for cell in &row[2..] {
                cell.parse::<f64>().expect("SAF cells are numeric");
            }
        }
    }

    #[test]
    fn fig3_csv_covers_all_buckets() {
        let series = fig3::run(&opts());
        let csv = fig3_csv(&series);
        let (_, rows) = parse_csv(&csv);
        let expected: usize = series.iter().map(|s| s.diff.len()).sum();
        assert_eq!(rows.len(), expected);
    }

    #[test]
    fn fig4_csv_fractions_bounded() {
        let csv = fig4_csv(&fig4::run(&opts()), 17);
        let (_, rows) = parse_csv(&csv);
        assert_eq!(rows.len(), 4 * 2 * 17);
        for row in &rows {
            let f: f64 = row[3].parse().expect("fraction numeric");
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn fig10_csv_cumulative_is_monotone_per_workload() {
        let csv = fig10_csv(&fig10::run(&opts()));
        let (_, rows) = parse_csv(&csv);
        let mut last: Option<(String, u64)> = None;
        for row in &rows {
            let cum: u64 = row[4].parse().expect("cumulative numeric");
            if let Some((w, prev)) = &last {
                if *w == row[0] {
                    assert!(cum >= *prev, "{w}: {cum} < {prev}");
                }
            }
            last = Some((row[0].clone(), cum));
        }
    }

    #[test]
    fn export_all_writes_eight_files() {
        let dir =
            std::env::temp_dir().join(format!("smrseek_plotdata_test_{}", std::process::id()));
        let written = export_all(&opts(), &dir).expect("export succeeds");
        assert_eq!(written.len(), 8);
        for path in &written {
            let meta = std::fs::metadata(path).expect("file exists");
            assert!(meta.len() > 40, "{} too small", path.display());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
