//! Fig 7: examples of highly non-sequential LBA write patterns, from
//! `hm_1` (descending chunk bursts) and `w106` (small-scale randomness).
//!
//! The figure is a scatter of write LBA versus write index; this
//! experiment extracts the same window of write operations and summarizes
//! its descending-run structure.

use super::ExpOptions;
use crate::report::TextTable;
use serde::Serialize;
use smrseek_trace::{OpKind, TraceRecord};
use smrseek_workloads::profiles::{self, Profile};

/// The workloads plotted in Fig 7.
pub const WORKLOADS: [&str; 2] = ["hm_1", "w106"];

/// A window of write operations and its ordering structure.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Pattern {
    /// Workload name.
    pub workload: String,
    /// `(write_index, lba_sector)` points — the figure's scatter.
    pub points: Vec<(u64, u64)>,
    /// Number of strictly-descending adjacent pairs in the window.
    pub descending_pairs: u64,
    /// Descending adjacent pairs whose step is local (within 1 MiB) — the
    /// signature of Fig 7a's descending chunk bursts; uniform-random
    /// writes descend about half the time but almost never locally.
    pub local_descending_pairs: u64,
    /// Number of exactly-contiguous ascending pairs.
    pub contiguous_pairs: u64,
}

/// Extracts the first `window` writes of one workload.
pub fn run_one(profile: &Profile, opts: &ExpOptions, window: usize) -> Fig7Pattern {
    let trace = profile.generate_scaled(opts.seed, opts.ops);
    let writes: Vec<&TraceRecord> = trace
        .iter()
        .filter(|r| r.op == OpKind::Write)
        .take(window)
        .collect();
    let points: Vec<(u64, u64)> = writes
        .iter()
        .enumerate()
        .map(|(i, r)| (i as u64, r.lba.sector()))
        .collect();
    let mut descending_pairs = 0;
    let mut local_descending_pairs = 0;
    let mut contiguous_pairs = 0;
    const LOCAL_SECTORS: u64 = 2048; // 1 MiB
    for pair in writes.windows(2) {
        if pair[1].lba < pair[0].lba {
            descending_pairs += 1;
            if pair[0].lba.sector() - pair[1].lba.sector() <= LOCAL_SECTORS {
                local_descending_pairs += 1;
            }
        }
        if pair[0].is_followed_contiguously_by(pair[1]) {
            contiguous_pairs += 1;
        }
    }
    Fig7Pattern {
        workload: profile.name.to_owned(),
        points,
        descending_pairs,
        local_descending_pairs,
        contiguous_pairs,
    }
}

/// Extracts both Fig 7 panels (500-write windows).
pub fn run(opts: &ExpOptions) -> Vec<Fig7Pattern> {
    WORKLOADS
        .iter()
        .map(|name| {
            let profile = profiles::by_name(name).expect("Fig 7 workload exists");
            run_one(&profile, opts, 500)
        })
        .collect()
}

/// Renders ordering statistics of the write windows.
pub fn render(patterns: &[Fig7Pattern]) -> String {
    let mut table = TextTable::new(vec![
        "workload",
        "writes",
        "descending pairs",
        "local descending",
        "contiguous pairs",
    ]);
    for p in patterns {
        table.row(vec![
            p.workload.clone(),
            p.points.len().to_string(),
            p.descending_pairs.to_string(),
            p.local_descending_pairs.to_string(),
            p.contiguous_pairs.to_string(),
        ]);
    }
    format!("Fig 7 — non-sequential write patterns (first 500 writes)\n{table}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ExpOptions {
        ExpOptions { seed: 8, ops: 6000 }
    }

    #[test]
    fn hm_1_shows_descending_structure() {
        let p = run_one(&profiles::by_name("hm_1").unwrap(), &opts(), 500);
        assert!(
            p.local_descending_pairs * 100 / (p.points.len() as u64 - 1) >= 10,
            "hm_1 window should show local descending bursts: {} of {}",
            p.local_descending_pairs,
            p.points.len() - 1
        );
    }

    #[test]
    fn w106_is_random_not_descending_bursts() {
        let hm = run_one(&profiles::by_name("hm_1").unwrap(), &opts(), 500);
        let w106 = run_one(&profiles::by_name("w106").unwrap(), &opts(), 500);
        // w106's mostly-random writes show a lower *rate* of local
        // descending structure than hm_1's deliberate bursts (Fig 7a vs
        // 7b); absolute counts are not comparable because hm_1's window
        // holds fewer writes.
        let rate =
            |p: &Fig7Pattern| p.local_descending_pairs as f64 / (p.points.len() as f64 - 1.0);
        assert!(
            rate(&w106) < rate(&hm),
            "w106 rate {:.3} vs hm_1 rate {:.3}",
            rate(&w106),
            rate(&hm)
        );
    }

    #[test]
    fn window_is_bounded() {
        let p = run_one(&profiles::by_name("hm_1").unwrap(), &opts(), 100);
        assert!(p.points.len() <= 100);
        assert!(p.points.windows(2).all(|w| w[1].0 == w[0].0 + 1));
    }

    #[test]
    fn render_lists_workloads() {
        let text = render(&run(&ExpOptions { seed: 1, ops: 2000 }));
        assert!(text.contains("hm_1"));
        assert!(text.contains("w106"));
    }
}
