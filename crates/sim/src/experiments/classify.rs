//! §III's taxonomy made executable: each workload is classified as
//! **log-friendly** (net seek decrease), **log-agnostic** (small or no
//! change) or **log-sensitive** (significant amplification), and compared
//! against the classification the paper's own Figures 2 and 11 imply.

use super::ExpOptions;
use crate::engine::{SimConfig, Simulation};
use crate::report::TextTable;
use crate::saf::Saf;
use serde::{Deserialize, Serialize};
use smrseek_workloads::profiles::{self, Profile};
use std::fmt;

/// One workload's seek-behaviour class under log-structured translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeekClass {
    /// Net seek reduction (SAF below [`FRIENDLY_BELOW`]).
    LogFriendly,
    /// Small or no change.
    LogAgnostic,
    /// Significant amplification (SAF above [`SENSITIVE_ABOVE`]).
    LogSensitive,
}

impl fmt::Display for SeekClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeekClass::LogFriendly => f.write_str("log-friendly"),
            SeekClass::LogAgnostic => f.write_str("log-agnostic"),
            SeekClass::LogSensitive => f.write_str("log-sensitive"),
        }
    }
}

/// SAF below this is a net win.
pub const FRIENDLY_BELOW: f64 = 0.9;
/// SAF above this is significant amplification.
pub const SENSITIVE_ABOVE: f64 = 1.25;

/// Classifies a total SAF.
pub fn classify_saf(saf: f64) -> SeekClass {
    if saf < FRIENDLY_BELOW {
        SeekClass::LogFriendly
    } else if saf <= SENSITIVE_ABOVE {
        SeekClass::LogAgnostic
    } else {
        SeekClass::LogSensitive
    }
}

/// The classification the paper implies for each workload (§III's
/// discussion of Fig 2 plus Fig 11's bars), or `None` where the paper is
/// not explicit.
pub fn paper_class(workload: &str) -> Option<SeekClass> {
    match workload {
        // §V: all MSR except usr_1, hm_1 have SAF < 1.
        "usr_0" | "src2_2" | "web_0" | "wdev_0" | "mds_0" | "rsrch_0" | "ts_0" => {
            Some(SeekClass::LogFriendly)
        }
        "usr_1" | "hm_1" => Some(SeekClass::LogSensitive),
        // §III on Fig 2: huge increases for w91, w33, w20; modest for w36.
        "w91" | "w20" => Some(SeekClass::LogSensitive),
        "w36" | "w76" | "w84" | "w106" => Some(SeekClass::LogFriendly),
        // "significant but not overwhelming": hm_1, w93, w55 — w93/w55
        // straddle the boundary.
        _ => None,
    }
}

/// One classified workload.
#[derive(Debug, Clone, Serialize)]
pub struct ClassifyRow {
    /// Workload name.
    pub workload: String,
    /// Measured SAF of plain LS.
    pub saf: Saf,
    /// Measured class.
    pub measured: SeekClass,
    /// The paper's implied class, where explicit.
    pub paper: Option<SeekClass>,
}

impl ClassifyRow {
    /// Whether the measured class matches the paper (true when the paper
    /// is silent).
    pub fn agrees(&self) -> bool {
        self.paper.is_none_or(|p| p == self.measured)
    }
}

/// Classifies one workload.
pub fn run_one(profile: &Profile, opts: &ExpOptions) -> ClassifyRow {
    let trace = profile.generate_scaled(opts.seed, opts.ops);
    let base = Simulation::new(&SimConfig::no_ls()).run_trace(&trace).seeks;
    let saf = Saf::from_stats(
        &Simulation::new(&SimConfig::log_structured())
            .run_trace(&trace)
            .seeks,
        &base,
    );
    ClassifyRow {
        workload: profile.name.to_owned(),
        saf,
        measured: classify_saf(saf.total),
        paper: paper_class(profile.name),
    }
}

/// Classifies every Table-I workload.
pub fn run(opts: &ExpOptions) -> Vec<ClassifyRow> {
    profiles::all().iter().map(|p| run_one(p, opts)).collect()
}

/// Renders the classification table.
pub fn render(rows: &[ClassifyRow]) -> String {
    let mut table = TextTable::new(vec!["workload", "SAF", "measured", "paper", "agree"]);
    for row in rows {
        table.row(vec![
            row.workload.clone(),
            format!("{:.2}", row.saf.total),
            row.measured.to_string(),
            row.paper.map_or_else(|| "—".to_owned(), |c| c.to_string()),
            if row.agrees() { "yes" } else { "NO" }.to_owned(),
        ]);
    }
    let agreements = rows.iter().filter(|r| r.agrees()).count();
    format!(
        "Workload classification under log-structured translation\n{table}\
         agreement with the paper: {agreements}/{} workloads\n",
        rows.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_partition_the_line() {
        assert_eq!(classify_saf(0.1), SeekClass::LogFriendly);
        assert_eq!(classify_saf(0.89), SeekClass::LogFriendly);
        assert_eq!(classify_saf(1.0), SeekClass::LogAgnostic);
        assert_eq!(classify_saf(1.25), SeekClass::LogAgnostic);
        assert_eq!(classify_saf(1.26), SeekClass::LogSensitive);
        assert_eq!(classify_saf(5.0), SeekClass::LogSensitive);
    }

    #[test]
    fn paper_classification_reproduced() {
        let opts = ExpOptions { seed: 6, ops: 6000 };
        let rows = run(&opts);
        assert_eq!(rows.len(), 21);
        let explicit: Vec<&ClassifyRow> = rows.iter().filter(|r| r.paper.is_some()).collect();
        let agreements = explicit.iter().filter(|r| r.agrees()).count();
        assert_eq!(
            agreements,
            explicit.len(),
            "disagreements: {:?}",
            explicit
                .iter()
                .filter(|r| !r.agrees())
                .map(|r| (&r.workload, r.saf.total))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn all_three_classes_present() {
        let opts = ExpOptions { seed: 6, ops: 6000 };
        let rows = run(&opts);
        for class in [
            SeekClass::LogFriendly,
            SeekClass::LogAgnostic,
            SeekClass::LogSensitive,
        ] {
            assert!(
                rows.iter().any(|r| r.measured == class),
                "no workload classified {class}"
            );
        }
    }

    #[test]
    fn render_reports_agreement() {
        let opts = ExpOptions { seed: 6, ops: 2000 };
        let text = render(&run(&opts));
        assert!(text.contains("agreement with the paper"));
        assert!(text.contains("log-sensitive"));
    }
}
