//! Adaptive mitigation: the online policy engine against every fixed
//! mechanism, across all 21 Table-I workloads.
//!
//! The paper evaluates each mitigation (defragmentation, prefetching,
//! selective caching) separately and observes that the best choice is
//! workload-dependent — defragmentation *worsens* single-pass scans like
//! `w20` while rescuing `w91`. The adaptive configuration
//! ([`SimConfig::ls_adaptive`]) stacks all three mechanisms behind an
//! online per-region heat classifier that gates each one, so a single
//! static configuration should track the per-workload best.
//!
//! Acceptance: adaptive lands within a small tolerance of the best fixed
//! mechanism on every workload, and strictly beats static
//! defragmentation on `w20` (where unconditional defrag is ~2.8x worse
//! than plain LS).

use super::ExpOptions;
use crate::engine::{SimConfig, Simulation};
use crate::report::TextTable;
use crate::runner::{MatrixStats, RunMatrix, TraceSource};
use crate::saf::Saf;
use crate::tracecache;
use serde::Serialize;
use smrseek_policy::PolicyStats;
use smrseek_workloads::profiles::{self, Family, Profile};
use std::num::NonZeroUsize;
use std::path::Path;

/// Tolerance for "adaptive tracks the best fixed mechanism": adaptive's
/// total SAF may exceed the per-workload best by at most this factor.
pub const TOLERANCE: f64 = 1.05;

/// One workload's SAFs under every mitigation strategy.
#[derive(Debug, Clone, Serialize)]
pub struct AdaptiveRow {
    /// Workload name.
    pub workload: String,
    /// Trace family.
    pub family: Family,
    /// Plain log-structured translation (no mitigation).
    pub ls: Saf,
    /// Static unconditional defragmentation.
    pub defrag: Saf,
    /// Static look-ahead/look-behind prefetching.
    pub prefetch: Saf,
    /// Static 64 MB selective caching.
    pub cache: Saf,
    /// The adaptive policy engine gating all three mechanisms.
    pub adaptive: Saf,
    /// Name of the best fixed configuration for this workload.
    pub best_fixed: String,
    /// Gate decisions of the adaptive run (always present — the adaptive
    /// config carries a policy).
    pub policy: Option<PolicyStats>,
}

impl AdaptiveRow {
    /// The best (lowest total-SAF) fixed alternative: plain LS or one
    /// static mechanism.
    pub fn best_fixed_saf(&self) -> f64 {
        [
            self.ls.total,
            self.defrag.total,
            self.prefetch.total,
            self.cache.total,
        ]
        .into_iter()
        .fold(f64::INFINITY, f64::min)
    }

    /// Whether adaptive's total SAF is within `TOLERANCE` of the best
    /// fixed alternative.
    pub fn adaptive_tracks_best(&self) -> bool {
        self.adaptive.total <= self.best_fixed_saf() * TOLERANCE + 1e-9
    }
}

/// The full comparison plus the acceptance verdicts.
#[derive(Debug, Clone, Serialize)]
pub struct AdaptiveReport {
    /// The per-workload tolerance factor applied.
    pub tolerance: f64,
    /// One row per Table-I workload, in profile order.
    pub rows: Vec<AdaptiveRow>,
    /// Adaptive within tolerance of the best fixed mechanism everywhere.
    pub all_within_tolerance: bool,
    /// Adaptive strictly better than static defrag on `w20`.
    pub w20_beats_defrag: bool,
}

/// The six configurations compared per workload: the standard sweep
/// (NoLS baseline, plain LS, one mechanism each) plus the adaptive stack.
fn configs() -> [SimConfig; 6] {
    let [nols, ls, defrag, prefetch, cache] = SimConfig::standard_sweep();
    [nols, ls, defrag, prefetch, cache, SimConfig::ls_adaptive()]
}

/// Names for the fixed alternatives, index-aligned with
/// [`AdaptiveRow::best_fixed_saf`]'s candidate order.
const FIXED_NAMES: [&str; 4] = ["LS", "LS+defrag", "LS+prefetch", "LS+cache"];

fn build_report(rows: Vec<AdaptiveRow>) -> AdaptiveReport {
    let all_within_tolerance = rows.iter().all(AdaptiveRow::adaptive_tracks_best);
    let w20_beats_defrag = rows
        .iter()
        .find(|r| r.workload == "w20")
        .is_none_or(|r| r.adaptive.total < r.defrag.total);
    AdaptiveReport {
        tolerance: TOLERANCE,
        rows,
        all_within_tolerance,
        w20_beats_defrag,
    }
}

/// Simulates one workload under all six configurations.
pub fn run_one(profile: &Profile, opts: &ExpOptions) -> AdaptiveRow {
    let trace = profile.generate_scaled(opts.seed, opts.ops);
    let reports: Vec<_> = configs()
        .iter()
        .map(|c| Simulation::new(c).run_trace(&trace))
        .collect();
    row_from_reports(profile, &reports.iter().collect::<Vec<_>>())
}

fn row_from_reports(profile: &Profile, reports: &[&crate::engine::RunReport]) -> AdaptiveRow {
    let base = reports[0].seeks;
    let saf = |i: usize| Saf::from_stats(&reports[i].seeks, &base);
    let row = AdaptiveRow {
        workload: profile.name.to_owned(),
        family: profile.family,
        ls: saf(1),
        defrag: saf(2),
        prefetch: saf(3),
        cache: saf(4),
        adaptive: saf(5),
        best_fixed: String::new(),
        policy: reports[5].policy,
    };
    let best = row.best_fixed_saf();
    let fixed = [row.ls, row.defrag, row.prefetch, row.cache];
    let name = FIXED_NAMES
        .iter()
        .zip(fixed)
        .find(|(_, s)| s.total <= best)
        .map_or("LS", |(n, _)| n);
    AdaptiveRow {
        best_fixed: name.to_owned(),
        ..row
    }
}

/// Runs the comparison on every Table-I workload.
pub fn run(opts: &ExpOptions) -> AdaptiveReport {
    run_with_threads(opts, NonZeroUsize::MIN).0
}

/// Runs the comparison as one parallel run matrix (six cells per
/// workload) on up to `threads` workers. The report is identical to
/// [`run`]'s for any thread count.
pub fn run_with_threads(opts: &ExpOptions, threads: NonZeroUsize) -> (AdaptiveReport, MatrixStats) {
    run_cached(opts, threads, None)
}

/// [`run_with_threads`] replaying from the binary trace cache under
/// `cache_dir` (mmapped when present, generated and written on first
/// use). The report is identical to [`run`]'s.
pub fn run_cached(
    opts: &ExpOptions,
    threads: NonZeroUsize,
    cache_dir: Option<&Path>,
) -> (AdaptiveReport, MatrixStats) {
    let all = profiles::all();
    let sources: Vec<TraceSource> = all
        .iter()
        .map(|p| tracecache::profile_source(p, opts, cache_dir))
        .collect();
    let matrix = RunMatrix::cross(&sources, &configs());
    let outcomes = matrix.execute(threads);
    let stats = MatrixStats::from_outcomes(&outcomes);
    let rows = all
        .iter()
        .zip(outcomes.chunks_exact(6))
        .map(|(profile, cells)| {
            let reports: Vec<_> = cells.iter().map(|c| &c.report).collect();
            row_from_reports(profile, &reports)
        })
        .collect();
    (build_report(rows), stats)
}

/// Renders the comparison and the acceptance verdicts.
pub fn render(report: &AdaptiveReport) -> String {
    let mut out = String::new();
    for family in [Family::Msr, Family::CloudPhysics] {
        let mut table = TextTable::new(vec![
            "workload",
            "LS",
            "defrag",
            "prefetch",
            "cache",
            "adaptive",
            "best fixed",
            "vs best",
            "flips",
        ]);
        for row in report.rows.iter().filter(|r| r.family == family) {
            let best = row.best_fixed_saf();
            let vs = if best > 0.0 {
                format!("{:+.1}%", 100.0 * (row.adaptive.total / best - 1.0))
            } else {
                "n/a".to_owned()
            };
            table.row(vec![
                row.workload.clone(),
                format!("{:.2}", row.ls.total),
                format!("{:.2}", row.defrag.total),
                format!("{:.2}", row.prefetch.total),
                format!("{:.2}", row.cache.total),
                format!("{:.2}", row.adaptive.total),
                row.best_fixed.clone(),
                vs,
                row.policy.map_or(0, |p| p.total_flips()).to_string(),
            ]);
        }
        out.push_str(&format!(
            "Adaptive policy vs fixed mechanisms, total SAF ({family} workloads)\n{table}\n"
        ));
    }
    out.push_str(&format!(
        "adaptive within {:.0}% of best fixed everywhere: {}\n",
        100.0 * (report.tolerance - 1.0),
        if report.all_within_tolerance {
            "yes"
        } else {
            "NO"
        }
    ));
    out.push_str(&format!(
        "adaptive strictly beats static defrag on w20: {}\n",
        if report.w20_beats_defrag { "yes" } else { "NO" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ExpOptions {
        ExpOptions { seed: 9, ops: 6000 }
    }

    #[test]
    fn adaptive_tracks_best_fixed_everywhere() {
        let report = run(&opts());
        assert_eq!(report.rows.len(), profiles::all().len());
        for row in &report.rows {
            assert!(
                row.adaptive_tracks_best(),
                "{}: adaptive {:.3} vs best fixed {} {:.3}",
                row.workload,
                row.adaptive.total,
                row.best_fixed,
                row.best_fixed_saf()
            );
        }
        assert!(report.all_within_tolerance);
    }

    #[test]
    fn adaptive_beats_static_defrag_on_w20() {
        let row = run_one(&profiles::by_name("w20").unwrap(), &opts());
        assert!(
            row.adaptive.total < row.defrag.total,
            "w20: adaptive {:.3} must beat static defrag {:.3}",
            row.adaptive.total,
            row.defrag.total
        );
    }

    #[test]
    fn policy_stats_cover_every_record() {
        // Generators may emit a few more records than requested (bursty
        // profiles round per-burst); the policy must observe every one.
        let profile = profiles::by_name("w91").unwrap();
        let generated = profile.generate_scaled(opts().seed, opts().ops).len();
        let row = run_one(&profile, &opts());
        let policy = row.policy.expect("adaptive run reports policy stats");
        assert_eq!(policy.records_observed, generated as u64);
    }

    #[test]
    fn parallel_execution_matches_serial() {
        let o = ExpOptions { seed: 9, ops: 1500 };
        let serial = run(&o);
        let (parallel, stats) = run_with_threads(&o, NonZeroUsize::new(4).expect("nonzero"));
        assert_eq!(stats.cells.len(), 6 * serial.rows.len());
        for (a, b) in serial.rows.iter().zip(&parallel.rows) {
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.adaptive.total, b.adaptive.total, "{}", a.workload);
            assert_eq!(a.best_fixed, b.best_fixed, "{}", a.workload);
        }
    }

    #[test]
    fn render_shows_verdicts() {
        let report = run(&ExpOptions { seed: 2, ops: 2000 });
        let text = render(&report);
        assert!(text.contains("Adaptive policy vs fixed mechanisms"));
        assert!(text.contains("adaptive within 5% of best fixed everywhere"));
        assert!(text.contains("w20"));
    }
}
