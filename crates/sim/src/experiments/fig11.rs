//! Fig 11: seek amplification factor of log-structured translation, alone
//! and combined with each of the three mechanisms, for every workload.
//!
//! The paper's headline result: MSR workloads are mostly log-friendly
//! (SAF < 1 except `usr_1`, `hm_1`); most CloudPhysics workloads have
//! SAF > 1 (up to ~3.7–5 for `w91`); selective caching performs best
//! overall (w91 3.7 → 0.2); defragmentation can hurt (w20 worsens ~2.8x).

use super::ExpOptions;
use crate::engine::{SimConfig, Simulation};
use crate::report::TextTable;
use crate::saf::Saf;
use serde::{Deserialize, Serialize};
use smrseek_workloads::profiles::{self, Family, Profile};

/// SAF results of one workload under the four translated configurations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Row {
    /// Workload name.
    pub workload: String,
    /// Trace family.
    pub family: Family,
    /// Plain log-structured translation.
    pub ls: Saf,
    /// LS + opportunistic defragmentation.
    pub defrag: Saf,
    /// LS + look-ahead-behind prefetching.
    pub prefetch: Saf,
    /// LS + 64 MB selective caching.
    pub cache: Saf,
}

/// Runs one workload through the baseline and the four configurations.
pub fn run_one(profile: &Profile, opts: &ExpOptions) -> Fig11Row {
    let trace = profile.generate_scaled(opts.seed, opts.ops);
    let base = Simulation::new(&SimConfig::no_ls()).run_trace(&trace).seeks;
    let saf_of = |config: &SimConfig| {
        Saf::from_stats(&Simulation::new(config).run_trace(&trace).seeks, &base)
    };
    Fig11Row {
        workload: profile.name.to_owned(),
        family: profile.family,
        ls: saf_of(&SimConfig::log_structured()),
        defrag: saf_of(&SimConfig::ls_defrag()),
        prefetch: saf_of(&SimConfig::ls_prefetch()),
        cache: saf_of(&SimConfig::ls_cache()),
    }
}

/// Runs every Table-I workload (Fig 11a + 11b).
pub fn run(opts: &ExpOptions) -> Vec<Fig11Row> {
    profiles::all().iter().map(|p| run_one(p, opts)).collect()
}

/// Renders rows as the text analogue of Fig 11's grouped bars.
pub fn render(rows: &[Fig11Row]) -> String {
    let mut out = String::new();
    for family in [Family::Msr, Family::CloudPhysics] {
        let mut table = TextTable::new(vec![
            "workload",
            "LS",
            "LS+defrag",
            "LS+prefetch",
            "LS+cache",
        ]);
        for row in rows.iter().filter(|r| r.family == family) {
            table.row(vec![
                row.workload.clone(),
                format!("{:.2}", row.ls.total),
                format!("{:.2}", row.defrag.total),
                format!("{:.2}", row.prefetch.total),
                format!("{:.2}", row.cache.total),
            ]);
        }
        out.push_str(&format!(
            "Fig 11{} — seek amplification factor ({} workloads)\n",
            if family == Family::Msr { "a" } else { "b" },
            family
        ));
        out.push_str(&table.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_opts() -> ExpOptions {
        ExpOptions { seed: 7, ops: 6000 }
    }

    #[test]
    fn w91_is_log_sensitive_and_cache_fixes_it() {
        let profile = profiles::by_name("w91").unwrap();
        let row = run_one(&profile, &small_opts());
        assert!(
            row.ls.total > 1.0,
            "w91 LS SAF {:.2} must exceed 1",
            row.ls.total
        );
        assert!(
            row.cache.total < row.ls.total / 2.0,
            "cache SAF {:.2} must be far below LS {:.2}",
            row.cache.total,
            row.ls.total
        );
    }

    #[test]
    fn write_intensive_msr_is_log_friendly() {
        for name in ["mds_0", "rsrch_0", "wdev_0"] {
            let profile = profiles::by_name(name).unwrap();
            let row = run_one(&profile, &small_opts());
            assert!(
                row.ls.total < 1.0,
                "{name}: LS SAF {:.2} should be below 1",
                row.ls.total
            );
        }
    }

    #[test]
    fn defrag_hurts_single_pass_scans() {
        let profile = profiles::by_name("w20").unwrap();
        let row = run_one(&profile, &small_opts());
        assert!(
            row.defrag.total > row.ls.total,
            "w20: defrag SAF {:.2} should exceed LS {:.2}",
            row.defrag.total,
            row.ls.total
        );
    }

    #[test]
    fn prefetch_helps_misordered_workloads() {
        let profile = profiles::by_name("w84").unwrap();
        let row = run_one(&profile, &small_opts());
        assert!(
            row.prefetch.total < row.ls.total * 0.8,
            "w84: prefetch SAF {:.2} should beat LS {:.2}",
            row.prefetch.total,
            row.ls.total
        );
    }

    #[test]
    fn render_contains_both_families() {
        let rows = vec![
            run_one(&profiles::by_name("hm_1").unwrap(), &small_opts()),
            run_one(&profiles::by_name("w91").unwrap(), &small_opts()),
        ];
        let text = render(&rows);
        assert!(text.contains("Fig 11a"));
        assert!(text.contains("Fig 11b"));
        assert!(text.contains("hm_1"));
        assert!(text.contains("w91"));
    }
}
