//! Ablations of the design choices DESIGN.md calls out.
//!
//! The paper fixes several parameters (64 MB cache; unconditional
//! defragmentation; an unspecified prefetch window). These sweeps
//! characterize the sensitivity of each mechanism to its parameters, and
//! evaluate mechanism stacking (which the paper leaves to future work).

use super::ExpOptions;
use crate::engine::{simulate, SimConfig};
use crate::report::TextTable;
use crate::saf::Saf;
use serde::Serialize;
use smrseek_stl::{CacheConfig, DefragConfig, DefragTiming, PrefetchConfig};
use smrseek_trace::{KIB, MIB};
use smrseek_workloads::profiles::{self, Profile};

/// One point of a parameter sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// Human-readable parameter value ("16 MiB", "N=4", ...).
    pub param: String,
    /// Resulting SAF.
    pub saf: Saf,
}

/// A parameter sweep of one mechanism on one workload.
#[derive(Debug, Clone, Serialize)]
pub struct Sweep {
    /// Workload name.
    pub workload: String,
    /// What was swept.
    pub mechanism: String,
    /// Baseline (plain LS) SAF for reference.
    pub ls: Saf,
    /// The sweep points, in parameter order.
    pub points: Vec<SweepPoint>,
}

fn sweep_base(profile: &Profile, opts: &ExpOptions) -> (Vec<smrseek_trace::TraceRecord>, Saf) {
    let trace = profile.generate_scaled(opts.seed, opts.ops);
    let base = simulate(&trace, &SimConfig::no_ls()).seeks;
    let ls = Saf::from_stats(&simulate(&trace, &SimConfig::log_structured()).seeks, &base);
    (trace, ls)
}

/// Sweeps the selective-cache capacity (4–256 MiB; the paper fixes 64 MB).
pub fn cache_size(profile: &Profile, opts: &ExpOptions) -> Sweep {
    let (trace, ls) = sweep_base(profile, opts);
    let base = simulate(&trace, &SimConfig::no_ls()).seeks;
    let points = [4u64, 16, 64, 128, 256]
        .iter()
        .map(|mib| {
            let config = SimConfig::ls_with(
                None,
                None,
                Some(CacheConfig {
                    capacity_bytes: mib * MIB,
                }),
            );
            SweepPoint {
                param: format!("{mib} MiB"),
                saf: Saf::from_stats(&simulate(&trace, &config).seeks, &base),
            }
        })
        .collect();
    Sweep {
        workload: profile.name.to_owned(),
        mechanism: "selective-cache capacity".into(),
        ls,
        points,
    }
}

/// Sweeps the defragmentation gates: `N` (min fragments) and `k`
/// (min accesses).
pub fn defrag_thresholds(profile: &Profile, opts: &ExpOptions) -> Sweep {
    let (trace, ls) = sweep_base(profile, opts);
    let base = simulate(&trace, &SimConfig::no_ls()).seeks;
    let params = [
        (2usize, 1u64),
        (4, 1),
        (8, 1),
        (2, 2),
        (2, 4),
        (4, 2),
    ];
    let points = params
        .iter()
        .map(|&(n, k)| {
            let config = SimConfig::ls_with(
                Some(DefragConfig {
                    min_fragments: n,
                    min_accesses: k,
                    ..DefragConfig::default()
                }),
                None,
                None,
            );
            SweepPoint {
                param: format!("N={n} k={k}"),
                saf: Saf::from_stats(&simulate(&trace, &config).seeks, &base),
            }
        })
        .collect();
    Sweep {
        workload: profile.name.to_owned(),
        mechanism: "defrag thresholds".into(),
        ls,
        points,
    }
}

/// Sweeps the look-ahead/look-behind window (the paper leaves it
/// unspecified; our default is 256 KB each way).
pub fn prefetch_window(profile: &Profile, opts: &ExpOptions) -> Sweep {
    let (trace, ls) = sweep_base(profile, opts);
    let base = simulate(&trace, &SimConfig::no_ls()).seeks;
    let points = [32u64, 64, 128, 256, 512]
        .iter()
        .map(|kib| {
            let sectors = kib * KIB / 512;
            let config = SimConfig::ls_with(
                None,
                Some(PrefetchConfig {
                    behind_sectors: sectors,
                    ahead_sectors: sectors,
                    ..PrefetchConfig::default()
                }),
                None,
            );
            SweepPoint {
                param: format!("{kib} KiB"),
                saf: Saf::from_stats(&simulate(&trace, &config).seeks, &base),
            }
        })
        .collect();
    Sweep {
        workload: profile.name.to_owned(),
        mechanism: "prefetch window".into(),
        ls,
        points,
    }
}

/// Sweeps defragmentation *timing*: immediate (Alg. 1 as printed) versus
/// idle-batched rewrites at several idle-gap thresholds. Batching pays the
/// frontier seek once per batch, so it should soften defrag's penalty on
/// single-pass workloads.
pub fn defrag_timing(profile: &Profile, opts: &ExpOptions) -> Sweep {
    let (trace, ls) = sweep_base(profile, opts);
    let base = simulate(&trace, &SimConfig::no_ls()).seeks;
    let timings: [(&str, DefragTiming); 4] = [
        ("immediate", DefragTiming::Immediate),
        ("idle 1ms", DefragTiming::Idle { min_gap_us: 1_000 }),
        ("idle 10ms", DefragTiming::Idle { min_gap_us: 10_000 }),
        ("idle 100ms", DefragTiming::Idle { min_gap_us: 100_000 }),
    ];
    let points = timings
        .iter()
        .map(|&(name, timing)| {
            let config = SimConfig::ls_with(
                Some(DefragConfig {
                    timing,
                    ..DefragConfig::default()
                }),
                None,
                None,
            );
            SweepPoint {
                param: name.to_owned(),
                saf: Saf::from_stats(&simulate(&trace, &config).seeks, &base),
            }
        })
        .collect();
    Sweep {
        workload: profile.name.to_owned(),
        mechanism: "defrag timing".into(),
        ls,
        points,
    }
}

/// Evaluates mechanism stacking: each mechanism alone, pairs, and all
/// three together (an extension beyond the paper's separate evaluation).
pub fn stacking(profile: &Profile, opts: &ExpOptions) -> Sweep {
    let (trace, ls) = sweep_base(profile, opts);
    let base = simulate(&trace, &SimConfig::no_ls()).seeks;
    let d = Some(DefragConfig::default());
    let p = Some(PrefetchConfig::default());
    let c = Some(CacheConfig::default());
    let combos: [(&str, SimConfig); 7] = [
        ("defrag", SimConfig::ls_with(d, None, None)),
        ("prefetch", SimConfig::ls_with(None, p, None)),
        ("cache", SimConfig::ls_with(None, None, c)),
        ("defrag+prefetch", SimConfig::ls_with(d, p, None)),
        ("defrag+cache", SimConfig::ls_with(d, None, c)),
        ("prefetch+cache", SimConfig::ls_with(None, p, c)),
        ("all three", SimConfig::ls_with(d, p, c)),
    ];
    let points = combos
        .iter()
        .map(|(name, config)| SweepPoint {
            param: (*name).to_owned(),
            saf: Saf::from_stats(&simulate(&trace, config).seeks, &base),
        })
        .collect();
    Sweep {
        workload: profile.name.to_owned(),
        mechanism: "mechanism stacking".into(),
        ls,
        points,
    }
}

/// Runs every ablation on a representative log-sensitive workload (`w91`)
/// plus the defrag-hostile `w20`.
pub fn run(opts: &ExpOptions) -> Vec<Sweep> {
    let w91 = profiles::by_name("w91").expect("w91 exists");
    let w20 = profiles::by_name("w20").expect("w20 exists");
    vec![
        cache_size(&w91, opts),
        defrag_thresholds(&w91, opts),
        defrag_thresholds(&w20, opts),
        defrag_timing(&w20, opts),
        prefetch_window(&w91, opts),
        stacking(&w91, opts),
    ]
}

/// Renders all sweeps.
pub fn render(sweeps: &[Sweep]) -> String {
    let mut out = String::new();
    for sweep in sweeps {
        let mut table = TextTable::new(vec!["param", "SAF", "vs LS"]);
        for point in &sweep.points {
            table.row(vec![
                point.param.clone(),
                format!("{:.2}", point.saf.total),
                format!("{:.2}x", point.saf.improvement_over(&sweep.ls)),
            ]);
        }
        out.push_str(&format!(
            "Ablation — {} on {} (LS baseline SAF {:.2})\n{}\n",
            sweep.mechanism, sweep.workload, sweep.ls.total, table
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ExpOptions {
        ExpOptions {
            seed: 11,
            ops: 6000,
        }
    }

    #[test]
    fn bigger_cache_never_hurts_much() {
        let sweep = cache_size(&profiles::by_name("w91").unwrap(), &opts());
        assert_eq!(sweep.points.len(), 5);
        let first = sweep.points.first().unwrap().saf.total;
        let last = sweep.points.last().unwrap().saf.total;
        assert!(
            last <= first * 1.1,
            "256 MiB ({last:.2}) should not be worse than 4 MiB ({first:.2})"
        );
    }

    #[test]
    fn stricter_defrag_gates_reduce_rewrites_on_hostile_workload() {
        let sweep = defrag_thresholds(&profiles::by_name("w20").unwrap(), &opts());
        let loose = sweep.points[0].saf.total; // N=2 k=1
        let strict = sweep.points[4].saf.total; // N=2 k=4
        assert!(
            strict <= loose,
            "strict gate {strict:.2} should not exceed loose gate {loose:.2}"
        );
    }

    #[test]
    fn stacking_all_three_beats_plain_ls() {
        let sweep = stacking(&profiles::by_name("w91").unwrap(), &opts());
        let all = sweep
            .points
            .iter()
            .find(|p| p.param == "all three")
            .unwrap();
        assert!(all.saf.total < sweep.ls.total);
    }

    #[test]
    fn idle_batching_softens_defrag_penalty() {
        // w20: single-pass scans where immediate defrag hurts; batching
        // the rewrites at idle time must not be worse.
        let sweep = defrag_timing(&profiles::by_name("w20").unwrap(), &opts());
        let immediate = sweep.points[0].saf.total;
        let idle = sweep.points[2].saf.total; // 10ms
        assert!(
            idle <= immediate + 1e-9,
            "idle {idle:.2} should not exceed immediate {immediate:.2}"
        );
    }

    #[test]
    fn render_mentions_mechanisms() {
        let sweeps = run(&ExpOptions { seed: 1, ops: 2500 });
        let text = render(&sweeps);
        assert!(text.contains("selective-cache capacity"));
        assert!(text.contains("mechanism stacking"));
        assert!(text.contains("prefetch window"));
    }
}
