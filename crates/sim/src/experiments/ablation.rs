//! Ablations of the design choices DESIGN.md calls out.
//!
//! The paper fixes several parameters (64 MB cache; unconditional
//! defragmentation; an unspecified prefetch window). These sweeps
//! characterize the sensitivity of each mechanism to its parameters, and
//! evaluate mechanism stacking (which the paper leaves to future work).
//!
//! Every sweep is a list of `(param, SimConfig)` points replayed against
//! the same workload; [`run_with_threads`] flattens all sweeps into one
//! [`RunMatrix`] so the full ablation executes as a single parallel batch.

use super::ExpOptions;
use crate::engine::{SimConfig, Simulation};
use crate::report::TextTable;
use crate::runner::{MatrixStats, RunCell, RunMatrix, TraceSource};
use crate::saf::Saf;
use serde::Serialize;
use smrseek_stl::{CacheConfig, DefragConfig, DefragTiming, PrefetchConfig};
use smrseek_trace::{KIB, MIB};
use smrseek_workloads::profiles::{self, Profile};
use std::num::NonZeroUsize;

/// One point of a parameter sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// Human-readable parameter value ("16 MiB", "N=4", ...).
    pub param: String,
    /// Resulting SAF.
    pub saf: Saf,
}

/// A parameter sweep of one mechanism on one workload.
#[derive(Debug, Clone, Serialize)]
pub struct Sweep {
    /// Workload name.
    pub workload: String,
    /// What was swept.
    pub mechanism: String,
    /// Baseline (plain LS) SAF for reference.
    pub ls: Saf,
    /// The sweep points, in parameter order.
    pub points: Vec<SweepPoint>,
}

/// Sweep points for the selective-cache capacity (4–256 MiB; the paper
/// fixes 64 MB).
fn cache_points() -> Vec<(String, SimConfig)> {
    [4u64, 16, 64, 128, 256]
        .iter()
        .map(|mib| {
            let config = SimConfig::ls_with(
                None,
                None,
                Some(CacheConfig {
                    capacity_bytes: mib * MIB,
                }),
            );
            (format!("{mib} MiB"), config)
        })
        .collect()
}

/// Sweep points for the defragmentation gates: `N` (min fragments) and `k`
/// (min accesses).
fn defrag_threshold_points() -> Vec<(String, SimConfig)> {
    let params = [(2usize, 1u64), (4, 1), (8, 1), (2, 2), (2, 4), (4, 2)];
    params
        .iter()
        .map(|&(n, k)| {
            let config = SimConfig::ls_with(
                Some(DefragConfig {
                    min_fragments: n,
                    min_accesses: k,
                    ..DefragConfig::default()
                }),
                None,
                None,
            );
            (format!("N={n} k={k}"), config)
        })
        .collect()
}

/// Sweep points for the look-ahead/look-behind window (the paper leaves it
/// unspecified; our default is 256 KB each way).
fn prefetch_points() -> Vec<(String, SimConfig)> {
    [32u64, 64, 128, 256, 512]
        .iter()
        .map(|kib| {
            let sectors = kib * KIB / 512;
            let config = SimConfig::ls_with(
                None,
                Some(PrefetchConfig {
                    behind_sectors: sectors,
                    ahead_sectors: sectors,
                    ..PrefetchConfig::default()
                }),
                None,
            );
            (format!("{kib} KiB"), config)
        })
        .collect()
}

/// Sweep points for defragmentation *timing*: immediate (Alg. 1 as
/// printed) versus idle-batched rewrites at several idle-gap thresholds.
/// Batching pays the frontier seek once per batch, so it should soften
/// defrag's penalty on single-pass workloads.
fn defrag_timing_points() -> Vec<(String, SimConfig)> {
    let timings: [(&str, DefragTiming); 4] = [
        ("immediate", DefragTiming::Immediate),
        ("idle 1ms", DefragTiming::Idle { min_gap_us: 1_000 }),
        ("idle 10ms", DefragTiming::Idle { min_gap_us: 10_000 }),
        (
            "idle 100ms",
            DefragTiming::Idle {
                min_gap_us: 100_000,
            },
        ),
    ];
    timings
        .iter()
        .map(|&(name, timing)| {
            let config = SimConfig::ls_with(
                Some(DefragConfig {
                    timing,
                    ..DefragConfig::default()
                }),
                None,
                None,
            );
            (name.to_owned(), config)
        })
        .collect()
}

/// Sweep points for mechanism stacking: each mechanism alone, pairs, and
/// all three together (an extension beyond the paper's separate
/// evaluation).
fn stacking_points() -> Vec<(String, SimConfig)> {
    let d = Some(DefragConfig::default());
    let p = Some(PrefetchConfig::default());
    let c = Some(CacheConfig::default());
    let combos: [(&str, SimConfig); 7] = [
        ("defrag", SimConfig::ls_with(d, None, None)),
        ("prefetch", SimConfig::ls_with(None, p, None)),
        ("cache", SimConfig::ls_with(None, None, c)),
        ("defrag+prefetch", SimConfig::ls_with(d, p, None)),
        ("defrag+cache", SimConfig::ls_with(d, None, c)),
        ("prefetch+cache", SimConfig::ls_with(None, p, c)),
        ("all three", SimConfig::ls_with(d, p, c)),
    ];
    combos
        .iter()
        .map(|(name, config)| ((*name).to_owned(), *config))
        .collect()
}

/// Replays one sweep sequentially: NoLS and LS baselines, then every
/// point, all against the same trace.
fn run_sweep(
    profile: &Profile,
    opts: &ExpOptions,
    mechanism: &str,
    points: &[(String, SimConfig)],
) -> Sweep {
    let trace = profile.generate_scaled(opts.seed, opts.ops);
    let base = Simulation::new(&SimConfig::no_ls()).run_trace(&trace).seeks;
    let ls = Saf::from_stats(
        &Simulation::new(&SimConfig::log_structured())
            .run_trace(&trace)
            .seeks,
        &base,
    );
    let points = points
        .iter()
        .map(|(param, config)| SweepPoint {
            param: param.clone(),
            saf: Saf::from_stats(&Simulation::new(config).run_trace(&trace).seeks, &base),
        })
        .collect();
    Sweep {
        workload: profile.name.to_owned(),
        mechanism: mechanism.to_owned(),
        ls,
        points,
    }
}

/// Sweeps the selective-cache capacity (4–256 MiB; the paper fixes 64 MB).
pub fn cache_size(profile: &Profile, opts: &ExpOptions) -> Sweep {
    run_sweep(profile, opts, "selective-cache capacity", &cache_points())
}

/// Sweeps the defragmentation gates: `N` (min fragments) and `k`
/// (min accesses).
pub fn defrag_thresholds(profile: &Profile, opts: &ExpOptions) -> Sweep {
    run_sweep(
        profile,
        opts,
        "defrag thresholds",
        &defrag_threshold_points(),
    )
}

/// Sweeps the look-ahead/look-behind window (the paper leaves it
/// unspecified; our default is 256 KB each way).
pub fn prefetch_window(profile: &Profile, opts: &ExpOptions) -> Sweep {
    run_sweep(profile, opts, "prefetch window", &prefetch_points())
}

/// Sweeps defragmentation timing: immediate versus idle-batched rewrites.
pub fn defrag_timing(profile: &Profile, opts: &ExpOptions) -> Sweep {
    run_sweep(profile, opts, "defrag timing", &defrag_timing_points())
}

/// Evaluates mechanism stacking: each mechanism alone, pairs, and all
/// three together.
pub fn stacking(profile: &Profile, opts: &ExpOptions) -> Sweep {
    run_sweep(profile, opts, "mechanism stacking", &stacking_points())
}

/// One planned sweep: `(workload, mechanism, labelled config points)`.
type SweepSpec = (&'static str, &'static str, Vec<(String, SimConfig)>);

/// The full ablation plan: `(workload, mechanism, points)` per sweep, on a
/// representative log-sensitive workload (`w91`) plus the defrag-hostile
/// `w20`.
fn sweep_specs() -> Vec<SweepSpec> {
    vec![
        ("w91", "selective-cache capacity", cache_points()),
        ("w91", "defrag thresholds", defrag_threshold_points()),
        ("w20", "defrag thresholds", defrag_threshold_points()),
        ("w20", "defrag timing", defrag_timing_points()),
        ("w91", "prefetch window", prefetch_points()),
        ("w91", "mechanism stacking", stacking_points()),
    ]
}

/// Runs every ablation sweep.
pub fn run(opts: &ExpOptions) -> Vec<Sweep> {
    run_with_threads(opts, NonZeroUsize::MIN).0
}

/// Runs every ablation sweep as one flattened run matrix on up to
/// `threads` workers. Sweeps are identical to [`run`]'s for any thread
/// count.
pub fn run_with_threads(opts: &ExpOptions, threads: NonZeroUsize) -> (Vec<Sweep>, MatrixStats) {
    let specs = sweep_specs();
    let mut matrix = RunMatrix::new();
    for (name, mechanism, points) in &specs {
        let profile = profiles::by_name(name).expect("ablation workload exists");
        let source = TraceSource::from_profile(&profile, opts);
        matrix.push(
            RunCell::new(source.clone(), SimConfig::no_ls()).with_label(format!("{name}/NoLS")),
        );
        matrix.push(
            RunCell::new(source.clone(), SimConfig::log_structured())
                .with_label(format!("{name}/LS")),
        );
        for (param, config) in points {
            matrix.push(
                RunCell::new(source.clone(), *config)
                    .with_label(format!("{name}/{mechanism}/{param}")),
            );
        }
    }
    let outcomes = matrix.execute(threads);
    let stats = MatrixStats::from_outcomes(&outcomes);
    let mut sweeps = Vec::with_capacity(specs.len());
    let mut cells = outcomes.iter();
    for (name, mechanism, points) in specs {
        let base = cells.next().expect("NoLS baseline cell").report.seeks;
        let ls = Saf::from_stats(&cells.next().expect("LS baseline cell").report.seeks, &base);
        let points = points
            .into_iter()
            .map(|(param, _)| SweepPoint {
                param,
                saf: Saf::from_stats(&cells.next().expect("sweep point cell").report.seeks, &base),
            })
            .collect();
        sweeps.push(Sweep {
            workload: name.to_owned(),
            mechanism: mechanism.to_owned(),
            ls,
            points,
        });
    }
    (sweeps, stats)
}

/// Renders all sweeps.
pub fn render(sweeps: &[Sweep]) -> String {
    let mut out = String::new();
    for sweep in sweeps {
        let mut table = TextTable::new(vec!["param", "SAF", "vs LS"]);
        for point in &sweep.points {
            table.row(vec![
                point.param.clone(),
                format!("{:.2}", point.saf.total),
                format!("{:.2}x", point.saf.improvement_over(&sweep.ls)),
            ]);
        }
        out.push_str(&format!(
            "Ablation — {} on {} (LS baseline SAF {:.2})\n{}\n",
            sweep.mechanism, sweep.workload, sweep.ls.total, table
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ExpOptions {
        ExpOptions {
            seed: 11,
            ops: 6000,
        }
    }

    #[test]
    fn bigger_cache_never_hurts_much() {
        let sweep = cache_size(&profiles::by_name("w91").unwrap(), &opts());
        assert_eq!(sweep.points.len(), 5);
        let first = sweep.points.first().unwrap().saf.total;
        let last = sweep.points.last().unwrap().saf.total;
        assert!(
            last <= first * 1.1,
            "256 MiB ({last:.2}) should not be worse than 4 MiB ({first:.2})"
        );
    }

    #[test]
    fn stricter_defrag_gates_reduce_rewrites_on_hostile_workload() {
        let sweep = defrag_thresholds(&profiles::by_name("w20").unwrap(), &opts());
        let loose = sweep.points[0].saf.total; // N=2 k=1
        let strict = sweep.points[4].saf.total; // N=2 k=4
        assert!(
            strict <= loose,
            "strict gate {strict:.2} should not exceed loose gate {loose:.2}"
        );
    }

    #[test]
    fn stacking_all_three_beats_plain_ls() {
        let sweep = stacking(&profiles::by_name("w91").unwrap(), &opts());
        let all = sweep
            .points
            .iter()
            .find(|p| p.param == "all three")
            .unwrap();
        assert!(all.saf.total < sweep.ls.total);
    }

    #[test]
    fn idle_batching_softens_defrag_penalty() {
        // w20: single-pass scans where immediate defrag hurts; batching
        // the rewrites at idle time must not be worse.
        let sweep = defrag_timing(&profiles::by_name("w20").unwrap(), &opts());
        let immediate = sweep.points[0].saf.total;
        let idle = sweep.points[2].saf.total; // 10ms
        assert!(
            idle <= immediate + 1e-9,
            "idle {idle:.2} should not exceed immediate {immediate:.2}"
        );
    }

    #[test]
    fn matrix_run_matches_sequential_sweeps() {
        let o = ExpOptions { seed: 7, ops: 2000 };
        let (parallel, stats) = run_with_threads(&o, NonZeroUsize::new(4).expect("nonzero"));
        assert_eq!(
            stats.cells.len(),
            parallel.iter().map(|s| s.points.len() + 2).sum()
        );
        let w91 = profiles::by_name("w91").unwrap();
        let sequential = cache_size(&w91, &o);
        assert_eq!(parallel[0].mechanism, sequential.mechanism);
        assert_eq!(parallel[0].ls.total, sequential.ls.total);
        for (a, b) in parallel[0].points.iter().zip(&sequential.points) {
            assert_eq!(a.param, b.param);
            assert_eq!(a.saf.total, b.saf.total);
        }
    }

    #[test]
    fn render_mentions_mechanisms() {
        let sweeps = run(&ExpOptions { seed: 1, ops: 2500 });
        let text = render(&sweeps);
        assert!(text.contains("selective-cache capacity"));
        assert!(text.contains("mechanism stacking"));
        assert!(text.contains("prefetch window"));
    }
}
