//! Extension: seek-**time** amplification.
//!
//! The paper counts seeks and discusses (§III) how their cost varies with
//! length — short skips cost a partial rotation, long seeks head travel
//! plus half a rotation. This experiment weights every seek by the
//! [`DiskProfile`] cost model and adds transfer time, yielding a *time*
//! amplification factor (TAF) next to the seek-count SAF: a check that the
//! count-based conclusions survive cost weighting.

use super::ExpOptions;
use crate::engine::{RunReport, SimConfig, Simulation};
use crate::report::TextTable;
use crate::saf::Saf;
use serde::Serialize;
use smrseek_disk::DiskProfile;
use smrseek_workloads::profiles::{self, Profile};

/// Time-weighted results of one workload.
#[derive(Debug, Clone, Serialize)]
pub struct TimeAmpRow {
    /// Workload name.
    pub workload: String,
    /// Seek-count SAF of plain LS (for comparison).
    pub saf: Saf,
    /// Modeled NoLS service time, seconds.
    pub nols_seconds: f64,
    /// Modeled LS service time, seconds.
    pub ls_seconds: f64,
    /// Modeled LS+cache service time, seconds.
    pub cache_seconds: f64,
}

impl TimeAmpRow {
    /// Time amplification factor of plain LS.
    pub fn taf(&self) -> f64 {
        self.ls_seconds / self.nols_seconds.max(f64::MIN_POSITIVE)
    }

    /// Time amplification factor of LS + selective caching.
    pub fn taf_cached(&self) -> f64 {
        self.cache_seconds / self.nols_seconds.max(f64::MIN_POSITIVE)
    }
}

/// Total modeled service time of a run, in seconds: every seek costs its
/// distance-dependent time, every transferred sector its transfer time.
pub fn service_time_seconds(report: &RunReport, disk: &DiskProfile) -> f64 {
    let cdf = report
        .distance_cdf()
        .expect("run must record distances for time weighting");
    let seek_us: f64 = cdf.samples().iter().map(|&d| disk.seek_time_us(d)).sum();
    let transfer_us = disk.transfer_us(report.phys_sectors);
    (seek_us + transfer_us) / 1e6
}

/// Measures one workload under the default disk profile.
pub fn run_one(profile: &Profile, opts: &ExpOptions) -> TimeAmpRow {
    let disk = DiskProfile::default();
    let trace = profile.generate_scaled(opts.seed, opts.ops);
    let nols = Simulation::new(&SimConfig::no_ls().with_distances()).run_trace(&trace);
    let ls = Simulation::new(&SimConfig::log_structured().with_distances()).run_trace(&trace);
    let cache = Simulation::new(&SimConfig::ls_cache().with_distances()).run_trace(&trace);
    TimeAmpRow {
        workload: profile.name.to_owned(),
        saf: Saf::from_stats(&ls.seeks, &nols.seeks),
        nols_seconds: service_time_seconds(&nols, &disk),
        ls_seconds: service_time_seconds(&ls, &disk),
        cache_seconds: service_time_seconds(&cache, &disk),
    }
}

/// Measures every Table-I workload.
pub fn run(opts: &ExpOptions) -> Vec<TimeAmpRow> {
    profiles::all().iter().map(|p| run_one(p, opts)).collect()
}

/// Renders SAF-vs-TAF for every workload.
pub fn render(rows: &[TimeAmpRow]) -> String {
    let mut table = TextTable::new(vec![
        "workload",
        "SAF (count)",
        "TAF (time)",
        "TAF cached",
        "NoLS s",
        "LS s",
    ]);
    for row in rows {
        table.row(vec![
            row.workload.clone(),
            format!("{:.2}", row.saf.total),
            format!("{:.2}", row.taf()),
            format!("{:.2}", row.taf_cached()),
            format!("{:.2}", row.nols_seconds),
            format!("{:.2}", row.ls_seconds),
        ]);
    }
    format!("Extension — seek-time amplification (7200rpm profile)\n{table}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ExpOptions {
        ExpOptions { seed: 3, ops: 4000 }
    }

    #[test]
    fn times_are_positive_and_finite() {
        for name in ["w91", "mds_0"] {
            let row = run_one(&profiles::by_name(name).unwrap(), &opts());
            assert!(row.nols_seconds > 0.0 && row.nols_seconds.is_finite());
            assert!(row.ls_seconds > 0.0);
            assert!(row.taf().is_finite());
        }
    }

    #[test]
    fn count_conclusions_survive_time_weighting() {
        // The log-sensitive and log-friendly classifications must agree
        // between SAF and TAF for clear-cut workloads.
        let sensitive = run_one(&profiles::by_name("w91").unwrap(), &opts());
        assert!(sensitive.saf.total > 1.0);
        assert!(sensitive.taf() > 1.0, "TAF {:.2}", sensitive.taf());
        let friendly = run_one(&profiles::by_name("mds_0").unwrap(), &opts());
        assert!(friendly.saf.total < 1.0);
        assert!(friendly.taf() < 1.0, "TAF {:.2}", friendly.taf());
    }

    #[test]
    fn caching_saves_time_on_log_sensitive() {
        let row = run_one(&profiles::by_name("w91").unwrap(), &opts());
        assert!(
            row.taf_cached() < row.taf(),
            "cached {:.2} vs plain {:.2}",
            row.taf_cached(),
            row.taf()
        );
    }

    #[test]
    fn render_has_both_metrics() {
        let rows = vec![run_one(&profiles::by_name("hm_1").unwrap(), &opts())];
        let text = render(&rows);
        assert!(text.contains("SAF"));
        assert!(text.contains("TAF"));
        assert!(text.contains("hm_1"));
    }
}
