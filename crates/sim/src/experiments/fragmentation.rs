//! §IV-A's static-vs-dynamic fragmentation distinction, made measurable.
//!
//! *"Static fragmentation is just a measure of how many physical extents
//! have been created... However we don't read the LBA space sequentially;
//! some fragmentation may never effect a read operation in the workload,
//! while other fragments may impact many read operations."*
//!
//! This experiment tracks static fragmentation growth over the run and
//! measures what fraction of the map's extents are ever touched by a
//! fragmented read — the justification for *opportunistic* (read-driven)
//! defragmentation over wholesale background defragmentation.

use super::ExpOptions;
use crate::report::TextTable;
use serde::Serialize;
use smrseek_stl::{LogStructured, LsConfig, TranslationLayer};
use smrseek_workloads::profiles::{self, Profile};
use std::collections::HashSet;

/// Fragmentation profile of one workload.
#[derive(Debug, Clone, Serialize)]
pub struct FragRow {
    /// Workload name.
    pub workload: String,
    /// Static fragmentation (physical runs over the whole mapped space)
    /// at the end of the run.
    pub static_fragments: usize,
    /// Extents stored in the map at the end of the run.
    pub map_extents: usize,
    /// Distinct physical fragments that fragmented reads actually touched.
    pub read_touched_fragments: usize,
    /// Fraction of logical reads that were fragmented.
    pub fragmented_read_rate: f64,
    /// Static fragmentation sampled at 10% intervals of the run.
    pub growth: Vec<usize>,
}

impl FragRow {
    /// Share of end-state fragments ever touched by a fragmented read —
    /// low values mean most fragmentation is read-irrelevant, which is
    /// exactly when opportunistic defragmentation beats wholesale
    /// defragmentation.
    pub fn touched_share(&self) -> f64 {
        if self.static_fragments == 0 {
            0.0
        } else {
            (self.read_touched_fragments as f64 / self.static_fragments as f64).min(1.0)
        }
    }
}

/// Measures one workload.
pub fn run_one(profile: &Profile, opts: &ExpOptions) -> FragRow {
    let trace = profile.generate_scaled(opts.seed, opts.ops);
    let mut ls = LogStructured::new(LsConfig::for_trace(&trace).with_fragment_tracking());
    let mut growth = Vec::with_capacity(11);
    let step = (trace.len() / 10).max(1);
    let mut touched: HashSet<u64> = HashSet::new();
    for (i, rec) in trace.iter().enumerate() {
        if rec.op.is_read() {
            let runs = ls.physical_runs(rec.lba, u64::from(rec.sectors));
            if runs.len() > 1 {
                for (pba, _) in runs {
                    touched.insert(pba.sector());
                }
            }
        }
        ls.apply(rec);
        if i % step == 0 {
            growth.push(ls.map().static_fragmentation());
        }
    }
    let stats = ls.stats();
    FragRow {
        workload: profile.name.to_owned(),
        static_fragments: ls.map().static_fragmentation(),
        map_extents: ls.map().len(),
        read_touched_fragments: touched.len(),
        fragmented_read_rate: stats.fragmented_read_rate(),
        growth,
    }
}

/// Measures a representative spread of workloads.
pub fn run(opts: &ExpOptions) -> Vec<FragRow> {
    ["w91", "w20", "hm_1", "mds_0", "usr_1", "w36"]
        .iter()
        .map(|name| run_one(&profiles::by_name(name).expect("profile exists"), opts))
        .collect()
}

/// Renders the comparison.
pub fn render(rows: &[FragRow]) -> String {
    let mut table = TextTable::new(vec![
        "workload",
        "static frags",
        "map extents",
        "read-touched",
        "touched share",
        "frag'd read rate",
    ]);
    for row in rows {
        table.row(vec![
            row.workload.clone(),
            row.static_fragments.to_string(),
            row.map_extents.to_string(),
            row.read_touched_fragments.to_string(),
            format!("{:.0}%", 100.0 * row.touched_share()),
            format!("{:.0}%", 100.0 * row.fragmented_read_rate),
        ]);
    }
    format!("Static vs dynamic fragmentation (§IV-A)\n{table}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ExpOptions {
        ExpOptions { seed: 4, ops: 5000 }
    }

    #[test]
    fn static_fragmentation_grows_monotonically_under_churn() {
        let row = run_one(&profiles::by_name("w91").unwrap(), &opts());
        assert!(row.growth.len() >= 10);
        // Fragmentation accumulates: the end is far above the start. It
        // need not be strictly monotone (coalescing appends can merge),
        // but the trend must be strongly upward.
        assert!(
            *row.growth.last().unwrap() > row.growth[0] + 10,
            "growth {:?}",
            row.growth
        );
    }

    #[test]
    fn most_fragmentation_never_affects_reads_for_write_heavy() {
        // mds_0 writes far more than it reads: the map fragments heavily
        // but reads touch only a sliver — wholesale defragmentation would
        // be almost entirely wasted work.
        let row = run_one(&profiles::by_name("mds_0").unwrap(), &opts());
        assert!(row.static_fragments > 100);
        assert!(
            row.touched_share() < 0.5,
            "touched share {:.2}",
            row.touched_share()
        );
    }

    #[test]
    fn scan_heavy_workloads_touch_more_of_their_fragmentation() {
        let scan = run_one(&profiles::by_name("w91").unwrap(), &opts());
        let write_heavy = run_one(&profiles::by_name("mds_0").unwrap(), &opts());
        assert!(
            scan.touched_share() > write_heavy.touched_share(),
            "w91 {:.2} vs mds_0 {:.2}",
            scan.touched_share(),
            write_heavy.touched_share()
        );
    }

    #[test]
    fn render_lists_workloads() {
        let text = render(&run(&ExpOptions { seed: 1, ops: 1500 }));
        assert!(text.contains("w91"));
        assert!(text.contains("touched share"));
    }
}
