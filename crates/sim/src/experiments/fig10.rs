//! Fig 10: fragment popularity and the cumulative cache size needed to
//! hold the most popular fragments, for `usr_1`, `hm_1`, `web_0`,
//! `src2_2`, `w20`, `w33`, `w55` and `w106`.
//!
//! Expected shape: access counts are heavily skewed, and "the fragments
//! responsible for a large majority of accesses add up to a few 10s of MB
//! or less" — the justification for a 64 MB selective cache.

use super::ExpOptions;
use crate::engine::{SimConfig, Simulation};
use crate::report::TextTable;
use serde::Serialize;
use smrseek_stl::FragmentAccessTracker;
use smrseek_trace::MIB;
use smrseek_workloads::profiles::{self, Profile};

/// The workloads plotted in Fig 10.
pub const WORKLOADS: [&str; 8] = [
    "usr_1", "hm_1", "web_0", "src2_2", "w20", "w33", "w55", "w106",
];

/// Fragment popularity statistics of one workload.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10Stats {
    /// Workload name.
    pub workload: String,
    /// The raw tracker (popularity curve + cache-size curve).
    pub tracker: FragmentAccessTracker,
}

impl Fig10Stats {
    /// Cache bytes holding the fragments behind `fraction` of accesses.
    pub fn cache_mib_for(&self, fraction: f64) -> f64 {
        self.tracker.cache_bytes_for_access_fraction(fraction) as f64 / MIB as f64
    }

    /// Skew statistic: share of all accesses captured by the top 10% of
    /// fragments.
    pub fn top_decile_access_share(&self) -> f64 {
        let pop = self.tracker.popularity();
        if pop.is_empty() {
            return 0.0;
        }
        let total: u64 = pop.iter().map(|f| f.access_count).sum();
        let top = pop.len().div_ceil(10);
        let head: u64 = pop.iter().take(top).map(|f| f.access_count).sum();
        head as f64 / total.max(1) as f64
    }
}

/// Measures one workload's fragment popularity under plain LS translation.
pub fn run_one(profile: &Profile, opts: &ExpOptions) -> Fig10Stats {
    let trace = profile.generate_scaled(opts.seed, opts.ops);
    let report =
        Simulation::new(&SimConfig::log_structured().with_fragment_tracking()).run_trace(&trace);
    Fig10Stats {
        workload: profile.name.to_owned(),
        tracker: report.fragments.expect("fragment tracking was enabled"),
    }
}

/// Measures the eight Fig 10 panels.
pub fn run(opts: &ExpOptions) -> Vec<Fig10Stats> {
    WORKLOADS
        .iter()
        .map(|name| {
            let profile = profiles::by_name(name).expect("Fig 10 workload exists");
            run_one(&profile, opts)
        })
        .collect()
}

/// Renders popularity skew and cumulative cache sizes.
pub fn render(stats: &[Fig10Stats]) -> String {
    let mut table = TextTable::new(vec![
        "workload",
        "fragments",
        "top-10% access share",
        "cache MiB for 50%",
        "cache MiB for 80%",
        "cache MiB for 100%",
    ]);
    for s in stats {
        table.row(vec![
            s.workload.clone(),
            s.tracker.distinct_fragments().to_string(),
            format!("{:.0}%", 100.0 * s.top_decile_access_share()),
            format!("{:.1}", s.cache_mib_for(0.5)),
            format!("{:.1}", s.cache_mib_for(0.8)),
            format!("{:.1}", s.cache_mib_for(1.0)),
        ]);
    }
    format!("Fig 10 — fragment popularity and cumulative cache size\n{table}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ExpOptions {
        ExpOptions {
            seed: 10,
            ops: 8000,
        }
    }

    #[test]
    fn popularity_is_skewed_for_zipf_profiles() {
        for name in ["hm_1", "w55"] {
            let s = run_one(&profiles::by_name(name).unwrap(), &opts());
            assert!(
                s.top_decile_access_share() > 0.2,
                "{name}: top decile share {:.2}",
                s.top_decile_access_share()
            );
        }
    }

    #[test]
    fn hot_fragments_fit_small_cache() {
        // The paper's point: the hot set is 10s of MB, not GBs.
        let s = run_one(&profiles::by_name("hm_1").unwrap(), &opts());
        let hot = s.cache_mib_for(0.8);
        assert!(hot < 64.0, "hm_1 hot set is {hot:.1} MiB");
        assert!(s.cache_mib_for(0.5) <= hot);
        assert!(hot <= s.cache_mib_for(1.0));
    }

    #[test]
    fn cumulative_curve_monotone() {
        let s = run_one(&profiles::by_name("w33").unwrap(), &opts());
        let curve = s.tracker.cumulative_cache_bytes();
        assert!(!curve.is_empty());
        assert!(curve.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn run_covers_eight_panels() {
        let stats = run(&ExpOptions { seed: 1, ops: 2000 });
        assert_eq!(stats.len(), 8);
        let text = render(&stats);
        for name in WORKLOADS {
            assert!(text.contains(name));
        }
    }
}
