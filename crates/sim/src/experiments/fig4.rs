//! Fig 4: CDFs of access (seek) distances under NoLS and LS translation
//! for `src2_2`, `usr_0` (older MSR) and `w84`, `w64` (newer
//! CloudPhysics), over a ±2 GB window.
//!
//! Expected shape: under NoLS virtually all seeks fall within ±1 GB; under
//! LS a large fraction move outside that range (seeks between the identity
//! region and the distant log), and the older traces keep more of their LS
//! seeks within ±1 GB than the newer ones.

use super::ExpOptions;
use crate::engine::{SimConfig, Simulation};
use crate::report::TextTable;
use serde::Serialize;
use smrseek_disk::Cdf;
use smrseek_trace::{GIB, SECTOR_SIZE};
use smrseek_workloads::profiles::{self, Profile};

/// The workloads plotted in Fig 4.
pub const WORKLOADS: [&str; 4] = ["src2_2", "usr_0", "w84", "w64"];

/// One sampled CDF curve: `(distance_sectors, fraction)` points.
pub type CdfCurve = Vec<(i64, f64)>;

/// Seek-distance CDFs of one workload under both translations.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Cdfs {
    /// Workload name.
    pub workload: String,
    /// Distance CDF under conventional translation.
    pub nols: Cdf,
    /// Distance CDF under log-structured translation.
    pub ls: Cdf,
}

impl Fig4Cdfs {
    /// Fraction of NoLS seeks within ±`gb` GB.
    pub fn nols_within_gb(&self, gb: f64) -> f64 {
        within_gb(&self.nols, gb)
    }

    /// Fraction of LS seeks within ±`gb` GB.
    pub fn ls_within_gb(&self, gb: f64) -> f64 {
        within_gb(&self.ls, gb)
    }

    /// Sampled `(distance_sectors, F)` curves over ±2 GB for plotting.
    pub fn curves(&self, points: usize) -> (CdfCurve, CdfCurve) {
        let two_gb = (2 * GIB / SECTOR_SIZE) as i64;
        (
            self.nols.curve(-two_gb, two_gb, points),
            self.ls.curve(-two_gb, two_gb, points),
        )
    }
}

fn within_gb(cdf: &Cdf, gb: f64) -> f64 {
    let s = (gb * GIB as f64 / SECTOR_SIZE as f64) as i64;
    cdf.fraction_within(-s, s)
}

/// Computes both CDFs for one workload.
pub fn run_one(profile: &Profile, opts: &ExpOptions) -> Fig4Cdfs {
    let trace = profile.generate_scaled(opts.seed, opts.ops);
    let nols = Simulation::new(&SimConfig::no_ls().with_distances()).run_trace(&trace);
    let ls = Simulation::new(&SimConfig::log_structured().with_distances()).run_trace(&trace);
    Fig4Cdfs {
        workload: profile.name.to_owned(),
        nols: nols
            .distance_cdf()
            .expect("run was configured with distances"),
        ls: ls
            .distance_cdf()
            .expect("run was configured with distances"),
    }
}

/// Computes the four Fig 4 panels.
pub fn run(opts: &ExpOptions) -> Vec<Fig4Cdfs> {
    WORKLOADS
        .iter()
        .map(|name| {
            let profile = profiles::by_name(name).expect("Fig 4 workload exists");
            run_one(&profile, opts)
        })
        .collect()
}

/// Renders the within-range fractions the figure makes visible.
pub fn render(cdfs: &[Fig4Cdfs]) -> String {
    let mut table = TextTable::new(vec![
        "workload",
        "NoLS within ±1GB",
        "LS within ±1GB",
        "NoLS within ±0.1GB",
        "LS within ±0.1GB",
        "NoLS seeks",
        "LS seeks",
    ]);
    for c in cdfs {
        table.row(vec![
            c.workload.clone(),
            format!("{:.1}%", 100.0 * c.nols_within_gb(1.0)),
            format!("{:.1}%", 100.0 * c.ls_within_gb(1.0)),
            format!("{:.1}%", 100.0 * c.nols_within_gb(0.1)),
            format!("{:.1}%", 100.0 * c.ls_within_gb(0.1)),
            c.nols.len().to_string(),
            c.ls.len().to_string(),
        ]);
    }
    format!("Fig 4 — CDF of seek distances (NoLS vs LS)\n{table}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ExpOptions {
        ExpOptions { seed: 4, ops: 6000 }
    }

    #[test]
    fn ls_pushes_seeks_outside_the_window() {
        for c in run(&opts()) {
            assert!(
                c.ls_within_gb(1.0) < c.nols_within_gb(1.0) + 1e-9,
                "{}: LS {:.2} should not concentrate more than NoLS {:.2}",
                c.workload,
                c.ls_within_gb(1.0),
                c.nols_within_gb(1.0)
            );
        }
    }

    #[test]
    fn nols_seeks_are_local() {
        let c = run_one(&profiles::by_name("usr_0").unwrap(), &opts());
        assert!(
            c.nols_within_gb(2.0) > 0.95,
            "NoLS seeks should be within the workload footprint, got {:.2}",
            c.nols_within_gb(2.0)
        );
    }

    #[test]
    fn curves_are_monotone() {
        let c = run_one(&profiles::by_name("w64").unwrap(), &opts());
        let (nols, ls) = c.curves(17);
        for curve in [nols, ls] {
            assert_eq!(curve.len(), 17);
            assert!(curve.windows(2).all(|w| w[0].1 <= w[1].1));
        }
    }

    #[test]
    fn render_mentions_all_panels() {
        let text = render(&run(&ExpOptions { seed: 1, ops: 2000 }));
        for name in WORKLOADS {
            assert!(text.contains(name));
        }
    }
}
