//! Extension: queue re-ordering versus translation-layer prefetching.
//!
//! §IV-B observes that a conventional drive's queue re-orders descending
//! bursts into ascending completions, while a simple log-structured system
//! freezes dispatch order into the layout. This experiment quantifies that
//! alternative: re-order each trace with an NCQ-style elevator *before*
//! translation, and compare the SAF against look-ahead-behind prefetching
//! (which repairs the damage after the fact).

use super::ExpOptions;
use crate::engine::{SimConfig, Simulation};
use crate::report::TextTable;
use crate::saf::Saf;
use crate::scheduler::{reorder, QueueConfig};
use serde::Serialize;
use smrseek_stl::{count_misordered_writes, MISORDER_WINDOW_BYTES};
use smrseek_workloads::profiles::{self, Profile};

/// The mis-order-heavy workloads where the comparison is interesting.
pub const WORKLOADS: [&str; 4] = ["w84", "w95", "hm_1", "src2_2"];

/// One workload's comparison.
#[derive(Debug, Clone, Serialize)]
pub struct ReorderRow {
    /// Workload name.
    pub workload: String,
    /// Mis-ordered write fraction as dispatched.
    pub misordered_before: f64,
    /// Mis-ordered write fraction after the elevator queue.
    pub misordered_after: f64,
    /// SAF of plain LS on the raw trace.
    pub ls_raw: Saf,
    /// SAF of plain LS on the re-ordered trace. Note the baseline moves
    /// too: the elevator also removes conventional-drive seeks, so this
    /// ratio can rise even as absolute LS seeks fall.
    pub ls_reordered: Saf,
    /// Absolute total seeks of plain LS on the raw trace.
    pub ls_raw_seeks: u64,
    /// Absolute total seeks of plain LS on the re-ordered trace.
    pub ls_reordered_seeks: u64,
    /// SAF of LS+prefetch on the raw trace (the paper's mechanism).
    pub ls_prefetch: Saf,
}

/// Runs the comparison for one workload ([`QueueConfig::default`]:
/// queue depth 32, 10 ms windows).
pub fn run_one(profile: &Profile, opts: &ExpOptions) -> ReorderRow {
    let raw = profile.generate_scaled(opts.seed, opts.ops);
    let reordered = reorder(&raw, QueueConfig::default());

    let frac = |trace: &[smrseek_trace::TraceRecord]| {
        let (m, t) = count_misordered_writes(trace, MISORDER_WINDOW_BYTES);
        m as f64 / t.max(1) as f64
    };
    // Each variant is measured against its own NoLS baseline: the elevator
    // changes the baseline too (conventional drives also benefit).
    let base_raw = Simulation::new(&SimConfig::no_ls()).run_trace(&raw).seeks;
    let base_reord = Simulation::new(&SimConfig::no_ls())
        .run_trace(&reordered)
        .seeks;
    let ls_raw_stats = Simulation::new(&SimConfig::log_structured())
        .run_trace(&raw)
        .seeks;
    let ls_reord_stats = Simulation::new(&SimConfig::log_structured())
        .run_trace(&reordered)
        .seeks;
    ReorderRow {
        workload: profile.name.to_owned(),
        misordered_before: frac(&raw),
        misordered_after: frac(&reordered),
        ls_raw: Saf::from_stats(&ls_raw_stats, &base_raw),
        ls_reordered: Saf::from_stats(&ls_reord_stats, &base_reord),
        ls_raw_seeks: ls_raw_stats.total(),
        ls_reordered_seeks: ls_reord_stats.total(),
        ls_prefetch: Saf::from_stats(
            &Simulation::new(&SimConfig::ls_prefetch())
                .run_trace(&raw)
                .seeks,
            &base_raw,
        ),
    }
}

/// Runs the four-workload comparison.
pub fn run(opts: &ExpOptions) -> Vec<ReorderRow> {
    WORKLOADS
        .iter()
        .map(|name| run_one(&profiles::by_name(name).expect("profile exists"), opts))
        .collect()
}

/// Renders the comparison.
pub fn render(rows: &[ReorderRow]) -> String {
    let mut table = TextTable::new(vec![
        "workload",
        "misordered raw",
        "misordered queued",
        "LS SAF raw",
        "LS SAF queued",
        "LS+prefetch raw",
    ]);
    for row in rows {
        table.row(vec![
            row.workload.clone(),
            format!("{:.2}%", 100.0 * row.misordered_before),
            format!("{:.2}%", 100.0 * row.misordered_after),
            format!("{:.2} ({})", row.ls_raw.total, row.ls_raw_seeks),
            format!("{:.2} ({})", row.ls_reordered.total, row.ls_reordered_seeks),
            format!("{:.2}", row.ls_prefetch.total),
        ]);
    }
    format!("Extension — elevator queue re-ordering vs prefetching\n{table}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ExpOptions {
        ExpOptions { seed: 4, ops: 6000 }
    }

    #[test]
    fn queue_reduces_misordering() {
        for row in run(&opts()) {
            assert!(
                row.misordered_after <= row.misordered_before,
                "{}: {} -> {}",
                row.workload,
                row.misordered_before,
                row.misordered_after
            );
        }
    }

    #[test]
    fn queue_substantially_fixes_burst_workloads() {
        let row = run_one(&profiles::by_name("w84").unwrap(), &opts());
        assert!(row.misordered_before > 0.03);
        assert!(
            row.misordered_after < row.misordered_before / 2.0,
            "queued {:.3} vs raw {:.3}",
            row.misordered_after,
            row.misordered_before
        );
    }

    #[test]
    fn reordering_reduces_ls_seeks_on_burst_workloads() {
        // Fixing dispatch order upstream straightens the log layout for
        // the descending-burst workloads. (The SAF ratio may still rise
        // because the conventional baseline improves even more.)
        for row in run(&opts()) {
            if row.workload == "src2_2" {
                continue; // see reordering_can_break_temporal_locality
            }
            assert!(
                row.ls_reordered_seeks <= row.ls_raw_seeks,
                "{}: queued {} vs raw {} seeks",
                row.workload,
                row.ls_reordered_seeks,
                row.ls_raw_seeks
            );
        }
    }

    #[test]
    fn reordering_can_break_temporal_locality() {
        // The flip side, and the reason a queue is not a substitute for
        // the paper's mechanisms: log-friendliness comes from reads
        // mimicking the *temporal* write order (§III). src2_2's replay
        // reads follow dispatch order; LBA-sorting the writes makes the
        // log disagree with that order, so its LS seeks rise slightly.
        let row = run_one(&profiles::by_name("src2_2").unwrap(), &opts());
        assert!(
            row.ls_reordered_seeks as f64 > row.ls_raw_seeks as f64 * 0.95,
            "src2_2 should not benefit much: queued {} vs raw {}",
            row.ls_reordered_seeks,
            row.ls_raw_seeks
        );
    }

    #[test]
    fn render_lists_workloads() {
        let text = render(&run(&ExpOptions { seed: 1, ops: 2000 }));
        for name in WORKLOADS {
            assert!(text.contains(name));
        }
    }
}
