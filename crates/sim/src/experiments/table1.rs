//! Table I: workload characteristics.
//!
//! For each profile this reports the paper's published numbers next to the
//! measured characteristics of the synthetic stand-in trace, so the
//! fidelity of the substitution is auditable (op ratio and mean sizes
//! should track; absolute counts/volumes are scaled down by design).

use super::ExpOptions;
use crate::report::TextTable;
use crate::runner::parallel_map;
use crate::tracecache;
use serde::Serialize;
use smrseek_trace::{characterize, TraceStats};
use smrseek_workloads::profiles::{self, Profile, TableRow};
use std::num::NonZeroUsize;
use std::path::Path;

/// One workload's paper-vs-synthetic characteristics.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Workload name.
    pub workload: String,
    /// Published Table-I numbers.
    pub paper: TableRow,
    /// Measured statistics of the generated stand-in.
    pub synthetic: TraceStats,
}

/// Characterizes one profile's stand-in trace.
pub fn run_one(profile: &Profile, opts: &ExpOptions) -> Table1Row {
    let trace = profile.generate_scaled(opts.seed, opts.ops);
    Table1Row {
        workload: profile.name.to_owned(),
        paper: profile.row,
        synthetic: characterize(&trace),
    }
}

/// Characterizes all 21 profiles.
pub fn run(opts: &ExpOptions) -> Vec<Table1Row> {
    run_with_threads(opts, NonZeroUsize::MIN)
}

/// Characterizes all 21 profiles on up to `threads` workers. Rows are
/// identical to [`run`]'s for any thread count (characterization is pure;
/// only wall time changes).
pub fn run_with_threads(opts: &ExpOptions, threads: NonZeroUsize) -> Vec<Table1Row> {
    run_cached(opts, threads, None)
}

/// [`run_with_threads`] reading each workload's records from the binary
/// trace cache under `cache_dir` (mmapped when present, generated and
/// written on first use). Rows are identical to [`run`]'s — the sidecar
/// stores exactly the generated records.
pub fn run_cached(
    opts: &ExpOptions,
    threads: NonZeroUsize,
    cache_dir: Option<&Path>,
) -> Vec<Table1Row> {
    parallel_map(&profiles::all(), threads, |p| {
        let trace = tracecache::profile_source(p, opts, cache_dir).records();
        Table1Row {
            workload: p.name.to_owned(),
            paper: p.row,
            synthetic: characterize(&trace),
        }
    })
}

/// Renders the comparison table.
pub fn render(rows: &[Table1Row]) -> String {
    let mut table = TextTable::new(vec![
        "workload",
        "r/w ratio (paper)",
        "r/w ratio (synth)",
        "mean wr KB (paper)",
        "mean wr KB (synth)",
        "mean rd KB (paper)",
        "mean rd KB (synth)",
        "ops (synth)",
    ]);
    for row in rows {
        let paper_ratio = row.paper.read_count as f64 / row.paper.write_count.max(1) as f64;
        let synth_ratio = row.synthetic.read_count as f64 / row.synthetic.write_count.max(1) as f64;
        let paper_rd_kb = f64::from(row.paper.mean_read_sectors()) / 2.0;
        table.row(vec![
            row.workload.clone(),
            format!("{paper_ratio:.2}"),
            format!("{synth_ratio:.2}"),
            format!("{:.1}", row.paper.mean_write_kb),
            format!("{:.1}", row.synthetic.mean_write_size_kb()),
            format!("{paper_rd_kb:.1}"),
            format!("{:.1}", row.synthetic.mean_read_size_kb()),
            row.synthetic.total_ops().to_string(),
        ]);
    }
    format!("Table I — workload characteristics (paper vs synthetic)\n{table}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_track_paper() {
        let opts = ExpOptions { seed: 3, ops: 8000 };
        for row in run(&opts) {
            let paper = row.paper.read_count as f64 / row.paper.total_ops() as f64;
            let total = row.synthetic.total_ops();
            let synth = row.synthetic.read_count as f64 / total.max(1) as f64;
            assert!(
                (paper - synth).abs() < 0.15,
                "{}: read fraction paper {paper:.2} vs synth {synth:.2}",
                row.workload
            );
        }
    }

    #[test]
    fn render_lists_all_workloads() {
        let opts = ExpOptions { seed: 3, ops: 2000 };
        let text = render(&run(&opts));
        for name in ["usr_1", "w91", "ts_0", "w33"] {
            assert!(text.contains(name), "missing {name}");
        }
    }
}
