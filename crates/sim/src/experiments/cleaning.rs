//! Extension: the cleaning-vs-seeks trade-off on a finite log.
//!
//! The paper eliminates cleaning by assuming an infinite disk (§II) and
//! argues that for archival systems this is realistic. For non-archival
//! workloads the classic LFS result applies: write amplification explodes
//! as log utilization grows. This experiment sweeps utilization on a
//! steady random-overwrite workload and reports the greedy cleaner's WAF
//! next to the seek behaviour, quantifying what the infinite-disk
//! assumption buys.

use super::ExpOptions;
use crate::report::TextTable;
use serde::Serialize;
use smrseek_disk::SeekCounter;
use smrseek_stl::{CleanerConfig, CleanerPolicy, CleaningLog, TranslationLayer};
use smrseek_trace::{Lba, Pba};
use smrseek_workloads::TraceBuilder;

/// One utilization point.
#[derive(Debug, Clone, Serialize)]
pub struct CleaningPoint {
    /// Fraction of log capacity holding live data, in `[0, 1]`.
    pub utilization: f64,
    /// Measured write amplification factor.
    pub waf: f64,
    /// Cleaning episodes.
    pub cleanings: u64,
    /// Total seeks (host + cleaning I/O).
    pub seeks: u64,
    /// Seeks of the same workload on the paper's infinite-disk log
    /// (never cleans).
    pub infinite_disk_seeks: u64,
}

/// Sweeps live-data utilization on a fixed-size log.
///
/// The workload writes `live_fraction * capacity` distinct sectors once
/// (cold + hot), then randomly overwrites the hot half for `opts.ops`
/// operations.
pub fn run(opts: &ExpOptions) -> Vec<CleaningPoint> {
    [0.3f64, 0.5, 0.7, 0.8]
        .iter()
        .map(|&util| run_at(util, opts))
        .collect()
}

/// Runs one utilization point.
pub fn run_at(live_fraction: f64, opts: &ExpOptions) -> CleaningPoint {
    const SEGMENTS: usize = 64;
    const SEG_SECTORS: u64 = 2048; // 1 MiB segments
    let capacity = SEGMENTS as u64 * SEG_SECTORS;
    let live_sectors = (capacity as f64 * live_fraction) as u64 / 8 * 8;

    // Build the workload: fill once, then churn the hot half.
    let mut b = TraceBuilder::new(opts.seed);
    let stripe = 64u32;
    let stripes = live_sectors / u64::from(stripe);
    for s in 0..stripes {
        b.write_sequential(Lba::new(s * u64::from(stripe)), 1, stripe);
    }
    let hot_sectors = live_sectors / 2;
    b.write_random(Lba::new(0), hot_sectors.max(64), opts.ops, stripe);
    let trace = b.finish();

    // Finite log with greedy cleaning.
    let mut log = CleaningLog::new(CleanerConfig::new(Pba::new(1 << 30), SEG_SECTORS, SEGMENTS));
    let mut counter = SeekCounter::new();
    for rec in &trace {
        for io in log.apply(rec) {
            counter.observe(&io);
        }
    }

    // The same workload on the infinite-disk log for comparison.
    let infinite = {
        use smrseek_stl::{LogStructured, LsConfig};
        let mut ls = LogStructured::new(LsConfig::new(Lba::new(1 << 30)));
        let mut c = SeekCounter::new();
        for rec in &trace {
            for io in ls.apply(rec) {
                c.observe(&io);
            }
        }
        c.stats().total()
    };

    CleaningPoint {
        utilization: log.utilization(),
        waf: log.stats().waf(),
        cleanings: log.stats().cleanings,
        seeks: counter.stats().total(),
        infinite_disk_seeks: infinite,
    }
}

/// One configuration's WAF on the hot/cold churn workload.
#[derive(Debug, Clone, Serialize)]
pub struct PolicyRow {
    /// Configuration label.
    pub config: String,
    /// Measured WAF.
    pub waf: f64,
    /// Cleaning episodes.
    pub cleanings: u64,
}

/// Compares cleaning configurations — greedy vs cost-benefit, with and
/// without hot/cold stream separation — on a hot/cold churn workload at
/// ~60% utilization (where policy differences matter most).
pub fn compare_policies(opts: &ExpOptions) -> Vec<PolicyRow> {
    const SEGMENTS: usize = 64;
    const SEG_SECTORS: u64 = 2048;
    let capacity = SEGMENTS as u64 * SEG_SECTORS;
    let live = capacity * 6 / 10 / 8 * 8;

    // Hot/cold mix: the hot half is filled up front and then churned;
    // cold stripes are written once each but *interleaved into the churn*,
    // so without separation every segment mixes hot and cold data — the
    // layout separation is designed to prevent.
    let trace = {
        let mut b = TraceBuilder::new(opts.seed);
        let stripe = 64u32;
        let hot = (live / 2).max(64);
        let cold_stripes = live / 2 / u64::from(stripe);
        b.write_random(Lba::new(0), hot, (hot / u64::from(stripe)) as usize, stripe);
        let interval = (opts.ops as u64 / cold_stripes.max(1)).max(1);
        let cold_base = 1u64 << 26; // far above the hot region
        for i in 0..opts.ops as u64 {
            b.write_random(Lba::new(0), hot, 1, stripe);
            if i % interval == 0 && i / interval < cold_stripes {
                let k = i / interval;
                b.write_sequential(Lba::new(cold_base + k * u64::from(stripe)), 1, stripe);
            }
        }
        b.finish()
    };

    let configs: [(&str, CleanerConfig); 4] = {
        let base = CleanerConfig::new(Pba::new(1 << 30), SEG_SECTORS, SEGMENTS);
        [
            ("greedy", base),
            ("cost-benefit", base.with_policy(CleanerPolicy::CostBenefit)),
            ("greedy + hot/cold", base.with_hot_cold_separation()),
            (
                "cost-benefit + hot/cold",
                base.with_policy(CleanerPolicy::CostBenefit)
                    .with_hot_cold_separation(),
            ),
        ]
    };
    configs
        .iter()
        .map(|(name, config)| {
            let mut log = CleaningLog::new(*config);
            for rec in &trace {
                log.apply(rec);
            }
            PolicyRow {
                config: (*name).to_owned(),
                waf: log.stats().waf(),
                cleanings: log.stats().cleanings,
            }
        })
        .collect()
}

/// Renders the policy comparison.
pub fn render_policies(rows: &[PolicyRow]) -> String {
    let mut table = TextTable::new(vec!["configuration", "WAF", "cleanings"]);
    for row in rows {
        table.row(vec![
            row.config.clone(),
            format!("{:.2}", row.waf),
            row.cleanings.to_string(),
        ]);
    }
    format!(
        "Extension — cleaning policy comparison at ~60% utilization
{table}"
    )
}

/// Renders the sweep.
pub fn render(points: &[CleaningPoint]) -> String {
    let mut table = TextTable::new(vec![
        "utilization",
        "WAF",
        "cleanings",
        "seeks (finite)",
        "seeks (infinite)",
    ]);
    for p in points {
        table.row(vec![
            format!("{:.0}%", 100.0 * p.utilization),
            format!("{:.2}", p.waf),
            p.cleanings.to_string(),
            p.seeks.to_string(),
            p.infinite_disk_seeks.to_string(),
        ]);
    }
    format!("Extension — greedy cleaning on a finite log\n{table}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ExpOptions {
        ExpOptions { seed: 2, ops: 3000 }
    }

    #[test]
    fn waf_grows_with_utilization() {
        let low = run_at(0.3, &opts());
        let high = run_at(0.8, &opts());
        assert!(low.waf >= 1.0);
        assert!(
            high.waf > low.waf,
            "WAF at 80% ({:.2}) must exceed 30% ({:.2})",
            high.waf,
            low.waf
        );
        assert!(high.cleanings > 0);
    }

    #[test]
    fn utilization_close_to_requested() {
        let p = run_at(0.5, &opts());
        assert!(
            (p.utilization - 0.5).abs() < 0.1,
            "measured utilization {:.2}",
            p.utilization
        );
    }

    #[test]
    fn finite_log_seeks_at_least_infinite() {
        // Cleaning adds I/O, so the finite log can only seek more.
        let p = run_at(0.7, &opts());
        assert!(
            p.seeks >= p.infinite_disk_seeks,
            "finite {} < infinite {}",
            p.seeks,
            p.infinite_disk_seeks
        );
    }

    #[test]
    fn separation_reduces_waf_on_hot_cold_churn() {
        let rows = compare_policies(&opts());
        let get = |name: &str| rows.iter().find(|r| r.config == name).unwrap().waf;
        let plain = get("greedy");
        let separated = get("greedy + hot/cold");
        assert!(plain >= 1.0);
        assert!(
            separated <= plain,
            "separation must not increase WAF: {separated:.2} vs {plain:.2}"
        );
    }

    #[test]
    fn all_policy_configs_run_and_clean() {
        for row in compare_policies(&opts()) {
            assert!(row.waf >= 1.0, "{}: WAF {}", row.config, row.waf);
            assert!(row.cleanings > 0, "{}: never cleaned", row.config);
        }
        let text = render_policies(&compare_policies(&opts()));
        assert!(text.contains("cost-benefit + hot/cold"));
    }

    #[test]
    fn render_lists_points() {
        let text = render(&run(&ExpOptions { seed: 1, ops: 800 }));
        assert!(text.contains("WAF"));
        assert!(text.contains("80%"));
    }
}
