//! One module per table/figure of the paper's evaluation.
//!
//! Each module exposes a structured `run(...)` returning the data behind
//! the figure plus a `render(...)`/`Display` path producing the text table
//! the CLI prints. The experiment index in `DESIGN.md` maps figures to
//! these modules.

pub mod ablation;
pub mod adaptive;
pub mod analyze;
pub mod classify;
pub mod cleaning;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig7;
pub mod fig8;
pub mod fragmentation;
pub mod host_cache;
pub mod reorder;
pub mod table1;
pub mod time_amp;
pub mod zones;

use serde::{Deserialize, Serialize};

/// Common options for experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpOptions {
    /// Seed for the synthetic workload generators.
    pub seed: u64,
    /// Operations per workload trace.
    pub ops: usize,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            seed: 42,
            ops: smrseek_workloads::profiles::DEFAULT_OPS,
        }
    }
}
