//! Extension: interaction with the host buffer cache.
//!
//! §IV-C argues selective caching eliminates "a significant portion of
//! seeks which would not be omitted by a vastly large buffer cache",
//! because OS caches hold *logically hot* data while the drive-side
//! fragment cache holds *physically expensive* data. This experiment
//! sweeps a modeled host LRU cache in front of the device and measures how
//! much log-structured seek amplification survives it — and whether
//! selective caching still helps on top.

use super::ExpOptions;
use crate::engine::{SimConfig, Simulation};
use crate::report::TextTable;
use crate::saf::Saf;
use serde::Serialize;
use smrseek_trace::MIB;
use smrseek_workloads::profiles::{self, Profile};

/// One point of the host-cache sweep.
#[derive(Debug, Clone, Serialize)]
pub struct HostCachePoint {
    /// Host cache size in MiB (0 = none).
    pub host_mib: u64,
    /// Fraction of logical reads absorbed by the host cache.
    pub host_hit_fraction: f64,
    /// SAF of plain LS behind this host cache.
    pub ls: Saf,
    /// SAF of LS + selective caching behind this host cache.
    pub ls_cache: Saf,
}

/// The sweep for one workload.
#[derive(Debug, Clone, Serialize)]
pub struct HostCacheSweep {
    /// Workload name.
    pub workload: String,
    /// Sweep points in cache-size order.
    pub points: Vec<HostCachePoint>,
}

/// Runs the sweep for one workload over host cache sizes (MiB).
pub fn run_one(profile: &Profile, opts: &ExpOptions, sizes_mib: &[u64]) -> HostCacheSweep {
    let trace = profile.generate_scaled(opts.seed, opts.ops);
    let reads = trace.iter().filter(|r| r.op.is_read()).count() as f64;
    let points = sizes_mib
        .iter()
        .map(|&mib| {
            let with_host = |mut config: SimConfig| {
                if mib > 0 {
                    config.host_cache_bytes = Some(mib * MIB);
                }
                config
            };
            // The baseline sees the same host cache: SAF isolates the
            // translation layer's contribution at each cache size.
            let base = Simulation::new(&with_host(SimConfig::no_ls())).run_trace(&trace);
            let ls = Simulation::new(&with_host(SimConfig::log_structured())).run_trace(&trace);
            let cached = Simulation::new(&with_host(SimConfig::ls_cache())).run_trace(&trace);
            HostCachePoint {
                host_mib: mib,
                host_hit_fraction: if reads > 0.0 {
                    ls.host_cache_hits as f64 / reads
                } else {
                    0.0
                },
                ls: Saf::from_stats(&ls.seeks, &base.seeks),
                ls_cache: Saf::from_stats(&cached.seeks, &base.seeks),
            }
        })
        .collect();
    HostCacheSweep {
        workload: profile.name.to_owned(),
        points,
    }
}

/// Default sweep: w91 and hm_1 over 0–256 MiB host caches.
///
/// Sizes are chosen relative to the *scaled* synthetic working sets: a
/// host cache larger than the whole (scaled) footprint trivially absorbs
/// everything, which real traces — with footprints of tens to thousands
/// of GB (Table I) — never allow.
pub fn run(opts: &ExpOptions) -> Vec<HostCacheSweep> {
    ["w91", "hm_1"]
        .iter()
        .map(|name| {
            let profile = profiles::by_name(name).expect("profile exists");
            run_one(&profile, opts, &[0, 4, 16, 64, 256])
        })
        .collect()
}

/// Renders the sweeps.
pub fn render(sweeps: &[HostCacheSweep]) -> String {
    let mut out = String::new();
    for sweep in sweeps {
        let mut table = TextTable::new(vec![
            "host cache",
            "host hit rate",
            "LS SAF",
            "LS+cache SAF",
        ]);
        for p in &sweep.points {
            table.row(vec![
                format!("{} MiB", p.host_mib),
                format!("{:.0}%", 100.0 * p.host_hit_fraction),
                format!("{:.2}", p.ls.total),
                format!("{:.2}", p.ls_cache.total),
            ]);
        }
        out.push_str(&format!(
            "Extension — host buffer cache interaction on {}\n{}\n",
            sweep.workload, table
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ExpOptions {
        ExpOptions { seed: 6, ops: 5000 }
    }

    #[test]
    fn bigger_host_cache_absorbs_more_reads() {
        let sweep = run_one(&profiles::by_name("w91").unwrap(), &opts(), &[0, 4, 1024]);
        let hits: Vec<f64> = sweep.points.iter().map(|p| p.host_hit_fraction).collect();
        assert_eq!(hits[0], 0.0);
        assert!(hits[2] >= hits[1]);
        assert!(hits[2] > 0.1, "1 GiB host cache should absorb re-reads");
    }

    #[test]
    fn amplification_survives_an_undersized_host_cache() {
        // The paper's point: a host cache that cannot hold the scan
        // working set (the realistic case — Table-I footprints are tens
        // to thousands of GB) does not fix fragmentation; the reads that
        // reach the disk still seek, and selective caching still helps.
        // 4 MiB here is ~30% of w91's scaled scan working set.
        let sweep = run_one(&profiles::by_name("w91").unwrap(), &opts(), &[4]);
        let p = &sweep.points[0];
        assert!(
            p.ls.total > 1.0,
            "SAF behind an undersized host cache is {:.2}",
            p.ls.total
        );
        assert!(
            p.ls_cache.total < p.ls.total,
            "selective caching must still help: {:.2} vs {:.2}",
            p.ls_cache.total,
            p.ls.total
        );
    }

    #[test]
    fn oversized_host_cache_absorbs_everything() {
        // The flip side, and why the sweep sizes matter: once the host
        // cache exceeds the (scaled) footprint, repeats never reach the
        // device and amplification evaporates.
        let sweep = run_one(&profiles::by_name("w91").unwrap(), &opts(), &[0, 1024]);
        assert!(sweep.points[1].ls.total < sweep.points[0].ls.total);
    }

    #[test]
    fn render_mentions_sizes() {
        let text = render(&run(&ExpOptions { seed: 1, ops: 2000 }));
        assert!(text.contains("host buffer cache"));
        assert!(text.contains("256 MiB"));
    }
}
