//! Extension: does the infinite-disk abstraction hide anything? The
//! paper's model ignores zone structure (§II); this robustness check
//! re-runs the headline SAF comparison with the log backed by ZBC-style
//! zones (guard-band splits at every zone boundary) and reports how much
//! the numbers move.

use super::ExpOptions;
use crate::engine::{SimConfig, Simulation};
use crate::report::TextTable;
use crate::saf::Saf;
use serde::Serialize;
use smrseek_trace::{MIB, SECTOR_SIZE};
use smrseek_workloads::profiles::{self, Profile};

/// One workload's flat-vs-zoned comparison.
#[derive(Debug, Clone, Serialize)]
pub struct ZoneRow {
    /// Workload name.
    pub workload: String,
    /// SAF on the paper's continuous infinite frontier.
    pub flat: Saf,
    /// SAF with 256 MiB zones.
    pub zoned: Saf,
    /// Additional physical write operations caused by guard-band splits.
    pub extra_phys_writes: u64,
}

impl ZoneRow {
    /// Relative SAF change introduced by zoning.
    pub fn relative_change(&self) -> f64 {
        if self.flat.total == 0.0 {
            0.0
        } else {
            self.zoned.total / self.flat.total - 1.0
        }
    }
}

/// Compares one workload (256 MiB zones, a common SMR zone size).
pub fn run_one(profile: &Profile, opts: &ExpOptions) -> ZoneRow {
    let trace = profile.generate_scaled(opts.seed, opts.ops);
    let base = Simulation::new(&SimConfig::no_ls()).run_trace(&trace).seeks;
    let flat = Simulation::new(&SimConfig::log_structured()).run_trace(&trace);
    let zoned = Simulation::new(&SimConfig::log_structured().with_zones(256 * MIB / SECTOR_SIZE))
        .run_trace(&trace);
    let flat_writes = flat.ls_stats.expect("LS run").phys_writes;
    let zoned_writes = zoned.ls_stats.expect("LS run").phys_writes;
    ZoneRow {
        workload: profile.name.to_owned(),
        flat: Saf::from_stats(&flat.seeks, &base),
        zoned: Saf::from_stats(&zoned.seeks, &base),
        extra_phys_writes: zoned_writes.saturating_sub(flat_writes),
    }
}

/// Compares a representative spread of workloads.
pub fn run(opts: &ExpOptions) -> Vec<ZoneRow> {
    ["w91", "w20", "hm_1", "mds_0", "w36", "usr_1"]
        .iter()
        .map(|name| run_one(&profiles::by_name(name).expect("profile exists"), opts))
        .collect()
}

/// Renders the robustness check.
pub fn render(rows: &[ZoneRow]) -> String {
    let mut table = TextTable::new(vec![
        "workload",
        "SAF flat",
        "SAF zoned",
        "change",
        "guard-band splits",
    ]);
    for row in rows {
        table.row(vec![
            row.workload.clone(),
            format!("{:.3}", row.flat.total),
            format!("{:.3}", row.zoned.total),
            format!("{:+.1}%", 100.0 * row.relative_change()),
            row.extra_phys_writes.to_string(),
        ]);
    }
    format!("Extension — robustness of SAF to ZBC zone backing (256 MiB zones)\n{table}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ExpOptions {
        ExpOptions { seed: 8, ops: 5000 }
    }

    #[test]
    fn zoning_changes_saf_only_marginally() {
        // The experiment's point: the infinite-disk abstraction is safe —
        // guard bands split at most one write in a few thousand at
        // realistic zone sizes.
        for row in run(&opts()) {
            assert!(
                row.relative_change().abs() < 0.05,
                "{}: zoning moved SAF by {:+.1}%",
                row.workload,
                100.0 * row.relative_change()
            );
        }
    }

    #[test]
    fn zoned_runs_never_cheaper_and_split_occasionally() {
        let rows = run(&opts());
        let total_splits: u64 = rows.iter().map(|r| r.extra_phys_writes).sum();
        // Splits only happen when the frontier crosses a 256 MiB boundary
        // — rare at this scale, but the machinery must be exercised at
        // least somewhere across the six workloads.
        for row in &rows {
            assert!(
                row.zoned.total >= row.flat.total - 1e-9,
                "{}: zoning cannot remove seeks",
                row.workload
            );
        }
        let _ = total_splits; // may legitimately be 0 at small scales
    }

    #[test]
    fn render_mentions_zones() {
        let text = render(&run(&ExpOptions { seed: 1, ops: 1500 }));
        assert!(text.contains("256 MiB zones"));
        assert!(text.contains("w91"));
    }
}
