//! Fig 2: read and write seek counts under non-log-structured (NoLS) and
//! log-structured (LS) translation for every workload.
//!
//! Expected shape (§III): write seeks collapse under LS for every
//! workload; read seeks grow modestly for log-friendly workloads
//! (`src2_2`, `wdev_0`, `w36`), hugely for log-sensitive ones
//! (`w91`, `w33`, `w20` — up to ~5x net), and in between for `hm_1`,
//! `w93`, `w55`.

use super::ExpOptions;
use crate::engine::{SimConfig, Simulation};
use crate::report::TextTable;
use crate::runner::{MatrixStats, RunMatrix, TraceSource};
use crate::tracecache;
use serde::Serialize;
use smrseek_disk::SeekStats;
use smrseek_workloads::profiles::{self, Family, Profile};
use std::num::NonZeroUsize;
use std::path::Path;

/// Seek counts of one workload under both translations.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Row {
    /// Workload name.
    pub workload: String,
    /// Trace family.
    pub family: Family,
    /// Seeks under conventional translation.
    pub nols: SeekStats,
    /// Seeks under log-structured translation.
    pub ls: SeekStats,
}

impl Fig2Row {
    /// Net total-seek change, `ls.total() / nols.total()`.
    pub fn net_ratio(&self) -> f64 {
        self.ls.total() as f64 / self.nols.total().max(1) as f64
    }

    /// Read-seek growth, `ls.read / nols.read`.
    pub fn read_ratio(&self) -> f64 {
        self.ls.read_seeks as f64 / self.nols.read_seeks.max(1) as f64
    }
}

/// Simulates one workload under both translations.
pub fn run_one(profile: &Profile, opts: &ExpOptions) -> Fig2Row {
    let trace = profile.generate_scaled(opts.seed, opts.ops);
    Fig2Row {
        workload: profile.name.to_owned(),
        family: profile.family,
        nols: Simulation::new(&SimConfig::no_ls()).run_trace(&trace).seeks,
        ls: Simulation::new(&SimConfig::log_structured())
            .run_trace(&trace)
            .seeks,
    }
}

/// Simulates every Table-I workload (Fig 2a + 2b).
pub fn run(opts: &ExpOptions) -> Vec<Fig2Row> {
    run_with_threads(opts, NonZeroUsize::MIN).0
}

/// Simulates every Table-I workload through the parallel run matrix: two
/// cells (NoLS, LS) per workload, executed on up to `threads` workers.
/// Rows are identical to [`run`]'s for any thread count.
pub fn run_with_threads(opts: &ExpOptions, threads: NonZeroUsize) -> (Vec<Fig2Row>, MatrixStats) {
    run_cached(opts, threads, None)
}

/// [`run_with_threads`] replaying from the binary trace cache: each
/// workload's records come from an mmapped `.smrt` sidecar under
/// `cache_dir` (populated on first use), so both cells share one mapping
/// and repeat runs never regenerate the trace. Rows are identical to
/// [`run`]'s.
pub fn run_cached(
    opts: &ExpOptions,
    threads: NonZeroUsize,
    cache_dir: Option<&Path>,
) -> (Vec<Fig2Row>, MatrixStats) {
    let all = profiles::all();
    let sources: Vec<TraceSource> = all
        .iter()
        .map(|p| tracecache::profile_source(p, opts, cache_dir))
        .collect();
    let matrix = RunMatrix::cross(&sources, &[SimConfig::no_ls(), SimConfig::log_structured()]);
    let outcomes = matrix.execute(threads);
    let stats = MatrixStats::from_outcomes(&outcomes);
    let rows = all
        .iter()
        .zip(outcomes.chunks_exact(2))
        .map(|(profile, pair)| Fig2Row {
            workload: profile.name.to_owned(),
            family: profile.family,
            nols: pair[0].report.seeks,
            ls: pair[1].report.seeks,
        })
        .collect();
    (rows, stats)
}

/// Renders the text analogue of Fig 2's stacked bars.
pub fn render(rows: &[Fig2Row]) -> String {
    let mut out = String::new();
    for family in [Family::Msr, Family::CloudPhysics] {
        let mut table = TextTable::new(vec![
            "workload", "NoLS rd", "NoLS wr", "LS rd", "LS wr", "net",
        ]);
        for row in rows.iter().filter(|r| r.family == family) {
            table.row(vec![
                row.workload.clone(),
                row.nols.read_seeks.to_string(),
                row.nols.write_seeks.to_string(),
                row.ls.read_seeks.to_string(),
                row.ls.write_seeks.to_string(),
                format!("{:.2}x", row.net_ratio()),
            ]);
        }
        out.push_str(&format!(
            "Fig 2{} — seek counts, NoLS vs LS ({} workloads)\n",
            if family == Family::Msr { "a" } else { "b" },
            family
        ));
        out.push_str(&table.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ExpOptions {
        ExpOptions { seed: 5, ops: 6000 }
    }

    #[test]
    fn write_seeks_collapse_under_ls_everywhere() {
        for row in run(&opts()) {
            assert!(
                row.ls.write_seeks * 5 <= row.nols.write_seeks.max(5),
                "{}: LS write seeks {} vs NoLS {}",
                row.workload,
                row.ls.write_seeks,
                row.nols.write_seeks
            );
        }
    }

    #[test]
    fn read_seeks_grow_for_log_sensitive() {
        for name in ["w91", "w20", "usr_1"] {
            let row = run_one(&profiles::by_name(name).unwrap(), &opts());
            assert!(
                row.read_ratio() > 2.0,
                "{name}: LS read seeks must grow, ratio {:.2}",
                row.read_ratio()
            );
        }
    }

    #[test]
    fn net_reduction_for_log_friendly() {
        for name in ["src2_2", "wdev_0", "w36", "mds_0"] {
            let row = run_one(&profiles::by_name(name).unwrap(), &opts());
            assert!(
                row.net_ratio() < 1.0,
                "{name}: net ratio {:.2} should be below 1",
                row.net_ratio()
            );
        }
    }

    #[test]
    fn parallel_execution_matches_serial() {
        let o = ExpOptions { seed: 5, ops: 1500 };
        let serial = run(&o);
        let (parallel, stats) = run_with_threads(&o, NonZeroUsize::new(4).expect("nonzero"));
        assert_eq!(serial.len(), parallel.len());
        assert_eq!(stats.cells.len(), 2 * serial.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.nols, b.nols, "{}: NoLS seeks differ", a.workload);
            assert_eq!(a.ls, b.ls, "{}: LS seeks differ", a.workload);
        }
    }

    #[test]
    fn render_shows_both_panels() {
        let rows = vec![
            run_one(&profiles::by_name("hm_1").unwrap(), &opts()),
            run_one(&profiles::by_name("w36").unwrap(), &opts()),
        ];
        let text = render(&rows);
        assert!(text.contains("Fig 2a"));
        assert!(text.contains("Fig 2b"));
    }
}
