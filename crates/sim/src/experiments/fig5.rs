//! Fig 5: CDF of dynamic fragmentation across *fragmented* reads for
//! `usr_0`, `hm_1`, `w20` and `w36`.
//!
//! Expected shape: fragments are concentrated — "the bulk of the fragments
//! are found in a small fraction of the read operations": for `usr_0`,
//! `hm_1` and `w20` over half of all fragments fall in ~20% of the
//! fragmented reads, and the disparity is even higher for `w36`.

use super::ExpOptions;
use crate::engine::{SimConfig, Simulation};
use crate::report::TextTable;
use serde::Serialize;
use smrseek_workloads::profiles::{self, Profile};

/// The workloads plotted in Fig 5.
pub const WORKLOADS: [&str; 4] = ["usr_0", "hm_1", "w20", "w36"];

/// Per-read fragment-count distribution of one workload.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Dist {
    /// Workload name.
    pub workload: String,
    /// Fragment count of each fragmented read, in trace order.
    pub per_read_fragments: Vec<u32>,
}

impl Fig5Dist {
    /// Number of fragmented reads.
    pub fn fragmented_reads(&self) -> usize {
        self.per_read_fragments.len()
    }

    /// Total fragments across fragmented reads.
    pub fn total_fragments(&self) -> u64 {
        self.per_read_fragments.iter().map(|&c| u64::from(c)).sum()
    }

    /// Smallest fraction of fragmented reads that accounts for `fraction`
    /// of all fragments (reads sorted most-fragmented first) — the
    /// concentration statistic behind Fig 5's bowed CDFs.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn reads_holding_fragment_share(&self, fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        if self.per_read_fragments.is_empty() {
            return 0.0;
        }
        let mut sorted = self.per_read_fragments.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let target = self.total_fragments() as f64 * fraction;
        let mut acc = 0.0;
        for (i, &c) in sorted.iter().enumerate() {
            acc += f64::from(c);
            if acc >= target {
                return (i + 1) as f64 / sorted.len() as f64;
            }
        }
        1.0
    }

    /// `(fragment_count, F)` CDF points over the recorded reads.
    pub fn cdf_points(&self) -> Vec<(u32, f64)> {
        if self.per_read_fragments.is_empty() {
            return Vec::new();
        }
        let mut sorted = self.per_read_fragments.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        let mut points = Vec::new();
        let mut i = 0;
        while i < n {
            let v = sorted[i];
            let mut j = i;
            while j < n && sorted[j] == v {
                j += 1;
            }
            points.push((v, j as f64 / n as f64));
            i = j;
        }
        points
    }
}

/// Measures one workload's fragmented-read distribution.
pub fn run_one(profile: &Profile, opts: &ExpOptions) -> Fig5Dist {
    let trace = profile.generate_scaled(opts.seed, opts.ops);
    let report =
        Simulation::new(&SimConfig::log_structured().with_fragment_tracking()).run_trace(&trace);
    Fig5Dist {
        workload: profile.name.to_owned(),
        per_read_fragments: report
            .fragments
            .expect("fragment tracking was enabled")
            .per_read_fragment_counts()
            .to_vec(),
    }
}

/// Measures the four Fig 5 panels.
pub fn run(opts: &ExpOptions) -> Vec<Fig5Dist> {
    WORKLOADS
        .iter()
        .map(|name| {
            let profile = profiles::by_name(name).expect("Fig 5 workload exists");
            run_one(&profile, opts)
        })
        .collect()
}

/// Renders the concentration statistics.
pub fn render(dists: &[Fig5Dist]) -> String {
    let mut table = TextTable::new(vec![
        "workload",
        "fragmented reads",
        "total fragments",
        "reads holding 50% of fragments",
        "max frags/read",
    ]);
    for d in dists {
        let max = d.per_read_fragments.iter().copied().max().unwrap_or(0);
        table.row(vec![
            d.workload.clone(),
            d.fragmented_reads().to_string(),
            d.total_fragments().to_string(),
            format!("{:.1}%", 100.0 * d.reads_holding_fragment_share(0.5)),
            max.to_string(),
        ]);
    }
    format!("Fig 5 — dynamic fragmentation of fragmented reads\n{table}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ExpOptions {
        ExpOptions { seed: 6, ops: 8000 }
    }

    #[test]
    fn fragmented_reads_exist_and_have_at_least_two_fragments() {
        for d in run(&opts()) {
            assert!(
                d.fragmented_reads() > 0,
                "{} must have fragmented reads",
                d.workload
            );
            assert!(d.per_read_fragments.iter().all(|&c| c >= 2));
        }
    }

    #[test]
    fn fragments_are_concentrated() {
        // The paper: >=50% of fragments in <=~20-30% of fragmented reads.
        for name in ["usr_0", "hm_1"] {
            let d = run_one(&profiles::by_name(name).unwrap(), &opts());
            let share = d.reads_holding_fragment_share(0.5);
            assert!(
                share < 0.5,
                "{name}: 50% of fragments in {:.0}% of reads — not concentrated",
                100.0 * share
            );
        }
    }

    #[test]
    fn cdf_points_monotone_and_terminal() {
        let d = run_one(&profiles::by_name("w20").unwrap(), &opts());
        let pts = d.cdf_points();
        assert!(!pts.is_empty());
        assert!(pts.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_distribution_is_benign() {
        let d = Fig5Dist {
            workload: "x".into(),
            per_read_fragments: Vec::new(),
        };
        assert_eq!(d.reads_holding_fragment_share(0.5), 0.0);
        assert!(d.cdf_points().is_empty());
        assert_eq!(d.total_fragments(), 0);
    }
}
