//! Fig 3: log-structured translation overhead over time, measured as the
//! per-operation-bucket difference in long (>500 KB) seek counts
//! (LS minus NoLS) for `usr_1`, `web_0`, `w91` and `w55`.
//!
//! Expected shape: strong temporal variation — including workloads like
//! `w55` whose *average* amplification is mild but which suffer
//! significant overhead in bursts (the paper's diurnal patterns).

use super::ExpOptions;
use crate::engine::{SimConfig, Simulation};
use crate::report::TextTable;
use serde::Serialize;
use smrseek_disk::series::diff_series;
use smrseek_workloads::profiles::{self, Profile};

/// The workloads plotted in Fig 3.
pub const WORKLOADS: [&str; 4] = ["usr_1", "web_0", "w91", "w55"];

/// One workload's long-seek overhead series.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3Series {
    /// Workload name.
    pub workload: String,
    /// Bucket width in logical operations.
    pub bucket_ops: u64,
    /// Per-bucket `LS - NoLS` long-seek difference.
    pub diff: Vec<i64>,
}

impl Fig3Series {
    /// Largest per-bucket overhead.
    pub fn peak(&self) -> i64 {
        self.diff.iter().copied().max().unwrap_or(0)
    }

    /// Sum of the series (net long-seek overhead).
    pub fn net(&self) -> i64 {
        self.diff.iter().sum()
    }

    /// Coefficient of variation of the positive part — a scalar proxy for
    /// "strong temporal changes" (≫ 0 means bursty).
    pub fn burstiness(&self) -> f64 {
        let n = self.diff.len();
        if n == 0 {
            return 0.0;
        }
        let mean = self.diff.iter().map(|&d| d.max(0) as f64).sum::<f64>() / n as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .diff
            .iter()
            .map(|&d| (d.max(0) as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        var.sqrt() / mean
    }
}

/// Computes the series for one workload with `buckets` buckets.
pub fn run_one(profile: &Profile, opts: &ExpOptions, buckets: usize) -> Fig3Series {
    let trace = profile.generate_scaled(opts.seed, opts.ops);
    let bucket_ops = (trace.len() as u64 / buckets.max(1) as u64).max(1);
    let ls = Simulation::new(&SimConfig::log_structured().with_longseek_series(bucket_ops))
        .run_trace(&trace);
    let nols =
        Simulation::new(&SimConfig::no_ls().with_longseek_series(bucket_ops)).run_trace(&trace);
    Fig3Series {
        workload: profile.name.to_owned(),
        bucket_ops,
        diff: diff_series(
            &ls.longseek_series.expect("series was enabled"),
            &nols.longseek_series.expect("series was enabled"),
        ),
    }
}

/// Computes the four Fig 3 series with 40 buckets each.
pub fn run(opts: &ExpOptions) -> Vec<Fig3Series> {
    WORKLOADS
        .iter()
        .map(|name| {
            let profile = profiles::by_name(name).expect("Fig 3 workload exists");
            run_one(&profile, opts, 40)
        })
        .collect()
}

/// Renders per-bucket sparkline-style rows plus summary statistics.
pub fn render(series: &[Fig3Series]) -> String {
    let mut out = String::from("Fig 3 — long (>500KB) seek overhead over time (LS - NoLS)\n");
    let mut table = TextTable::new(vec!["workload", "bucket ops", "net", "peak", "burstiness"]);
    for s in series {
        table.row(vec![
            s.workload.clone(),
            s.bucket_ops.to_string(),
            s.net().to_string(),
            s.peak().to_string(),
            format!("{:.2}", s.burstiness()),
        ]);
    }
    out.push_str(&table.to_string());
    for s in series {
        out.push_str(&format!("\n{} series: ", s.workload));
        let peak = s.diff.iter().map(|d| d.abs()).max().unwrap_or(1).max(1);
        for &d in &s.diff {
            // 5-level text sparkline, '-' for negative buckets.
            let c = if d < 0 {
                '-'
            } else {
                match (d * 4 / peak).clamp(0, 4) {
                    0 => '.',
                    1 => ':',
                    2 => '|',
                    3 => '$',
                    _ => '#',
                }
            };
            out.push(c);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ExpOptions {
        ExpOptions { seed: 2, ops: 8000 }
    }

    #[test]
    fn log_sensitive_series_show_overhead() {
        let profile = profiles::by_name("w91").unwrap();
        let s = run_one(&profile, &opts(), 20);
        assert!(s.net() > 0, "w91 must show net long-seek overhead");
        assert!(s.peak() > 0);
        assert!(s.diff.len() as u64 * s.bucket_ops >= 8000);
    }

    #[test]
    fn series_is_bursty_not_flat() {
        let profile = profiles::by_name("w55").unwrap();
        let s = run_one(&profile, &opts(), 40);
        assert!(
            s.burstiness() > 0.5,
            "w55 should be temporally bursty, got {:.2}",
            s.burstiness()
        );
    }

    #[test]
    fn run_covers_the_four_workloads() {
        let series = run(&ExpOptions { seed: 1, ops: 2000 });
        let names: Vec<_> = series.iter().map(|s| s.workload.as_str()).collect();
        assert_eq!(names, WORKLOADS);
    }

    #[test]
    fn render_has_sparklines() {
        let series = run(&ExpOptions { seed: 1, ops: 2000 });
        let text = render(&series);
        assert!(text.contains("usr_1 series:"));
        assert!(text.contains("burstiness"));
    }
}
