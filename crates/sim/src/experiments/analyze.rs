//! Trace-level analysis of every profile: connects the raw trace
//! characteristics ([`smrseek_trace::analysis`]) to the seek classes they
//! produce, before any translation-layer simulation runs.
//!
//! The predictive story: a workload is log-*sensitive* when a large share
//! of its read volume targets trace-written (hence log-scattered) data,
//! and log-*friendly* when writes dominate and overwrite quickly.

use super::classify::{classify_saf, SeekClass};
use super::ExpOptions;
use crate::engine::{SimConfig, Simulation};
use crate::report::TextTable;
use crate::saf::Saf;
use serde::Serialize;
use smrseek_trace::{summarize, AnalysisSummary};
use smrseek_workloads::profiles::{self, Profile};

/// One workload's trace analysis next to its measured class.
#[derive(Debug, Clone, Serialize)]
pub struct AnalyzeRow {
    /// Workload name.
    pub workload: String,
    /// Trace-level analysis.
    pub analysis: AnalysisSummary,
    /// Measured SAF of plain LS.
    pub saf: f64,
    /// Class implied by the SAF.
    pub class: SeekClass,
}

/// Analyzes one workload.
pub fn run_one(profile: &Profile, opts: &ExpOptions) -> AnalyzeRow {
    let trace = profile.generate_scaled(opts.seed, opts.ops);
    let base = Simulation::new(&SimConfig::no_ls()).run_trace(&trace).seeks;
    let saf = Saf::from_stats(
        &Simulation::new(&SimConfig::log_structured())
            .run_trace(&trace)
            .seeks,
        &base,
    );
    AnalyzeRow {
        workload: profile.name.to_owned(),
        analysis: summarize(&trace),
        saf: saf.total,
        class: classify_saf(saf.total),
    }
}

/// Analyzes all 21 profiles.
pub fn run(opts: &ExpOptions) -> Vec<AnalyzeRow> {
    profiles::all().iter().map(|p| run_one(p, opts)).collect()
}

/// Renders the analysis table.
pub fn render(rows: &[AnalyzeRow]) -> String {
    let mut table = TextTable::new(vec![
        "workload",
        "read-after-write",
        "overwrites",
        "median ow interval",
        "peak WSS (4K blocks)",
        "SAF",
        "class",
    ]);
    for row in rows {
        table.row(vec![
            row.workload.clone(),
            format!("{:.0}%", 100.0 * row.analysis.read_after_write),
            row.analysis.overwrites.to_string(),
            row.analysis
                .median_overwrite_interval
                .map_or_else(|| "—".to_owned(), |v| v.to_string()),
            row.analysis.peak_wss_blocks.to_string(),
            format!("{:.2}", row.saf),
            row.class.to_string(),
        ]);
    }
    format!("Trace analysis vs seek class (all profiles)\n{table}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ExpOptions {
        ExpOptions { seed: 7, ops: 4000 }
    }

    #[test]
    fn log_sensitive_workloads_read_their_own_writes() {
        // The predictive signal: every log-sensitive workload reads a
        // non-trivial share of trace-written blocks — entirely pre-trace
        // reads cannot fragment. The share can be modest (usr_1's huge
        // scans are mostly pre-trace data, yet the sparse log-scattered
        // blocks inside each scan range fragment most scan reads), so the
        // threshold is a floor, not a strong signal.
        for row in run(&opts()) {
            if row.class == SeekClass::LogSensitive {
                assert!(
                    row.analysis.read_after_write > 0.05,
                    "{}: RAW {:.2} too low for class {:?}",
                    row.workload,
                    row.analysis.read_after_write,
                    row.class
                );
            }
        }
    }

    #[test]
    fn write_heavy_workloads_overwrite_quickly() {
        let row = run_one(&profiles::by_name("mds_0").unwrap(), &opts());
        assert!(row.analysis.overwrites > 0);
        assert!(row.class == SeekClass::LogFriendly);
    }

    #[test]
    fn render_covers_all_profiles() {
        let text = render(&run(&ExpOptions { seed: 1, ops: 1500 }));
        for name in ["usr_1", "w91", "ts_0"] {
            assert!(text.contains(name));
        }
        assert!(text.contains("read-after-write"));
    }
}
