//! Fig 8: mis-ordered writes within a 256 KB look-ahead window.
//!
//! Expected shape: mis-ordering is workload-dependent, reaching roughly
//! one write in 25 for `w106` and one in 20 for `src2_2`; profiles built
//! from descending or interleaved write streams rank highest.

use super::ExpOptions;
use crate::report::TextTable;
use serde::Serialize;
use smrseek_stl::{count_misordered_writes, MISORDER_WINDOW_BYTES};
use smrseek_workloads::profiles::{self, Profile};

/// Mis-ordered write statistics of one workload.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Row {
    /// Workload name.
    pub workload: String,
    /// Mis-ordered writes within the window.
    pub misordered: u64,
    /// Total writes.
    pub total_writes: u64,
}

impl Fig8Row {
    /// Mis-ordered fraction in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        if self.total_writes == 0 {
            0.0
        } else {
            self.misordered as f64 / self.total_writes as f64
        }
    }
}

/// Measures one workload.
pub fn run_one(profile: &Profile, opts: &ExpOptions) -> Fig8Row {
    let trace = profile.generate_scaled(opts.seed, opts.ops);
    let (misordered, total_writes) = count_misordered_writes(&trace, MISORDER_WINDOW_BYTES);
    Fig8Row {
        workload: profile.name.to_owned(),
        misordered,
        total_writes,
    }
}

/// Measures every Table-I workload.
pub fn run(opts: &ExpOptions) -> Vec<Fig8Row> {
    profiles::all().iter().map(|p| run_one(p, opts)).collect()
}

/// Renders the per-workload mis-ordered fractions.
pub fn render(rows: &[Fig8Row]) -> String {
    let mut table = TextTable::new(vec!["workload", "misordered", "writes", "fraction"]);
    for row in rows {
        table.row(vec![
            row.workload.clone(),
            row.misordered.to_string(),
            row.total_writes.to_string(),
            format!("{:.2}%", 100.0 * row.fraction()),
        ]);
    }
    format!(
        "Fig 8 — mis-ordered writes within {} KB\n{table}",
        MISORDER_WINDOW_BYTES / 1024
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ExpOptions {
        ExpOptions { seed: 9, ops: 8000 }
    }

    #[test]
    fn misordered_heavy_profiles_rank_high() {
        let rows = run(&opts());
        let get = |name: &str| rows.iter().find(|r| r.workload == name).unwrap().fraction();
        // Descending/interleaved writers beat the purely random ones.
        assert!(get("hm_1") > get("mds_0"));
        assert!(get("src2_2") > get("rsrch_0"));
        assert!(get("w84") > get("w76"));
    }

    #[test]
    fn src2_2_fraction_in_paper_ballpark() {
        let row = run_one(&profiles::by_name("src2_2").unwrap(), &opts());
        // Paper: roughly 1 in 20 (5%). Accept a generous band.
        assert!(
            row.fraction() > 0.01 && row.fraction() < 0.25,
            "src2_2 misordered fraction {:.3}",
            row.fraction()
        );
    }

    #[test]
    fn fractions_bounded() {
        for row in run(&ExpOptions { seed: 1, ops: 2000 }) {
            assert!((0.0..=1.0).contains(&row.fraction()), "{}", row.workload);
            assert!(row.misordered <= row.total_writes);
        }
    }

    #[test]
    fn render_has_percentages() {
        let text = render(&run(&ExpOptions { seed: 1, ops: 2000 }));
        assert!(text.contains('%'));
        assert!(text.contains("256 KB"));
    }
}
