//! Empirical CDFs and histograms over seek/access distances (Fig 4).

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution function built from samples.
///
/// # Example
///
/// ```
/// use smrseek_disk::Cdf;
///
/// let cdf = Cdf::from_samples(vec![-5i64, 0, 0, 10]);
/// assert_eq!(cdf.fraction_at_or_below(-6), 0.0);
/// assert_eq!(cdf.fraction_at_or_below(0), 0.75);
/// assert_eq!(cdf.fraction_at_or_below(10), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Cdf {
    sorted: Vec<i64>,
}

impl Cdf {
    /// Builds a CDF from raw samples (consumed and sorted).
    pub fn from_samples(mut samples: Vec<i64>) -> Self {
        samples.sort_unstable();
        Cdf { sorted: samples }
    }

    /// Builds a CDF from borrowed samples, leaving the source in place
    /// (one copy, made here, instead of a clone at every call site).
    pub fn from_slice(samples: &[i64]) -> Self {
        Self::from_samples(samples.to_vec())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if the CDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= value`, in `[0, 1]`; 0 for an empty CDF.
    pub fn fraction_at_or_below(&self, value: i64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&s| s <= value);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by the nearest-rank method, or `None`
    /// for an empty CDF.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<i64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.sorted.is_empty() {
            return None;
        }
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.sorted[rank - 1])
    }

    /// Fraction of samples in the closed interval `[lo, hi]`.
    pub fn fraction_within(&self, lo: i64, hi: i64) -> f64 {
        if self.sorted.is_empty() || lo > hi {
            return 0.0;
        }
        let a = self.sorted.partition_point(|&s| s < lo);
        let b = self.sorted.partition_point(|&s| s <= hi);
        (b - a) as f64 / self.sorted.len() as f64
    }

    /// Samples the CDF at `points` evenly spaced values across `[lo, hi]`,
    /// returning `(x, F(x))` pairs — the series plotted in Fig 4.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2` or `lo >= hi`.
    pub fn curve(&self, lo: i64, hi: i64, points: usize) -> Vec<(i64, f64)> {
        assert!(points >= 2, "need at least two points");
        assert!(lo < hi, "lo must be below hi");
        let span = (hi - lo) as f64;
        (0..points)
            .map(|i| {
                let x = lo + (span * i as f64 / (points - 1) as f64).round() as i64;
                (x, self.fraction_at_or_below(x))
            })
            .collect()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[i64] {
        &self.sorted
    }

    /// Folds another CDF's samples into this one (linear-time merge of the
    /// two sorted sample sets). The result equals building one CDF from the
    /// concatenated raw samples.
    pub fn merge(&mut self, other: &Cdf) {
        if other.sorted.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.sorted.len() + other.sorted.len());
        let (mut a, mut b) = (
            self.sorted.iter().peekable(),
            other.sorted.iter().peekable(),
        );
        while let (Some(&&x), Some(&&y)) = (a.peek(), b.peek()) {
            if x <= y {
                merged.push(x);
                a.next();
            } else {
                merged.push(y);
                b.next();
            }
        }
        merged.extend(a.copied());
        merged.extend(b.copied());
        self.sorted = merged;
    }
}

impl FromIterator<i64> for Cdf {
    fn from_iter<I: IntoIterator<Item = i64>>(iter: I) -> Self {
        Cdf::from_samples(iter.into_iter().collect())
    }
}

/// A fixed-bin histogram over absolute distances, log-2 spaced, for compact
/// summaries of seek length distributions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// `bins[i]` counts samples with `2^i <= |x| < 2^(i+1)`; `zero` counts
    /// exact zeros.
    bins: Vec<u64>,
    zero: u64,
}

impl LogHistogram {
    /// Creates an empty histogram able to represent any `i64`.
    pub fn new() -> Self {
        LogHistogram {
            bins: vec![0; 64],
            zero: 0,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, value: i64) {
        match value.unsigned_abs() {
            0 => self.zero += 1,
            m => self.bins[63 - m.leading_zeros() as usize] += 1,
        }
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.zero + self.bins.iter().sum::<u64>()
    }

    /// Count of exact-zero samples.
    pub fn zeros(&self) -> u64 {
        self.zero
    }

    /// Non-empty `(bin_floor, count)` pairs where `bin_floor = 2^i`.
    pub fn nonzero_bins(&self) -> Vec<(u64, u64)> {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
            .collect()
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf() {
        let cdf = Cdf::default();
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_or_below(0), 0.0);
        assert_eq!(cdf.quantile(0.5), None);
        assert_eq!(cdf.fraction_within(-1, 1), 0.0);
    }

    #[test]
    fn fractions_and_quantiles() {
        let cdf: Cdf = vec![1i64, 2, 3, 4].into_iter().collect();
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.fraction_at_or_below(2), 0.5);
        assert_eq!(cdf.quantile(0.0), Some(1));
        assert_eq!(cdf.quantile(0.5), Some(2));
        assert_eq!(cdf.quantile(1.0), Some(4));
        assert_eq!(cdf.fraction_within(2, 3), 0.5);
        assert_eq!(cdf.fraction_within(5, 9), 0.0);
        assert_eq!(cdf.fraction_within(3, 1), 0.0); // inverted range
    }

    #[test]
    fn curve_endpoints() {
        let cdf: Cdf = vec![0i64, 10].into_iter().collect();
        let pts = cdf.curve(-10, 10, 3);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (-10, 0.0));
        assert_eq!(pts[1], (0, 0.5));
        assert_eq!(pts[2], (10, 1.0));
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_validates() {
        Cdf::default().quantile(1.5);
    }

    #[test]
    fn merge_equals_concatenated_samples() {
        let mut a = Cdf::from_samples(vec![5, -3, 9]);
        let b = Cdf::from_samples(vec![0, -3, 12, 7]);
        a.merge(&b);
        assert_eq!(a, Cdf::from_samples(vec![5, -3, 9, 0, -3, 12, 7]));

        let mut empty = Cdf::default();
        empty.merge(&a);
        assert_eq!(empty, a);
        let before = a.clone();
        a.merge(&Cdf::default());
        assert_eq!(a, before);
    }

    #[test]
    fn log_histogram_binning() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(1);
        h.record(-1);
        h.record(2);
        h.record(3);
        h.record(-1024);
        assert_eq!(h.count(), 6);
        assert_eq!(h.zeros(), 1);
        let bins = h.nonzero_bins();
        assert_eq!(bins, vec![(1, 2), (2, 2), (1024, 1)]);
    }
}
