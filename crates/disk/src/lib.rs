//! Disk seek model for the `smrseek` workspace.
//!
//! Implements the paper's disk model (Section II of *Minimizing Read Seeks
//! for SMR Disk*): *"We consider a seek to occur if an I/O operation starts
//! at a sector other than that immediately following the previous I/O
//! operation, and term it a read or write seek according to whether the
//! second of the two operations is a read or write."*
//!
//! Modules:
//!
//! * [`physio`] — the physical I/O operation fed to the seek model.
//! * [`position`] — the head-position tracker that detects seeks.
//! * [`seek`] — seek events, signed distances, the >500 KB "long seek"
//!   threshold used by Fig 3.
//! * [`counter`] — accumulating read/write seek statistics ([`SeekCounter`],
//!   [`SeekStats`]).
//! * [`histogram`] — distance histograms and CDFs (Fig 4).
//! * [`series`] — per-operation-bucket long-seek time series (Fig 3).
//! * [`cost`] — a seek-time cost model (rotational + head travel, §III).
//! * [`zone`] — an SMR zoned-device model (ZBC-style write pointers)
//!   backing the log for fidelity beyond the infinite-disk abstraction.
//!
//! # Example
//!
//! ```
//! use smrseek_disk::{PhysIo, SeekCounter};
//! use smrseek_trace::{OpKind, Pba};
//!
//! let mut counter = SeekCounter::new();
//! counter.observe(&PhysIo::new(OpKind::Write, Pba::new(0), 8));
//! counter.observe(&PhysIo::new(OpKind::Write, Pba::new(8), 8));   // contiguous
//! counter.observe(&PhysIo::new(OpKind::Read, Pba::new(100), 8));  // read seek
//! counter.observe(&PhysIo::new(OpKind::Write, Pba::new(8), 8));   // write seek
//! assert_eq!(counter.stats().write_seeks, 1);
//! assert_eq!(counter.stats().read_seeks, 1);
//! ```

#![warn(missing_docs)]
pub mod cost;
pub mod counter;
pub mod geometry;
pub mod histogram;
pub mod physio;
pub mod position;
pub mod seek;
pub mod series;
pub mod zone;

pub use cost::{DiskProfile, FlashProfile};
pub use counter::{SeekCounter, SeekCounterState, SeekStats};
pub use geometry::{DiskGeometry, Location, RecordingZone};
pub use histogram::Cdf;
pub use physio::PhysIo;
pub use position::HeadTracker;
pub use seek::{Seek, LONG_SEEK_SECTORS};
pub use series::LongSeekSeries;
pub use zone::{ZoneState, ZonedDevice};
