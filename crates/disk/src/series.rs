//! Per-operation-bucket long-seek time series (Fig 3).
//!
//! Fig 3 plots, per unit of time (bucketed by operation number), the
//! *difference* between long-seek counts under log-structured translation
//! and the original trace. [`LongSeekSeries`] accumulates one side of that
//! difference; [`diff_series`] subtracts two of them.

use crate::seek::Seek;
use serde::{Deserialize, Serialize};

/// Counts long (> 500 KB) seeks per fixed-size bucket of *logical*
/// operations.
///
/// Bucketing is by logical operation index — the trace position — rather
/// than by physical operation, so that the LS and NoLS series of the same
/// trace align bucket-for-bucket even though LS fragments reads into more
/// physical operations.
///
/// # Example
///
/// ```
/// use smrseek_disk::{LongSeekSeries, Seek};
/// use smrseek_trace::OpKind;
///
/// let mut series = LongSeekSeries::new(1000);
/// series.record(0, &Seek { op: OpKind::Read, distance: 5000, op_index: 0 });
/// series.record(1500, &Seek { op: OpKind::Read, distance: -5000, op_index: 9 });
/// assert_eq!(series.buckets(), &[1, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LongSeekSeries {
    ops_per_bucket: u64,
    buckets: Vec<u64>,
}

impl LongSeekSeries {
    /// Creates a series with the given bucket width (logical operations).
    ///
    /// # Panics
    ///
    /// Panics if `ops_per_bucket` is zero.
    pub fn new(ops_per_bucket: u64) -> Self {
        assert!(ops_per_bucket > 0, "bucket width must be positive");
        LongSeekSeries {
            ops_per_bucket,
            buckets: Vec::new(),
        }
    }

    /// Records a seek that occurred while serving logical operation
    /// `logical_op_index`; short seeks are ignored.
    pub fn record(&mut self, logical_op_index: u64, seek: &Seek) {
        if !seek.is_long() {
            return;
        }
        let bucket = usize::try_from(logical_op_index / self.ops_per_bucket)
            .expect("bucket index fits usize");
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
    }

    /// The per-bucket long-seek counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Bucket width in logical operations.
    pub fn ops_per_bucket(&self) -> u64 {
        self.ops_per_bucket
    }

    /// Total long seeks recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Folds another series into this one, bucket by bucket. Because
    /// [`record`](Self::record) buckets by *absolute* logical operation
    /// index, a series built over records `[s, e)` of a trace already has
    /// its counts in the right buckets (with leading zeros); merging the
    /// per-shard series of a partitioned trace therefore reproduces the
    /// serial series exactly. The shorter side is zero-padded.
    ///
    /// # Panics
    ///
    /// Panics if the bucket widths differ — such series index different
    /// time axes and no elementwise sum is meaningful.
    pub fn merge(&mut self, other: &LongSeekSeries) {
        assert_eq!(
            self.ops_per_bucket, other.ops_per_bucket,
            "cannot merge long-seek series with different bucket widths"
        );
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }
}

/// Computes the per-bucket signed difference `ls - nols` (the series Fig 3
/// plots). The shorter series is zero-padded.
pub fn diff_series(ls: &LongSeekSeries, nols: &LongSeekSeries) -> Vec<i64> {
    let n = ls.buckets.len().max(nols.buckets.len());
    (0..n)
        .map(|i| {
            let a = ls.buckets.get(i).copied().unwrap_or(0) as i64;
            let b = nols.buckets.get(i).copied().unwrap_or(0) as i64;
            a - b
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smrseek_trace::OpKind;

    fn long(op_index: u64) -> Seek {
        Seek {
            op: OpKind::Read,
            distance: 10_000,
            op_index,
        }
    }

    fn short(op_index: u64) -> Seek {
        Seek {
            op: OpKind::Read,
            distance: 10,
            op_index,
        }
    }

    #[test]
    fn buckets_grow_on_demand() {
        let mut s = LongSeekSeries::new(100);
        s.record(0, &long(0));
        s.record(250, &long(1));
        s.record(250, &long(2));
        assert_eq!(s.buckets(), &[1, 0, 2]);
        assert_eq!(s.total(), 3);
        assert_eq!(s.ops_per_bucket(), 100);
    }

    #[test]
    fn short_seeks_ignored() {
        let mut s = LongSeekSeries::new(10);
        s.record(5, &short(0));
        assert!(s.buckets().is_empty());
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn diff_pads_shorter_series() {
        let mut a = LongSeekSeries::new(10);
        a.record(0, &long(0));
        a.record(25, &long(1));
        let mut b = LongSeekSeries::new(10);
        b.record(0, &long(0));
        b.record(0, &long(1));
        assert_eq!(diff_series(&a, &b), vec![-1, 0, 1]);
        assert_eq!(diff_series(&b, &a), vec![1, 0, -1]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bucket_width_panics() {
        LongSeekSeries::new(0);
    }

    #[test]
    fn merge_sums_buckets_with_zero_padding() {
        let mut a = LongSeekSeries::new(100);
        a.record(0, &long(0));
        a.record(150, &long(1));
        // b covers a later record range: absolute indexing leaves leading
        // zeros, exactly what a trailing shard produces.
        let mut b = LongSeekSeries::new(100);
        b.record(150, &long(2));
        b.record(450, &long(3));
        a.merge(&b);
        assert_eq!(a.buckets(), &[1, 2, 0, 0, 1]);
        assert_eq!(a.total(), 4);

        // Merging the shorter into the longer pads the same way.
        let mut c = LongSeekSeries::new(100);
        c.record(450, &long(4));
        let mut d = LongSeekSeries::new(100);
        d.record(0, &long(5));
        c.merge(&d);
        assert_eq!(c.buckets(), &[1, 0, 0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "bucket widths")]
    fn merge_rejects_mismatched_bucket_widths() {
        LongSeekSeries::new(10).merge(&LongSeekSeries::new(20));
    }
}
