//! The head-position tracker: turns a stream of physical operations into
//! seek events.

use crate::physio::PhysIo;
use crate::seek::Seek;
use smrseek_trace::Pba;

/// Tracks the sector following the most recent physical operation and
/// reports a [`Seek`] whenever the next operation does not start exactly
/// there (the paper's Section-II seek definition).
///
/// The very first operation counts as a seek (from an unknown rest
/// position); its distance is reported as the signed distance from sector 0.
///
/// # Example
///
/// ```
/// use smrseek_disk::{HeadTracker, PhysIo};
/// use smrseek_trace::Pba;
///
/// let mut head = HeadTracker::new();
/// assert!(head.observe(&PhysIo::write(Pba::new(0), 8)).is_none()); // starts at 0
/// assert!(head.observe(&PhysIo::write(Pba::new(8), 8)).is_none());
/// let seek = head.observe(&PhysIo::read(Pba::new(100), 8)).unwrap();
/// assert_eq!(seek.distance, 84);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeadTracker {
    /// One past the end of the previous operation; starts at sector 0 so a
    /// trace beginning at sector 0 starts seek-free.
    next_expected: Pba,
    ops_seen: u64,
}

impl HeadTracker {
    /// Creates a tracker with the head parked at sector 0.
    pub fn new() -> Self {
        HeadTracker::default()
    }

    /// Current expected next sector (one past the previous operation).
    pub fn position(&self) -> Pba {
        self.next_expected
    }

    /// Number of operations observed so far.
    pub fn ops_seen(&self) -> u64 {
        self.ops_seen
    }

    /// Feeds one physical operation; returns the seek it incurred, if any.
    pub fn observe(&mut self, io: &PhysIo) -> Option<Seek> {
        let index = self.ops_seen;
        self.ops_seen += 1;
        let seek = if io.pba == self.next_expected {
            None
        } else {
            Some(Seek {
                op: io.op,
                distance: io.pba.distance_from(self.next_expected),
                op_index: index,
            })
        };
        self.next_expected = io.end();
        seek
    }

    /// Moves the head without performing an operation (e.g. after a
    /// drive-internal activity that repositions it).
    pub fn warp_to(&mut self, pba: Pba) {
        self.next_expected = pba;
    }

    /// Reconstructs a tracker from a previously captured position and
    /// operation count — the checkpoint/restore path. Unlike
    /// [`warp_to`](Self::warp_to), this also restores `ops_seen`, so seek
    /// `op_index` values continue exactly where the captured run stopped.
    pub fn restore(next_expected: Pba, ops_seen: u64) -> Self {
        HeadTracker {
            next_expected,
            ops_seen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smrseek_trace::OpKind;

    #[test]
    fn sequential_stream_is_seek_free_after_first() {
        let mut head = HeadTracker::new();
        head.warp_to(Pba::new(1000));
        let s = head.observe(&PhysIo::write(Pba::new(1000), 8));
        assert!(s.is_none());
        for i in 1..10 {
            let io = PhysIo::write(Pba::new(1000 + i * 8), 8);
            assert!(head.observe(&io).is_none(), "op {i} should be contiguous");
        }
        assert_eq!(head.ops_seen(), 10);
        assert_eq!(head.position(), Pba::new(1080));
    }

    #[test]
    fn classification_follows_second_op() {
        let mut head = HeadTracker::new();
        head.observe(&PhysIo::write(Pba::new(0), 8));
        let s = head.observe(&PhysIo::read(Pba::new(100), 8)).unwrap();
        assert_eq!(s.op, OpKind::Read);
        let s = head.observe(&PhysIo::write(Pba::new(0), 8)).unwrap();
        assert_eq!(s.op, OpKind::Write);
    }

    #[test]
    fn backward_seek_negative_distance() {
        let mut head = HeadTracker::new();
        head.observe(&PhysIo::write(Pba::new(100), 8)); // seek to 100
        let s = head.observe(&PhysIo::read(Pba::new(50), 8)).unwrap();
        assert_eq!(s.distance, -58);
        assert_eq!(s.op_index, 1);
    }

    #[test]
    fn repeat_of_same_sector_is_a_seek() {
        // Re-reading the block just read requires a full rotation on a real
        // disk; under the paper's definition it is a (negative) seek.
        let mut head = HeadTracker::new();
        head.observe(&PhysIo::read(Pba::new(0), 8));
        let s = head.observe(&PhysIo::read(Pba::new(0), 8)).unwrap();
        assert_eq!(s.distance, -8);
    }

    #[test]
    fn first_op_away_from_zero_seeks() {
        let mut head = HeadTracker::new();
        let s = head.observe(&PhysIo::read(Pba::new(42), 1)).unwrap();
        assert_eq!(s.distance, 42);
        assert_eq!(s.op_index, 0);
    }
}
