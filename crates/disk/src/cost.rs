//! Seek-time cost model.
//!
//! Section III of the paper sketches how seek *cost* varies with length:
//! very short seeks (hundreds of KB) cost only the rotational delay
//! equivalent to the transfer time of the skipped sectors; longer seeks
//! incur head movement (a few ms to ~25 ms, growing with distance) plus an
//! average half-rotation of rotational delay (3–5 ms). [`DiskProfile`]
//! implements that shape so experiments can weight seek counts by time.

use serde::{Deserialize, Serialize};
use smrseek_trace::SECTOR_SIZE;

/// Mechanical parameters of a modeled drive.
///
/// The default profile approximates a 7200 RPM enterprise SMR drive.
///
/// # Example
///
/// ```
/// use smrseek_disk::DiskProfile;
///
/// let disk = DiskProfile::default();
/// // A 64 KB skip costs far less than a full-stroke seek.
/// assert!(disk.seek_time_us(128) < disk.seek_time_us(1 << 30) / 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskProfile {
    /// Spindle speed in revolutions per minute.
    pub rpm: u32,
    /// Sectors per track (constant-geometry simplification).
    pub sectors_per_track: u64,
    /// Head settle/minimum seek time in microseconds (track-to-track).
    pub min_seek_us: f64,
    /// Full-stroke head movement time in microseconds.
    pub max_seek_us: f64,
    /// Device capacity in sectors (bounds the full stroke).
    pub capacity_sectors: u64,
}

impl Default for DiskProfile {
    fn default() -> Self {
        DiskProfile {
            rpm: 7200,
            // ~1 MiB tracks are typical for modern high-density drives.
            sectors_per_track: 2048,
            min_seek_us: 1_000.0,                         // 1 ms track-to-track
            max_seek_us: 25_000.0, // 25 ms full stroke (paper: "25ms or more")
            capacity_sectors: 8 * 1024 * 1024 * 1024 / 4, // 8 TB / 4 KiB... in sectors below
        }
    }
}

impl DiskProfile {
    /// Time for one full rotation, in microseconds.
    pub fn rotation_us(&self) -> f64 {
        60_000_000.0 / f64::from(self.rpm)
    }

    /// Average rotational latency (half a rotation), in microseconds.
    pub fn half_rotation_us(&self) -> f64 {
        self.rotation_us() / 2.0
    }

    /// Time to transfer `sectors` sectors once the head is positioned, in
    /// microseconds.
    pub fn transfer_us(&self, sectors: u64) -> f64 {
        self.rotation_us() * sectors as f64 / self.sectors_per_track as f64
    }

    /// Sustained sequential bandwidth in bytes per second.
    pub fn sequential_bandwidth(&self) -> f64 {
        self.sectors_per_track as f64 * SECTOR_SIZE as f64 / (self.rotation_us() / 1e6)
    }

    /// Estimated cost of a seek of signed `distance` sectors, in
    /// microseconds.
    ///
    /// * `distance == 0` — free.
    /// * short forward skips within one track — rotational delay equal to
    ///   the transfer time of the skipped sectors (§III: "equivalent to the
    ///   transfer time required to read the skipped sectors").
    /// * short *backward* skips — a missed rotation: the platter must come
    ///   almost all the way around (§IV-B's "back up" case).
    /// * longer seeks — head travel following a square-root seek curve
    ///   between `min_seek_us` and `max_seek_us`, plus an average
    ///   half-rotation of rotational delay.
    pub fn seek_time_us(&self, distance: i64) -> f64 {
        if distance == 0 {
            return 0.0;
        }
        let magnitude = distance.unsigned_abs();
        if magnitude < self.sectors_per_track {
            return if distance > 0 {
                self.transfer_us(magnitude)
            } else {
                // Missed rotation: wait for the target to come around again.
                self.rotation_us() - self.transfer_us(magnitude)
            };
        }
        let frac = (magnitude as f64 / self.capacity_sectors as f64).min(1.0);
        let head = self.min_seek_us + (self.max_seek_us - self.min_seek_us) * frac.sqrt();
        head + self.half_rotation_us()
    }

    /// Total service time of an I/O that seeked `distance` sectors and then
    /// transferred `sectors`, in microseconds.
    pub fn io_time_us(&self, distance: i64, sectors: u64) -> f64 {
        self.seek_time_us(distance) + self.transfer_us(sectors)
    }
}

/// Cost model of the simulated flash tier behind the multi-level cache.
///
/// A flash hit avoids the disk seek entirely but is not free: it pays a
/// fixed read latency (controller + NAND sense) plus a bandwidth-bound
/// transfer term. The defaults approximate a mid-range SATA SSD — ~80 µs
/// to first byte, ~500 MiB/s sustained — slow enough that a flash hit is
/// clearly distinguishable from a RAM hit (free) and fast enough to beat
/// any mechanical seek (≥ 1 ms head movement or a missed rotation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashProfile {
    /// Fixed per-read latency in microseconds.
    pub read_latency_us: f64,
    /// Sustained read bandwidth in MiB per second.
    pub mib_per_s: f64,
}

impl Default for FlashProfile {
    fn default() -> Self {
        FlashProfile {
            read_latency_us: 80.0,
            mib_per_s: 500.0,
        }
    }
}

impl FlashProfile {
    /// Time to serve a read of `sectors` sectors from flash, in
    /// microseconds: fixed latency plus the bandwidth-bound transfer.
    pub fn read_time_us(&self, sectors: u64) -> f64 {
        let bytes = sectors as f64 * SECTOR_SIZE as f64;
        self.read_latency_us + bytes / (self.mib_per_s * 1024.0 * 1024.0) * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_math() {
        let d = DiskProfile::default();
        assert!((d.rotation_us() - 8333.333).abs() < 0.01);
        assert!((d.half_rotation_us() - 4166.666).abs() < 0.01);
    }

    #[test]
    fn zero_distance_is_free() {
        assert_eq!(DiskProfile::default().seek_time_us(0), 0.0);
    }

    #[test]
    fn short_forward_skip_costs_transfer_time() {
        let d = DiskProfile::default();
        let skip = 512; // quarter track
        assert!((d.seek_time_us(skip) - d.transfer_us(512)).abs() < 1e-9);
    }

    #[test]
    fn short_backward_skip_is_a_missed_rotation() {
        let d = DiskProfile::default();
        let fwd = d.seek_time_us(8);
        let back = d.seek_time_us(-8);
        assert!(back > fwd * 10.0, "backing up must cost ~a rotation");
        assert!(back < d.rotation_us());
    }

    #[test]
    fn seek_curve_is_monotone_in_magnitude() {
        let d = DiskProfile::default();
        let mut prev = 0.0;
        for exp in 11..34 {
            let t = d.seek_time_us(1i64 << exp);
            assert!(t >= prev, "seek time decreased at 2^{exp}");
            prev = t;
        }
    }

    #[test]
    fn full_stroke_bounded() {
        let d = DiskProfile::default();
        let t = d.seek_time_us(i64::MAX);
        assert!(t <= d.max_seek_us + d.half_rotation_us() + 1.0);
        assert!(t >= d.max_seek_us * 0.9);
    }

    #[test]
    fn io_time_adds_transfer() {
        let d = DiskProfile::default();
        let io = d.io_time_us(1 << 20, 2048);
        assert!((io - (d.seek_time_us(1 << 20) + d.rotation_us())).abs() < 1e-6);
    }

    #[test]
    fn flash_hit_beats_any_disk_seek_but_is_not_free() {
        let flash = FlashProfile::default();
        let disk = DiskProfile::default();
        // Zero transfer still pays the fixed latency.
        assert_eq!(flash.read_time_us(0), flash.read_latency_us);
        // A typical 8-sector fragment from flash beats even the cheapest
        // mechanical repositioning (track-to-track or a missed rotation)...
        assert!(flash.read_time_us(8) < disk.min_seek_us);
        assert!(flash.read_time_us(8) < disk.seek_time_us(-8));
        // ...but costs far more than nothing (distinguishing it from RAM).
        assert!(flash.read_time_us(8) > 50.0);
    }

    #[test]
    fn flash_transfer_term_scales_linearly() {
        let flash = FlashProfile::default();
        let one_mib = flash.read_time_us(2048) - flash.read_latency_us;
        let two_mib = flash.read_time_us(4096) - flash.read_latency_us;
        assert!((two_mib - 2.0 * one_mib).abs() < 1e-9);
        // 1 MiB at 500 MiB/s = 2 ms.
        assert!((one_mib - 2000.0).abs() < 1.0);
    }

    #[test]
    fn bandwidth_plausible() {
        // ~2048 sectors/track @7200rpm -> ~125 MB/s
        let bw = DiskProfile::default().sequential_bandwidth();
        assert!(
            bw > 50e6 && bw < 500e6,
            "bandwidth {bw} out of plausible range"
        );
    }
}
