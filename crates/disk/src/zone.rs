//! SMR zoned-device model.
//!
//! Shipped SMR devices organize each platter into **zones** separated by
//! guard tracks; each zone must be written sequentially and can only be
//! reclaimed by resetting its write pointer (Section II of the paper — the
//! Zoned Block Device model, "almost identical to the NAND flash model").
//!
//! The paper's analysis uses an infinite-disk abstraction; this module
//! provides the concrete zoned backing so the log layer can optionally
//! allocate through real zones, and so cleaning studies can build on the
//! same substrate.

use serde::{Deserialize, Serialize};
use smrseek_trace::Pba;
use std::error::Error as StdError;
use std::fmt;

/// Condition of one zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ZoneState {
    /// Write pointer at the zone start; holds no data.
    Empty,
    /// Write pointer inside the zone.
    Open,
    /// Write pointer at the zone end; no further writes until reset.
    Full,
}

/// Errors from zone operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZoneError {
    /// The requested zone index does not exist.
    NoSuchZone(usize),
    /// An append did not fit in the remaining device space.
    DeviceFull,
}

impl fmt::Display for ZoneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZoneError::NoSuchZone(z) => write!(f, "no such zone: {z}"),
            ZoneError::DeviceFull => f.write_str("device is full"),
        }
    }
}

impl StdError for ZoneError {}

/// A zoned device: `zone_count` zones of `zone_sectors` sectors each, all
/// writes via sequential appends at a per-zone write pointer.
///
/// # Example
///
/// ```
/// use smrseek_disk::ZonedDevice;
/// use smrseek_trace::Pba;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut dev = ZonedDevice::new(4, 256);
/// let runs = dev.append(300)?; // spills into the second zone
/// assert_eq!(runs, vec![(Pba::new(0), 256), (Pba::new(256), 44)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZonedDevice {
    zone_sectors: u64,
    /// Per-zone write pointer, as an offset from the zone start.
    write_pointers: Vec<u64>,
    /// The zone new appends go to.
    active_zone: usize,
}

impl ZonedDevice {
    /// Creates a device with `zone_count` empty zones of `zone_sectors`
    /// sectors each.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(zone_count: usize, zone_sectors: u64) -> Self {
        assert!(zone_count > 0, "need at least one zone");
        assert!(zone_sectors > 0, "zones must be non-empty");
        ZonedDevice {
            zone_sectors,
            write_pointers: vec![0; zone_count],
            active_zone: 0,
        }
    }

    /// Number of zones.
    pub fn zone_count(&self) -> usize {
        self.write_pointers.len()
    }

    /// Sectors per zone.
    pub fn zone_sectors(&self) -> u64 {
        self.zone_sectors
    }

    /// Total capacity in sectors.
    pub fn capacity_sectors(&self) -> u64 {
        self.zone_sectors * self.write_pointers.len() as u64
    }

    /// First sector of zone `zone`.
    pub fn zone_start(&self, zone: usize) -> Pba {
        Pba::new(zone as u64 * self.zone_sectors)
    }

    /// The zone containing `pba`, or `None` past the device end.
    pub fn zone_of(&self, pba: Pba) -> Option<usize> {
        let z = usize::try_from(pba.sector() / self.zone_sectors).ok()?;
        (z < self.write_pointers.len()).then_some(z)
    }

    /// State of zone `zone`.
    ///
    /// # Errors
    ///
    /// Returns [`ZoneError::NoSuchZone`] for an out-of-range index.
    pub fn zone_state(&self, zone: usize) -> Result<ZoneState, ZoneError> {
        let wp = *self
            .write_pointers
            .get(zone)
            .ok_or(ZoneError::NoSuchZone(zone))?;
        Ok(if wp == 0 {
            ZoneState::Empty
        } else if wp == self.zone_sectors {
            ZoneState::Full
        } else {
            ZoneState::Open
        })
    }

    /// Remaining writable sectors across the device (from the active zone
    /// onward; zones behind the active zone are only reusable after reset).
    pub fn remaining_sectors(&self) -> u64 {
        self.write_pointers[self.active_zone..]
            .iter()
            .map(|wp| self.zone_sectors - wp)
            .sum()
    }

    /// Appends `sectors` sectors at the log head, advancing through zones as
    /// needed. Returns the physically-contiguous runs written, in order;
    /// runs in different zones are distinct even when numerically adjacent
    /// (a guard band separates them on the medium).
    ///
    /// # Errors
    ///
    /// Returns [`ZoneError::DeviceFull`] (without writing anything) if the
    /// append exceeds the remaining space.
    pub fn append(&mut self, sectors: u64) -> Result<Vec<(Pba, u64)>, ZoneError> {
        if sectors == 0 {
            return Ok(Vec::new());
        }
        if sectors > self.remaining_sectors() {
            return Err(ZoneError::DeviceFull);
        }
        let mut runs = Vec::new();
        let mut left = sectors;
        while left > 0 {
            let wp = self.write_pointers[self.active_zone];
            let room = self.zone_sectors - wp;
            if room == 0 {
                self.active_zone += 1;
                continue;
            }
            let take = left.min(room);
            let start = self.zone_start(self.active_zone) + wp;
            runs.push((start, take));
            self.write_pointers[self.active_zone] += take;
            left -= take;
        }
        Ok(runs)
    }

    /// Resets zone `zone`'s write pointer, discarding its data.
    ///
    /// # Errors
    ///
    /// Returns [`ZoneError::NoSuchZone`] for an out-of-range index.
    pub fn reset_zone(&mut self, zone: usize) -> Result<(), ZoneError> {
        let wp = self
            .write_pointers
            .get_mut(zone)
            .ok_or(ZoneError::NoSuchZone(zone))?;
        *wp = 0;
        if zone < self.active_zone {
            // Reclaimed zone behind the head becomes the next frontier only
            // via explicit allocation policy; we keep appending forward.
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_device() {
        let dev = ZonedDevice::new(3, 100);
        assert_eq!(dev.zone_count(), 3);
        assert_eq!(dev.capacity_sectors(), 300);
        assert_eq!(dev.remaining_sectors(), 300);
        assert_eq!(dev.zone_state(0), Ok(ZoneState::Empty));
        assert_eq!(dev.zone_state(9), Err(ZoneError::NoSuchZone(9)));
        assert_eq!(dev.zone_of(Pba::new(150)), Some(1));
        assert_eq!(dev.zone_of(Pba::new(300)), None);
    }

    #[test]
    fn append_within_zone() {
        let mut dev = ZonedDevice::new(2, 100);
        let runs = dev.append(40).unwrap();
        assert_eq!(runs, vec![(Pba::new(0), 40)]);
        assert_eq!(dev.zone_state(0), Ok(ZoneState::Open));
        let runs = dev.append(60).unwrap();
        assert_eq!(runs, vec![(Pba::new(40), 60)]);
        assert_eq!(dev.zone_state(0), Ok(ZoneState::Full));
    }

    #[test]
    fn append_spans_zones() {
        let mut dev = ZonedDevice::new(3, 100);
        let runs = dev.append(250).unwrap();
        assert_eq!(
            runs,
            vec![
                (Pba::new(0), 100),
                (Pba::new(100), 100),
                (Pba::new(200), 50)
            ]
        );
        assert_eq!(dev.remaining_sectors(), 50);
    }

    #[test]
    fn device_full_is_atomic() {
        let mut dev = ZonedDevice::new(1, 100);
        dev.append(90).unwrap();
        assert_eq!(dev.append(20), Err(ZoneError::DeviceFull));
        assert_eq!(dev.remaining_sectors(), 10); // nothing was written
        dev.append(10).unwrap();
        assert_eq!(dev.append(1), Err(ZoneError::DeviceFull));
    }

    #[test]
    fn zero_append_is_noop() {
        let mut dev = ZonedDevice::new(1, 10);
        assert_eq!(dev.append(0).unwrap(), Vec::new());
        assert_eq!(dev.remaining_sectors(), 10);
    }

    #[test]
    fn reset_reclaims_zone() {
        let mut dev = ZonedDevice::new(2, 100);
        dev.append(150).unwrap();
        assert_eq!(dev.zone_state(0), Ok(ZoneState::Full));
        dev.reset_zone(0).unwrap();
        assert_eq!(dev.zone_state(0), Ok(ZoneState::Empty));
        // Appends continue at the active (second) zone.
        let runs = dev.append(10).unwrap();
        assert_eq!(runs, vec![(Pba::new(150), 10)]);
        assert!(dev.reset_zone(7).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one zone")]
    fn zero_zones_panics() {
        ZonedDevice::new(0, 10);
    }
}
