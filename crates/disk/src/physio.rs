//! The physical I/O operation: what a translation layer emits and the seek
//! model consumes.

use serde::{Deserialize, Serialize};
use smrseek_trace::{OpKind, Pba, SECTOR_SIZE};
use std::fmt;

/// One physical disk operation: `sectors` sectors starting at `pba`.
///
/// Translation layers turn each logical [`smrseek_trace::TraceRecord`] into
/// one or more `PhysIo`s — one per physically-contiguous piece.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhysIo {
    /// Read or write, as seen at the medium.
    pub op: OpKind,
    /// First physical sector.
    pub pba: Pba,
    /// Length in sectors.
    pub sectors: u64,
}

impl PhysIo {
    /// Creates a physical operation.
    pub const fn new(op: OpKind, pba: Pba, sectors: u64) -> Self {
        PhysIo { op, pba, sectors }
    }

    /// Creates a physical read.
    pub const fn read(pba: Pba, sectors: u64) -> Self {
        Self::new(OpKind::Read, pba, sectors)
    }

    /// Creates a physical write.
    pub const fn write(pba: Pba, sectors: u64) -> Self {
        Self::new(OpKind::Write, pba, sectors)
    }

    /// One past the last physical sector.
    pub fn end(&self) -> Pba {
        self.pba + self.sectors
    }

    /// Length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.sectors * SECTOR_SIZE
    }
}

impl fmt::Display for PhysIo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} pba={} +{}", self.op, self.pba, self.sectors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let io = PhysIo::read(Pba::new(10), 4);
        assert_eq!(io.end(), Pba::new(14));
        assert_eq!(io.len_bytes(), 2048);
        assert_eq!(io.op, OpKind::Read);
    }

    #[test]
    fn constructors() {
        assert_eq!(PhysIo::write(Pba::new(1), 1).op, OpKind::Write);
        assert_eq!(
            PhysIo::new(OpKind::Read, Pba::new(1), 1),
            PhysIo::read(Pba::new(1), 1)
        );
    }

    #[test]
    fn display() {
        assert_eq!(PhysIo::read(Pba::new(2), 3).to_string(), "Read pba=2 +3");
    }
}
