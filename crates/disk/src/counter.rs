//! Accumulating seek statistics.

use crate::physio::PhysIo;
use crate::position::HeadTracker;
use crate::seek::Seek;
use serde::{Deserialize, Serialize};
use smrseek_trace::OpKind;
use std::fmt;

/// Aggregate seek counts for one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeekStats {
    /// Seeks whose incurring operation was a read.
    pub read_seeks: u64,
    /// Seeks whose incurring operation was a write.
    pub write_seeks: u64,
    /// Long (> 500 KB) read seeks.
    pub long_read_seeks: u64,
    /// Long (> 500 KB) write seeks.
    pub long_write_seeks: u64,
    /// Physical operations observed.
    pub ops: u64,
}

impl SeekStats {
    /// Total seeks (read + write).
    pub fn total(&self) -> u64 {
        self.read_seeks + self.write_seeks
    }

    /// Total long seeks.
    pub fn total_long(&self) -> u64 {
        self.long_read_seeks + self.long_write_seeks
    }

    /// Seeks per operation, in `[0, 1]`.
    pub fn seek_rate(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.total() as f64 / self.ops as f64
        }
    }

    /// Folds another run's counts into this one. Seek counting is a pure
    /// sum over observed physical operations, so merging the stats of two
    /// disjoint record ranges (each counted with the correct starting head
    /// position) equals counting the concatenated range.
    pub fn merge(&mut self, other: &SeekStats) {
        self.read_seeks += other.read_seeks;
        self.write_seeks += other.write_seeks;
        self.long_read_seeks += other.long_read_seeks;
        self.long_write_seeks += other.long_write_seeks;
        self.ops += other.ops;
    }
}

impl fmt::Display for SeekStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} read seeks + {} write seeks over {} ops",
            self.read_seeks, self.write_seeks, self.ops
        )
    }
}

/// The complete serializable state of a [`SeekCounter`] — everything a
/// checkpoint needs to resume counting mid-trace with byte-identical
/// results: head position *and* operation index (so `Seek::op_index`
/// continues unbroken), accumulated stats, and any recorded distances.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeekCounterState {
    /// Head position: one past the end of the previous operation.
    pub head_position: u64,
    /// Operations the head tracker has observed (`Seek::op_index` source).
    pub head_ops_seen: u64,
    /// Accumulated seek statistics.
    pub stats: SeekStats,
    /// Whether the counter records every seek distance.
    pub record_distances: bool,
    /// Recorded distances so far (empty unless `record_distances`).
    pub distances: Vec<i64>,
}

/// Feeds physical operations through a [`HeadTracker`], accumulating
/// [`SeekStats`] and (optionally) every seek's signed distance.
///
/// Distance recording is off by default: multi-million-operation traces
/// would otherwise allocate hundreds of MB. Enable it with
/// [`SeekCounter::with_distances`] for CDF experiments (Fig 4).
///
/// # Example
///
/// ```
/// use smrseek_disk::{PhysIo, SeekCounter};
/// use smrseek_trace::Pba;
///
/// let mut c = SeekCounter::with_distances();
/// c.observe(&PhysIo::write(Pba::new(0), 4));
/// c.observe(&PhysIo::read(Pba::new(1000), 4));
/// assert_eq!(c.stats().read_seeks, 1);
/// assert_eq!(c.distances(), &[996]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SeekCounter {
    head: HeadTracker,
    stats: SeekStats,
    record_distances: bool,
    distances: Vec<i64>,
}

impl SeekCounter {
    /// Creates a counter that accumulates counts only.
    pub fn new() -> Self {
        SeekCounter::default()
    }

    /// Creates a counter that additionally records every seek distance.
    pub fn with_distances() -> Self {
        SeekCounter {
            record_distances: true,
            ..SeekCounter::default()
        }
    }

    /// Feeds one physical operation; returns the seek it incurred, if any.
    pub fn observe(&mut self, io: &PhysIo) -> Option<Seek> {
        let seek = self.head.observe(io);
        self.stats.ops += 1;
        if let Some(s) = seek {
            match s.op {
                OpKind::Read => {
                    self.stats.read_seeks += 1;
                    if s.is_long() {
                        self.stats.long_read_seeks += 1;
                    }
                }
                OpKind::Write => {
                    self.stats.write_seeks += 1;
                    if s.is_long() {
                        self.stats.long_write_seeks += 1;
                    }
                }
            }
            if self.record_distances {
                self.distances.push(s.distance);
            }
        }
        seek
    }

    /// Feeds a batch of operations.
    pub fn observe_all<'a>(&mut self, ios: impl IntoIterator<Item = &'a PhysIo>) {
        for io in ios {
            self.observe(io);
        }
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> SeekStats {
        self.stats
    }

    /// Recorded seek distances (empty unless created
    /// [`with_distances`](Self::with_distances)).
    pub fn distances(&self) -> &[i64] {
        &self.distances
    }

    /// Consumes the counter, returning the recorded distances.
    pub fn into_distances(self) -> Vec<i64> {
        self.distances
    }

    /// Underlying head tracker (e.g. to warp the head between phases).
    pub fn head_mut(&mut self) -> &mut HeadTracker {
        &mut self.head
    }

    /// Captures the counter's complete state for a checkpoint.
    pub fn to_state(&self) -> SeekCounterState {
        SeekCounterState {
            head_position: self.head.position().sector(),
            head_ops_seen: self.head.ops_seen(),
            stats: self.stats,
            record_distances: self.record_distances,
            distances: self.distances.clone(),
        }
    }

    /// Reconstructs a counter from captured state; observing the remaining
    /// operations yields exactly the stats an uninterrupted run would.
    pub fn from_state(state: SeekCounterState) -> Self {
        SeekCounter {
            head: HeadTracker::restore(
                smrseek_trace::Pba::new(state.head_position),
                state.head_ops_seen,
            ),
            stats: state.stats,
            record_distances: state.record_distances,
            distances: state.distances,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smrseek_trace::Pba;

    #[test]
    fn counts_split_by_kind() {
        let mut c = SeekCounter::new();
        c.observe(&PhysIo::write(Pba::new(0), 4)); // no seek (starts at 0)
        c.observe(&PhysIo::write(Pba::new(4), 4)); // contiguous
        c.observe(&PhysIo::read(Pba::new(100), 4)); // read seek
        c.observe(&PhysIo::read(Pba::new(104), 4)); // contiguous
        c.observe(&PhysIo::write(Pba::new(0), 4)); // write seek
        let s = c.stats();
        assert_eq!(s.read_seeks, 1);
        assert_eq!(s.write_seeks, 1);
        assert_eq!(s.total(), 2);
        assert_eq!(s.ops, 5);
        assert!((s.seek_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn long_seek_counting() {
        let mut c = SeekCounter::new();
        c.observe(&PhysIo::write(Pba::new(0), 1));
        c.observe(&PhysIo::read(Pba::new(500), 1)); // short
        c.observe(&PhysIo::read(Pba::new(100_000), 1)); // long
        c.observe(&PhysIo::write(Pba::new(0), 1)); // long backward
        let s = c.stats();
        assert_eq!(s.long_read_seeks, 1);
        assert_eq!(s.long_write_seeks, 1);
        assert_eq!(s.total_long(), 2);
    }

    #[test]
    fn distance_recording_opt_in() {
        let mut plain = SeekCounter::new();
        plain.observe(&PhysIo::read(Pba::new(9), 1));
        assert!(plain.distances().is_empty());

        let mut rec = SeekCounter::with_distances();
        rec.observe(&PhysIo::read(Pba::new(9), 1));
        rec.observe(&PhysIo::read(Pba::new(0), 1));
        assert_eq!(rec.distances(), &[9, -10]);
        assert_eq!(rec.into_distances(), vec![9, -10]);
    }

    #[test]
    fn observe_all_batches() {
        let ios = vec![
            PhysIo::write(Pba::new(0), 2),
            PhysIo::write(Pba::new(2), 2),
            PhysIo::write(Pba::new(10), 2),
        ];
        let mut c = SeekCounter::new();
        c.observe_all(&ios);
        assert_eq!(c.stats().write_seeks, 1);
        assert_eq!(c.stats().ops, 3);
    }

    #[test]
    fn state_roundtrip_resumes_exactly() {
        let trace = [
            PhysIo::write(Pba::new(0), 4),
            PhysIo::read(Pba::new(1000), 4),
            PhysIo::read(Pba::new(1004), 4),
            PhysIo::write(Pba::new(7), 2),
            PhysIo::read(Pba::new(0), 1),
        ];
        for split in 0..=trace.len() {
            let mut whole = SeekCounter::with_distances();
            whole.observe_all(&trace);

            let mut first = SeekCounter::with_distances();
            first.observe_all(&trace[..split]);
            let mut resumed = SeekCounter::from_state(first.to_state());
            resumed.observe_all(&trace[split..]);

            assert_eq!(resumed.stats(), whole.stats(), "split at {split}");
            assert_eq!(resumed.distances(), whole.distances());
        }
    }

    #[test]
    fn merge_equals_counting_the_whole_range() {
        let trace = [
            PhysIo::write(Pba::new(0), 4),
            PhysIo::read(Pba::new(1000), 4),
            PhysIo::read(Pba::new(1_000_000), 1),
            PhysIo::write(Pba::new(7), 2),
            PhysIo::read(Pba::new(0), 1),
        ];
        for split in 0..=trace.len() {
            let mut whole = SeekCounter::new();
            whole.observe_all(&trace);

            let mut first = SeekCounter::new();
            first.observe_all(&trace[..split]);
            // The second half counts with the correct starting head
            // position (as a shard seeded from the overlap record would).
            let mut second = SeekCounter::from_state(SeekCounterState {
                stats: SeekStats::default(),
                distances: Vec::new(),
                ..first.to_state()
            });
            second.observe_all(&trace[split..]);

            let mut merged = first.stats();
            merged.merge(&second.stats());
            assert_eq!(merged, whole.stats(), "split at {split}");
        }
    }

    #[test]
    fn empty_stats_display() {
        let s = SeekStats::default();
        assert_eq!(s.seek_rate(), 0.0);
        assert!(s.to_string().contains("0 read seeks"));
    }
}
