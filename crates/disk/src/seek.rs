//! Seek events and the long-seek threshold.

use serde::{Deserialize, Serialize};
use smrseek_trace::{OpKind, KIB, SECTOR_SIZE};
use std::fmt;

/// Threshold above which the paper calls a seek "long": ±500 KB
/// (Fig 3 ignores shorter seeks, "which have much noisier behavior").
pub const LONG_SEEK_SECTORS: u64 = 500 * KIB / SECTOR_SIZE;

/// One detected seek.
///
/// Per the paper's definition a seek is classified by the kind of the
/// *second* of the two operations involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Seek {
    /// Kind of the operation that incurred the seek.
    pub op: OpKind,
    /// Signed distance in sectors from the previous operation's end to this
    /// operation's start. Positive = outward (higher addresses). Never zero.
    pub distance: i64,
    /// Zero-based index of the physical operation that seeked.
    pub op_index: u64,
}

impl Seek {
    /// Returns `true` for seeks of magnitude strictly greater than
    /// [`LONG_SEEK_SECTORS`].
    pub fn is_long(&self) -> bool {
        self.distance.unsigned_abs() > LONG_SEEK_SECTORS
    }

    /// Absolute distance in bytes.
    pub fn distance_bytes(&self) -> u64 {
        self.distance.unsigned_abs() * SECTOR_SIZE
    }
}

impl fmt::Display for Seek {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} seek of {} sectors at op {}",
            self.op, self.distance, self.op_index
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_is_500kb() {
        assert_eq!(LONG_SEEK_SECTORS, 1000);
    }

    #[test]
    fn long_classification_is_symmetric() {
        let short = Seek {
            op: OpKind::Read,
            distance: 1000,
            op_index: 0,
        };
        let long_pos = Seek {
            distance: 1001,
            ..short
        };
        let long_neg = Seek {
            distance: -1001,
            ..short
        };
        assert!(!short.is_long());
        assert!(long_pos.is_long());
        assert!(long_neg.is_long());
    }

    #[test]
    fn distance_bytes() {
        let s = Seek {
            op: OpKind::Write,
            distance: -8,
            op_index: 3,
        };
        assert_eq!(s.distance_bytes(), 4096);
        assert_eq!(s.to_string(), "Write seek of -8 sectors at op 3");
    }
}
