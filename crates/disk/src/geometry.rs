//! Zoned-bit-recording (ZBR) disk geometry.
//!
//! The paper's seek-cost discussion (§III) abstracts geometry away; this
//! module supplies the concrete layer beneath it for analyses that need
//! cylinders and angles: modern drives pack more sectors per track near
//! the outer diameter, so the same sector distance spans *more cylinders*
//! (and seeks longer) near the spindle.
//!
//! [`DiskGeometry`] maps physical sectors to `(cylinder, angle)`
//! positions; combined with a [`crate::DiskProfile`] it yields a
//! geometry-aware seek time via [`DiskGeometry::seek_time_us`].

use crate::cost::DiskProfile;
use serde::{Deserialize, Serialize};
use smrseek_trace::Pba;

/// One recording zone: a run of cylinders sharing a sectors-per-track
/// count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordingZone {
    /// First sector of the zone.
    pub start_sector: u64,
    /// Sectors per track within the zone.
    pub sectors_per_track: u64,
    /// Tracks (cylinders, with a single-surface simplification).
    pub tracks: u64,
    /// First cylinder number of the zone.
    pub start_cylinder: u64,
}

impl RecordingZone {
    /// Sectors held by the zone.
    pub fn sectors(&self) -> u64 {
        self.sectors_per_track * self.tracks
    }

    /// One past the zone's last sector.
    pub fn end_sector(&self) -> u64 {
        self.start_sector + self.sectors()
    }
}

/// The angular and radial position of a sector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Location {
    /// Radial position (track index from the outer diameter).
    pub cylinder: u64,
    /// Angular position in sector units within the track.
    pub angle: u64,
    /// Track length at this cylinder, in sectors.
    pub track_sectors: u64,
}

/// A zoned-bit-recording layout: outer zones (low sector numbers, as
/// drives number from the outer diameter) hold more sectors per track.
///
/// # Example
///
/// ```
/// use smrseek_disk::DiskGeometry;
/// use smrseek_trace::Pba;
///
/// let geo = DiskGeometry::zbr(1 << 24, 2400, 1200, 8);
/// let outer = geo.locate(Pba::new(0)).unwrap();
/// let inner = geo.locate(Pba::new(geo.capacity_sectors() - 1)).unwrap();
/// assert!(outer.track_sectors > inner.track_sectors);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskGeometry {
    zones: Vec<RecordingZone>,
}

impl DiskGeometry {
    /// Builds a ZBR layout of roughly `capacity_sectors`, with
    /// `zone_count` zones whose sectors-per-track fall linearly from
    /// `outer_spt` (zone 0) to `inner_spt` (last zone). Each zone gets an
    /// equal share of the capacity, rounded to whole tracks (the actual
    /// capacity may therefore differ slightly; see
    /// [`Self::capacity_sectors`]).
    ///
    /// # Panics
    ///
    /// Panics if `zone_count == 0`, `inner_spt == 0`, or
    /// `outer_spt < inner_spt`.
    pub fn zbr(capacity_sectors: u64, outer_spt: u64, inner_spt: u64, zone_count: usize) -> Self {
        assert!(zone_count > 0, "need at least one zone");
        assert!(inner_spt > 0, "tracks must hold sectors");
        assert!(
            outer_spt >= inner_spt,
            "outer tracks are longer on ZBR disks"
        );
        let per_zone = capacity_sectors / zone_count as u64;
        let mut zones = Vec::with_capacity(zone_count);
        let mut start_sector = 0;
        let mut start_cylinder = 0;
        for z in 0..zone_count as u64 {
            let spt = if zone_count == 1 {
                outer_spt
            } else {
                outer_spt - (outer_spt - inner_spt) * z / (zone_count as u64 - 1)
            };
            let tracks = (per_zone / spt).max(1);
            zones.push(RecordingZone {
                start_sector,
                sectors_per_track: spt,
                tracks,
                start_cylinder,
            });
            start_sector += spt * tracks;
            start_cylinder += tracks;
        }
        DiskGeometry { zones }
    }

    /// The recording zones, outer to inner.
    pub fn zones(&self) -> &[RecordingZone] {
        &self.zones
    }

    /// Exact capacity in sectors.
    pub fn capacity_sectors(&self) -> u64 {
        self.zones.last().map_or(0, RecordingZone::end_sector)
    }

    /// Total cylinder count.
    pub fn cylinders(&self) -> u64 {
        self.zones.last().map_or(0, |z| z.start_cylinder + z.tracks)
    }

    /// Maps a sector to its cylinder/angle, or `None` past the end.
    pub fn locate(&self, pba: Pba) -> Option<Location> {
        let sector = pba.sector();
        let zone = self
            .zones
            .iter()
            .take_while(|z| z.start_sector <= sector)
            .last()?;
        if sector >= zone.end_sector() {
            return None;
        }
        let offset = sector - zone.start_sector;
        Some(Location {
            cylinder: zone.start_cylinder + offset / zone.sectors_per_track,
            angle: offset % zone.sectors_per_track,
            track_sectors: zone.sectors_per_track,
        })
    }

    /// Geometry-aware seek time between two sectors, in microseconds:
    /// head travel over the cylinder distance (square-root curve from the
    /// profile) plus the rotational delay to reach the target angle after
    /// the head settles.
    ///
    /// Returns `None` if either sector is outside the geometry.
    pub fn seek_time_us(&self, profile: &DiskProfile, from: Pba, to: Pba) -> Option<f64> {
        let a = self.locate(from)?;
        let b = self.locate(to)?;
        let cylinder_delta = a.cylinder.abs_diff(b.cylinder);
        let head_us = if cylinder_delta == 0 {
            0.0
        } else {
            let frac = cylinder_delta as f64 / self.cylinders().max(1) as f64;
            profile.min_seek_us + (profile.max_seek_us - profile.min_seek_us) * frac.sqrt()
        };
        // Angle the platter sweeps while the head moves, then the wait
        // until the target angle comes around.
        let rotation_us = profile.rotation_us();
        let start_angle_frac = a.angle as f64 / a.track_sectors as f64;
        let target_angle_frac = b.angle as f64 / b.track_sectors as f64;
        let arrival_frac = start_angle_frac + head_us / rotation_us;
        let mut wait_frac = target_angle_frac - arrival_frac % 1.0;
        if wait_frac < 0.0 {
            wait_frac += 1.0;
        }
        Some(head_us + wait_frac * rotation_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> DiskGeometry {
        DiskGeometry::zbr(1 << 22, 2048, 1024, 4)
    }

    #[test]
    fn zones_tile_the_capacity() {
        let g = geo();
        assert_eq!(g.zones().len(), 4);
        let mut cursor = 0;
        let mut cyl = 0;
        for z in g.zones() {
            assert_eq!(z.start_sector, cursor);
            assert_eq!(z.start_cylinder, cyl);
            cursor = z.end_sector();
            cyl += z.tracks;
        }
        assert_eq!(cursor, g.capacity_sectors());
        assert_eq!(cyl, g.cylinders());
    }

    #[test]
    fn spt_decreases_inward() {
        let g = geo();
        let spts: Vec<u64> = g.zones().iter().map(|z| z.sectors_per_track).collect();
        assert!(spts.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(spts[0], 2048);
        assert_eq!(*spts.last().unwrap(), 1024);
    }

    #[test]
    fn locate_first_and_last() {
        let g = geo();
        let first = g.locate(Pba::new(0)).unwrap();
        assert_eq!(first.cylinder, 0);
        assert_eq!(first.angle, 0);
        let last = g.locate(Pba::new(g.capacity_sectors() - 1)).unwrap();
        assert_eq!(last.cylinder, g.cylinders() - 1);
        assert!(g.locate(Pba::new(g.capacity_sectors())).is_none());
    }

    #[test]
    fn same_distance_spans_more_cylinders_inward() {
        let g = geo();
        let span = 1 << 18;
        let outer_a = g.locate(Pba::new(0)).unwrap();
        let outer_b = g.locate(Pba::new(span)).unwrap();
        let inner_end = g.capacity_sectors() - 1;
        let inner_a = g.locate(Pba::new(inner_end - span)).unwrap();
        let inner_b = g.locate(Pba::new(inner_end)).unwrap();
        let outer_cyls = outer_b.cylinder - outer_a.cylinder;
        let inner_cyls = inner_b.cylinder - inner_a.cylinder;
        assert!(
            inner_cyls > outer_cyls,
            "inner {inner_cyls} vs outer {outer_cyls}"
        );
    }

    #[test]
    fn seek_time_zero_for_same_sector_track() {
        let g = geo();
        let p = DiskProfile::default();
        let t = g.seek_time_us(&p, Pba::new(100), Pba::new(100)).unwrap();
        assert!(t.abs() < 1e-9, "same position costs nothing, got {t}");
    }

    #[test]
    fn intra_track_seek_is_rotation_only() {
        let g = geo();
        let p = DiskProfile::default();
        // Within the first track: forward skip by a quarter track.
        let quarter = 2048 / 4;
        let t = g.seek_time_us(&p, Pba::new(0), Pba::new(quarter)).unwrap();
        assert!((t - p.rotation_us() / 4.0).abs() < 1.0, "{t}");
    }

    #[test]
    fn long_seek_dominated_by_head_travel() {
        let g = geo();
        let p = DiskProfile::default();
        let t = g
            .seek_time_us(&p, Pba::new(0), Pba::new(g.capacity_sectors() - 1))
            .unwrap();
        assert!(t >= p.max_seek_us * 0.9, "full stroke {t}");
        assert!(t <= p.max_seek_us + p.rotation_us() + 1.0);
    }

    #[test]
    fn seek_time_symmetric_in_cylinder_cost() {
        let g = geo();
        let p = DiskProfile::default();
        let a = Pba::new(1000);
        let b = Pba::new(3_000_000);
        let fwd = g.seek_time_us(&p, a, b).unwrap();
        let back = g.seek_time_us(&p, b, a).unwrap();
        // Rotational phases differ but head travel dominates; the two
        // directions must be within one rotation of each other.
        assert!((fwd - back).abs() <= p.rotation_us() + 1e-9);
    }

    #[test]
    fn out_of_range_is_none() {
        let g = geo();
        let p = DiskProfile::default();
        assert!(g
            .seek_time_us(&p, Pba::new(0), Pba::new(u64::MAX))
            .is_none());
        assert!(g.locate(Pba::new(u64::MAX)).is_none());
    }

    #[test]
    #[should_panic(expected = "outer tracks are longer")]
    fn inverted_spt_panics() {
        DiskGeometry::zbr(1 << 20, 100, 200, 4);
    }

    #[test]
    fn single_zone_geometry() {
        let g = DiskGeometry::zbr(1 << 20, 512, 512, 1);
        assert_eq!(g.zones().len(), 1);
        assert_eq!(g.zones()[0].sectors_per_track, 512);
        assert!(g.capacity_sectors() <= 1 << 20);
    }
}
