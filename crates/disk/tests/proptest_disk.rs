//! Property tests for the disk crate: the seek counter against a direct
//! re-implementation, CDF axioms, cost-model monotonicity, geometry
//! consistency, and zoned-device conservation.

use proptest::prelude::*;
use smrseek_disk::{Cdf, DiskGeometry, DiskProfile, PhysIo, SeekCounter, ZonedDevice};
use smrseek_trace::{OpKind, Pba};

fn io_strategy() -> impl Strategy<Value = PhysIo> {
    (0u64..1 << 20, 1u64..256, prop::bool::ANY).prop_map(|(pba, len, is_read)| {
        PhysIo::new(
            if is_read { OpKind::Read } else { OpKind::Write },
            Pba::new(pba),
            len,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The counter's totals equal a direct scan of the operation stream.
    #[test]
    fn seek_counter_matches_direct_scan(ios in prop::collection::vec(io_strategy(), 1..200)) {
        let mut counter = SeekCounter::with_distances();
        counter.observe_all(&ios);
        let stats = counter.stats();

        let mut next = 0u64;
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut distances = Vec::new();
        for io in &ios {
            if io.pba.sector() != next {
                match io.op {
                    OpKind::Read => reads += 1,
                    OpKind::Write => writes += 1,
                }
                distances.push(io.pba.sector() as i64 - next as i64);
            }
            next = io.pba.sector() + io.sectors;
        }
        prop_assert_eq!(stats.read_seeks, reads);
        prop_assert_eq!(stats.write_seeks, writes);
        prop_assert_eq!(stats.ops, ios.len() as u64);
        prop_assert_eq!(counter.distances(), &distances[..]);
    }

    /// CDF axioms: monotone, bounded, and consistent with quantiles.
    #[test]
    fn cdf_axioms(samples in prop::collection::vec(-1_000_000i64..1_000_000, 1..300)) {
        let cdf = Cdf::from_samples(samples.clone());
        prop_assert_eq!(cdf.len(), samples.len());
        let lo = *samples.iter().min().expect("nonempty");
        let hi = *samples.iter().max().expect("nonempty");
        prop_assert!((cdf.fraction_at_or_below(hi) - 1.0).abs() < 1e-12);
        prop_assert_eq!(cdf.fraction_at_or_below(lo - 1), 0.0);
        // Monotonicity on a coarse grid.
        let mut prev = 0.0;
        for i in 0..20 {
            let x = lo + (hi - lo) * i / 19;
            let f = cdf.fraction_at_or_below(x);
            prop_assert!(f >= prev - 1e-12);
            prop_assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
        // Quantile inverts fraction: F(q_p) >= p.
        for &p in &[0.01, 0.25, 0.5, 0.75, 0.99, 1.0] {
            let q = cdf.quantile(p).expect("nonempty");
            prop_assert!(cdf.fraction_at_or_below(q) >= p - 1e-12);
        }
    }

    /// Seek cost is nonnegative, and for long seeks monotone in distance.
    #[test]
    fn cost_model_sane(d in 1i64..1 << 40) {
        let p = DiskProfile::default();
        let t = p.seek_time_us(d);
        prop_assert!(t >= 0.0 && t.is_finite());
        let further = p.seek_time_us(d.saturating_mul(2));
        if d as u64 >= p.sectors_per_track {
            prop_assert!(further >= t - 1e-9, "d={d}: {t} then {further}");
        }
        // Backward never cheaper than forward for short hops.
        if (d as u64) < p.sectors_per_track {
            prop_assert!(p.seek_time_us(-d) >= t - 1e-9);
        }
    }

    /// Geometry: locate() is injective over sectors and cylinders are
    /// nondecreasing in sector number.
    #[test]
    fn geometry_locate_monotone(step in 1u64..10_000) {
        let geo = DiskGeometry::zbr(1 << 22, 2048, 512, 6);
        let mut prev_cyl = 0u64;
        let mut sector = 0u64;
        while sector < geo.capacity_sectors() {
            let loc = geo.locate(Pba::new(sector)).expect("in range");
            prop_assert!(loc.cylinder >= prev_cyl);
            prop_assert!(loc.angle < loc.track_sectors);
            prev_cyl = loc.cylinder;
            sector += step;
        }
    }

    /// Zoned device: appended runs are disjoint, in-order, within zones,
    /// and conserve the appended sector count.
    #[test]
    fn zoned_appends_conserve(lens in prop::collection::vec(1u64..300, 1..40)) {
        let mut dev = ZonedDevice::new(64, 256);
        let mut all_runs: Vec<(u64, u64)> = Vec::new();
        let mut appended = 0u64;
        for &len in &lens {
            if len > dev.remaining_sectors() {
                prop_assert!(dev.append(len).is_err());
                continue;
            }
            let runs = dev.append(len).expect("fits");
            let total: u64 = runs.iter().map(|&(_, l)| l).sum();
            prop_assert_eq!(total, len);
            for &(start, l) in &runs {
                // Within a single zone.
                let z = dev.zone_of(start).expect("valid");
                prop_assert_eq!(dev.zone_of(start + l - 1), Some(z));
                all_runs.push((start.sector(), l));
            }
            appended += len;
        }
        // Runs are strictly ordered and disjoint.
        for pair in all_runs.windows(2) {
            prop_assert!(pair[0].0 + pair[0].1 <= pair[1].0);
        }
        prop_assert_eq!(
            dev.capacity_sectors() - dev.remaining_sectors(),
            appended
        );
    }
}
