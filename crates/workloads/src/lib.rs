//! Deterministic synthetic block workloads.
//!
//! The paper evaluates on two proprietary-or-unavailable trace families
//! (MSR Cambridge 2007–08 and CloudPhysics). This crate synthesizes
//! stand-in traces for all 21 Table-I workloads:
//!
//! * [`zipf`] — a Zipf(θ) sampler for skewed popularity,
//! * [`builder`] — the deterministic [`builder::TraceBuilder`] with
//!   archetype operations (sequential/random/descending/interleaved writes,
//!   scans, temporal-replay reads, Zipf re-reads),
//! * [`behavior`] — the [`behavior::Behavior`] knob set and the recipe
//!   engine that turns knobs + Table-I ratios into a trace,
//! * [`profiles`] — the 21 named profiles with the paper's Table-I numbers
//!   and a behaviour tuned to reproduce each workload's qualitative seek
//!   profile (log-friendly, log-sensitive, or log-agnostic).
//!
//! Every generator takes an explicit `u64` seed and is fully reproducible.
//!
//! # Example
//!
//! ```
//! use smrseek_workloads::profiles;
//!
//! let profile = profiles::by_name("w91").expect("w91 is in Table I");
//! let trace = profile.generate(42);
//! assert!(!trace.is_empty());
//! assert_eq!(trace, profile.generate(42)); // deterministic
//! ```

#![warn(missing_docs)]
pub mod behavior;
pub mod builder;
pub mod profiles;
pub mod zipf;

pub use behavior::Behavior;
pub use builder::TraceBuilder;
pub use profiles::{Family, Profile, TableRow};
pub use zipf::Zipf;
