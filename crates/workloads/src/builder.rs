//! The deterministic trace builder and its archetype operations.
//!
//! Each method appends operations shaped like one of the behaviours the
//! paper identifies in real traces:
//!
//! * ascending sequential streams (ordinary well-behaved I/O),
//! * uniform random writes/reads (the fragmentation source),
//! * *descending chunk bursts* — Fig 7a's pattern from `hm_1`, where
//!   contiguous ranges are dispatched in descending order,
//! * *interleaved ascending streams* — §IV-B's "multiple sequential write
//!   streams interleaved on their way to the disk",
//! * sequential *scans* (the read pattern that pays for random writes),
//! * *temporal replay* reads (reading data in the order it was written —
//!   the log-friendly case of §III),
//! * *Zipf re-reads* of previously written ranges (Fig 10's skew).

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smrseek_trace::{Lba, OpKind, TraceRecord};

/// A deterministic builder of synthetic block traces.
///
/// # Example
///
/// ```
/// use smrseek_workloads::TraceBuilder;
/// use smrseek_trace::Lba;
///
/// let mut b = TraceBuilder::new(42);
/// b.write_sequential(Lba::new(0), 10, 8);
/// b.read_scan(Lba::new(0), 80, 16);
/// let trace = b.finish();
/// assert_eq!(trace.len(), 10 + 5);
/// assert!(trace.windows(2).all(|w| w[0].timestamp_us <= w[1].timestamp_us));
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    rng: StdRng,
    clock_us: u64,
    /// Mean microseconds between operations.
    interarrival_us: u64,
    records: Vec<TraceRecord>,
    /// Ranges written so far, in temporal order, for replay/zipf reads.
    written_ranges: Vec<(Lba, u32)>,
}

impl TraceBuilder {
    /// Creates a builder seeded with `seed` (same seed ⇒ same trace).
    pub fn new(seed: u64) -> Self {
        TraceBuilder {
            rng: StdRng::seed_from_u64(seed),
            clock_us: 0,
            interarrival_us: 1_000,
            records: Vec::new(),
            written_ranges: Vec::new(),
        }
    }

    /// Sets the mean operation inter-arrival time in microseconds.
    pub fn interarrival_us(&mut self, us: u64) -> &mut Self {
        self.interarrival_us = us.max(1);
        self
    }

    /// Advances the clock by `us` microseconds without emitting an
    /// operation — an idle gap (end of a burst, a quiet diurnal phase).
    pub fn advance_clock(&mut self, us: u64) -> &mut Self {
        self.clock_us += us;
        self
    }

    /// Number of operations so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if no operations were generated yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Ranges written so far, oldest first.
    pub fn written_ranges(&self) -> &[(Lba, u32)] {
        &self.written_ranges
    }

    /// Consumes the builder, returning the trace.
    pub fn finish(self) -> Vec<TraceRecord> {
        self.records
    }

    /// Crate-internal access to the RNG for recipe engines.
    pub(crate) fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    fn tick(&mut self) -> u64 {
        let jitter = self.rng.gen_range(0..=self.interarrival_us);
        self.clock_us += self.interarrival_us / 2 + jitter;
        self.clock_us
    }

    /// Emits one raw operation.
    pub fn push(&mut self, op: OpKind, lba: Lba, sectors: u32) {
        let sectors = sectors.max(1);
        let ts = self.tick();
        self.records.push(TraceRecord::new(ts, op, lba, sectors));
        if op == OpKind::Write {
            self.written_ranges.push((lba, sectors));
        }
    }

    /// Draws an op size around `mean_sectors`: a geometric-tailed multiple
    /// of 8 sectors (4 KiB), in `[8, 4096]`.
    pub fn sample_size(&mut self, mean_sectors: u32) -> u32 {
        let mean = f64::from(mean_sectors.max(8));
        // Exponential with the requested mean, quantized to 4 KiB blocks.
        let u: f64 = self.rng.gen_range(1e-9..1.0f64);
        let raw = -mean * u.ln();
        let quantized = ((raw / 8.0).round() as u32) * 8;
        quantized.clamp(8, 4096)
    }

    // ----- write archetypes ------------------------------------------------

    /// `count` writes of `sectors_each` sectors, ascending from `start`.
    pub fn write_sequential(&mut self, start: Lba, count: usize, sectors_each: u32) {
        let mut at = start;
        for _ in 0..count {
            self.push(OpKind::Write, at, sectors_each);
            at += u64::from(sectors_each);
        }
    }

    /// `count` writes of mean size `mean_sectors`, placed uniformly at
    /// random (4 KiB-aligned) inside `[region_start, region_start + region_sectors)`.
    pub fn write_random(
        &mut self,
        region_start: Lba,
        region_sectors: u64,
        count: usize,
        mean_sectors: u32,
    ) {
        for _ in 0..count {
            let size = self.sample_size(mean_sectors);
            let span = region_sectors.saturating_sub(u64::from(size)).max(8);
            let offset = self.rng.gen_range(0..span) / 8 * 8;
            self.push(OpKind::Write, region_start + offset, size);
        }
    }

    /// Fig 7a's pattern: a contiguous region written as `chunks` chunks in
    /// **descending** chunk order, each chunk itself written ascending.
    /// Every chunk-boundary write is mis-ordered (its logical successor was
    /// already dispatched).
    pub fn write_descending_chunks(
        &mut self,
        region_start: Lba,
        chunks: usize,
        ops_per_chunk: usize,
        sectors_each: u32,
    ) {
        let chunk_span = (ops_per_chunk as u64) * u64::from(sectors_each);
        for c in (0..chunks).rev() {
            let base = region_start + c as u64 * chunk_span;
            for i in 0..ops_per_chunk {
                self.push(
                    OpKind::Write,
                    base + i as u64 * u64::from(sectors_each),
                    sectors_each,
                );
            }
        }
    }

    /// §IV-B's interleaving: `streams` ascending sequential write streams,
    /// dispatched round-robin. `count` total writes.
    pub fn write_interleaved(
        &mut self,
        region_start: Lba,
        streams: usize,
        count: usize,
        sectors_each: u32,
    ) {
        assert!(streams > 0, "need at least one stream");
        let per_stream = (count / streams + 1) as u64 * u64::from(sectors_each);
        let mut cursors: Vec<Lba> = (0..streams)
            .map(|s| region_start + s as u64 * per_stream)
            .collect();
        for i in 0..count {
            let s = i % streams;
            self.push(OpKind::Write, cursors[s], sectors_each);
            cursors[s] += u64::from(sectors_each);
        }
    }

    // ----- read archetypes -------------------------------------------------

    /// One ascending sequential scan of `[start, start + span_sectors)` in
    /// reads of `sectors_each`.
    pub fn read_scan(&mut self, start: Lba, span_sectors: u64, sectors_each: u32) {
        let mut at = start;
        let end = start + span_sectors;
        while at < end {
            let len = u32::try_from((end - at).min(u64::from(sectors_each))).expect("bounded");
            self.push(OpKind::Read, at, len);
            at += u64::from(len);
        }
    }

    /// `count` reads of mean size `mean_sectors`, uniform over the region.
    pub fn read_random(
        &mut self,
        region_start: Lba,
        region_sectors: u64,
        count: usize,
        mean_sectors: u32,
    ) {
        for _ in 0..count {
            let size = self.sample_size(mean_sectors);
            let span = region_sectors.saturating_sub(u64::from(size)).max(8);
            let offset = self.rng.gen_range(0..span) / 8 * 8;
            self.push(OpKind::Read, region_start + offset, size);
        }
    }

    /// Temporal replay: re-reads the `count` most recent written ranges in
    /// the order they were written (the log-friendly case: read order
    /// mimics write order, §III's small-file example).
    pub fn read_replay_recent(&mut self, count: usize) {
        let n = self.written_ranges.len();
        let start = n.saturating_sub(count);
        let targets: Vec<(Lba, u32)> = self.written_ranges[start..].to_vec();
        for (lba, sectors) in targets {
            self.push(OpKind::Read, lba, sectors);
        }
    }

    /// `count` reads drawn Zipf(θ)-skewed over the distinct ranges written
    /// so far (most recent ranks most popular). No-op when nothing was
    /// written.
    pub fn read_zipf_written(&mut self, count: usize, theta: f64) {
        if self.written_ranges.is_empty() {
            return;
        }
        let n = self.written_ranges.len();
        let zipf = Zipf::new(n, theta);
        for _ in 0..count {
            let rank = zipf.sample(&mut self.rng);
            // rank 0 = most recent write.
            let (lba, sectors) = self.written_ranges[n - 1 - rank];
            self.push(OpKind::Read, lba, sectors);
        }
    }

    /// Reads spanning previously-written ranges *and* their neighbourhood:
    /// each read covers a written range widened by `halo_sectors` on both
    /// sides, so it crosses log-fragment boundaries (guaranteeing
    /// fragmented reads under LS translation). Targets are Zipf-skewed.
    pub fn read_straddling_written(&mut self, count: usize, theta: f64, halo_sectors: u32) {
        if self.written_ranges.is_empty() {
            return;
        }
        let n = self.written_ranges.len();
        let zipf = Zipf::new(n, theta);
        for _ in 0..count {
            let rank = zipf.sample(&mut self.rng);
            let (lba, sectors) = self.written_ranges[n - 1 - rank];
            let start = Lba::new(lba.sector().saturating_sub(u64::from(halo_sectors)));
            self.push(OpKind::Read, start, sectors + 2 * halo_sectors);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_monotone_nondecreasing() {
        let mut b = TraceBuilder::new(1);
        b.write_random(Lba::new(0), 1 << 20, 100, 16);
        b.read_random(Lba::new(0), 1 << 20, 100, 16);
        let t = b.finish();
        assert!(t.windows(2).all(|w| w[0].timestamp_us <= w[1].timestamp_us));
    }

    #[test]
    fn determinism() {
        let gen = |seed| {
            let mut b = TraceBuilder::new(seed);
            b.write_random(Lba::new(0), 1 << 16, 50, 32);
            b.read_zipf_written(50, 1.0);
            b.finish()
        };
        assert_eq!(gen(5), gen(5));
        assert_ne!(gen(5), gen(6));
    }

    #[test]
    fn sequential_write_layout() {
        let mut b = TraceBuilder::new(0);
        b.write_sequential(Lba::new(100), 3, 8);
        let t = b.finish();
        assert_eq!(t[0].lba, Lba::new(100));
        assert_eq!(t[1].lba, Lba::new(108));
        assert_eq!(t[2].lba, Lba::new(116));
        assert!(t.iter().all(|r| r.op == OpKind::Write && r.sectors == 8));
    }

    #[test]
    fn random_writes_stay_in_region() {
        let mut b = TraceBuilder::new(3);
        b.write_random(Lba::new(1000), 4096, 200, 16);
        for r in b.finish() {
            assert!(r.lba >= Lba::new(1000));
            assert!(r.end() <= Lba::new(1000 + 4096 + 4096)); // size cap slack
            assert_eq!(r.lba.sector() % 8, 0, "4 KiB aligned");
        }
    }

    #[test]
    fn descending_chunks_are_misordered() {
        let mut b = TraceBuilder::new(0);
        b.write_descending_chunks(Lba::new(0), 3, 2, 8);
        let t = b.finish();
        let lbas: Vec<u64> = t.iter().map(|r| r.lba.sector()).collect();
        assert_eq!(lbas, vec![32, 40, 16, 24, 0, 8]);
    }

    #[test]
    fn interleaved_streams_ascend_individually() {
        let mut b = TraceBuilder::new(0);
        b.write_interleaved(Lba::new(0), 2, 6, 8);
        let t = b.finish();
        let lbas: Vec<u64> = t.iter().map(|r| r.lba.sector()).collect();
        // Streams at 0.. and per_stream offset, round robin.
        assert_eq!(lbas[0], 0);
        assert_eq!(lbas[2], 8);
        assert_eq!(lbas[4], 16);
        assert!(lbas[1] > 16);
        assert_eq!(lbas[3], lbas[1] + 8);
    }

    #[test]
    fn scan_covers_span_exactly() {
        let mut b = TraceBuilder::new(0);
        b.read_scan(Lba::new(10), 100, 16);
        let t = b.finish();
        let total: u64 = t.iter().map(|r| u64::from(r.sectors)).sum();
        assert_eq!(total, 100);
        assert_eq!(t[0].lba, Lba::new(10));
        assert_eq!(t.last().unwrap().end(), Lba::new(110));
        // Consecutive scan ops are contiguous.
        assert!(t.windows(2).all(|w| w[0].end() == w[1].lba));
    }

    #[test]
    fn replay_reads_in_write_order() {
        let mut b = TraceBuilder::new(0);
        b.write_sequential(Lba::new(0), 2, 8);
        b.write_random(Lba::new(1 << 20), 1 << 16, 2, 8);
        b.read_replay_recent(3);
        let t = b.finish();
        assert_eq!(t.len(), 7);
        let reads: Vec<_> = t.iter().filter(|r| r.op == OpKind::Read).collect();
        assert_eq!(reads.len(), 3);
        assert_eq!(reads[0].lba, t[1].lba); // 2nd write
        assert_eq!(reads[1].lba, t[2].lba);
        assert_eq!(reads[2].lba, t[3].lba);
    }

    #[test]
    fn zipf_reads_prefer_recent() {
        let mut b = TraceBuilder::new(11);
        b.write_sequential(Lba::new(0), 100, 8);
        b.read_zipf_written(1000, 1.2);
        let t = b.finish();
        let last_write_lba = Lba::new(99 * 8);
        let hot = t
            .iter()
            .filter(|r| r.op == OpKind::Read && r.lba == last_write_lba)
            .count();
        assert!(hot > 50, "most recent range must dominate, got {hot}");
    }

    #[test]
    fn zipf_on_empty_is_noop() {
        let mut b = TraceBuilder::new(0);
        b.read_zipf_written(10, 1.0);
        b.read_straddling_written(10, 1.0, 8);
        assert!(b.is_empty());
    }

    #[test]
    fn straddling_reads_widen() {
        let mut b = TraceBuilder::new(0);
        b.write_random(Lba::new(10_000), 1 << 16, 1, 8);
        let (wlba, wsec) = b.written_ranges()[0];
        b.read_straddling_written(1, 1.0, 16);
        let t = b.finish();
        let read = t.last().unwrap();
        assert_eq!(read.op, OpKind::Read);
        assert_eq!(read.lba, Lba::new(wlba.sector() - 16));
        assert_eq!(read.sectors, wsec + 32);
    }

    #[test]
    fn size_sampler_statistics() {
        let mut b = TraceBuilder::new(2);
        let n = 5000;
        let mean_target = 64u32;
        let sum: u64 = (0..n).map(|_| u64::from(b.sample_size(mean_target))).sum();
        let mean = sum as f64 / n as f64;
        assert!(
            (mean - f64::from(mean_target)).abs() < 12.0,
            "sampled mean {mean} too far from {mean_target}"
        );
        for _ in 0..100 {
            let s = b.sample_size(mean_target);
            assert!((8..=4096).contains(&s) && s.is_multiple_of(8));
        }
    }
}
